"""Legacy setup shim.

The execution environment for this reproduction is fully offline and lacks
the ``wheel`` package, which PEP 517 editable installs require.  Keeping a
``setup.py`` (and no ``[build-system]`` table in pyproject.toml) lets
``pip install -e .`` fall back to ``setup.py develop``, which works with
setuptools alone.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "MCBound reproduction: online characterization and classification "
        "of memory/compute-bound HPC jobs (SC 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
