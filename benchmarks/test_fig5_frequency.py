"""F5 — Figure 5: the Roofline split by user-selected frequency.

Paper reading: "there is no observable correlation between the
user-selected frequency at submission time and the position of the given
job in the Roofline" — users do not pick frequencies that match their
job's nature.
"""

from repro.analysis.roofline_plots import (
    fig5_frequency_split,
    frequency_position_association,
)


def test_fig5_roofline_by_frequency(benchmark, trace, characterizer):
    split = benchmark(fig5_frequency_split, trace, characterizer)

    print()
    print("Fig 5 - roofline by requested frequency")
    for freq in sorted(split):
        s = split[freq]
        mode = "normal" if freq < 2.2 else "boost"
        print(f"  {freq} GHz ({mode:6s}): {s.n_jobs:,} jobs, "
              f"{s.frac_memory_bound:.1%} memory-bound, "
              f"median op {s.median_op:.3f}")

    r = frequency_position_association(trace, characterizer)
    print(f"point-biserial corr(boost, log10 op) = {r:+.3f} (paper: none observable)")

    # both frequencies present, both dominated by memory-bound jobs
    assert set(split) == {2.0, 2.2}
    for s in split.values():
        assert s.frac_memory_bound > 0.55

    # no meaningful association between the chosen frequency and the
    # roofline position
    assert abs(r) < 0.30
