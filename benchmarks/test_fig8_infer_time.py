"""F8 — Figure 8: average per-job inference time vs α (β=1).

Paper reading: RF inference is constant in α and dominated by the
encoding cost; KNN inference grows (mildly) with the training-set size.
Both stay in the milliseconds — negligible against the ~3 min average
scheduling wait.
"""

from repro.evaluation.experiments import PAPER_ALPHAS
from repro.evaluation.reporting import format_table


def test_fig8_inference_time(benchmark, evaluator, knn_grid, rf_grid, knn_spec, strict):
    rows = []
    for a in PAPER_ALPHAS:
        rows.append([
            a,
            f"{knn_grid[(a, 1)].mean_inference_time_per_job * 1e6:.1f} us",
            f"{rf_grid[(a, 1)].mean_inference_time_per_job * 1e6:.1f} us",
        ])
    print()
    print(format_table(
        ["alpha", "KNN infer/job", "RF infer/job"],
        rows,
        title="Fig 8 - average per-job inference time incl. encoding (beta=1)",
    ))
    print(f"encoding cost alone: {evaluator.encode_time_per_job * 1e6:.1f} us/job "
          "(paper: ~2 ms/job with SBERT)")

    knn_t = [knn_grid[(a, 1)].mean_inference_time_per_job for a in PAPER_ALPHAS]
    rf_t = [rf_grid[(a, 1)].mean_inference_time_per_job for a in PAPER_ALPHAS]

    # milliseconds at most: negligible against the ~3 min scheduling wait
    assert max(knn_t + rf_t) < 0.05

    if strict:
        # KNN inference grows with the window, RF stays roughly flat
        assert knn_t[-1] > 1.5 * knn_t[0]
        assert max(rf_t) < 5 * min(rf_t)
        # KNN pays more per prediction than RF (it scans the training set)
        assert knn_t[1] > rf_t[1]

    # measure one day of inference with the trained KNN at alpha=30
    from repro.core.classification_model import ClassificationModel

    idx = evaluator._training_indices(evaluator.test_start_day, 30)
    model = ClassificationModel("KNN", **knn_spec.params)
    model.training(evaluator.X[idx], evaluator.y[idx])
    day_idx = evaluator._day_indices[evaluator.test_start_day]
    X_day = evaluator.X[day_idx]
    benchmark(model.inference, X_day)
