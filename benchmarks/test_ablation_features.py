"""Ablation — the encoder feature set (§V-A).

The paper starts from the feature set of Antici et al. [4] (user name,
job name, #cores, #nodes, environment) and finds that adding *frequency
requested* improves the prediction.  This ablation reproduces that
comparison, plus a minimal (job name only) variant.
"""

import numpy as np

from repro.core.config import DEFAULT_FEATURE_SET
from repro.core.feature_encoder import FeatureEncoder
from repro.evaluation.reporting import format_table
from repro.fugaku.workload import DAY_SECONDS
from repro.mlcore.knn import KNeighborsClassifier
from repro.mlcore.metrics import f1_macro
from repro.nlp.embedder import SentenceEmbedder

FEATURE_SETS = {
    "job name only": ("job_name",),
    "Antici et al. [4]": ("user_name", "job_name", "cores_req", "nodes_req", "environment"),
    "[4] + frequency (paper)": DEFAULT_FEATURE_SET,
}


def test_ablation_feature_sets(benchmark, trace, labels):
    train_mask = (trace["submit_time"] >= 32 * DAY_SECONDS) & (
        trace["submit_time"] < 62 * DAY_SECONDS
    )
    test_mask = (trace["submit_time"] >= 62 * DAY_SECONDS) & (
        trace["submit_time"] < 65 * DAY_SECONDS
    )
    train, test = trace.select(train_mask), trace.select(test_mask)
    y_train, y_test = labels[train_mask], labels[test_mask]

    rows, scores = [], {}
    for name, features in FEATURE_SETS.items():
        encoder = FeatureEncoder(
            feature_set=features, embedder=SentenceEmbedder(dim=384)
        )
        Xtr = encoder.encode_trace(train)
        Xte = encoder.encode_trace(test)
        knn = KNeighborsClassifier(5, algorithm="brute").fit(Xtr, y_train)
        f1 = f1_macro(y_test, knn.predict(Xte))
        scores[name] = f1
        rows.append([name, len(features), round(f1, 4)])

    print()
    print(format_table(
        ["feature set", "#features", "3-day F1 (KNN)"],
        rows,
        title="Ablation: encoder feature set",
    ))

    # richer submission metadata helps: the full set beats job-name-only
    assert scores["[4] + frequency (paper)"] > scores["job name only"]
    # and the paper's augmented set is at least as good as [4]'s
    assert scores["[4] + frequency (paper)"] >= scores["Antici et al. [4]"] - 0.01

    encoder = FeatureEncoder(embedder=SentenceEmbedder(dim=384, cache_size=0))
    sample = trace.select(np.arange(min(300, len(trace))))
    benchmark(encoder.encode_trace, sample)
