"""F6 — Figure 6: F1 of KNN and RF across the (α, β) grid.

Paper reading: F1 decreases as β grows (staler models); RF gains nothing
from α > 15 at β=1; KNN peaks at α=30 and declines for larger windows.
Best settings: α=15 β=1 (RF), α=30 β=1 (KNN), both with F1 ≥ 0.89.

The benchmark measures one retraining trigger at the model's best α (the
unit of work the online algorithm repeats daily).
"""

import numpy as np

from repro.core.classification_model import ClassificationModel
from repro.evaluation.experiments import PAPER_ALPHAS, PAPER_BETAS
from repro.evaluation.reporting import format_table


def _print_grid(name, grid):
    rows = []
    for a in PAPER_ALPHAS:
        rows.append([a] + [round(grid[(a, b)].f1, 4) for b in PAPER_BETAS])
    print()
    print(format_table(
        ["alpha \\ beta"] + [str(b) for b in PAPER_BETAS],
        rows,
        title=f"Fig 6 - F1 of {name} over (alpha, beta)",
    ))


def _beta_monotone_at_ends(grid, alpha):
    return grid[(alpha, 1)].f1 >= grid[(alpha, 10)].f1


def test_fig6_knn(benchmark, evaluator, knn_grid, knn_spec, strict):
    _print_grid("KNN", knn_grid)

    best = max(knn_grid.values(), key=lambda r: r.f1)
    print(f"best: alpha={best.alpha} beta={best.beta} F1={best.f1:.4f} "
          "(paper: alpha=30 beta=1, F1=0.89)")

    # benchmark one daily retraining trigger at the best setting
    idx = evaluator._training_indices(evaluator.test_start_day, 30)
    X, y = evaluator.X[idx], evaluator.y[idx]
    benchmark(lambda: ClassificationModel("KNN", **knn_spec.params).training(X, y))

    if strict:
        # quality level of the paper's headline
        assert best.f1 >= 0.86
        # fresher models win: beta=1 beats beta=10 at every alpha
        for a in PAPER_ALPHAS:
            assert _beta_monotone_at_ends(knn_grid, a)
        # KNN's optimum window is 30 days; larger windows do not help at beta=1
        f1_b1 = {a: knn_grid[(a, 1)].f1 for a in PAPER_ALPHAS}
        assert f1_b1[30] >= f1_b1[45]
        assert f1_b1[30] >= f1_b1[15]
        assert max(f1_b1[15], f1_b1[30]) >= max(f1_b1[45], f1_b1[60]) - 0.005


def test_fig6_rf(benchmark, evaluator, rf_grid, rf_spec, strict):
    _print_grid("RF", rf_grid)

    best = max(rf_grid.values(), key=lambda r: r.f1)
    print(f"best: alpha={best.alpha} beta={best.beta} F1={best.f1:.4f} "
          "(paper: alpha=15 beta=1, F1=0.90)")

    idx = evaluator._training_indices(evaluator.test_start_day, 15)
    X, y = evaluator.X[idx], evaluator.y[idx]
    benchmark.pedantic(
        lambda: ClassificationModel("RF", **rf_spec.params).training(X, y),
        rounds=1, iterations=1,
    )

    if strict:
        assert best.f1 >= 0.87
        for a in PAPER_ALPHAS:
            assert _beta_monotone_at_ends(rf_grid, a)
        # no gains beyond alpha=15 at beta=1
        f1_b1 = {a: rf_grid[(a, 1)].f1 for a in PAPER_ALPHAS}
        assert f1_b1[15] >= max(f1_b1.values()) - 0.003
        # RF at its best matches or beats KNN (paper: 0.90 vs 0.89)
