"""X1 — §V-C.a: the (job name, #cores) lookup baseline vs the full models.

Paper: the baseline (a k=1 KNN on two raw features, updated with the same
online schedule) reaches F1 0.83 against 0.90 for the NLP-augmented
models — simpler, but less accurate, justifying MCBound's approach.
"""

from repro.evaluation.reporting import format_table
from repro.mlcore.baseline import LookupTableBaseline


def test_baseline_comparison(benchmark, evaluator, baseline_run, knn_grid, rf_grid, strict):
    knn_best = knn_grid[(30, 1)]
    rf_best = rf_grid[(15, 1)]

    print()
    print(format_table(
        ["model", "setting", "F1"],
        [
            ["baseline (job name, #cores)", "alpha=30 beta=1", round(baseline_run.f1, 4)],
            ["KNN + NLP encoding", "alpha=30 beta=1", round(knn_best.f1, 4)],
            ["RF + NLP encoding", "alpha=15 beta=1", round(rf_best.f1, 4)],
        ],
        title="Baseline comparison (paper: 0.83 vs 0.90)",
    ))

    # the baseline is simpler but less accurate than both models
    assert baseline_run.f1 < max(knn_best.f1, rf_best.f1)
    if strict:
        assert baseline_run.f1 <= rf_best.f1 - 0.02
        assert baseline_run.f1 <= knn_best.f1

    # benchmark one baseline retraining trigger (the map rebuild)
    idx = evaluator._training_indices(evaluator.test_start_day, 30)
    keys = list(zip(
        evaluator.trace["job_name"][idx].tolist(),
        evaluator.trace["cores_req"][idx].tolist(),
    ))
    y = evaluator.y[idx]
    benchmark(lambda: LookupTableBaseline().fit(keys, y))
