"""ML-core throughput: the BENCH_mlcore.json perf trajectory.

Not a paper figure — the per-PR performance record for the from-scratch
ML substrate (ROADMAP item 4).  Every run measures train + infer
throughput for the three classifier backends and the sentence embedder at
fixed sizes and seeds, computes speedups against the preserved scalar
references in :mod:`repro.mlcore.reference` / :mod:`repro.nlp.reference`,
and rewrites ``BENCH_mlcore.json`` at the repo root.

Ratcheting: absolute throughputs vary across machines, so the committed
baseline is ratcheted on *speedup ratios* (vectorized vs scalar reference
on the same machine, same run).  With ``REPRO_PERF_RATCHET=1`` (the CI
benchmark job) the final test fails if a tracked speedup falls below the
hard floor (2x for forest predict and embedder batch encode) or regresses
more than 30% relative to the committed baseline.  The hard floors are
the load-bearing gate; the relative band is wide because even same-machine
speedup ratios wobble ~20-25% run to run (the scalar and vectorized sides
respond differently to background load), and CI runners differ again.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from benchmarks._perf import best_time, throughput
from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.kdtree import KDTree
from repro.mlcore.knn import KNeighborsClassifier
from repro.mlcore.reference import (
    forest_predict_proba_scalar,
    kdtree_query_scalar,
)
from repro.nlp.embedder import SentenceEmbedder
from repro.nlp.reference import encode_scalar

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_mlcore.json"

SEED = 2024
KNN_TRAIN, KNN_QUERIES, KNN_K = 4000, 1000, 5
KDTREE_DIM, BRUTE_DIM = 8, 64
FOREST_TREES, FOREST_DEPTH = 40, 12
FOREST_TRAIN, FOREST_DIM = 3000, 24
#: online scoring batch — the serve loop classifies jobs in micro-batches
FOREST_PREDICT_BATCH = 256
EMBED_STRINGS, EMBED_DISTINCT = 2000, 100

#: ISSUE acceptance floors: measured speedup over the pre-PR scalar paths
HARD_FLOORS = {"forest_predict": 2.0, "embedder_cold": 2.0}
#: ratcheted speedups may regress at most 30% vs the committed baseline —
#: wide enough to absorb run-to-run ratio noise, tight enough that losing a
#: vectorized path (speedup -> ~1x) still fails loudly above the hard floors
RATCHET_TOLERANCE = 0.70


@pytest.fixture(scope="module")
def results():
    return {
        "meta": {
            "seed": SEED,
            "knn": {
                "n_train": KNN_TRAIN,
                "n_queries": KNN_QUERIES,
                "k": KNN_K,
                "kdtree_dim": KDTREE_DIM,
                "brute_dim": BRUTE_DIM,
            },
            "forest": {
                "n_trees": FOREST_TREES,
                "max_depth": FOREST_DEPTH,
                "n_train": FOREST_TRAIN,
                "dim": FOREST_DIM,
                "predict_batch": FOREST_PREDICT_BATCH,
            },
            "embedder": {
                "n_strings": EMBED_STRINGS,
                "n_distinct": EMBED_DISTINCT,
            },
        }
    }


def _job_strings(rng, n, n_distinct):
    """Synthetic submission feature strings, heavy repetition (real batches
    of cluster jobs repeat the same submission template many times)."""
    words = [
        "srun", "mpirun", "gemm", "stream", "lbm", "fft", "cg", "bfs",
        "gromacs", "vasp", "nodes=4", "ntasks=128", "mem=64G", "gpu",
        "--exclusive", "ib0", "avx512", "omp=12",
    ]
    distinct = [
        " ".join(rng.choice(words, size=rng.integers(3, 9))) + f" job{i}"
        for i in range(n_distinct)
    ]
    return [distinct[int(j)] for j in rng.integers(0, n_distinct, size=n)]


def test_knn_kdtree_throughput(results):
    rng = np.random.default_rng(SEED)
    X = rng.normal(size=(KNN_TRAIN, KDTREE_DIM))
    y = (X[:, 0] > 0).astype(int)
    Q = rng.normal(size=(KNN_QUERIES, KDTREE_DIM))

    fit_s = best_time(
        lambda: KNeighborsClassifier(KNN_K, algorithm="kd_tree").fit(X, y), repeats=3
    )
    knn = KNeighborsClassifier(KNN_K, algorithm="kd_tree").fit(X, y)
    query_s = best_time(lambda: knn.kneighbors(Q))

    tree = KDTree(X)
    scalar_s = best_time(lambda: kdtree_query_scalar(tree, Q, k=KNN_K), repeats=2)
    d_new, i_new = knn.kneighbors(Q)
    d_ref, i_ref = kdtree_query_scalar(tree, Q, k=KNN_K)
    assert np.array_equal(i_new, i_ref) and np.array_equal(d_new, d_ref)

    results["knn_kdtree"] = {
        "fit_s": fit_s,
        "query_s": query_s,
        "queries_per_s": throughput(KNN_QUERIES, query_s),
        "speedup_vs_scalar": scalar_s / query_s,
    }


def test_knn_brute_throughput(results):
    rng = np.random.default_rng(SEED)
    X = rng.normal(size=(KNN_TRAIN, BRUTE_DIM))
    y = (X[:, 0] > 0).astype(int)
    Q = rng.normal(size=(KNN_QUERIES, BRUTE_DIM))

    fit_s = best_time(
        lambda: KNeighborsClassifier(KNN_K, algorithm="brute").fit(X, y), repeats=3
    )
    knn = KNeighborsClassifier(KNN_K, algorithm="brute").fit(X, y)
    query_s = best_time(lambda: knn.kneighbors(Q))

    results["knn_brute"] = {
        "fit_s": fit_s,
        "query_s": query_s,
        "queries_per_s": throughput(KNN_QUERIES, query_s),
    }


def test_forest_throughput(results):
    rng = np.random.default_rng(SEED)
    X = rng.normal(size=(FOREST_TRAIN, FOREST_DIM)).astype(np.float32)
    y = (X[:, 0] + X[:, 1] * X[:, 2] + rng.normal(scale=0.5, size=FOREST_TRAIN) > 0)

    def make():
        return RandomForestClassifier(
            FOREST_TREES,
            max_depth=FOREST_DEPTH,
            splitter="hist",
            random_state=SEED,
        )

    fit_s = best_time(lambda: make().fit(X, y.astype(int)), repeats=3, warmup=1)
    forest = make().fit(X, y.astype(int))
    Q = rng.normal(size=(FOREST_PREDICT_BATCH, FOREST_DIM)).astype(np.float32)

    predict_s = best_time(lambda: forest.predict_proba(Q), repeats=10)
    scalar_s = best_time(lambda: forest_predict_proba_scalar(forest, Q), repeats=5)
    assert np.array_equal(forest.predict_proba(Q), forest_predict_proba_scalar(forest, Q))

    results["forest"] = {
        "fit_s": fit_s,
        "fit_samples_per_s": throughput(FOREST_TRAIN, fit_s),
        "predict_s": predict_s,
        "predict_jobs_per_s": throughput(FOREST_PREDICT_BATCH, predict_s),
        "speedup_vs_scalar": scalar_s / predict_s,
    }


def test_embedder_throughput(results):
    rng = np.random.default_rng(SEED)
    texts = _job_strings(rng, EMBED_STRINGS, EMBED_DISTINCT)

    def cold_encode():
        return SentenceEmbedder().encode(texts)

    def cold_scalar():
        return encode_scalar(SentenceEmbedder(), texts)

    cold_s = best_time(cold_encode, repeats=3)
    scalar_s = best_time(cold_scalar, repeats=2)
    assert np.array_equal(cold_encode(), cold_scalar())

    warm = SentenceEmbedder()
    warm.encode(texts)  # prime the string cache
    warm_s = best_time(lambda: warm.encode(texts))

    results["embedder"] = {
        "cold_s": cold_s,
        "cold_strings_per_s": throughput(EMBED_STRINGS, cold_s),
        "warm_s": warm_s,
        "warm_strings_per_s": throughput(EMBED_STRINGS, warm_s),
        "speedup_vs_scalar": scalar_s / cold_s,
    }


def test_write_bench_json(results):
    """Write the trajectory file; ratchet speedups when asked to.

    Runs last (pytest executes this module top to bottom), after every
    section above has filled in its measurements.
    """
    for section in ("knn_kdtree", "knn_brute", "forest", "embedder"):
        assert section in results, f"bench section {section!r} did not run"

    speedups = {
        "knn_kdtree_query": results["knn_kdtree"]["speedup_vs_scalar"],
        "forest_predict": results["forest"]["speedup_vs_scalar"],
        "embedder_cold": results["embedder"]["speedup_vs_scalar"],
    }
    results["speedups_vs_scalar"] = speedups

    baseline = None
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text())
    BENCH_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    if not os.environ.get("REPRO_PERF_RATCHET"):
        return
    failures = []
    for name, floor in HARD_FLOORS.items():
        if speedups[name] < floor:
            failures.append(f"{name} speedup {speedups[name]:.2f}x < floor {floor}x")
    if baseline and "speedups_vs_scalar" in baseline:
        for name, new in speedups.items():
            old = baseline["speedups_vs_scalar"].get(name)
            if old and new < RATCHET_TOLERANCE * old:
                failures.append(
                    f"{name} speedup regressed {new:.2f}x < "
                    f"{RATCHET_TOLERANCE:.0%} of baseline {old:.2f}x"
                )
    assert not failures, "; ".join(failures)
