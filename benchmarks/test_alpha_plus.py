"""X2 — §V-C.b: sliding α window vs the growing α+ window.

Paper: with the best α and β=1, never forgetting old data does not help —
RF's F1 stays at 0.90 while KNN's drops from 0.89 to 0.86 (old jobs
pollute the nearest-neighbour votes) — and the growing window inflates RF
training time (26 s → >200 s) and KNN inference time.  A sliding window
is better on both accuracy and overhead.
"""

from repro.core.classification_model import ClassificationModel
from repro.evaluation.reporting import format_table


def test_alpha_plus(benchmark, evaluator, alpha_plus_runs, knn_grid, rf_grid, knn_spec, strict):
    knn_sliding = knn_grid[(30, 1)]
    rf_sliding = rf_grid[(15, 1)]
    knn_plus = alpha_plus_runs[("KNN", "plus")]
    rf_plus = alpha_plus_runs[("RF", "plus")]

    print()
    print(format_table(
        ["model", "sliding F1", "alpha+ F1", "sliding train", "alpha+ train"],
        [
            ["KNN (alpha=30)", round(knn_sliding.f1, 4), round(knn_plus.f1, 4),
             f"{knn_sliding.mean_train_time * 1e3:.1f} ms",
             f"{knn_plus.mean_train_time * 1e3:.1f} ms"],
            ["RF (alpha=15)", round(rf_sliding.f1, 4), round(rf_plus.f1, 4),
             f"{rf_sliding.mean_train_time:.2f} s",
             f"{rf_plus.mean_train_time:.2f} s"],
        ],
        title="alpha+ growing window vs sliding window (paper: KNN 0.89->0.86, RF 0.90->0.90)",
    ))

    # the growing window trains on strictly more data
    assert max(rf_plus.train_sizes) > max(rf_sliding.train_sizes)

    if strict:
        # RF: no accuracy change; KNN: the growing window does not help
        assert abs(rf_plus.f1 - rf_sliding.f1) < 0.02
        assert knn_plus.f1 <= knn_sliding.f1 + 0.005
        # overhead: the growing window costs more RF training time
        assert rf_plus.mean_train_time > rf_sliding.mean_train_time

    # benchmark one KNN retraining on the full grown window
    idx = evaluator._training_indices(evaluator.test_end_day - 1, ("plus", 30))
    X, y = evaluator.X[idx], evaluator.y[idx]
    benchmark(lambda: ClassificationModel("KNN", **knn_spec.params).training(X, y))
