"""Storage streaming throughput: the BENCH_storage.json perf trajectory.

The capacity lint tier (this PR) statically forbids materializing
jobs-scale results inside streaming code; this benchmark is the dynamic
side of that contract, and the third committed trajectory next to
``BENCH_mlcore.json`` and ``BENCH_staticcheck.json``.  Three sections:

* **fetch+characterize at 10^5 jobs** — the windowed Data Fetcher path,
  streaming (``fetch_batches`` + ``labels_from_result``, no row dicts)
  against materializing (``fetch`` + ``labels_from_records``).  The
  speedup of the columnar streaming path is the ratcheted ratio.
* **peak-memory independence** — the same streaming pipeline run over a
  30-day and a 120-day trace at identical daily volume; 4x the jobs must
  not move the tracemalloc peak, because nothing in the pipeline is
  allowed to scale with the job count.
* **10^6-job streaming smoke** — generate a million-job trace one day at
  a time, ingest it into the column store batch by batch, then fetch and
  characterize the full window through ``fetch_batches``; also sweeps
  the same trace through a week-partitioned :class:`SegmentedTable`.

Ratcheting: absolute wall times vary across machines, so with
``REPRO_PERF_RATCHET=1`` (the CI benchmark job) the gates are the
*within-run* streaming speedup against its hard floor and the committed
baseline, and the peak-memory ratio against its hard cap.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from benchmarks._perf import best_time, throughput
from repro.core.data_fetcher import DataFetcher, load_trace_into_db
from repro.core.job_characterizer import JobCharacterizer
from repro.fugaku.trace import NUMERIC_COLUMNS, STRING_COLUMNS
from repro.fugaku.workload import WorkloadConfig, WorkloadGenerator
from repro.evaluation.timing import peak_memory_bytes
from repro.storage.schema import ColumnDef, ColumnType, TableSchema
from repro.storage.partition import SegmentedTable

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_storage.json"

DAY_SECONDS = 86_400.0
FULL_SCALE_JOBS = 2_200_000

#: batch size for every streaming scan below; small enough that the peak
#: sections measure transients, large enough to amortize per-batch cost
BATCH_ROWS = 8_192

#: hard floor: the columnar streaming fetch+characterize path must beat
#: the row-dict materializing path by at least this factor
STREAM_SPEEDUP_FLOOR = 2.0
#: hard cap: 4x the jobs at constant daily volume may move the streaming
#: pipeline's tracemalloc peak by at most this factor
PEAK_RATIO_CAP = 2.0
#: the streaming speedup may regress at most 40% vs the committed baseline
RATCHET_TOLERANCE = 0.60


def _characterize_stream(fetcher, characterizer, lo, hi):
    """Drain the streaming path; returns (n_jobs, per-class counts)."""
    total = 0
    counts = np.zeros(2, dtype=np.int64)
    for batch in fetcher.fetch_batches(lo, hi, batch_rows=BATCH_ROWS):
        labels = characterizer.labels_from_result(batch)
        total += len(labels)
        counts += np.bincount(labels, minlength=2)
    return total, counts


@pytest.fixture(scope="module")
def results():
    return {"meta": {"batch_rows": BATCH_ROWS, "full_scale_jobs": FULL_SCALE_JOBS}}


@pytest.fixture(scope="module")
def ratchet_db():
    """A ~10^5-job trace loaded submit-sorted into the column store."""
    cfg = WorkloadConfig(scale=100_000 / FULL_SCALE_JOBS, n_days=122, seed=2024)
    trace = WorkloadGenerator(cfg).generate()
    db = load_trace_into_db(trace)
    lo = float(trace["submit_time"][0])
    hi = float(trace["submit_time"][-1]) + 1.0
    return db, len(trace), lo, hi


def test_fetch_characterize_100k(results, ratchet_db):
    """The ratcheted section: streaming vs materializing at 10^5 jobs."""
    db, n_jobs, lo, hi = ratchet_db
    fetcher = DataFetcher(db)
    characterizer = JobCharacterizer()

    total, counts = _characterize_stream(fetcher, characterizer, lo, hi)
    assert total == n_jobs
    assert counts.min() > 0  # both classes show up at this scale

    def run_stream():
        _characterize_stream(fetcher, characterizer, lo, hi)

    def run_rows():
        records = fetcher.fetch(start_time=lo, end_time=hi)
        characterizer.labels_from_records(records)

    stream_s = best_time(run_stream, repeats=3, warmup=1)
    rows_s = best_time(run_rows, repeats=3, warmup=1)
    results["fetch_characterize_100k"] = {
        "n_jobs": n_jobs,
        "stream_s": stream_s,
        "rows_s": rows_s,
        "stream_jobs_per_s": throughput(n_jobs, stream_s),
        "streaming_speedup": rows_s / stream_s,
    }


def test_peak_memory_independent_of_job_count(results):
    """4x the jobs at constant daily volume: the streaming peak stays put."""
    jobs_per_day = 2_000
    characterizer = JobCharacterizer()
    peaks, totals = {}, {}
    for n_days in (30, 120):
        cfg = WorkloadConfig(
            scale=n_days * jobs_per_day / FULL_SCALE_JOBS, n_days=n_days, seed=7
        )
        gen = WorkloadGenerator(cfg)
        gen.templates  # build the workload model outside the traced region

        def drain():
            total = 0
            for day in gen.generate_stream():
                total += int(np.sum(characterizer.labels_from_trace(day) >= 0))
            return total

        totals[n_days], peaks[n_days] = peak_memory_bytes(drain)
    assert totals[120] > 3 * totals[30]  # 4x the days really is ~4x the jobs
    ratio = peaks[120] / peaks[30]
    results["peak_independence"] = {
        "jobs_short": totals[30],
        "jobs_long": totals[120],
        "peak_short_bytes": peaks[30],
        "peak_long_bytes": peaks[120],
        "peak_ratio": ratio,
    }
    # hard bound regardless of ratcheting: the pipeline peaks at O(day),
    # so the job count must not show up in the peak at all
    assert ratio < PEAK_RATIO_CAP


def test_million_job_streaming_smoke(results):
    """10^6 jobs end to end without ever holding the trace in one piece."""
    cfg = WorkloadConfig(scale=1_000_000 / FULL_SCALE_JOBS, n_days=122, seed=2024)
    gen = WorkloadGenerator(cfg)
    characterizer = JobCharacterizer()

    import time

    t0 = time.perf_counter()
    db = None
    generated = 0
    for day in gen.generate_stream():
        db = load_trace_into_db(day, db)
        generated += len(day)
    ingest_s = time.perf_counter() - t0

    fetcher = DataFetcher(db)
    st = db.table("jobs").column("submit_time")
    lo, hi = float(st[0]), float(st[-1]) + 1.0
    t0 = time.perf_counter()
    total, counts = _characterize_stream(fetcher, characterizer, lo, hi)
    characterize_s = time.perf_counter() - t0
    assert total == generated >= 1_000_000
    assert counts.min() > 0

    results["million_job_smoke"] = {
        "n_jobs": total,
        "ingest_s": ingest_s,
        "fetch_characterize_s": characterize_s,
        "jobs_per_s": throughput(total, characterize_s),
        "class_counts": [int(c) for c in counts],
    }


def test_partitioned_sweep(results, ratchet_db):
    """SegmentedTable: week-wide submit-time segments, full-range scan."""
    db, n_jobs, lo, hi = ratchet_db
    numeric = [
        ColumnDef(n, ColumnType.INTEGER if n.endswith("_id") else ColumnType.REAL)
        for n in NUMERIC_COLUMNS
    ]
    strings = [ColumnDef(n, ColumnType.TEXT) for n in STRING_COLUMNS]
    st = SegmentedTable(
        TableSchema("jobs_by_week", numeric + strings), "submit_time", 7 * DAY_SECONDS
    )
    source = db.table("jobs")

    import time

    t0 = time.perf_counter()
    for batch in source.scan_batches("submit_time", batch_rows=BATCH_ROWS):
        st.insert_columns({n: batch.column(n) for n in batch.column_names})
    ingest_s = time.perf_counter() - t0
    assert len(st) == n_jobs

    characterizer = JobCharacterizer()
    t0 = time.perf_counter()
    total = 0
    for batch in st.scan_batches(lo, hi, batch_rows=BATCH_ROWS):
        total += len(characterizer.labels_from_result(batch))
    scan_s = time.perf_counter() - t0
    assert total == n_jobs

    results["partitioned_100k"] = {
        "n_jobs": n_jobs,
        "n_segments": len(st.segment_ids),
        "ingest_s": ingest_s,
        "scan_characterize_s": scan_s,
        "jobs_per_s": throughput(n_jobs, scan_s),
    }


def test_write_bench_json(results):
    """Write the trajectory file; ratchet the ratios when asked to.

    Runs last (pytest executes this module top to bottom), after every
    section above has filled in its measurements.
    """
    for section in (
        "fetch_characterize_100k",
        "peak_independence",
        "million_job_smoke",
        "partitioned_100k",
    ):
        assert section in results, f"bench section {section!r} did not run"

    baseline = None
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text())
    BENCH_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    if not os.environ.get("REPRO_PERF_RATCHET"):
        return
    speedup = results["fetch_characterize_100k"]["streaming_speedup"]
    peak_ratio = results["peak_independence"]["peak_ratio"]
    failures = []
    if speedup < STREAM_SPEEDUP_FLOOR:
        failures.append(
            f"streaming fetch+characterize speedup {speedup:.2f}x < "
            f"floor {STREAM_SPEEDUP_FLOOR}x"
        )
    if peak_ratio > PEAK_RATIO_CAP:
        failures.append(
            f"peak-memory ratio {peak_ratio:.2f}x > cap {PEAK_RATIO_CAP}x: "
            "the streaming pipeline's peak scales with the job count"
        )
    if baseline and "fetch_characterize_100k" in baseline:
        old = baseline["fetch_characterize_100k"].get("streaming_speedup")
        if old and speedup < RATCHET_TOLERANCE * old:
            failures.append(
                f"streaming speedup regressed {speedup:.2f}x < "
                f"{RATCHET_TOLERANCE:.0%} of baseline {old:.2f}x"
            )
    assert not failures, "; ".join(failures)
