"""F3 — Figure 3: the collective Roofline model of the job data.

Paper reading: operational intensity heavily skewed below the ridge point;
most jobs far below the ceilings with a few well-engineered clusters close
to them.  Benchmarks the full characterize-and-summarize pass.
"""

from repro.analysis.roofline_plots import fig3_scatter_summary
from repro.evaluation.reporting import ascii_heatmap


def test_fig3_collective_roofline(benchmark, trace, characterizer):
    summary = benchmark(fig3_scatter_summary, trace, characterizer)

    print()
    print(ascii_heatmap(
        summary.counts,
        label="Fig 3 - job density on (op intensity, performance), log axes",
    ))
    print(f"Fig 3 - {summary.n_jobs:,} jobs on the roofline plane")
    print(f"  memory-bound share      : {summary.frac_memory_bound:.1%} (paper: 77.5%)")
    print(f"  median op intensity     : {summary.median_op:.3f} Flops/Byte (ridge 3.30)")
    print(f"  >=50% of attainable perf: {summary.frac_near_ceiling:.1%}")
    print(f"  >=10% of attainable perf: {summary.frac_within_decade_of_ceiling:.1%}")

    # skew toward memory-bound
    assert summary.frac_memory_bound > 0.6
    assert summary.median_op < characterizer.ridge_point

    # "many jobs are far from the Roofline": the majority do not reach half
    # of the attainable performance, but a visible well-engineered cluster
    # does exist
    assert summary.frac_near_ceiling < 0.5
    assert summary.frac_near_ceiling > 0.01

    # histogram covers the population
    assert summary.counts.sum() == summary.n_jobs
