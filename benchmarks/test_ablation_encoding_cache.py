"""Ablation — reusing encodings across workflow triggers (§V-A).

The paper saves job characterizations and encodings from every workflow
trigger so later retrainings skip redundant computation.  Our embedder
memoizes per unique feature string, which exploits the same structure
(batches of identical jobs).  This ablation quantifies the speedup.
"""

import numpy as np

from repro.core.feature_encoder import FeatureEncoder
from repro.evaluation.reporting import format_table
from repro.evaluation.timing import time_call
from repro.nlp.embedder import SentenceEmbedder


def test_ablation_encoding_cache(benchmark, trace):
    n = min(8000, len(trace))
    sample = trace.select(np.arange(n))

    cold = FeatureEncoder(embedder=SentenceEmbedder(dim=384, cache_size=0))
    warm = FeatureEncoder(embedder=SentenceEmbedder(dim=384, cache_size=500_000))

    X_cold, t_cold = time_call(cold.encode_trace, sample)
    X_first, t_first = time_call(warm.encode_trace, sample)   # fills the cache
    X_second, t_second = time_call(warm.encode_trace, sample)  # pure hits

    strings = warm.feature_strings_from_trace(sample)
    n_unique = len(set(strings))

    print()
    print(format_table(
        ["configuration", "encode time", "us/job"],
        [
            ["no cache", f"{t_cold:.2f} s", f"{t_cold / n * 1e6:.0f}"],
            ["cache, first trigger", f"{t_first:.2f} s", f"{t_first / n * 1e6:.0f}"],
            ["cache, later trigger", f"{t_second:.3f} s", f"{t_second / n * 1e6:.1f}"],
        ],
        title=f"Ablation: encoding cache ({n:,} jobs, {n_unique:,} unique strings)",
    ))
    print(f"duplication factor: {n / n_unique:.1f} jobs per unique string")

    # correctness: caching never changes the vectors
    assert np.allclose(X_cold, X_first)
    assert np.array_equal(X_first, X_second)

    # the whole point: batches of identical jobs make later triggers cheap
    assert n_unique < n
    assert t_second < t_first
    assert t_first < t_cold * 1.5  # first pass already benefits from duplicates

    benchmark(warm.encode_trace, sample)
