"""Extension — §VI: dispatching strategies fed by MCBound predictions.

The paper's closing direction: job dispatchers that use the predictions
to optimize throughput and energy.  This bench replays a week of the
bench trace under user / mcbound / oracle frequency policies (plus
co-scheduling) and asserts the value chain: oracle ≥ mcbound ≥ user, with
mcbound recovering most of the oracle's saving at ~90% accuracy.
"""

import numpy as np

from repro.dispatch import simulate_dispatch
from repro.evaluation.reporting import format_table
from repro.fugaku.workload import DAY_SECONDS


def test_extension_dispatch(benchmark, trace, labels, strict):
    week_mask = (trace["submit_time"] >= 69 * DAY_SECONDS) & (
        trace["submit_time"] < 76 * DAY_SECONDS
    )
    week = trace.select(week_mask)
    truth = labels[week_mask]

    # a 90%-accurate classifier stand-in (the sweeps' models hit ~0.9 F1)
    rng = np.random.default_rng(7)
    predicted = truth.copy()
    flip = rng.random(len(truth)) < 0.10
    predicted[flip] = 1 - predicted[flip]

    n_nodes = int(np.percentile(week["nodes_alloc"], 99)) * 6
    user = simulate_dispatch(week, truth, n_nodes=n_nodes)
    mcb = simulate_dispatch(
        week, truth, n_nodes=n_nodes,
        frequency_source="mcbound", predicted_labels=predicted,
    )
    oracle = simulate_dispatch(week, truth, n_nodes=n_nodes, frequency_source="oracle")
    cosched = simulate_dispatch(
        week, truth, n_nodes=n_nodes,
        frequency_source="mcbound", predicted_labels=predicted, coschedule=True,
    )

    print()
    print(format_table(
        ["policy", "jobs", "makespan", "mean wait", "energy", "node time", "cosched"],
        [
            user.summary_row("user"),
            mcb.summary_row("mcbound"),
            oracle.summary_row("oracle"),
            cosched.summary_row("mcbound+cosched"),
        ],
        title=f"Extension: one week of dispatch on {n_nodes} nodes "
              f"({len(week):,} jobs)",
    ))

    # everyone completes the same workload
    assert user.n_jobs == mcb.n_jobs == oracle.n_jobs == len(week)

    # the value chain: oracle <= mcbound <= user on energy
    assert oracle.total_energy_gj <= mcb.total_energy_gj <= user.total_energy_gj

    if strict:
        saved_possible = user.total_energy_gj - oracle.total_energy_gj
        saved_actual = user.total_energy_gj - mcb.total_energy_gj
        assert saved_possible > 0
        # ~90% accuracy recovers well over half of the attainable saving
        assert saved_actual >= 0.6 * saved_possible

    benchmark.pedantic(
        lambda: simulate_dispatch(
            week, truth, n_nodes=n_nodes,
            frequency_source="mcbound", predicted_labels=predicted,
        ),
        rounds=1, iterations=1,
    )
