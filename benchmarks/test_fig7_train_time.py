"""F7 — Figure 7: average daily training time vs α (β=1).

Paper reading: KNN training is near zero at every α (it only stores the
data); RF training grows with the window size, but its best prediction is
already reached at α=15 where training is cheapest.
"""

from repro.core.classification_model import ClassificationModel
from repro.evaluation.experiments import PAPER_ALPHAS
from repro.evaluation.reporting import format_table


def test_fig7_training_time(benchmark, evaluator, knn_grid, rf_grid, knn_spec, strict):
    rows = []
    for a in PAPER_ALPHAS:
        rows.append([
            a,
            f"{knn_grid[(a, 1)].mean_train_time * 1e3:.1f} ms",
            f"{rf_grid[(a, 1)].mean_train_time:.2f} s",
        ])
    print()
    print(format_table(
        ["alpha", "KNN train/trigger", "RF train/trigger"],
        rows,
        title="Fig 7 - average model training time (beta=1)",
    ))
    print("paper: KNN <= 0.32 s at alpha=60; RF 26 s (alpha=15) to ~3 min (alpha=60)")

    knn_t = [knn_grid[(a, 1)].mean_train_time for a in PAPER_ALPHAS]
    rf_t = [rf_grid[(a, 1)].mean_train_time for a in PAPER_ALPHAS]

    # KNN training is (almost) free: storing the data
    assert max(knn_t) < 1.0
    # RF training dominates KNN by a wide margin at every alpha
    assert all(r > 5 * k for r, k in zip(rf_t, knn_t))
    if strict:
        # RF training time grows with the window
        assert rf_t[-1] > 1.5 * rf_t[0]
        assert rf_t == sorted(rf_t) or rf_t[-1] > rf_t[0]

    # measure a single KNN "training" (the near-zero bar of the figure)
    idx = evaluator._training_indices(evaluator.test_start_day, 60)
    X, y = evaluator.X[idx], evaluator.y[idx]
    benchmark(lambda: ClassificationModel("KNN", **knn_spec.params).training(X, y))
