"""Ablation — NLP sentence embedding vs classical categorical mapping.

The paper's Feature Encoder section (§III-B) names "classical categorical
mapping of feature values to integers" as the alternative its design
rejects in favour of SBERT.  This ablation quantifies why on a drifting
workload: the categorical encoder cannot place *unseen* feature values
(new job templates appear daily), while the hashed n-gram embedding
generalizes through string similarity.
"""

import numpy as np

from repro.core.categorical_encoder import CategoricalEncoder
from repro.core.feature_encoder import FeatureEncoder
from repro.evaluation.reporting import format_table
from repro.fugaku.workload import DAY_SECONDS
from repro.mlcore.knn import KNeighborsClassifier
from repro.mlcore.metrics import f1_macro
from repro.nlp.embedder import SentenceEmbedder


def test_ablation_encoder_kind(benchmark, trace, labels):
    train_mask = (trace["submit_time"] >= 32 * DAY_SECONDS) & (
        trace["submit_time"] < 62 * DAY_SECONDS
    )
    test_mask = (trace["submit_time"] >= 62 * DAY_SECONDS) & (
        trace["submit_time"] < 66 * DAY_SECONDS
    )
    train, test = trace.select(train_mask), trace.select(test_mask)
    y_train, y_test = labels[train_mask], labels[test_mask]
    train_records = [r.as_dict() for r in train.iter_rows()]
    test_records = [r.as_dict() for r in test.iter_rows()]

    results = {}

    nlp = FeatureEncoder(embedder=SentenceEmbedder(dim=384))
    Xtr, Xte = nlp.encode_trace(train), nlp.encode_trace(test)
    knn = KNeighborsClassifier(5, algorithm="brute").fit(Xtr, y_train)
    results["NLP embedding (paper)"] = f1_macro(y_test, knn.predict(Xte))

    for mode in ("ordinal", "onehot"):
        cat = CategoricalEncoder(mode=mode).fit(train_records)
        Xtr_c = cat.encode(train_records).astype(np.float64)
        Xte_c = cat.encode(test_records).astype(np.float64)
        knn_c = KNeighborsClassifier(5, algorithm="brute").fit(Xtr_c, y_train)
        results[f"categorical {mode}"] = f1_macro(y_test, knn_c.predict(Xte_c))

    unknown = CategoricalEncoder().fit(train_records).unknown_rate(test_records)

    print()
    print(format_table(
        ["encoder", "4-day F1 (KNN)"],
        [[k, round(v, 4)] for k, v in results.items()],
        title="Ablation: encoder kind (SBERT role vs categorical mapping)",
    ))
    print(f"unseen feature values in the test window: {unknown:.1%}")

    # new templates do appear in the test window...
    assert unknown > 0.0
    # ...and the NLP encoding handles them at least as well as categorical
    assert results["NLP embedding (paper)"] >= max(
        results["categorical ordinal"], results["categorical onehot"]
    ) - 0.01

    benchmark(nlp.encode_trace, test)
