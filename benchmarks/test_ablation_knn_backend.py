"""Ablation — brute-force vs KD-tree k-NN backends.

In the 384-dimensional embedding space brute force with BLAS is the right
choice (the curse of dimensionality empties KD-tree pruning); in low
dimension the KD-tree wins.  This ablation documents both regimes and
checks the two backends agree exactly.
"""

import numpy as np

from repro.evaluation.reporting import format_table
from repro.evaluation.timing import time_call
from repro.mlcore.knn import KNeighborsClassifier


def test_ablation_knn_backend(benchmark, evaluator):
    idx = evaluator._training_indices(evaluator.test_start_day, 15)
    day = evaluator._day_indices[evaluator.test_start_day]
    X, y = evaluator.X[idx], evaluator.y[idx]
    Q = evaluator.X[day][:128]

    # full 384-d embeddings: brute force is the practical backend
    brute = KNeighborsClassifier(5, algorithm="brute").fit(X, y)
    _, t_brute = time_call(brute.predict, Q)

    # low-dimensional regime: first 8 embedding dims
    Xl, Ql = X[:, :8].astype(np.float64), Q[:, :8].astype(np.float64)
    brute_low = KNeighborsClassifier(5, algorithm="brute").fit(Xl, y)
    tree_low = KNeighborsClassifier(5, algorithm="kd_tree").fit(Xl, y)
    pb, t_brute_low = time_call(brute_low.predict, Ql)
    pt, t_tree_low = time_call(tree_low.predict, Ql)

    print()
    print(format_table(
        ["backend", "dim", "predict 128 queries"],
        [
            ["brute (BLAS)", 384, f"{t_brute * 1e3:.1f} ms"],
            ["brute (BLAS)", 8, f"{t_brute_low * 1e3:.1f} ms"],
            ["kd_tree", 8, f"{t_tree_low * 1e3:.1f} ms"],
        ],
        title="Ablation: k-NN backend",
    ))

    # exactness: identical neighbour DISTANCES in the shared regime.
    # (Predicted labels may differ: embeddings of identical feature strings
    # are exact duplicates, so neighbour sets at tied distances are not
    # unique and the two backends may break ties differently.)
    db_low, _ = brute_low.kneighbors(Ql)
    dt_low, _ = tree_low.kneighbors(Ql)
    assert np.allclose(db_low, dt_low, atol=1e-9)

    # 'auto' picks sensibly
    assert KNeighborsClassifier(5, algorithm="auto").fit(X, y)._backend == "brute"
    assert KNeighborsClassifier(5, algorithm="auto").fit(Xl, y)._backend == "kd_tree"

    benchmark(brute.predict, Q)
