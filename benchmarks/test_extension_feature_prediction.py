"""Extension — §VI: KNN regression of duration and power at submission time.

Not a paper figure; validates the future-work direction the paper names:
the same similar-jobs search predicts continuous features usefully better
than a global-mean baseline.
"""

import numpy as np

from repro.core import JobFeaturePredictor
from repro.evaluation.reporting import format_table
from repro.fugaku.workload import DAY_SECONDS


def test_extension_feature_prediction(benchmark, trace):
    train = trace.between(32 * DAY_SECONDS, 62 * DAY_SECONDS)
    test = trace.between(62 * DAY_SECONDS, 63 * DAY_SECONDS)
    train_records = [r.as_dict() for r in train.iter_rows()]
    test_records = [r.as_dict() for r in test.iter_rows()]

    rows = []
    improvements = {}
    for target in ("duration", "power_avg_w"):
        predictor = JobFeaturePredictor(target, weights="distance")
        predictor.training(train_records)
        y_true = np.array([r[target] for r in test_records])
        y_pred = predictor.inference(test_records)
        baseline = np.full_like(y_true, np.mean([r[target] for r in train_records]))
        err_model = predictor.median_relative_error(y_true, y_pred)
        err_base = predictor.median_relative_error(y_true, baseline)
        improvements[target] = (err_model, err_base)
        rows.append([target, f"{err_model:.1%}", f"{err_base:.1%}"])

    print()
    print(format_table(
        ["target", "KNN med.rel.err", "global-mean med.rel.err"],
        rows,
        title="Extension: pre-execution feature prediction",
    ))

    for target, (model_err, base_err) in improvements.items():
        assert model_err < base_err, f"{target}: KNN no better than the mean"
    # power is strongly template-determined; the error should be small
    assert improvements["power_avg_w"][0] < 0.4

    predictor = JobFeaturePredictor("duration").training(train_records)
    benchmark(predictor.inference, test_records)
