"""F2 — Figure 2: job submission distribution over time.

Uniform submission rate (with weekly modulation) plus the early-February
maintenance shutdown.  Benchmarks the per-day aggregation over the full
trace.
"""

import numpy as np

from repro.analysis.distributions import detect_maintenance_gap, jobs_per_day
from repro.evaluation.reporting import ascii_series
from repro.fugaku.workload import APR_1, FEB_1, WorkloadConfig


def test_fig2_submission_distribution(benchmark, trace):
    days, counts = benchmark(jobs_per_day, trace, APR_1)

    print()
    print(ascii_series(days.tolist(), counts, label="Fig 2 - submissions/day"))
    gap = detect_maintenance_gap(counts)
    print(f"maintenance days detected: {gap}")

    # volume and span
    assert counts.sum() == len(trace)
    assert counts[:FEB_1].min() > 0  # continuous submissions before February

    # the scheduled maintenance dip (paper: a few days in early February)
    lo, hi = WorkloadConfig().maintenance_days
    assert set(range(lo, hi)) <= set(gap)
    assert FEB_1 <= lo < hi <= FEB_1 + 10

    # otherwise roughly uniform: non-maintenance days stay within a factor
    # ~4 band around the median
    normal = np.delete(counts, np.arange(lo, hi))
    med = np.median(normal)
    assert np.mean((normal > med / 4) & (normal < med * 4)) > 0.95
