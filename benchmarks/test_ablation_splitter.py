"""Ablation — exact vs histogram tree splitter.

The reproduction adds a quantized-histogram splitter for the heavy
retraining loads; this ablation verifies it is a faithful substitute:
comparable F1 on the real encoded workload at (much) lower or equal cost.
"""

from repro.core.classification_model import ClassificationModel
from repro.evaluation.reporting import format_table
from repro.evaluation.timing import time_call
from repro.mlcore.metrics import f1_macro


def _fit_score(evaluator, splitter, n_estimators=15):
    idx = evaluator._training_indices(evaluator.test_start_day, 15)
    day = evaluator._day_indices[evaluator.test_start_day]
    model = ClassificationModel(
        "RF", n_estimators=n_estimators, max_depth=14,
        splitter=splitter, random_state=0,
    )
    _, fit_s = time_call(model.training, evaluator.X[idx], evaluator.y[idx])
    pred = model.inference(evaluator.X[day])
    return f1_macro(evaluator.y[day], pred), fit_s


def test_ablation_splitter(benchmark, evaluator):
    f1_exact, t_exact = _fit_score(evaluator, "exact")
    f1_hist, t_hist = _fit_score(evaluator, "hist")

    print()
    print(format_table(
        ["splitter", "day-1 F1", "fit time"],
        [["exact", round(f1_exact, 4), f"{t_exact:.2f} s"],
         ["hist", round(f1_hist, 4), f"{t_hist:.2f} s"]],
        title="Ablation: RF split finder (alpha=15 window)",
    ))

    # the histogram splitter must not lose meaningful accuracy
    assert abs(f1_exact - f1_hist) < 0.05
    assert f1_hist > 0.7

    # benchmark the hist fit (the configuration the sweeps use)
    idx = evaluator._training_indices(evaluator.test_start_day, 15)
    X, y = evaluator.X[idx], evaluator.y[idx]
    benchmark.pedantic(
        lambda: ClassificationModel(
            "RF", n_estimators=15, max_depth=14, splitter="hist", random_state=0
        ).training(X, y),
        rounds=1, iterations=1,
    )
