"""Staticcheck engine throughput: cold vs warm cache, flow tier on/off.

Not a paper figure — operational context for the correctness tooling:
the linter runs on every CI push and inside the tier-1 gate, so its
cold-parse cost, its warm-cache speedup and the marginal price of the
flow-sensitive tier (CFG construction + fixpoints, PR 5) are worth
tracking release over release.  The project is synthetic so the numbers
measure the engine, not the repo's current line count.
"""

import pytest

from repro.staticcheck import check_paths, resolve_rules

#: The flow-sensitive tier (PR 5); ignoring these skips CFG + fixpoint work.
FLOW_RULES = ("unit-mismatch", "resource-leak", "double-release")

NUM_FILES = 24

MODULE = '''\
"""Synthetic module {i}: annotated roofline math plus resource churn."""


def _perf_{i}(flops, duration, nodes):  # unit: flops=flops, duration=s, nodes=1 -> gflops/s
    total = flops / 1e9
    for _ in range(4):
        total = total + flops / 1e9
    if total > flops / 1e9:
        total = total / 2
    return total / (duration * nodes)


def _churn_{i}(path):
    fh = open(path)
    try:
        data = fh.read()
    finally:
        fh.close()
    with open(path) as again:
        data += again.read()
    return data
'''


@pytest.fixture(scope="module")
def project(tmp_path_factory):
    pkg = tmp_path_factory.mktemp("staticcheck_bench") / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for i in range(NUM_FILES):
        (pkg / f"mod_{i}.py").write_text(MODULE.format(i=i))
    return pkg


def _check(project, cache, rules):
    result = check_paths([project], cache_path=cache, rules=rules)
    assert result.files_checked == NUM_FILES + 1
    assert result.findings == []
    return result


def test_cold_run_all_rules(benchmark, project, tmp_path):
    """Cold parse + full rule set including the flow tier."""
    counter = iter(range(10**6))

    def setup():
        return (project, tmp_path / f"cold-{next(counter)}.json", resolve_rules()), {}

    benchmark.pedantic(_check, setup=setup, rounds=5)


def test_cold_run_without_flow_tier(benchmark, project, tmp_path):
    """Cold parse with the flow tier off — the delta to the benchmark
    above is what CFG construction and the fixpoints cost."""
    rules = resolve_rules(ignore=list(FLOW_RULES))
    counter = iter(range(10**6))

    def setup():
        return (project, tmp_path / f"noflow-{next(counter)}.json", rules), {}

    benchmark.pedantic(_check, setup=setup, rounds=5)


def test_warm_run_all_rules(benchmark, project, tmp_path):
    """Fully-warm cache: every file served without re-analysis, so the
    flow tier costs nothing (its results live in the cached entries)."""
    cache = tmp_path / "warm.json"
    _check(project, cache, resolve_rules())  # prime
    result = benchmark(_check, project, cache, resolve_rules())
    assert result.stats.cache_hits == NUM_FILES + 1
    assert result.stats.flow_cfgs == 0


def test_warm_run_one_dirty_file(benchmark, project, tmp_path):
    """Steady-state developer loop: one edited file, the rest cached."""
    cache = tmp_path / "dirty.json"
    _check(project, cache, resolve_rules())  # prime
    dirty = project / "mod_0.py"
    text = dirty.read_text()
    edits = iter(range(10**6))

    def edit_then_check():
        dirty.write_text(f"{text}\n# edit {next(edits)}\n")
        result = _check(project, cache, resolve_rules())
        assert result.stats.cache_misses == 1
        return result

    try:
        benchmark(edit_then_check)
    finally:
        dirty.write_text(text)
