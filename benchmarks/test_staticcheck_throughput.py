"""Staticcheck engine throughput: the BENCH_staticcheck.json perf trajectory.

Not a paper figure — operational context for the correctness tooling:
the linter runs on every CI push and inside the tier-1 gate, so its
cold-parse cost, its warm-cache speedup, and the marginal price of the
flow tier (PR 5: CFGs + fixpoints), the perf tier (hot-path derivation +
array fixpoints) and the capacity tier (scale-lattice fixpoints +
streaming-contract) are worth tracking release over release.
The project is synthetic so the numbers measure the engine, not the
repo's current line count; every run rewrites ``BENCH_staticcheck.json``
at the repo root as the second committed trajectory next to
``BENCH_mlcore.json``.

Ratcheting: absolute wall times vary across machines, so the committed
baseline is ratcheted on *ratios measured within one run* — the
warm-cache speedup, and the cold/warm overhead of each analysis tier
relative to the same engine with that tier's rules ignored.  With
``REPRO_PERF_RATCHET=1`` (the CI benchmark job) the final test fails if
the warm-cache speedup drops below its hard floor, if a warm-run tier
overhead leaves its hard band (the cache stores findings, so a warm run
must get both tiers for ~free), or if the warm speedup regresses more
than 40% relative to the committed baseline.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path

import pytest

from benchmarks._perf import best_time, throughput
from repro.staticcheck import check_paths, resolve_rules
from repro.staticcheck.registry import resolve_project_rules

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_staticcheck.json"

#: The flow-sensitive tier (PR 5); ignoring these skips CFG + fixpoint work.
FLOW_RULES = ("unit-mismatch", "resource-leak", "double-release")
#: The perf tier (this PR); ignoring these skips hot-path derivation and
#: the shape/dtype array fixpoints.
PERF_RULES = (
    "dtype-upcast",
    "dtype-narrowing",
    "broadcast-mismatch",
    "scalar-loop",
    "per-item-call",
    "loop-alloc",
    "quadratic-growth",
    "hidden-copy",
)
#: The procs tier (this PR): project rules over the process model.  The
#: per-file facts walk is part of summary building (cold-only, cached);
#: what ignoring these skips is the every-invocation project-rule pass,
#: which is exactly what the warm overhead column isolates.
PROCS_RULES = (
    "fork-unsafe-inheritance",
    "boundary-escape",
    "sharedmem-protocol",
    "child-global-divergence",
    "blocking-in-worker",
)
#: The capacity tier (this PR): scale-lattice fixpoints over ``# scale:``
#: annotations, plus the streaming-contract project rule.  Ignoring the
#: file rules skips the per-file scale fixpoints; ignoring the project
#: rule skips the every-invocation streaming-contract pass.
CAPACITY_RULES = (
    "full-materialization",
    "unbounded-accumulation",
    "scale-amplification",
    "rowwise-loop",
)
#: The sysmodel tier (this PR): spec-literal dimension checks per file,
#: plus the three cross-module contract/leak/dispatch project rules.
#: Per-file sysmodel facts are cold-only summary work; the warm overhead
#: column isolates the every-invocation project-rule pass.
SYSMODEL_RULES = (
    "sysmodel-dimension",
    "sysmodel-contract",
    "system-constant-leak",
    "system-dispatch",
)

NUM_FILES = 24

#: hard floor: a fully-warm cache must be at least this much faster than
#: a cold run of the same rule set
WARM_SPEEDUP_FLOOR = 3.0
#: hard band: a warm run with a tier's rules enabled may cost at most
#: this factor over a warm run with them ignored — cached entries hold
#: the findings, so re-enabling a tier must not redo its analysis
WARM_TIER_OVERHEAD_CAP = 1.25
#: the warm speedup may regress at most 40% vs the committed baseline
#: (ratio-of-wall-times wobbles more than the mlcore speedup ratios)
RATCHET_TOLERANCE = 0.60

MODULE = '''\
"""Synthetic module {i}: roofline math, resource churn, numpy hot path."""

import numpy as np


def _perf_{i}(flops, duration, nodes):  # unit: flops=flops, duration=s, nodes=1 -> gflops/s
    total = flops / 1e9
    for _ in range(4):
        total = total + flops / 1e9
    if total > flops / 1e9:
        total = total / 2
    return total / (duration * nodes)


def _churn_{i}(path):
    fh = open(path)
    try:
        data = fh.read()
    finally:
        fh.close()
    with open(path) as again:
        data += again.read()
    return data


def _predict_{i}(X, w):  # hotpath: synthetic serve path, keeps the perf tier busy
    scores = X @ w
    probs = 1.0 / (1.0 + np.exp(-scores))
    labels = probs > 0.5
    return np.where(labels, probs, 1.0 - probs)


def _scale_{i}(n):
    base = np.zeros((n, 4), dtype=np.float32)
    return base * np.float32(0.5)


def _drain_{i}(batches):
    # streaming: synthetic capacity-tier workload; stays clean
    # scale: batches=batch -> bounded
    total = 0
    for chunk in batches:
        total = total + len(chunk)
    return total


_SPEC_{i} = MachineSpec(
    name="bench{i}",
    peak_gflops_node=100.0,
    peak_membw_gbs=50.0,
    frequencies_ghz=(2.0, 2.2),
)
'''


@pytest.fixture(scope="module")
def project(tmp_path_factory):
    pkg = tmp_path_factory.mktemp("staticcheck_bench") / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for i in range(NUM_FILES):
        (pkg / f"mod_{i}.py").write_text(MODULE.format(i=i))
    return pkg


@pytest.fixture(scope="module")
def results():
    return {
        "meta": {
            "num_files": NUM_FILES + 1,
            "flow_rules": list(FLOW_RULES),
            "perf_rules": list(PERF_RULES),
            "procs_rules": list(PROCS_RULES),
            "capacity_rules": list(CAPACITY_RULES),
            "sysmodel_rules": list(SYSMODEL_RULES),
        }
    }


def _check(project, cache, rules, project_rules=None):
    result = check_paths(
        [project], cache_path=cache, rules=rules, project_rules=project_rules
    )
    assert result.files_checked == NUM_FILES + 1
    assert result.findings == []
    return result


def _cold_time(project, tmp_path, rules, tag):
    """Best-of-N cold runs, each against a never-seen cache path."""
    counter = itertools.count()

    def run():
        _check(project, tmp_path / f"{tag}-{next(counter)}.json", rules)

    return best_time(run, repeats=5, warmup=1)


def test_cold_runs(results, project, tmp_path):
    all_rules = resolve_rules()
    results["cold"] = {
        "all_s": _cold_time(project, tmp_path, all_rules, "all"),
        "no_flow_s": _cold_time(
            project, tmp_path, resolve_rules(ignore=list(FLOW_RULES)), "noflow"
        ),
        "no_perf_s": _cold_time(
            project, tmp_path, resolve_rules(ignore=list(PERF_RULES)), "noperf"
        ),
    }
    results["cold"]["files_per_s"] = throughput(
        NUM_FILES + 1, results["cold"]["all_s"]
    )


def test_warm_runs(results, project, tmp_path):
    """Fully-warm cache: every file served without re-analysis, so both
    tiers cost ~nothing (their findings live in the cached entries)."""
    caches = {
        "all": (tmp_path / "warm-all.json", resolve_rules(), None),
        "no_perf": (
            tmp_path / "warm-noperf.json",
            resolve_rules(ignore=list(PERF_RULES)),
            None,
        ),
        "no_procs": (
            tmp_path / "warm-noprocs.json",
            resolve_rules(),
            resolve_project_rules(ignore=list(PROCS_RULES)),
        ),
        "no_capacity": (
            tmp_path / "warm-nocap.json",
            resolve_rules(ignore=list(CAPACITY_RULES)),
            resolve_project_rules(ignore=["streaming-contract"]),
        ),
        "no_sysmodel": (
            tmp_path / "warm-nosys.json",
            resolve_rules(ignore=["sysmodel-dimension"]),
            resolve_project_rules(
                ignore=["sysmodel-contract", "system-constant-leak", "system-dispatch"]
            ),
        ),
    }
    warm = {}
    for tag, (cache, rules, project_rules) in caches.items():
        _check(project, cache, rules, project_rules)  # prime
        warm[tag] = best_time(
            lambda: _check(project, cache, rules, project_rules)
        )
        result = _check(project, cache, rules, project_rules)
        assert result.stats.cache_hits == NUM_FILES + 1
        assert result.stats.flow_cfgs == 0
        assert result.stats.perf_hot_functions == 0
        assert result.stats.perf_array_fixpoints == 0
        assert result.stats.procs_boundaries == 0
        assert result.stats.capacity_fixpoints == 0
        assert result.stats.sysmodel_classes == 0
        assert result.stats.sysmodel_specs == 0
    results["warm"] = {
        "all_s": warm["all"],
        "no_perf_s": warm["no_perf"],
        "no_procs_s": warm["no_procs"],
        "no_capacity_s": warm["no_capacity"],
        "no_sysmodel_s": warm["no_sysmodel"],
        "files_per_s": throughput(NUM_FILES + 1, warm["all"]),
    }


def test_one_dirty_file(results, project, tmp_path):
    """Steady-state developer loop: one edited file, the rest cached."""
    cache = tmp_path / "dirty.json"
    rules = resolve_rules()
    _check(project, cache, rules)  # prime
    dirty = project / "mod_0.py"
    text = dirty.read_text()
    edits = itertools.count()

    def edit_then_check():
        dirty.write_text(f"{text}\n# edit {next(edits)}\n")
        result = _check(project, cache, rules)
        assert result.stats.cache_misses == 1

    try:
        results["dirty_one_file_s"] = best_time(edit_then_check)
    finally:
        dirty.write_text(text)


def test_write_bench_json(results):
    """Write the trajectory file; ratchet the ratios when asked to.

    Runs last (pytest executes this module top to bottom), after every
    section above has filled in its measurements.
    """
    for section in ("cold", "warm", "dirty_one_file_s"):
        assert section in results, f"bench section {section!r} did not run"

    cold, warm = results["cold"], results["warm"]
    ratios = {
        "warm_speedup": cold["all_s"] / warm["all_s"],
        "flow_cold_overhead": cold["all_s"] / cold["no_flow_s"],
        "perf_cold_overhead": cold["all_s"] / cold["no_perf_s"],
        "perf_warm_overhead": warm["all_s"] / warm["no_perf_s"],
        "procs_warm_overhead": warm["all_s"] / warm["no_procs_s"],
        "capacity_warm_overhead": warm["all_s"] / warm["no_capacity_s"],
        "sysmodel_warm_overhead": warm["all_s"] / warm["no_sysmodel_s"],
    }
    results["ratios"] = ratios

    baseline = None
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text())
    BENCH_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    if not os.environ.get("REPRO_PERF_RATCHET"):
        return
    failures = []
    if ratios["warm_speedup"] < WARM_SPEEDUP_FLOOR:
        failures.append(
            f"warm-cache speedup {ratios['warm_speedup']:.2f}x < "
            f"floor {WARM_SPEEDUP_FLOOR}x"
        )
    if ratios["perf_warm_overhead"] > WARM_TIER_OVERHEAD_CAP:
        failures.append(
            f"perf tier costs {ratios['perf_warm_overhead']:.2f}x on a warm "
            f"cache (cap {WARM_TIER_OVERHEAD_CAP}x): cached entries are "
            "being recomputed"
        )
    if ratios["procs_warm_overhead"] > WARM_TIER_OVERHEAD_CAP:
        failures.append(
            f"procs tier costs {ratios['procs_warm_overhead']:.2f}x on a "
            f"warm cache (cap {WARM_TIER_OVERHEAD_CAP}x): the project-rule "
            "pass is doing per-file work the summaries should already hold"
        )
    if ratios["capacity_warm_overhead"] > WARM_TIER_OVERHEAD_CAP:
        failures.append(
            f"capacity tier costs {ratios['capacity_warm_overhead']:.2f}x "
            f"on a warm cache (cap {WARM_TIER_OVERHEAD_CAP}x): scale "
            "fixpoints are being recomputed despite cached findings"
        )
    if ratios["sysmodel_warm_overhead"] > WARM_TIER_OVERHEAD_CAP:
        failures.append(
            f"sysmodel tier costs {ratios['sysmodel_warm_overhead']:.2f}x "
            f"on a warm cache (cap {WARM_TIER_OVERHEAD_CAP}x): the contract "
            "pass is redoing per-file work the cached summaries already hold"
        )
    if baseline and "ratios" in baseline:
        old = baseline["ratios"].get("warm_speedup")
        if old and ratios["warm_speedup"] < RATCHET_TOLERANCE * old:
            failures.append(
                f"warm speedup regressed {ratios['warm_speedup']:.2f}x < "
                f"{RATCHET_TOLERANCE:.0%} of baseline {old:.2f}x"
            )
    assert not failures, "; ".join(failures)
