"""Ablation — embedding dimensionality (96 / 192 / 384).

The paper uses the 384-d SBERT model; this ablation checks how much of
the prediction quality survives with narrower hashed embeddings (and what
encoding costs).
"""

import numpy as np

from repro.core.feature_encoder import FeatureEncoder
from repro.evaluation.reporting import format_table
from repro.evaluation.timing import time_call
from repro.fugaku.workload import DAY_SECONDS
from repro.mlcore.knn import KNeighborsClassifier
from repro.mlcore.metrics import f1_macro
from repro.nlp.embedder import SentenceEmbedder


def test_ablation_embedding_dim(benchmark, trace, labels, evaluator):
    # one train window + one test day, re-encoded at each width
    train_mask = (trace["submit_time"] >= 32 * DAY_SECONDS) & (
        trace["submit_time"] < 62 * DAY_SECONDS
    )
    test_mask = (trace["submit_time"] >= 62 * DAY_SECONDS) & (
        trace["submit_time"] < 63 * DAY_SECONDS
    )
    train = trace.select(train_mask)
    test = trace.select(test_mask)
    y_train = labels[train_mask]
    y_test = labels[test_mask]

    rows = []
    scores = {}
    for dim in (96, 192, 384):
        encoder = FeatureEncoder(embedder=SentenceEmbedder(dim=dim, cache_size=0))
        Xtr, t_enc = time_call(encoder.encode_trace, train)
        Xte = encoder.encode_trace(test)
        knn = KNeighborsClassifier(5, algorithm="brute").fit(Xtr, y_train)
        f1 = f1_macro(y_test, knn.predict(Xte))
        scores[dim] = f1
        rows.append([dim, round(f1, 4), f"{t_enc / len(train) * 1e6:.0f} us/job"])

    print()
    print(format_table(
        ["dim", "day-1 F1 (KNN)", "encode cost"],
        rows,
        title="Ablation: embedding dimensionality",
    ))

    # the paper's 384-d width should not trail far behind any narrower one
    assert scores[384] >= max(scores.values()) - 0.03
    # narrower widths lose accuracy to hash collisions, but degrade
    # gracefully rather than collapsing
    assert scores[192] > scores[384] - 0.12
    assert scores[96] > 0.55
    assert scores[96] <= scores[192] + 0.02 <= scores[384] + 0.04

    encoder = FeatureEncoder(embedder=SentenceEmbedder(dim=384, cache_size=0))
    sample = trace.select(np.arange(min(500, len(trace))))
    benchmark(encoder.encode_trace, sample)
