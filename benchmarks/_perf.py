"""Shared wall-time helpers for the throughput benches.

All durations use :func:`time.perf_counter` (monotonic, high resolution);
reported times are best-of-N to damp scheduler noise, which is the right
statistic for a ratchet (the best observed run is the least contaminated
estimate of the code's cost).
"""

from __future__ import annotations

import time
from typing import Callable


def best_time(fn: Callable[[], object], repeats: int = 5, warmup: int = 1) -> float:  # unit: repeats=1, warmup=1 -> s
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()  # unit: s
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def throughput(n_items: int, seconds: float) -> float:  # unit: n_items=1, seconds=s -> 1/s
    """Items per second; guards against a clock tick of zero."""
    return n_items / max(seconds, 1e-12)
