"""T1 — Table I: the Fugaku machine model and its derived ridge point.

Regenerates the system-description table and benchmarks the vectorized
roofline-attainable kernel the characterization pipeline rests on.
"""

import numpy as np
import pytest

from repro.evaluation.reporting import format_table
from repro.fugaku.system import FUGAKU
from repro.roofline.model import Roofline


def test_table1_system(benchmark):
    rows = [
        ["Architecture", FUGAKU.architecture],
        ["#Nodes", f"{FUGAKU.num_nodes:,}"],
        ["#Cores (per node)", f"{FUGAKU.cores_per_node} + {FUGAKU.assistant_cores_per_node} assistant"],
        ["Memory (per node)", f"HBM2, {FUGAKU.memory_gib_per_node} GiB, {FUGAKU.peak_membw_gbs:.0f} GBytes/s"],
        ["Peak Performance", f"{FUGAKU.peak_pflops_system:.0f} PFlops/s (FP64), {FUGAKU.peak_gflops_node / 1000:.2f} TFlops/s per node"],
        ["Internal Network", FUGAKU.interconnect],
        ["Ridge point", f"{FUGAKU.ridge_point:.2f} Flops/Byte (paper: ~3.3)"],
    ]
    print()
    print(format_table(["System characteristic", "Description"], rows, title="Table I"))

    assert FUGAKU.ridge_point == pytest.approx(3.30, abs=0.01)
    assert FUGAKU.num_nodes == 158_976

    rl = Roofline(FUGAKU.peak_gflops_node, FUGAKU.peak_membw_gbs)
    ops = 10 ** np.random.default_rng(0).uniform(-3, 2, size=1_000_000)
    out = benchmark(rl.attainable, ops)
    assert out.shape == ops.shape
