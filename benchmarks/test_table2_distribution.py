"""T2 — Table II: distribution of job types by frequency mode.

Paper values: memory:compute ≈ 3.44; 54.2% of memory-bound jobs run at
2.0 GHz; only 30.8% of compute-bound jobs run at 2.2 GHz.
"""

from repro.analysis.tables import table2_distribution
from repro.evaluation.reporting import format_table


def test_table2_job_type_distribution(benchmark, trace, labels, strict):
    t2 = benchmark(table2_distribution, trace, labels)

    print()
    print(format_table(
        ["Frequency", "memory-bound", "compute-bound", "Total"],
        t2.rows(),
        title="Table II - distribution of job types",
    ))
    print(f"memory:compute ratio        = {t2.memory_to_compute_ratio:.2f}  (paper 3.44)")
    print(f"memory-bound @ normal mode  = {t2.frac_memory_in_normal:.1%}  (paper 54.2%)")
    print(f"compute-bound @ boost mode  = {t2.frac_compute_in_boost:.1%}  (paper 30.8%)")

    assert t2.total == len(trace)

    # memory-bound majority, around the paper's 3.4x
    assert t2.memory_to_compute_ratio > 2.0
    if strict:
        assert 2.2 < t2.memory_to_compute_ratio < 6.5

    # the paper's mis-configuration headline: about half the memory-bound
    # jobs run in normal mode, while most compute-bound jobs do NOT use
    # boost mode
    assert 0.35 < t2.frac_memory_in_normal < 0.75
    assert t2.frac_compute_in_boost < 0.55
