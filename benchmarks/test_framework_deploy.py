"""F1* — Figure 1: the deployed framework's two workflows over the API.

Boots MCBound on the bench trace, runs a Training Workflow trigger and an
Inference Workflow trigger through the HTTP application, and benchmarks
the per-request prediction path (the paper's AD reports ~0.01 s per
endpoint round-trip).
"""

import pytest

from repro.core import MCBound, MCBoundConfig, build_app, load_trace_into_db
from repro.fugaku.workload import DAY_SECONDS, FEB_1
from repro.web import TestClient


@pytest.fixture(scope="module")
def client(trace, settings, tmp_path_factory):
    cfg = MCBoundConfig(
        algorithm="KNN",
        model_params=settings.knn_params,
        alpha_days=30.0,
        beta_days=1.0,
    )
    fw = MCBound(
        cfg,
        load_trace_into_db(trace),
        model_store_root=tmp_path_factory.mktemp("deploy_store"),
    )
    return TestClient(build_app(fw))


def test_framework_deployment(benchmark, client):
    now = FEB_1 * DAY_SECONDS

    # Training Workflow trigger
    r = client.post("/train", json_body={"now": now})
    assert r.status == 201
    summary = r.json()
    print(f"\ntraining: {summary['n_jobs']:,} jobs -> model v{summary['version']}")

    # Inference Workflow trigger over the first February day
    r = client.post(
        "/predict", json_body={"start_time": now, "end_time": now + DAY_SECONDS}
    )
    assert r.status == 200
    n_predicted = len(r.json()["labels"])
    print(f"inference: {n_predicted} submissions labelled")
    assert n_predicted > 0

    # health reflects the deployed state
    health = client.get("/health").json()
    assert health == {"status": "ok", "model_trained": True, "algorithm": "KNN"}

    # benchmark the single-job prediction round-trip (submission-time path)
    job_id = int(r.json()["job_ids"][0])
    result = benchmark(
        lambda: client.post("/predict", json_body={"job_id": job_id})
    )
    assert result.status == 200
