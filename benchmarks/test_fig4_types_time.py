"""F4 — Figure 4: distribution of job types over time.

Paper reading: the memory/compute-bound proportion is constant over the
whole period — the imbalance is a property of the workload, not of a
particular week.
"""

import numpy as np

from repro.analysis.distributions import class_share_per_day
from repro.evaluation.reporting import ascii_series
from repro.fugaku.workload import APR_1


def test_fig4_job_types_over_time(benchmark, trace, labels):
    days, mem, comp, share = benchmark(class_share_per_day, trace, labels, APR_1)

    print()
    valid = np.where(np.isnan(share), np.nanmean(share), share)
    print(ascii_series(days.tolist(), valid, label="Fig 4 - memory-bound share/day",
                       y_range=(0.0, 1.0)))

    assert (mem + comp).sum() == len(trace)

    # memory-bound majority on (nearly) every day
    ok = share[~np.isnan(share)]
    assert np.mean(ok > 0.5) > 0.9

    # proportion roughly constant in time: fortnightly means stay in a band
    fortnights = [
        np.nansum(mem[k:k + 14]) / max(1, np.nansum(mem[k:k + 14] + comp[k:k + 14]))
        for k in range(0, APR_1 - 14, 14)
    ]
    print(f"fortnightly memory-bound share: {np.round(fortnights, 3).tolist()}")
    assert max(fortnights) - min(fortnights) < 0.30
