"""Disk cache for the expensive online-evaluation sweeps.

The figure benches all consume the same α×β / α+ / θ sweeps; running them
takes tens of minutes at the default scale.  Results are cached under
``.bench_cache/`` keyed by (scale, seed, config), so re-running the bench
suite (or running a single bench) reuses completed sweeps.  Delete the
directory to force recomputation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.evaluation.online import OnlineRunResult

CACHE_DIR = Path(__file__).resolve().parent.parent / ".bench_cache"


def _key(parts: dict) -> str:
    blob = json.dumps(parts, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:20]


def _encode_alpha(alpha):
    return list(alpha) if isinstance(alpha, tuple) else alpha


def _decode_alpha(alpha):
    return tuple(alpha) if isinstance(alpha, list) else alpha


def result_to_dict(r: OnlineRunResult) -> dict:
    d = dataclasses.asdict(r)
    d["alpha"] = _encode_alpha(r.alpha)
    return d


def result_from_dict(d: dict) -> OnlineRunResult:
    return OnlineRunResult(
        model_name=d["model_name"],
        alpha=_decode_alpha(d["alpha"]),
        beta=d["beta"],
        theta=d["theta"],
        sampling=d["sampling"],
        seed=d["seed"],
        f1=d["f1"],
        accuracy=d["accuracy"],
        n_test_jobs=d["n_test_jobs"],
        n_retrainings=d["n_retrainings"],
        train_times=tuple(d["train_times"]),
        predict_times=tuple(d["predict_times"]),
        encode_time_per_job=d["encode_time_per_job"],
        train_sizes=tuple(d["train_sizes"]),
        per_day_f1=tuple(d.get("per_day_f1", ())),
    )


def cached_sweep(name: str, key_parts: dict, compute, *, serialize, deserialize):
    """Load a sweep from cache or compute and store it."""
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"{name}_{_key(key_parts)}.json"
    if path.exists():
        return deserialize(json.loads(path.read_text()))
    value = compute()
    path.write_text(json.dumps(serialize(value)))
    return value


def serialize_run_map(runs: dict) -> list:
    """dict[key-tuple, OnlineRunResult] -> JSON list."""
    return [[list(k), result_to_dict(v)] for k, v in runs.items()]


def deserialize_run_map(data: list) -> dict:
    return {tuple(k): result_from_dict(v) for k, v in data}
