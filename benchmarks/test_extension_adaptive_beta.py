"""Extension — drift-triggered retraining instead of a fixed β.

The paper sweeps fixed retraining cadences (Fig. 6) and shows stale
models lose F1.  The natural refinement is retraining when the workload
actually drifts: PSI over embedding projections triggers the Training
Workflow, with a staleness deadline as a backstop.  This bench compares
the adaptive policy against β=1 (max accuracy, max cost) and β=5 (lower
cost, lower accuracy) on the KNN instantiation.
"""

from repro.evaluation.drift import AdaptiveRetrainingPolicy
from repro.evaluation.reporting import format_table


def test_extension_adaptive_beta(benchmark, evaluator, knn_grid, knn_spec, strict):
    beta1 = knn_grid[(30, 1)]
    beta5 = knn_grid[(30, 5)]

    policy = AdaptiveRetrainingPolicy(psi_threshold=0.12, max_days_between=5)
    adaptive, drift_scores = evaluator.evaluate_adaptive(
        knn_spec.algorithm, knn_spec.params, alpha=30, policy=policy,
        model_name="KNN-adaptive",
    )

    print()
    print(format_table(
        ["schedule", "F1", "retrainings", "mean train time"],
        [
            ["beta=1 (daily)", round(beta1.f1, 4), beta1.n_retrainings,
             f"{beta1.mean_train_time * 1e3:.0f} ms"],
            ["adaptive (PSI>0.12, <=5d)", round(adaptive.f1, 4),
             adaptive.n_retrainings, f"{adaptive.mean_train_time * 1e3:.0f} ms"],
            ["beta=5", round(beta5.f1, 4), beta5.n_retrainings,
             f"{beta5.mean_train_time * 1e3:.0f} ms"],
        ],
        title="Extension: drift-triggered retraining (KNN, alpha=30)",
    ))
    finite = [s for s in drift_scores if s == s]
    if finite:
        print(f"daily drift scores: min={min(finite):.3f} "
              f"median={sorted(finite)[len(finite) // 2]:.3f} max={max(finite):.3f}")

    # the adaptive schedule does real work selectively
    assert 1 <= adaptive.n_retrainings <= beta1.n_retrainings

    if strict:
        # and holds (most of) daily-retraining quality at lower cost
        assert adaptive.f1 >= beta5.f1 - 0.005
        assert adaptive.f1 >= beta1.f1 - 0.02

    benchmark.pedantic(
        lambda: evaluator.evaluate_adaptive(
            knn_spec.algorithm, knn_spec.params, alpha=30,
            policy=AdaptiveRetrainingPolicy(psi_threshold=0.12, max_days_between=5),
        ),
        rounds=1, iterations=1,
    )
