"""F9 — Figure 9: KNN F1 with θ-subsampled retraining (latest vs random).

Paper reading: more data within the fixed window always helps; random
sampling beats taking the θ most recent jobs because Fugaku jobs arrive
in batches of identical jobs (latest-θ is full of duplicates), with the
gap shrinking as θ approaches the full window.

Known scale deviation (recorded in EXPERIMENTS.md): at 1/60 of the
paper's volume our largest θ is ~37% of the window, where "latest"
behaves like a slightly shorter α window rather than a few giant batches,
and can edge out random sampling for KNN.  The paper-shape assertion is
therefore made at the middle θ, where the batch-duplication effect
dominates at every scale we tested.
"""

import numpy as np

from repro.evaluation.reporting import format_table


def _theta_table(name, theta_results, thetas):
    rows = []
    for th in thetas:
        rnd = theta_results[(th, "random")]
        lat = theta_results[(th, "latest")]
        rows.append([
            th, round(lat["f1_mean"], 4), round(rnd["f1_mean"], 4),
            round(rnd["f1_mean"] - lat["f1_mean"], 4),
            round(rnd["f1_std"], 4),
        ])
    print()
    print(format_table(
        ["theta", "latest F1", "random F1", "random-latest", "random std(5 seeds)"],
        rows,
        title=f"Fig {name} - F1 vs theta subsampling",
    ))


def test_fig9_theta_knn(benchmark, evaluator, theta_knn, theta_grid_values, knn_spec, strict):
    _theta_table("9 (KNN, alpha=30)", theta_knn, theta_grid_values)

    f1_random = [theta_knn[(t, "random")]["f1_mean"] for t in theta_grid_values]
    f1_latest = [theta_knn[(t, "latest")]["f1_mean"] for t in theta_grid_values]

    # more data within the window improves prediction, for both samplings
    assert f1_random == sorted(f1_random)
    assert f1_latest[-1] > f1_latest[0]

    if strict and len(theta_grid_values) >= 3:
        mid = theta_grid_values[-2]
        assert theta_knn[(mid, "random")]["f1_mean"] >= theta_knn[(mid, "latest")]["f1_mean"]

    # benchmark the retraining unit at the middle theta (subsample + fit)
    from repro.core.classification_model import ClassificationModel

    rng = np.random.default_rng(520)
    idx = evaluator._training_indices(evaluator.test_start_day, 30)
    mid = theta_grid_values[len(theta_grid_values) // 2]

    def retrain():
        sub = evaluator._subsample(idx, mid, "random", rng)
        return ClassificationModel("KNN", **knn_spec.params).training(
            evaluator.X[sub], evaluator.y[sub]
        )

    benchmark(retrain)
