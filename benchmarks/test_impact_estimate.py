"""X3 — §V-C.d: the system-level impact of semi-automatic frequency selection.

Paper arithmetic (full 2.2 M-job trace): moving the 750k memory-bound jobs
out of boost mode saves ≈680 W/job (450 MW, 14 GJ system-wide); moving the
330k compute-bound jobs into boost mode saves ≈20 min/job (>1,700 h of
system computation) — scaled by the classifier's 90% accuracy.
"""

from repro.analysis.impact import estimate_impact
from repro.evaluation.reporting import format_table


def test_impact_estimate(benchmark, trace, labels, settings):
    est = benchmark(estimate_impact, trace, labels)

    print()
    print(format_table(
        ["population", "#jobs", "per-job saving", "total", "energy"],
        est.summary_rows(),
        title=f"Impact estimate at scale {settings.scale:.4f} (classifier acc 90%)",
    ))
    full = 1.0 / settings.scale
    print(f"extrapolated to full scale (x{full:.0f}): "
          f"{est.total_power_saving_mw * full:.1f} MW, "
          f"{est.total_energy_saving_gj * full:.1f} GJ, "
          f"{est.total_saved_node_hours * full:,.0f} node-hours")

    # both mis-configured populations exist and the savings are positive
    assert est.n_memory_in_boost > 0
    assert est.n_compute_in_normal > 0
    assert est.total_power_saving_mw > 0
    assert est.total_energy_saving_gj > 0
    assert est.total_saved_node_hours > 0

    # per-job power saving is the paper's 15% of the boost-mode draw
    assert est.power_saving_w_per_job == 0.15 * est.mean_power_w_memory_in_boost

    # sanity of the mis-configured population sizes relative to the paper
    # (750k mem@boost and 330k comp@normal out of 2.12M => 35% / 16%)
    frac_mb = est.n_memory_in_boost / len(trace)
    frac_cn = est.n_compute_in_normal / len(trace)
    assert 0.10 < frac_mb < 0.60
    assert 0.03 < frac_cn < 0.35
