"""Substrate micro-benchmarks: storage fetch, characterization, encoding.

Not a paper figure — operational context for the pipeline: the paper
reports ~1 us/job characterization and ~2 ms/job encoding; these benches
record where this implementation stands on the same units.  The
sanitizer on/off pairs at the bottom keep the cost of ``REPRO_SANITIZE=1``
instrumentation visible release over release.
"""

import numpy as np
import pytest

from repro.core import DataFetcher, JobCharacterizer, load_trace_into_db
from repro.fugaku.workload import DAY_SECONDS
from repro.roofline import Roofline
from repro.sanitizers import new_lock, sanitize


@pytest.fixture(scope="module")
def db(trace):
    return load_trace_into_db(trace)


def test_fetch_window_throughput(benchmark, db, trace):
    """Indexed time-window SQL fetch of one day of jobs."""
    fetcher = DataFetcher(db)
    start = 40 * DAY_SECONDS
    records = benchmark(
        lambda: fetcher.fetch(start_time=start, end_time=start + DAY_SECONDS)
    )
    assert len(records) == len(trace.between(start, start + DAY_SECONDS))


def test_fetch_by_id_latency(benchmark, db):
    """Point lookup through the job_id index (the per-submission path)."""
    fetcher = DataFetcher(db)
    records = benchmark(lambda: fetcher.fetch(job_id=100))
    assert len(records) == 1


def test_characterization_throughput(benchmark, trace, characterizer):
    """Vectorized Equations 1-5 over the whole trace (paper: ~1 us/job)."""
    labels = benchmark(characterizer.labels_from_trace, trace)
    assert labels.shape == (len(trace),)


def test_single_job_characterization(benchmark, trace, characterizer):
    record = trace.row(0).as_dict()
    label = benchmark(characterizer.labels_from_records, [record])
    assert label[0] in (0, 1)


# -- sanitizer overhead -------------------------------------------------------


def _lock_churn(lock, rounds=200):
    for _ in range(rounds):
        with lock:
            pass


def test_tracked_lock_overhead_sanitizers_off(benchmark, monkeypatch):
    """Baseline: a TrackedLock with sanitizing disabled (one flag check)."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    lock = new_lock("bench.lock.off")
    benchmark(_lock_churn, lock)


def test_tracked_lock_overhead_sanitizers_on(benchmark, monkeypatch):
    """Same churn with the lock-order graph armed."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    lock = new_lock("bench.lock.on")

    def body():
        with sanitize():
            _lock_churn(lock)

    benchmark(body)


def test_numeric_hot_path_sanitizers_off(benchmark, monkeypatch):
    """Roofline efficiency sweep with the numeric traps disabled."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    roofline = Roofline(peak_gflops=3379.2, peak_membw_gbs=1024.0)
    op = np.linspace(0.01, 10.0, 4096)
    perf = np.linspace(1.0, 3000.0, 4096)
    out = benchmark(roofline.efficiency, op, perf)
    assert np.all(np.isfinite(out))


def test_numeric_hot_path_sanitizers_on(benchmark, monkeypatch):
    """Same sweep instrumented: errstate traps + finiteness checks."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    roofline = Roofline(peak_gflops=3379.2, peak_membw_gbs=1024.0)
    op = np.linspace(0.01, 10.0, 4096)
    perf = np.linspace(1.0, 3000.0, 4096)

    def body():
        with sanitize():
            return roofline.efficiency(op, perf)

    out = benchmark(body)
    assert np.all(np.isfinite(out))
