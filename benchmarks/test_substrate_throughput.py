"""Substrate micro-benchmarks: storage fetch, characterization, encoding.

Not a paper figure — operational context for the pipeline: the paper
reports ~1 us/job characterization and ~2 ms/job encoding; these benches
record where this implementation stands on the same units.
"""

import numpy as np
import pytest

from repro.core import DataFetcher, JobCharacterizer, load_trace_into_db
from repro.fugaku.workload import DAY_SECONDS


@pytest.fixture(scope="module")
def db(trace):
    return load_trace_into_db(trace)


def test_fetch_window_throughput(benchmark, db, trace):
    """Indexed time-window SQL fetch of one day of jobs."""
    fetcher = DataFetcher(db)
    start = 40 * DAY_SECONDS
    records = benchmark(
        lambda: fetcher.fetch(start_time=start, end_time=start + DAY_SECONDS)
    )
    assert len(records) == len(trace.between(start, start + DAY_SECONDS))


def test_fetch_by_id_latency(benchmark, db):
    """Point lookup through the job_id index (the per-submission path)."""
    fetcher = DataFetcher(db)
    records = benchmark(lambda: fetcher.fetch(job_id=100))
    assert len(records) == 1


def test_characterization_throughput(benchmark, trace, characterizer):
    """Vectorized Equations 1-5 over the whole trace (paper: ~1 us/job)."""
    labels = benchmark(characterizer.labels_from_trace, trace)
    assert labels.shape == (len(trace),)


def test_single_job_characterization(benchmark, trace, characterizer):
    record = trace.row(0).as_dict()
    label = benchmark(characterizer.labels_from_records, [record])
    assert label[0] in (0, 1)
