"""Shared state for the figure/table reproduction benches.

Scale knobs come from the environment (see :mod:`repro.config`):

- ``REPRO_BENCH_SCALE`` — fraction of the paper's 2.2 M-job trace
  (default 1/60 ≈ 37k jobs; EXPERIMENTS.md numbers were produced at this
  scale and seed).
- ``REPRO_BENCH_SEED`` — workload seed (default 2024).

Heavy sweeps are computed once per session and cached on disk
(:mod:`benchmarks._cache`).  Shape assertions are enforced at the default
scale; at much smaller scales the benches still regenerate every table but
relax the assertions (single-draw noise outweighs the effects).
"""

from __future__ import annotations

import pytest

from benchmarks._cache import (
    cached_sweep,
    deserialize_run_map,
    result_from_dict,
    result_to_dict,
    serialize_run_map,
)
from repro.config import bench_settings
from repro.core import JobCharacterizer
from repro.evaluation import (
    ModelSpec,
    OnlineEvaluator,
    PAPER_THETA_SEEDS,
    sweep_alpha_beta,
    sweep_theta,
)
from repro.fugaku import generate_trace


@pytest.fixture(scope="session")
def settings():
    return bench_settings()


@pytest.fixture(scope="session")
def strict(settings):
    """Whether shape assertions are enforced (default scale or larger)."""
    return settings.scale >= 1 / 80


@pytest.fixture(scope="session")
def trace(settings):
    return generate_trace(scale=settings.scale, seed=settings.seed)


@pytest.fixture(scope="session")
def characterizer():
    return JobCharacterizer()


@pytest.fixture(scope="session")
def labels(trace, characterizer):
    return characterizer.labels_from_trace(trace)


@pytest.fixture(scope="session")
def evaluator(trace):
    return OnlineEvaluator(trace)


@pytest.fixture(scope="session")
def knn_spec(settings):
    return ModelSpec("KNN", "KNN", settings.knn_params)


@pytest.fixture(scope="session")
def rf_spec(settings):
    return ModelSpec("RF", "RF", settings.rf_params)


def _grid_key(settings, spec):
    return {
        "scale": settings.scale,
        "seed": settings.seed,
        "model": spec.name,
        "params": spec.params,
    }


@pytest.fixture(scope="session")
def knn_grid(evaluator, knn_spec, settings):
    """Fig. 6/7/8 sweep for KNN: dict[(alpha, beta) -> OnlineRunResult]."""
    return cached_sweep(
        "grid_knn",
        _grid_key(settings, knn_spec),
        lambda: sweep_alpha_beta(evaluator, knn_spec),
        serialize=serialize_run_map,
        deserialize=deserialize_run_map,
    )


@pytest.fixture(scope="session")
def rf_grid(evaluator, rf_spec, settings):
    """Fig. 6/7/8 sweep for RF."""
    return cached_sweep(
        "grid_rf",
        _grid_key(settings, rf_spec),
        lambda: sweep_alpha_beta(evaluator, rf_spec),
        serialize=serialize_run_map,
        deserialize=deserialize_run_map,
    )


def _thetas(settings):
    """Paper θ grid {1e2, 1e3, 1e4, 1e5} mapped to this scale."""
    return tuple(sorted({settings.scaled_theta(t) for t in (1e2, 1e3, 1e4, 1e5)}))


@pytest.fixture(scope="session")
def theta_grid_values(settings):
    return _thetas(settings)


def _theta_sweep(evaluator, spec, settings):
    res = sweep_theta(
        evaluator,
        spec,
        thetas=_thetas(settings),
        alpha=spec.best_alpha,
        seeds=PAPER_THETA_SEEDS,
    )
    # strip the heavyweight runs for caching; keep means/stds + one sample
    return {
        k: {"f1_mean": v["f1_mean"], "f1_std": v["f1_std"]} for k, v in res.items()
    }


def _theta_cache(name, evaluator, spec, settings):
    return cached_sweep(
        name,
        {**_grid_key(settings, spec), "thetas": _thetas(settings)},
        lambda: _theta_sweep(evaluator, spec, settings),
        serialize=lambda v: [[list(k), d] for k, d in v.items()],
        deserialize=lambda data: {tuple(k): d for k, d in data},
    )


@pytest.fixture(scope="session")
def theta_knn(evaluator, knn_spec, settings):
    """Fig. 9: θ subsampling for KNN (means over the paper's 5 seeds)."""
    return _theta_cache("theta_knn", evaluator, knn_spec, settings)


@pytest.fixture(scope="session")
def theta_rf(evaluator, rf_spec, settings):
    """Fig. 10: θ subsampling for RF."""
    return _theta_cache("theta_rf", evaluator, rf_spec, settings)


@pytest.fixture(scope="session")
def baseline_run(evaluator, settings):
    """§V-C.a lookup baseline at the paper's (α=30, β=1)."""
    return cached_sweep(
        "baseline",
        {"scale": settings.scale, "seed": settings.seed},
        lambda: evaluator.evaluate_baseline(alpha=30, beta=1),
        serialize=result_to_dict,
        deserialize=result_from_dict,
    )


@pytest.fixture(scope="session")
def alpha_plus_runs(evaluator, knn_spec, rf_spec, settings):
    """§V-C.b growing-window runs for both models."""

    def compute():
        out = {}
        for spec in (knn_spec, rf_spec):
            out[(spec.name, "plus")] = evaluator.evaluate(
                spec.algorithm,
                spec.params,
                alpha=("plus", spec.best_alpha),
                beta=1,
                model_name=spec.name,
            )
        return out

    return cached_sweep(
        "alpha_plus",
        {**_grid_key(settings, knn_spec), "rf": rf_spec.params},
        compute,
        serialize=serialize_run_map,
        deserialize=deserialize_run_map,
    )
