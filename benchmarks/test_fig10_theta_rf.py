"""F10 — Figure 10: RF F1 with θ-subsampled retraining (latest vs random).

Paper reading: same as Fig. 9 — random sampling wins at every θ because
the latest-θ subsample is dominated by replicated batch jobs, and the gap
closes as θ grows toward the full window.
"""

import numpy as np

from benchmarks.test_fig9_theta_knn import _theta_table


def test_fig10_theta_rf(benchmark, evaluator, theta_rf, theta_grid_values, rf_spec, strict):
    _theta_table("10 (RF, alpha=15)", theta_rf, theta_grid_values)

    f1_random = [theta_rf[(t, "random")]["f1_mean"] for t in theta_grid_values]
    f1_latest = [theta_rf[(t, "latest")]["f1_mean"] for t in theta_grid_values]

    # more data helps
    assert f1_random == sorted(f1_random)
    assert f1_latest[-1] > f1_latest[0]

    if strict and len(theta_grid_values) >= 3:
        # random beats latest where the batch-duplication effect dominates
        mid = theta_grid_values[-2]
        gap_mid = theta_rf[(mid, "random")]["f1_mean"] - theta_rf[(mid, "latest")]["f1_mean"]
        assert gap_mid > 0
        # and the gap shrinks as theta approaches the window (paper: 0.26 -> 0.02)
        top = theta_grid_values[-1]
        gap_top = theta_rf[(top, "random")]["f1_mean"] - theta_rf[(top, "latest")]["f1_mean"]
        assert abs(gap_top) < gap_mid

    # benchmark the retraining unit at the middle theta (subsample + fit)
    from repro.core.classification_model import ClassificationModel

    rng = np.random.default_rng(520)
    idx = evaluator._training_indices(evaluator.test_start_day, 15)
    mid = theta_grid_values[len(theta_grid_values) // 2]

    def retrain():
        sub = evaluator._subsample(idx, mid, "random", rng)
        return ClassificationModel("RF", **rf_spec.params).training(
            evaluator.X[sub], evaluator.y[sub]
        )

    benchmark.pedantic(retrain, rounds=1, iterations=1)
