"""Tests for Equations 1-3 and ridge labelling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roofline.characterize import (
    COMPUTE_BOUND,
    MEMORY_BOUND,
    characterize_jobs,
    job_memory_bandwidth,
    job_operational_intensity,
    job_performance,
)
from repro.roofline.model import Roofline


class TestEquation1:
    def test_per_node_gflops(self):
        # 1e12 flops over 10 s on 2 nodes = 50 GFlops/s per node
        assert job_performance(1e12, 10.0, 2) == pytest.approx(50.0)

    def test_normalization_by_nodes(self):
        one = job_performance(1e12, 10.0, 1)
        four = job_performance(1e12, 10.0, 4)
        assert one == pytest.approx(4 * four)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            job_performance(1e12, 0.0, 1)
        with pytest.raises(ValueError):
            job_performance(1e12, 10.0, 0)
        with pytest.raises(ValueError):
            job_performance(-1.0, 10.0, 1)


class TestEquation2:
    def test_per_node_gbs(self):
        assert job_memory_bandwidth(1e12, 10.0, 2) == pytest.approx(50.0)


class TestEquation3:
    def test_ratio(self):
        assert job_operational_intensity(100.0, 50.0) == pytest.approx(2.0)

    def test_duration_and_nodes_cancel(self):
        # op computed via p/mb equals flops/bytes regardless of normalization
        p = job_performance(1e12, 7.0, 3)
        mb = job_memory_bandwidth(5e11, 7.0, 3)
        assert p / mb == pytest.approx(job_operational_intensity(1e12, 5e11))

    def test_zero_bytes_guard(self):
        op = job_operational_intensity(100.0, 0.0)
        assert np.isfinite(op)
        assert op == pytest.approx(100.0)  # floor of 1 byte


class TestLabelling:
    @pytest.fixture(scope="class")
    def roofline(self):
        return Roofline(3380.0, 1024.0)

    def test_memory_bound_job(self, roofline):
        # 1 flop per byte << ridge 3.3
        _, _, _, lab = characterize_jobs(1e12, 1e12, 10.0, 1, roofline)
        assert lab == MEMORY_BOUND

    def test_compute_bound_job(self, roofline):
        _, _, _, lab = characterize_jobs(1e13, 1e12, 10.0, 1, roofline)
        assert lab == COMPUTE_BOUND

    def test_tie_is_memory_bound(self, roofline):
        # op exactly at ridge: the paper labels compute-bound only if GREATER
        flops = roofline.ridge_point * 1e9
        _, _, op, lab = characterize_jobs(flops, 1e9, 1.0, 1, roofline)
        assert op == pytest.approx(roofline.ridge_point)
        assert lab == MEMORY_BOUND

    def test_vectorized_batch(self, roofline):
        flops = np.array([1e12, 1e13])
        moved = np.array([1e12, 1e12])
        p, mb, op, lab = characterize_jobs(flops, moved, np.array([10.0, 10.0]), np.array([1, 1]), roofline)
        assert lab.tolist() == [MEMORY_BOUND, COMPUTE_BOUND]
        assert p.shape == mb.shape == op.shape == (2,)

    @given(
        flops=st.floats(min_value=1.0, max_value=1e18),
        moved=st.floats(min_value=1.0, max_value=1e18),
        duration=st.floats(min_value=1.0, max_value=1e6),
        nodes=st.integers(1, 1000),
    )
    @settings(max_examples=150, deadline=None)
    def test_label_independent_of_duration_and_nodes(self, flops, moved, duration, nodes):
        rl = Roofline(3380.0, 1024.0)
        _, _, _, lab1 = characterize_jobs(flops, moved, duration, nodes, rl)
        _, _, _, lab2 = characterize_jobs(flops, moved, 1.0, 1, rl)
        assert lab1 == lab2

    @given(
        flops=st.floats(min_value=1.0, max_value=1e18),
        moved=st.floats(min_value=1.0, max_value=1e18),
    )
    @settings(max_examples=150, deadline=None)
    def test_label_matches_direct_ratio(self, flops, moved):
        rl = Roofline(3380.0, 1024.0)
        _, _, op, lab = characterize_jobs(flops, moved, 1.0, 1, rl)
        expected = COMPUTE_BOUND if flops / moved > rl.ridge_point else MEMORY_BOUND
        assert lab == expected
