"""Tests for log-binned roofline scatter summaries."""

import numpy as np
import pytest

from repro.roofline.binning import RooflineScatterSummary, log_bin_2d
from repro.roofline.model import Roofline


class TestLogBin2D:
    def test_counts_conserved(self):
        rng = np.random.default_rng(0)
        x = 10 ** rng.uniform(-3, 2, 500)
        y = 10 ** rng.uniform(-2, 3, 500)
        counts, xe, ye = log_bin_2d(x, y, x_range=(1e-4, 1e3), y_range=(1e-3, 1e4))
        assert counts.sum() == 500

    def test_out_of_range_clipped_not_dropped(self):
        counts, _, _ = log_bin_2d(
            np.array([1e-10, 1e10]),
            np.array([1.0, 1.0]),
            x_range=(1e-2, 1e2),
            y_range=(1e-2, 1e2),
            bins=(4, 4),
        )
        assert counts.sum() == 2
        assert counts[0].sum() == 1 and counts[-1].sum() == 1

    def test_edges_log_spaced(self):
        _, xe, _ = log_bin_2d(
            np.ones(1), np.ones(1), x_range=(1.0, 100.0), y_range=(1.0, 10.0), bins=(4, 2)
        )
        assert np.allclose(np.diff(np.log10(xe)), np.diff(np.log10(xe))[0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            log_bin_2d(np.ones(3), np.ones(2), x_range=(1, 10), y_range=(1, 10))

    def test_nonpositive_range_rejected(self):
        with pytest.raises(ValueError):
            log_bin_2d(np.ones(1), np.ones(1), x_range=(0, 10), y_range=(1, 10))


class TestScatterSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        rl = Roofline(3380.0, 1024.0)
        rng = np.random.default_rng(1)
        op = 10 ** rng.normal(-0.5, 0.8, size=2000)  # skewed memory-bound
        eff = rng.beta(1.5, 6.0, size=2000)
        perf = eff * rl.attainable(op)
        return RooflineScatterSummary.from_jobs(op, perf, rl), rl

    def test_fraction_memory_bound(self, summary):
        s, rl = summary
        assert s.frac_memory_bound > 0.5
        assert 0 <= s.frac_memory_bound <= 1

    def test_median_below_ridge(self, summary):
        s, rl = summary
        assert s.median_op < rl.ridge_point

    def test_ceiling_fractions_ordered(self, summary):
        s, _ = summary
        assert s.frac_near_ceiling <= s.frac_within_decade_of_ceiling

    def test_histogram_mass(self, summary):
        s, _ = summary
        assert s.counts.sum() == s.n_jobs == 2000

    def test_empty_rejected(self):
        rl = Roofline(1.0, 1.0)
        with pytest.raises(ValueError):
            RooflineScatterSummary.from_jobs(np.array([]), np.array([]), rl)

    def test_shape_mismatch_rejected(self):
        rl = Roofline(1.0, 1.0)
        with pytest.raises(ValueError):
            RooflineScatterSummary.from_jobs(np.ones(3), np.ones(4), rl)
