"""Tests for the basic Roofline model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roofline.model import Roofline


@pytest.fixture(scope="module")
def fugaku_roofline():
    return Roofline(3380.0, 1024.0)


class TestRidge:
    def test_fugaku_ridge(self, fugaku_roofline):
        assert fugaku_roofline.ridge_point == pytest.approx(3.30, abs=0.01)

    def test_ridge_is_ratio(self):
        assert Roofline(100.0, 50.0).ridge_point == 2.0

    def test_invalid_ceilings(self):
        with pytest.raises(ValueError):
            Roofline(0.0, 1.0)
        with pytest.raises(ValueError):
            Roofline(1.0, -1.0)


class TestAttainable:
    def test_memory_bound_region(self, fugaku_roofline):
        assert fugaku_roofline.attainable(1.0) == pytest.approx(1024.0)

    def test_compute_bound_region(self, fugaku_roofline):
        assert fugaku_roofline.attainable(100.0) == 3380.0

    def test_continuous_at_ridge(self, fugaku_roofline):
        r = fugaku_roofline.ridge_point
        assert fugaku_roofline.attainable(r) == pytest.approx(3380.0)

    def test_vectorized(self, fugaku_roofline):
        ops = np.array([0.1, 1.0, 10.0])
        out = fugaku_roofline.attainable(ops)
        assert out.shape == (3,)
        assert np.all(np.diff(out) >= 0)

    def test_negative_rejected(self, fugaku_roofline):
        with pytest.raises(ValueError):
            fugaku_roofline.attainable(-0.1)

    @given(st.floats(min_value=0, max_value=1e6))
    @settings(max_examples=100, deadline=None)
    def test_never_exceeds_either_ceiling(self, op):
        rl = Roofline(3380.0, 1024.0)
        at = rl.attainable(op)
        assert at <= 3380.0 + 1e-9
        assert at <= 1024.0 * op + 1e-9 or op == 0


class TestClassification:
    def test_strictly_above_ridge_is_compute(self, fugaku_roofline):
        r = fugaku_roofline.ridge_point
        assert fugaku_roofline.is_compute_bound(r * 1.001)
        assert not fugaku_roofline.is_compute_bound(r)  # ties are memory-bound
        assert not fugaku_roofline.is_compute_bound(r * 0.999)

    def test_vectorized(self, fugaku_roofline):
        out = fugaku_roofline.is_compute_bound(np.array([0.1, 100.0]))
        assert out.tolist() == [False, True]


class TestEfficiency:
    def test_full_efficiency(self, fugaku_roofline):
        assert fugaku_roofline.efficiency(1.0, 1024.0) == pytest.approx(1.0)

    def test_half_efficiency(self, fugaku_roofline):
        assert fugaku_roofline.efficiency(100.0, 1690.0) == pytest.approx(0.5)

    def test_vectorized(self, fugaku_roofline):
        eff = fugaku_roofline.efficiency(np.array([1.0, 100.0]), np.array([512.0, 338.0]))
        assert np.allclose(eff, [0.5, 0.1])
