"""Tests for the multi-ceiling extension (interconnect/cache/GPU-bound)."""

import numpy as np
import pytest

from repro.roofline.multiceiling import Ceiling, MultiCeilingRoofline


@pytest.fixture()
def model():
    return MultiCeilingRoofline(
        3380.0,
        [Ceiling("hbm", 1024.0), Ceiling("tofu", 40.0)],
    )


class TestConstruction:
    def test_class_names(self, model):
        assert model.class_names == ("hbm-bound", "tofu-bound", "compute-bound")

    def test_ridge_per_ceiling(self, model):
        assert model.ridge_point("hbm") == pytest.approx(3380 / 1024)
        assert model.ridge_point("tofu") == pytest.approx(3380 / 40)

    def test_unknown_ceiling(self, model):
        with pytest.raises(KeyError):
            model.ridge_point("gpu")

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiCeilingRoofline(0.0, [Ceiling("x", 1.0)])
        with pytest.raises(ValueError):
            MultiCeilingRoofline(1.0, [])
        with pytest.raises(ValueError):
            MultiCeilingRoofline(1.0, [Ceiling("x", 1.0), Ceiling("x", 2.0)])
        with pytest.raises(ValueError):
            Ceiling("x", -1.0)


class TestClassification:
    def test_hbm_bound(self, model):
        lab = model.classify(
            np.array([100.0]),
            {"hbm": np.array([900.0]), "tofu": np.array([1.0])},
        )
        assert model.class_names[lab[0]] == "hbm-bound"

    def test_interconnect_bound(self, model):
        lab = model.classify(
            np.array([100.0]),
            {"hbm": np.array([100.0]), "tofu": np.array([38.0])},
        )
        assert model.class_names[lab[0]] == "tofu-bound"

    def test_compute_bound(self, model):
        lab = model.classify(
            np.array([3000.0]),
            {"hbm": np.array([100.0]), "tofu": np.array([1.0])},
        )
        assert model.class_names[lab[0]] == "compute-bound"

    def test_batch(self, model):
        perf = np.array([100.0, 3000.0])
        traffic = {"hbm": np.array([900.0, 10.0]), "tofu": np.array([0.1, 0.1])}
        labs = model.classify(perf, traffic)
        assert [model.class_names[l] for l in labs] == ["hbm-bound", "compute-bound"]

    def test_missing_traffic_rejected(self, model):
        with pytest.raises(KeyError):
            model.classify(np.array([1.0]), {"hbm": np.array([1.0])})

    def test_shape_mismatch_rejected(self, model):
        with pytest.raises(ValueError):
            model.classify(
                np.array([1.0]),
                {"hbm": np.array([1.0, 2.0]), "tofu": np.array([1.0])},
            )

    def test_negative_traffic_rejected(self, model):
        with pytest.raises(ValueError):
            model.classify(
                np.array([1.0]),
                {"hbm": np.array([-1.0]), "tofu": np.array([1.0])},
            )

    def test_binary_case_matches_basic_roofline(self):
        """With one HBM ceiling, labels agree with the ridge rule."""
        from repro.roofline.model import Roofline

        rl = Roofline(3380.0, 1024.0)
        mc = MultiCeilingRoofline(3380.0, [Ceiling("hbm", 1024.0)])
        rng = np.random.default_rng(0)
        op = 10 ** rng.uniform(-2, 2, size=200)
        eff = rng.uniform(0.05, 0.95, size=200)
        perf = eff * rl.attainable(op)
        mb = perf / op
        labs = mc.classify(perf, {"hbm": mb})
        # utilization argmax: compute wins iff perf/peak > mb/bw <=> op > ridge
        expected = (op > rl.ridge_point).astype(int)
        assert np.array_equal(labs, expected)
