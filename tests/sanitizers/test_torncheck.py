"""Seqlock-style torn-read detection across an explicit thread handoff."""

import threading

from repro.sanitizers import StateGuard, events, sanitize


class TestStateGuard:
    def test_read_overlapping_write_is_flagged(self):
        guard = StateGuard("model")
        with sanitize():
            with guard.writing():
                with guard.reading():
                    pass
        (event,) = events("torn-read")
        assert event.details["guard"] == "model"
        assert "in-progress write" in event.details["reason"]

    def test_write_landing_mid_read_is_flagged(self):
        guard = StateGuard("model")
        read_started = threading.Event()
        write_done = threading.Event()

        def writer():
            with sanitize():
                read_started.wait(timeout=5)
                with guard.writing():
                    pass
                write_done.set()

        worker = threading.Thread(target=writer)
        worker.start()
        with sanitize():
            with guard.reading():
                read_started.set()
                assert write_done.wait(timeout=5)
        worker.join()
        (event,) = events("torn-read")
        assert "changed underneath" in event.details["reason"]

    def test_serialized_accesses_are_clean(self):
        guard = StateGuard("model")
        with sanitize():
            with guard.writing():
                pass
            with guard.reading():
                pass
        assert events("torn-read") == []

    def test_disabled_guard_records_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        guard = StateGuard("model")
        with guard.writing():
            with guard.reading():
                pass
        assert events() == []
