"""Numeric sanitizer: explicit finiteness checks and numpy FP-error traps."""

import numpy as np

from repro.sanitizers import check_finite, events, numeric_trap, sanitize
from repro.roofline import Roofline


class TestCheckFinite:
    def test_nan_and_inf_are_counted(self):
        with sanitize():
            check_finite("site", np.array([1.0, np.nan, np.inf, -np.inf]))
        (event,) = events("non-finite")
        assert event.details == {"site": "site", "nan_count": 1, "inf_count": 2, "size": 4}

    def test_finite_array_is_clean(self):
        with sanitize():
            check_finite("site", np.linspace(0.0, 1.0, 8))
        assert events() == []

    def test_disabled_records_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        check_finite("site", np.array([np.nan]))
        assert events() == []


class TestNumericTrap:
    def test_divide_by_zero_is_trapped(self):
        with sanitize():
            with numeric_trap("div"):
                np.divide(np.ones(2), np.zeros(2))
        kinds = {(e.details["site"], e.details["error"]) for e in events("fp-error")}
        assert ("div", "divide by zero") in kinds

    def test_overflow_is_trapped(self):
        with sanitize():
            with numeric_trap("ovf"):
                np.array([1e308]) * 10.0
        assert any(e.details["error"] == "overflow" for e in events("fp-error"))

    def test_clean_arithmetic_records_nothing(self):
        with sanitize():
            with numeric_trap("ok"):
                np.ones(4) / np.full(4, 2.0)
        assert events() == []


class TestRooflineWiring:
    def test_efficiency_hot_path_runs_instrumented_and_clean(self):
        roofline = Roofline(peak_gflops=100.0, peak_membw_gbs=50.0)
        with sanitize():
            eff = roofline.efficiency(np.array([0.5, 4.0]), np.array([10.0, 90.0]))
        assert np.all((eff >= 0.0) & (eff <= 1.0))
        assert events() == []
