"""Runtime lock-order sanitizer: the racy fixture must be flagged on
every run, the clean twin never, and tracking must cost nothing but a
flag check when disabled."""

import importlib.util
import threading
from pathlib import Path

from repro.sanitizers import (
    TrackedLock,
    clear_events,
    enabled,
    events,
    lock_graph,
    new_lock,
    sanitize,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def load_fixture(name):
    spec = importlib.util.spec_from_file_location(name, FIXTURES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRacyFixture:
    def test_inconsistent_order_is_flagged_every_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        racy = load_fixture("racy_order")
        for _ in range(3):
            clear_events()
            racy.run_both()
            detected = events("lock-order-cycle")
            assert detected, "the inversion must be flagged deterministically"
            chains = [e.details["chain"] for e in detected]
            assert any(set(c) == {"racy_order.LOCK_A", "racy_order.LOCK_B"} for c in chains)

    def test_clean_fixture_is_never_flagged(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        ordered = load_fixture("clean_order")
        for _ in range(3):
            ordered.run_both()
        assert events("lock-order-cycle") == []

    def test_graph_records_the_observed_order(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        ordered = load_fixture("clean_order")
        ordered.run_both()
        graph = lock_graph()
        assert graph.get("clean_order.LOCK_A") == ["clean_order.LOCK_B"]


class TestTrackedLock:
    def test_nonreentrant_self_reacquire_is_flagged_without_blocking(self):
        lock = new_lock("self-deadlock", factory=threading.Lock)
        with sanitize():
            with lock:
                assert lock.acquire(blocking=False) is False
        (event,) = events("lock-order-cycle")
        assert event.details["reason"].startswith("non-reentrant")

    def test_reentrant_reacquire_is_fine(self):
        lock = new_lock("reentrant")
        with sanitize():
            with lock:
                with lock:
                    pass
        assert events() == []

    def test_disabled_lock_still_locks_and_records_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        lock = new_lock("plain", factory=threading.Lock)
        assert not enabled()
        with lock:
            assert lock.acquire(blocking=False) is False
        assert events() == []
        assert lock_graph() == {}

    def test_sanitize_is_thread_local(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        seen = []

        def body():
            seen.append(enabled())

        with sanitize():
            assert enabled()
            worker = threading.Thread(target=body)
            worker.start()
            worker.join()
        assert seen == [False]
        assert not enabled()

    def test_wrapper_exposes_its_name(self):
        lock = TrackedLock("named")
        assert lock.name == "named"
