"""Event log: ordering, filtering, and the JSONL exit flush."""

import json

from repro.sanitizers import SanitizerEvent, clear_events, events, record
from repro.sanitizers.events import flush_log


class TestEventLog:
    def test_record_orders_and_stamps_events(self):
        first = record("kind-a", detail=1)
        second = record("kind-b", detail=2)
        assert isinstance(first, SanitizerEvent)
        assert second.seq > first.seq
        assert first.thread
        assert [e.kind for e in events()] == ["kind-a", "kind-b"]

    def test_filter_by_kind(self):
        record("kind-a")
        record("kind-b")
        assert [e.kind for e in events("kind-b")] == ["kind-b"]

    def test_clear(self):
        record("kind-a")
        clear_events()
        assert events() == []

    def test_to_dict_flattens_details(self):
        event = record("torn-read", guard="model")
        doc = event.to_dict()
        assert doc["kind"] == "torn-read"
        assert doc["guard"] == "model"

    def test_flush_writes_jsonl(self, tmp_path, monkeypatch):
        log_path = tmp_path / "sanitizer-events.jsonl"
        monkeypatch.setenv("REPRO_SANITIZE_LOG", str(log_path))
        record("kind-a", n=1)
        record("kind-b", n=2)
        flush_log()
        lines = [json.loads(line) for line in log_path.read_text().splitlines()]
        assert [doc["kind"] for doc in lines] == ["kind-a", "kind-b"]
        assert lines[0]["n"] == 1

    def test_flush_without_target_is_a_no_op(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SANITIZE_LOG", raising=False)
        record("kind-a")
        flush_log()
        assert list(tmp_path.iterdir()) == []
