"""Fork-awareness tests: pid tagging, child re-arm, and per-pid log flush.

Fork-dependent tests are skipped where the platform offers no ``fork``
start method; the pid-tagging tests run everywhere.
"""

import glob
import json
import multiprocessing
import os

import pytest

from repro.sanitizers import (
    StateGuard,
    events,
    lock_graph,
    new_lock,
    record,
    sanitize,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

fork_only = pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")


class TestPidTagging:
    def test_record_stamps_current_pid(self):
        event = record("probe", detail="x")
        assert event.pid == os.getpid()

    def test_to_dict_includes_pid(self):
        event = record("probe")
        assert event.to_dict()["pid"] == os.getpid()


def _child_reports_inherited_state(queue):
    # Runs in a fork child: the after-fork hooks must have wiped the
    # parent's events and order graph and re-armed every StateGuard.
    queue.put(
        {
            "events": len(events()),
            "graph": lock_graph(),
            "guard_versions": [g._version for g in _CHILD_PROBE_GUARDS],
        }
    )


_CHILD_PROBE_GUARDS: list = []


@fork_only
class TestChildRearm:
    def test_child_starts_with_clean_sanitizer_state(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        guard = StateGuard("forkaware-test-guard")
        _CHILD_PROBE_GUARDS.clear()
        _CHILD_PROBE_GUARDS.append(guard)
        try:
            with sanitize():
                record("parent-only-hazard")
                outer = new_lock("forkaware.outer")
                inner = new_lock("forkaware.inner")
                with outer:
                    with inner:
                        pass
                assert lock_graph()  # parent really has edges
                ctx = multiprocessing.get_context("fork")
                queue = ctx.Queue()
                # Fork mid-write: the parent's version is odd right now,
                # which would look like an eternal in-progress write to
                # the child unless the guard is re-armed.
                with guard.writing():
                    child = ctx.Process(
                        target=_child_reports_inherited_state, args=(queue,)
                    )
                    child.start()
                    seen = queue.get(timeout=30)
                    child.join(timeout=30)
            assert child.exitcode == 0
            assert seen["events"] == 0
            assert seen["graph"] == {}
            assert seen["guard_versions"] == [0]
            # ...while the parent keeps its own state untouched.
            assert [e.kind for e in events()] == ["parent-only-hazard"]
            assert guard._version % 2 == 0 and guard._version > 0
        finally:
            _CHILD_PROBE_GUARDS.clear()


def _child_records_hazard():
    record("child-hazard", where="worker")


@fork_only
class TestChildFlush:
    def test_child_flushes_to_per_pid_log(self, monkeypatch, tmp_path):
        log = tmp_path / "sanitize.jsonl"
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv("REPRO_SANITIZE_LOG", str(log))
        ctx = multiprocessing.get_context("fork")
        record("parent-event")
        child = ctx.Process(target=_child_records_hazard)
        child.start()
        child.join(timeout=30)
        assert child.exitcode == 0
        side_logs = glob.glob(f"{log}.*")
        assert side_logs == [f"{log}.{child.pid}"]
        lines = [
            json.loads(line)
            for line in open(side_logs[0], encoding="utf-8").read().splitlines()
        ]
        assert [(row["kind"], row["pid"]) for row in lines] == [
            ("child-hazard", child.pid)
        ]
        # The child must not have clobbered the parent's log path, and the
        # parent's in-memory events must not have leaked into the child's.
        assert not log.exists()
        assert [e.kind for e in events()] == ["parent-event"]

    def test_clean_child_writes_no_log(self, monkeypatch, tmp_path):
        log = tmp_path / "sanitize.jsonl"
        monkeypatch.setenv("REPRO_SANITIZE_LOG", str(log))
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_noop)
        child.start()
        child.join(timeout=30)
        assert child.exitcode == 0
        assert glob.glob(f"{log}.*") == []


def _noop():
    pass
