"""The fixed retrain/serve loop runs clean under full instrumentation.

This is the dynamic half of the acceptance story: the static rules no
longer flag :class:`repro.core.framework.MCBound`, and here the runtime
oracles confirm the fix — concurrent training and inference produce no
lock-order inversions and no torn reads.
"""

import threading

from repro.core import MCBound, MCBoundConfig, load_trace_into_db
from repro.fugaku.workload import DAY_SECONDS
from repro.sanitizers import events


def make_framework(trace):
    cfg = MCBoundConfig(
        algorithm="RF",
        model_params={"n_estimators": 3, "max_depth": 6, "splitter": "hist", "random_state": 0},
    )
    return MCBound(cfg, load_trace_into_db(trace))


class TestRetrainServeRace:
    def test_concurrent_train_and_predict_run_clean(self, tiny_trace, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        fw = make_framework(tiny_trace)
        now = 40 * DAY_SECONDS
        fw.train(now, alpha_days=20)

        errors = []

        def retrain():
            try:
                for _ in range(3):
                    fw.train(now, alpha_days=20)
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(exc)

        def serve():
            try:
                for _ in range(5):
                    fw.predict_window(now - 5 * DAY_SECONDS, now)
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(exc)

        workers = [threading.Thread(target=retrain), threading.Thread(target=serve)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        assert errors == []
        assert events("lock-order-cycle") == []
        assert events("torn-read") == []
