"""Deliberately inconsistent lock ordering.

This module is the shared race fixture: the ``lock-order-cycle`` static
rule must flag it from the source alone, and the runtime lock-order
sanitizer must flag it when :func:`run_both` executes instrumented.  The
two thread bodies are run back to back (started and joined one at a
time) so the inversion is always *observed* without ever scheduling the
interleaving that would actually deadlock the test process.
"""

import threading

from repro.sanitizers import new_lock

__all__ = ["first", "run_both", "second"]

LOCK_A = new_lock("racy_order.LOCK_A")
LOCK_B = new_lock("racy_order.LOCK_B")


def first():
    with LOCK_A:
        with LOCK_B:
            pass


def second():
    with LOCK_B:
        with LOCK_A:
            pass


def run_both():
    for body in (first, second):
        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
