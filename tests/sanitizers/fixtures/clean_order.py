"""Consistent lock ordering: the clean twin of ``racy_order``.

Both thread bodies acquire the locks in the same nested order, so
neither the ``lock-order-cycle`` static rule nor the runtime lock-order
sanitizer may report anything here.
"""

import threading

from repro.sanitizers import new_lock

__all__ = ["first", "run_both", "second"]

LOCK_A = new_lock("clean_order.LOCK_A")
LOCK_B = new_lock("clean_order.LOCK_B")


def first():
    with LOCK_A:
        with LOCK_B:
            pass


def second():
    with LOCK_A:
        with LOCK_B:
            pass


def run_both():
    for body in (first, second):
        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
