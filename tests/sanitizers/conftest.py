import pytest

from repro.sanitizers import clear_events, clear_lock_graph


@pytest.fixture(autouse=True)
def reset_sanitizer_state():
    """Events and the lock-order graph are process-global; isolate tests."""
    clear_events()
    clear_lock_graph()
    yield
    clear_events()
    clear_lock_graph()
