"""Tests for the micro web framework's routing and dispatch."""

import json

import pytest

from repro.web.app import App, HTTPError, Request, Response


@pytest.fixture()
def app():
    a = App("t")

    @a.route("/items")
    def list_items(request):
        return {"items": [1, 2]}

    @a.route("/items", methods=("POST",))
    def create_item(request):
        body = request.json()
        return {"created": body["name"]}, 201

    @a.route("/items/<int:item_id>")
    def get_item(request, item_id):
        if item_id > 100:
            raise HTTPError(404, "no such item")
        return {"id": item_id}

    @a.route("/echo/<str:word>/<int:n>")
    def echo(request, word, n):
        return {"echo": word * n}

    return a


def run(app, method, url, **kw):
    return app.handle(App.build_request(method, url, **kw))


class TestRouting:
    def test_get(self, app):
        r = run(app, "GET", "/items")
        assert r.status == 200
        assert r.json() == {"items": [1, 2]}

    def test_post_with_json(self, app):
        r = run(app, "POST", "/items", json_body={"name": "x"})
        assert r.status == 201
        assert r.json() == {"created": "x"}

    def test_path_params_converted(self, app):
        assert run(app, "GET", "/items/42").json() == {"id": 42}

    def test_multiple_params(self, app):
        assert run(app, "GET", "/echo/ab/3").json() == {"echo": "ababab"}

    def test_bad_int_param_is_404(self, app):
        assert run(app, "GET", "/items/notanumber").status == 404

    def test_unknown_path_404(self, app):
        r = run(app, "GET", "/nope")
        assert r.status == 404
        assert "error" in r.json()

    def test_wrong_method_405(self, app):
        assert run(app, "DELETE", "/items").status == 405

    def test_handler_http_error(self, app):
        r = run(app, "GET", "/items/999")
        assert r.status == 404
        assert r.json()["error"] == "no such item"

    def test_handler_crash_becomes_500(self):
        a = App()

        @a.route("/boom")
        def boom(request):
            raise RuntimeError("kaboom")

        r = run(a, "GET", "/boom")
        assert r.status == 500
        assert "kaboom" in r.json()["error"]

    def test_duplicate_route_rejected(self, app):
        with pytest.raises(ValueError):

            @app.route("/items")
            def dup(request):
                return {}

    def test_query_string(self):
        a = App()

        @a.route("/q")
        def q(request):
            return {"v": request.arg("v"), "missing": request.arg("nope", "dflt")}

        r = run(a, "GET", "/q?v=7&other=x")
        assert r.json() == {"v": "7", "missing": "dflt"}


class TestRequestResponse:
    def test_json_parse_error_400(self, app):
        r = run(app, "POST", "/items", body=b"{not json")
        assert r.status == 400

    def test_empty_body_400(self, app):
        r = run(app, "POST", "/items")
        assert r.status == 400

    def test_body_and_json_mutually_exclusive(self):
        with pytest.raises(ValueError):
            App.build_request("POST", "/x", body=b"x", json_body={})

    def test_status_line(self):
        assert Response(404).status_line == "404 Not Found"

    def test_from_handler_result_passthrough(self):
        r = Response(204)
        assert Response.from_handler_result(r) is r

    def test_from_handler_result_json(self):
        r = Response.from_handler_result([1, 2])
        assert r.status == 200
        assert json.loads(r.body) == [1, 2]


class TestErrorHandlers:
    def test_custom_404(self):
        a = App()

        @a.error_handler(404)
        def nf(request, message):
            return {"custom": True, "msg": message}, 404

        r = run(a, "GET", "/ghost")
        assert r.json()["custom"] is True


class TestRuleCompilation:
    def test_rule_must_start_with_slash(self):
        a = App()
        with pytest.raises(ValueError):
            a.route("no-slash")(lambda request: {})

    def test_duplicate_param_name_rejected(self):
        a = App()
        with pytest.raises(ValueError):
            a.route("/<int:x>/<int:x>")(lambda request, x: {})
