"""Tests for the in-process test client and the real HTTP server."""

import json
import urllib.request

import pytest

from repro.web import App, HTTPError, TestClient, serve


@pytest.fixture()
def app():
    a = App()

    @a.route("/ping")
    def ping(request):
        return {"pong": True}

    @a.route("/double", methods=("POST",))
    def double(request):
        return {"out": request.json()["x"] * 2}

    @a.route("/fail")
    def fail(request):
        raise HTTPError(409, "conflict!")

    return a


class TestInProcessClient:
    def test_get(self, app):
        c = TestClient(app)
        assert c.get("/ping").json() == {"pong": True}

    def test_post(self, app):
        c = TestClient(app)
        assert c.post("/double", json_body={"x": 21}).json() == {"out": 42}

    def test_verbs(self, app):
        c = TestClient(app)
        assert c.put("/ping").status == 405
        assert c.delete("/ping").status == 405

    def test_error_status(self, app):
        assert TestClient(app).get("/fail").status == 409


class TestRealServer:
    def test_round_trip_over_socket(self, app):
        with serve(app) as handle:
            assert handle.port > 0
            with urllib.request.urlopen(f"{handle.url}/ping", timeout=5) as resp:
                assert resp.status == 200
                assert json.loads(resp.read()) == {"pong": True}

    def test_post_over_socket(self, app):
        with serve(app) as handle:
            req = urllib.request.Request(
                f"{handle.url}/double",
                data=json.dumps({"x": 5}).encode(),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=5) as resp:
                assert json.loads(resp.read()) == {"out": 10}

    def test_error_over_socket(self, app):
        with serve(app) as handle:
            try:
                urllib.request.urlopen(f"{handle.url}/missing", timeout=5)
                raised = False
            except urllib.error.HTTPError as e:
                raised = True
                assert e.code == 404
            assert raised

    def test_stop_idempotent_context(self, app):
        handle = serve(app)
        handle.stop()
        # after stop the port is closed
        with pytest.raises(Exception):
            urllib.request.urlopen(f"{handle.url}/ping", timeout=1)
