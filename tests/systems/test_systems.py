"""The system-model registry and the Fugaku extraction's bit-identity.

The ``repro.systems`` refactor moved the physical model behind an
abstract contract; these tests pin (a) the registry mechanics, (b) that
every registered plugin really implements the contract, (c) that the
Fugaku port is bit-identical to the legacy ``repro.fugaku`` path — same
trace, same characterization labels, same Table II contingency — and
(d) that the synthetic systems have genuinely distinct knees and specs.
"""

import numpy as np
import pytest

from repro.analysis.tables import table2_distribution
from repro.core.job_characterizer import JobCharacterizer
from repro.fugaku.counters import flops_from_counters, moved_bytes_from_counters
from repro.fugaku.system import FUGAKU
from repro.fugaku.workload import generate_trace
from repro.systems import (
    IN2P3System,
    FugakuSystem,
    SupercloudSystem,
    SystemModel,
    available_systems,
    get_system,
    register_system,
)
from repro.systems.spec import MachineSpec
from repro.systems.synthetic import IN2P3, SUPERCLOUD

SCALE = 0.002
SEED = 7

#: every abstract member of the contract, by kind
CONTRACT_METHODS = [
    "flops_from_counters",
    "moved_bytes_from_counters",
    "counters_from_flops_bytes",
    "peak_gflops_at",
    "ceilings",
    "workload_config",
]


class TestRegistry:
    def test_builtin_systems_are_registered(self):
        assert set(available_systems()) >= {"fugaku", "supercloud", "in2p3"}

    def test_get_system_returns_singleton(self):
        assert get_system("fugaku") is get_system("fugaku")
        assert isinstance(get_system("fugaku"), FugakuSystem)
        assert isinstance(get_system("supercloud"), SupercloudSystem)
        assert isinstance(get_system("in2p3"), IN2P3System)

    def test_unknown_system_raises(self):
        with pytest.raises(KeyError, match="unknown system"):
            get_system("summit")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_system
            class Impostor(FugakuSystem):
                name = "fugaku"

    def test_non_systemmodel_rejected(self):
        with pytest.raises(TypeError):
            register_system(object)


class TestContract:
    @pytest.mark.parametrize("name", ["fugaku", "supercloud", "in2p3"])
    def test_plugin_implements_contract(self, name):
        system = get_system(name)
        assert isinstance(system, SystemModel)
        # machine is duck-typed (Fugaku keeps its legacy FugakuSpec so the
        # constants never move); the contract is the spec surface below.
        machine = system.machine
        for attr in ("peak_gflops_node", "peak_membw_gbs", "frequencies_ghz", "cores_per_node"):
            assert hasattr(machine, attr), attr
        for method in CONTRACT_METHODS:
            assert callable(getattr(system, method)), method

    @pytest.mark.parametrize("name", ["fugaku", "supercloud", "in2p3"])
    def test_counter_round_trip(self, name):
        """counters_from_flops_bytes inverts the counter->flops/bytes map."""
        system = get_system(name)
        flops = np.array([1e12, 5e13, 2.5e11])
        moved = np.array([4e11, 1e12, 8e10])
        p2, p3, p4, p5 = system.counters_from_flops_bytes(flops, moved)
        back_f = system.flops_from_counters(p2, p3)
        back_m = system.moved_bytes_from_counters(p4, p5)
        np.testing.assert_allclose(back_f, flops, rtol=1e-9)
        np.testing.assert_allclose(back_m, moved, rtol=1e-9)

    @pytest.mark.parametrize("name", ["fugaku", "supercloud", "in2p3"])
    def test_roofline_objects(self, name):
        system = get_system(name)
        roofline = system.roofline()
        assert roofline.ridge_point == pytest.approx(system.ridge_point)
        multi = system.multi_ceiling()
        assert len(multi.ceilings) == len(system.ceilings())
        assert multi.peak_gflops == system.peak_gflops_node

    @pytest.mark.parametrize("name", ["fugaku", "supercloud", "in2p3"])
    def test_peak_gflops_at_is_monotone(self, name):
        system = get_system(name)
        freqs = system.frequencies_ghz
        peaks = [system.peak_gflops_at(f) for f in freqs]
        assert all(a < b for a, b in zip(peaks, peaks[1:]))
        assert peaks[-1] == pytest.approx(system.peak_gflops_node)


class TestFugakuBitIdentity:
    """The extraction must not move a single bit of the Fugaku path."""

    def test_trace_is_bit_identical(self):
        legacy = generate_trace(scale=SCALE, seed=SEED)
        ported = get_system("fugaku").generate_trace(scale=SCALE, seed=SEED)
        assert set(legacy.column_names) == set(ported.column_names)
        for col in legacy.column_names:
            assert np.array_equal(legacy[col], ported[col]), col

    def test_counter_math_is_bit_identical(self):
        rng = np.random.default_rng(0)
        p2, p3 = rng.uniform(1e9, 1e13, 64), rng.uniform(1e9, 1e13, 64)
        p4, p5 = rng.uniform(1e6, 1e10, 64), rng.uniform(1e6, 1e10, 64)
        system = get_system("fugaku")
        assert np.array_equal(
            system.flops_from_counters(p2, p3), flops_from_counters(p2, p3)
        )
        assert np.array_equal(
            system.moved_bytes_from_counters(p4, p5),
            moved_bytes_from_counters(p4, p5),
        )

    def test_characterization_labels_are_bit_identical(self):
        trace = generate_trace(scale=SCALE, seed=SEED)
        legacy = JobCharacterizer().labels_from_trace(trace)
        ported = JobCharacterizer.for_system(get_system("fugaku")).labels_from_trace(
            trace
        )
        assert np.array_equal(legacy, ported)

    def test_table2_contingency_is_bit_identical(self):
        trace = generate_trace(scale=SCALE, seed=SEED)
        legacy = table2_distribution(trace, characterizer=JobCharacterizer())
        ported = table2_distribution(
            trace,
            characterizer=JobCharacterizer.for_system(get_system("fugaku")),
        )
        assert legacy == ported

    def test_ridge_point_unchanged(self):
        assert get_system("fugaku").ridge_point == 3380.0 / 1024.0


class TestSyntheticSystems:
    def test_knees_are_distinct(self):
        ridges = {
            name: get_system(name).ridge_point
            for name in ("fugaku", "supercloud", "in2p3")
        }
        assert len(set(ridges.values())) == 3
        assert ridges["supercloud"] == pytest.approx(
            SUPERCLOUD.peak_gflops_node / SUPERCLOUD.peak_membw_gbs
        )
        assert ridges["in2p3"] == pytest.approx(
            IN2P3.peak_gflops_node / IN2P3.peak_membw_gbs
        )

    @pytest.mark.parametrize("name", ["supercloud", "in2p3"])
    def test_trace_generates_and_labels(self, name):
        system = get_system(name)
        trace = system.generate_trace(scale=SCALE, seed=SEED)
        assert len(trace) > 100
        labels = JobCharacterizer.for_system(system).labels_from_trace(trace)
        # both classes are present: the workload mix straddles the knee
        assert np.unique(labels).size == 2

    def test_workload_mixes_differ(self):
        sc = get_system("supercloud").workload_config(scale=SCALE, seed=SEED)
        i3 = get_system("in2p3").workload_config(scale=SCALE, seed=SEED)
        assert {a.name for a in sc.catalog} != {a.name for a in i3.catalog}

    def test_spec_validation_rejects_bad_declarations(self):
        with pytest.raises(ValueError, match="positive"):
            MachineSpec(
                name="bad",
                peak_gflops_node=-1.0,
                peak_membw_gbs=100.0,
                cores_per_node=4,
                frequencies_ghz=(2.0,),
                frequency_peaks=((2.0, -1.0),),
            )
        with pytest.raises(ValueError, match="ascending"):
            MachineSpec(
                name="bad",
                peak_gflops_node=100.0,
                peak_membw_gbs=100.0,
                cores_per_node=4,
                frequencies_ghz=(2.2, 2.0),
                frequency_peaks=((2.2, 90.0), (2.0, 100.0)),
            )

    def test_boost_detection(self):
        sc = get_system("supercloud")
        assert sc.is_boost(sc.frequencies_ghz[-1])
        assert not sc.is_boost(sc.frequencies_ghz[0])
