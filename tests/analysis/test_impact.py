"""Tests for the §V-C.d system-impact estimator."""

import numpy as np
import pytest

from repro.analysis.impact import (
    DURATION_REDUCTION_BOOST_MODE,
    POWER_REDUCTION_NORMAL_MODE,
    estimate_impact,
)


class TestEstimate:
    def test_constants_match_paper(self):
        # Kodama et al. numbers cited in §V-C.d
        assert POWER_REDUCTION_NORMAL_MODE == 0.15
        assert DURATION_REDUCTION_BOOST_MODE == 0.10

    def test_populations_counted(self, tiny_trace, tiny_labels):
        est = estimate_impact(tiny_trace, tiny_labels)
        boost = tiny_trace["freq_req_ghz"] >= 2.2
        assert est.n_memory_in_boost == int(np.sum((tiny_labels == 0) & boost))
        assert est.n_compute_in_normal == int(np.sum((tiny_labels == 1) & ~boost))

    def test_savings_positive(self, tiny_trace, tiny_labels):
        est = estimate_impact(tiny_trace, tiny_labels)
        assert est.total_power_saving_mw > 0
        assert est.total_energy_saving_gj > 0
        assert est.total_saved_node_hours > 0

    def test_per_job_power_saving_is_15_percent(self, tiny_trace, tiny_labels):
        est = estimate_impact(tiny_trace, tiny_labels)
        assert est.power_saving_w_per_job == pytest.approx(
            0.15 * est.mean_power_w_memory_in_boost
        )

    def test_accuracy_scales_linearly(self, tiny_trace, tiny_labels):
        full = estimate_impact(tiny_trace, tiny_labels, classifier_accuracy=1.0)
        ninety = estimate_impact(tiny_trace, tiny_labels, classifier_accuracy=0.9)
        assert ninety.total_power_saving_mw == pytest.approx(0.9 * full.total_power_saving_mw)
        assert ninety.total_saved_node_hours == pytest.approx(0.9 * full.total_saved_node_hours)

    def test_invalid_accuracy(self, tiny_trace, tiny_labels):
        with pytest.raises(ValueError):
            estimate_impact(tiny_trace, tiny_labels, classifier_accuracy=0.0)
        with pytest.raises(ValueError):
            estimate_impact(tiny_trace, tiny_labels, classifier_accuracy=1.1)

    def test_characterizes_when_labels_missing(self, tiny_trace, tiny_labels):
        a = estimate_impact(tiny_trace)
        b = estimate_impact(tiny_trace, tiny_labels)
        assert a.n_memory_in_boost == b.n_memory_in_boost

    def test_summary_rows(self, tiny_trace, tiny_labels):
        rows = estimate_impact(tiny_trace, tiny_labels).summary_rows()
        assert len(rows) == 2
        assert rows[0][0] == "memory-bound @ boost"

    def test_energy_is_power_times_duration(self, tiny_trace, tiny_labels):
        est = estimate_impact(tiny_trace, tiny_labels, classifier_accuracy=1.0)
        boost = tiny_trace["freq_req_ghz"] >= 2.2
        mask = (tiny_labels == 0) & boost
        expected_j = 0.15 * float(
            (tiny_trace["power_avg_w"][mask] * tiny_trace["duration"][mask]).sum()
        )
        assert est.total_energy_saving_gj == pytest.approx(expected_j / 1e9)
