"""Tests for the Fig. 2 / Fig. 4 temporal distributions."""

import numpy as np
import pytest

from repro.analysis.distributions import (
    class_share_per_day,
    detect_maintenance_gap,
    jobs_per_day,
)
from repro.fugaku.workload import APR_1, WorkloadConfig


class TestJobsPerDay:
    def test_counts_sum_to_trace(self, tiny_trace):
        days, counts = jobs_per_day(tiny_trace)
        assert counts.sum() == len(tiny_trace)
        assert days.shape == counts.shape

    def test_explicit_n_days(self, tiny_trace):
        days, counts = jobs_per_day(tiny_trace, n_days=APR_1)
        assert len(days) == APR_1

    def test_maintenance_dip_visible(self, tiny_trace):
        _, counts = jobs_per_day(tiny_trace, n_days=APR_1)
        lo, hi = WorkloadConfig().maintenance_days
        assert counts[lo:hi].mean() < 0.3 * np.median(counts[counts > 0])


class TestClassShare:
    def test_partition(self, tiny_trace, tiny_labels):
        _, mem, comp, share = class_share_per_day(tiny_trace, tiny_labels, n_days=APR_1)
        assert (mem + comp).sum() == len(tiny_trace)

    def test_share_in_unit_interval(self, tiny_trace, tiny_labels):
        _, _, _, share = class_share_per_day(tiny_trace, tiny_labels, n_days=APR_1)
        valid = share[~np.isnan(share)]
        assert np.all((0 <= valid) & (valid <= 1))

    def test_memory_majority_most_days(self, tiny_trace, tiny_labels):
        """Fig. 4: memory-bound jobs dominate consistently over time."""
        _, _, _, share = class_share_per_day(tiny_trace, tiny_labels, n_days=APR_1)
        valid = share[~np.isnan(share)]
        assert np.mean(valid > 0.5) > 0.8

    def test_label_length_mismatch(self, tiny_trace):
        with pytest.raises(ValueError):
            class_share_per_day(tiny_trace, np.zeros(3))


class TestMaintenanceDetection:
    def test_detects_synthetic_gap(self):
        counts = np.array([100, 98, 103, 2, 1, 99, 101])
        assert detect_maintenance_gap(counts) == [3, 4]

    def test_no_gap(self):
        counts = np.array([100, 98, 103, 99])
        assert detect_maintenance_gap(counts) == []

    def test_detects_trace_maintenance(self, tiny_trace):
        _, counts = jobs_per_day(tiny_trace, n_days=APR_1)
        gap = detect_maintenance_gap(counts)
        lo, hi = WorkloadConfig().maintenance_days
        assert set(range(lo, hi)) <= set(gap)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            detect_maintenance_gap(np.array([]))
