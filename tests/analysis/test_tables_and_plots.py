"""Tests for Table II, the roofline figures and the frequency association."""

import numpy as np
import pytest

from repro.analysis.roofline_plots import (
    fig3_scatter_summary,
    fig5_frequency_split,
    frequency_position_association,
)
from repro.analysis.tables import Table2, table2_distribution


class TestTable2:
    def test_totals_consistent(self, tiny_trace, tiny_labels):
        t = table2_distribution(tiny_trace, tiny_labels)
        assert t.total == len(tiny_trace)
        assert t.memory_total + t.compute_total == t.total

    def test_memory_majority(self, tiny_trace, tiny_labels):
        t = table2_distribution(tiny_trace, tiny_labels)
        assert t.memory_to_compute_ratio > 1.5

    def test_fractions_in_paper_ballpark(self, tiny_trace, tiny_labels):
        t = table2_distribution(tiny_trace, tiny_labels)
        # paper: 54% of memory-bound at normal mode; 31% of compute-bound at boost
        assert 0.3 < t.frac_memory_in_normal < 0.8
        assert 0.1 < t.frac_compute_in_boost < 0.6

    def test_rows_shape(self, tiny_trace, tiny_labels):
        rows = table2_distribution(tiny_trace, tiny_labels).rows()
        assert len(rows) == 3
        assert rows[2][0] == "Total"
        assert rows[0][3] == rows[0][1] + rows[0][2]

    def test_characterizes_when_labels_missing(self, tiny_trace, tiny_labels):
        t = table2_distribution(tiny_trace)
        t2 = table2_distribution(tiny_trace, tiny_labels)
        assert t == t2

    def test_manual_contingency(self):
        t = Table2(normal_memory=891056, normal_compute=330878,
                   boost_memory=752421, boost_compute=147097)
        # the actual numbers of the paper's Table II
        assert t.total == 2_121_452
        assert t.memory_to_compute_ratio == pytest.approx(3.44, abs=0.01)
        assert t.frac_memory_in_normal == pytest.approx(0.542, abs=0.001)
        assert t.frac_compute_in_boost == pytest.approx(0.308, abs=0.001)


class TestFig3:
    def test_skew_toward_memory_bound(self, tiny_trace):
        s = fig3_scatter_summary(tiny_trace)
        assert s.n_jobs == len(tiny_trace)
        assert s.frac_memory_bound > 0.5
        assert s.median_op < 3.3

    def test_most_jobs_below_ceilings(self, tiny_trace):
        s = fig3_scatter_summary(tiny_trace)
        assert s.frac_near_ceiling < 0.5


class TestFig5:
    def test_split_covers_both_modes(self, tiny_trace):
        split = fig5_frequency_split(tiny_trace)
        assert set(split) == {2.0, 2.2}
        assert split[2.0].n_jobs + split[2.2].n_jobs == len(tiny_trace)

    def test_both_modes_memory_skewed(self, tiny_trace):
        """Fig 5: the scatter looks similar for both frequencies."""
        split = fig5_frequency_split(tiny_trace)
        for s in split.values():
            assert s.frac_memory_bound > 0.5

    def test_association_is_weak(self, tiny_trace):
        """Fig 5: no observable correlation between frequency and position."""
        r = frequency_position_association(tiny_trace)
        assert abs(r) < 0.35
