"""Tests for the per-user class-mix analysis."""

import numpy as np
import pytest

from repro.analysis.user_mix import per_user_class_mix, top_users_by_jobs
from repro.core import load_trace_into_db


class TestTopUsers:
    def test_sql_groupby_counts(self, tiny_trace):
        db = load_trace_into_db(tiny_trace)
        rows = top_users_by_jobs(db, k=5)
        assert len(rows) == 5
        counts = [r["count"] for r in rows]
        assert counts == sorted(counts, reverse=True)
        # spot-check against numpy
        users, np_counts = np.unique(tiny_trace["user_name"], return_counts=True)
        assert rows[0]["count"] == int(np_counts.max())

    def test_invalid_k(self, tiny_trace):
        db = load_trace_into_db(tiny_trace)
        with pytest.raises(ValueError):
            top_users_by_jobs(db, k=0)


class TestClassMix:
    def test_summary_fields(self, tiny_trace, tiny_labels):
        s = per_user_class_mix(tiny_trace, tiny_labels)
        assert s.n_users > 0
        assert 0.5 <= s.mean_dominance <= 1.0
        assert 0.0 <= s.frac_users_over_90pct_one_class <= 1.0
        assert len(s.top_users) <= 10
        for name, n_jobs, mem_share in s.top_users:
            assert n_jobs > 0
            assert 0.0 <= mem_share <= 1.0

    def test_users_are_specialized(self, tiny_trace, tiny_labels):
        """The §V-A premise: user name is a strong prior for the label."""
        s = per_user_class_mix(tiny_trace, tiny_labels)
        assert s.mean_dominance > 0.7

    def test_label_length_checked(self, tiny_trace):
        with pytest.raises(ValueError):
            per_user_class_mix(tiny_trace, np.zeros(3))

    def test_min_jobs_filter(self, tiny_trace, tiny_labels):
        strict_summary = per_user_class_mix(tiny_trace, tiny_labels, min_jobs=50)
        loose_summary = per_user_class_mix(tiny_trace, tiny_labels, min_jobs=1)
        assert strict_summary.n_users <= loose_summary.n_users

    def test_min_jobs_too_high(self, tiny_trace, tiny_labels):
        with pytest.raises(ValueError):
            per_user_class_mix(tiny_trace, tiny_labels, min_jobs=10**9)
