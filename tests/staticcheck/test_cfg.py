"""CFG construction edge cases and fixpoint termination.

The structural assertions use two tiny analyses run through the real
fixpoint engine rather than poking at block ids (which are an
implementation detail): *must-pass* (does every path from entry to a
block cross a marker element?) and *may-pass* (does some path?).
"""

import ast
import textwrap

from repro.staticcheck.flow import (
    ForwardAnalysis,
    build_cfgs,
    run_forward,
)
from repro.staticcheck.flow import cfg as cfgmod
from repro.staticcheck.flow.cfg import ForBind, WithExit, build_cfg


def graphs_of(src):
    tree = ast.parse(textwrap.dedent(src))
    return {g.qualname: g for g in build_cfgs(tree)}


def cfg_of(src, name="f"):
    return graphs_of(src)[name].cfg


def blocks_with(cfg, pred):
    return [b for b in cfg.blocks if any(pred(e) for e in b.elements)]


def assigns(name):
    """Element predicate: ``ast.Assign`` whose sole target is ``name``."""

    def pred(element):
        return (
            isinstance(element, ast.Assign)
            and len(element.targets) == 1
            and isinstance(element.targets[0], ast.Name)
            and element.targets[0].id == name
        )

    return pred


class _PathAnalysis(ForwardAnalysis):
    """Tracks whether paths cross any element matching ``marker``.

    ``must=True``: state is True iff *every* path so far crossed it.
    ``must=False``: state is True iff *some* path crossed it.
    """

    def __init__(self, marker, *, must):
        self.marker = marker
        self.must = must

    def initial(self):
        return False

    def join(self, a, b):
        return (a and b) if self.must else (a or b)

    def transfer(self, element, state):
        return True if self.marker(element) else state

    def at_exit(self, cfg):
        result = run_forward(cfg, self)
        return result.in_states.get(cfg.exit)


def must_pass(cfg, marker):
    """True iff every entry->exit path crosses a matching element."""
    return _PathAnalysis(marker, must=True).at_exit(cfg)


def may_pass(cfg, marker):
    """True iff some entry->exit path crosses a matching element."""
    return _PathAnalysis(marker, must=False).at_exit(cfg)


class TestTryFinally:
    def test_return_is_routed_through_finally(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    if x:
                        return 1
                    return 2
                finally:
                    done = 1
            """
        )
        assert must_pass(cfg, assigns("done")) is True

    def test_exception_path_is_routed_through_finally(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    y = risky(x)
                finally:
                    done = 1
            """
        )
        assert must_pass(cfg, assigns("done")) is True

    def test_break_and_continue_cross_enclosing_finally(self):
        """Every path crossing a break/continue also crosses the finally.

        (An unconditional must-pass would be wrong: ``xs`` may be empty
        and the loop body never run.)
        """
        cfg = cfg_of(
            """
            def f(xs):
                for x in xs:
                    try:
                        if x:
                            broke = 1
                            break
                        cont = 1
                        continue
                    finally:
                        done = 1
            """
        )

        class PathSets(ForwardAnalysis):
            """State: the distinct marker-sets achievable along some path."""

            MARKERS = {name: assigns(name) for name in ("broke", "cont", "done")}

            def initial(self):
                return frozenset({frozenset()})

            def join(self, a, b):
                return a | b

            def transfer(self, element, state):
                hit = {n for n, pred in self.MARKERS.items() if pred(element)}
                if not hit:
                    return state
                return frozenset(s | hit for s in state)

        paths = run_forward(cfg, PathSets()).in_states[cfg.exit]
        assert any("broke" in s for s in paths)
        assert any("cont" in s for s in paths)
        assert all("done" in s for s in paths if "broke" in s)
        assert all("done" in s for s in paths if "cont" in s)

    def test_nested_finally_chains_outward(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    try:
                        return risky(x)
                    finally:
                        inner = 1
                finally:
                    outer = 1
            """
        )
        assert must_pass(cfg, assigns("inner")) is True
        assert must_pass(cfg, assigns("outer")) is True

    def test_handler_sees_pre_state_of_raising_assignment(self):
        """The exception edge leaves *before* the assignment element."""
        cfg = cfg_of(
            """
            def f(p):
                try:
                    handle = risky(p)
                except ValueError:
                    recovered = 1
            """
        )
        analysis = _PathAnalysis(assigns("handle"), must=False)
        result = run_forward(cfg, analysis)
        (handler_block,) = blocks_with(cfg, assigns("recovered"))
        # No path into the handler has executed the binding.
        assert result.in_states[handler_block.id] is False
        # ... but the normal path to exit has (join at exit is a may-join).
        assert may_pass(cfg, assigns("handle")) is True


class TestWith:
    def test_nested_with_exits_both_contexts_on_every_path(self):
        cfg = cfg_of(
            """
            def f(p, q):
                with open(p) as a:
                    with open(q) as b:
                        use(a, b)
            """
        )
        exits = blocks_with(cfg, lambda e: isinstance(e, WithExit))
        names = [
            e.item.optional_vars.id
            for b in exits
            for e in b.elements
            if isinstance(e, WithExit)
        ]
        assert sorted(names) == ["a", "b"]
        for name in ("a", "b"):

            def is_exit(element, name=name):
                return (
                    isinstance(element, WithExit)
                    and element.item.optional_vars.id == name
                )

            assert must_pass(cfg, is_exit) is True

    def test_multi_item_with_builds_one_exit_per_item(self):
        cfg = cfg_of(
            """
            def f(p, q):
                with open(p) as a, open(q) as b:
                    use(a, b)
            """
        )
        count = sum(
            isinstance(e, WithExit) for b in cfg.blocks for e in b.elements
        )
        assert count == 2

    def test_return_inside_with_crosses_the_exit(self):
        cfg = cfg_of(
            """
            def f(p):
                with open(p) as a:
                    return a.read()
            """
        )
        assert must_pass(cfg, lambda e: isinstance(e, WithExit)) is True


class TestLoops:
    LOOP_ELSE = """
        def f(xs):
            for x in xs:
                if x:
                    break
            else:
                exhausted = 1
            after = 1
    """

    def test_loop_else_is_skipped_by_break(self):
        cfg = cfg_of(self.LOOP_ELSE)
        assert may_pass(cfg, assigns("exhausted")) is True
        assert must_pass(cfg, assigns("exhausted")) is False  # break path
        assert must_pass(cfg, assigns("after")) is True

    def test_loop_else_always_runs_without_break(self):
        cfg = cfg_of(
            """
            def f(xs):
                for x in xs:
                    y = x
                else:
                    exhausted = 1
            """
        )
        assert must_pass(cfg, assigns("exhausted")) is True

    def test_while_true_without_break_makes_exit_unreachable(self):
        cfg = cfg_of(
            """
            def f():
                while True:
                    spin = 1
            """
        )
        result = run_forward(cfg, _PathAnalysis(assigns("spin"), must=False))
        assert not result.reached(cfg.exit)
        assert result.iterations < 64 * len(cfg.blocks) + 256

    def test_while_true_with_break_reaches_exit(self):
        cfg = cfg_of(
            """
            def f(x):
                while True:
                    if x:
                        break
            """
        )
        assert run_forward(
            _cfg := cfg, _PathAnalysis(assigns("never"), must=False)
        ).reached(_cfg.exit)

    def test_comprehension_builds_no_loop_header(self):
        """Comprehensions are opaque expressions: no ForBind, no Test, and
        no back edge — Python 3 scoping means they bind nothing here."""
        cfg = cfg_of(
            """
            def f(xs):
                ys = [x * 2 for x in xs if x]
                return ys
            """
        )
        assert blocks_with(cfg, lambda e: isinstance(e, (ForBind, cfgmod.Test))) == []


class TestUnreachableCode:
    def test_code_after_return_gets_blocks_but_stays_unreached(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                dead = 1
            """
        )
        (dead_block,) = blocks_with(cfg, assigns("dead"))
        result = run_forward(cfg, _PathAnalysis(assigns("dead"), must=False))
        assert not result.reached(dead_block.id)
        assert may_pass(cfg, assigns("dead")) is False

    def test_fixpoint_terminates_on_unreachable_loop_nest(self):
        cfg = cfg_of(
            """
            def f(xs):
                raise ValueError
                for x in xs:
                    while x:
                        x -= 1
            """
        )
        result = run_forward(cfg, _PathAnalysis(assigns("x"), must=False))
        assert result.iterations < 64 * len(cfg.blocks) + 256

    def test_growing_state_hits_cap_not_hang(self):
        """A lattice of unbounded height degrades into the backstop cap."""

        class Diverging(ForwardAnalysis):
            def initial(self):
                return 0

            def join(self, a, b):
                return max(a, b)

            def transfer(self, element, state):
                return state + 1  # never converges around the back edge

        cfg = cfg_of(
            """
            def f(xs):
                for x in xs:
                    y = x
            """
        )
        result = run_forward(cfg, Diverging())
        assert result.iterations == 64 * len(cfg.blocks) + 256


class TestGraphShape:
    def test_build_cfg_accepts_a_bare_statement_list(self):
        tree = ast.parse("x = 1\nif x:\n    y = 2\n")
        cfg = build_cfg(tree.body)
        assert must_pass(cfg, assigns("x")) is True
        assert must_pass(cfg, assigns("y")) is False
        assert may_pass(cfg, assigns("y")) is True

    def test_every_function_and_module_gets_a_graph(self):
        graphs = graphs_of(
            """
            top = 1

            def outer():
                def inner():
                    return 1
                return inner

            class C:
                def method(self):
                    return 2
            """
        )
        assert set(graphs) == {"<module>", "outer", "outer.inner", "C.method"}

    def test_edges_point_at_real_blocks(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    for i in range(x):
                        if i:
                            continue
                        with open(i) as fh:
                            return fh
                except OSError:
                    pass
                finally:
                    x = 0
                return None
            """
        )
        ids = {b.id for b in cfg.blocks}
        for block in cfg.blocks:
            assert block.succs <= ids
        preds = cfg.preds()
        assert set(preds) == ids
