"""CLI contract: exit codes, formats, rule listing, filtering."""

import json
import subprocess
import sys
from pathlib import Path

from repro.staticcheck.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main

TRIGGER = "import time\nt0 = time.time()\n"
CLEAN = "import time\nt0 = time.perf_counter()\n"


def write(tmp_path, name, content):
    p = tmp_path / name
    p.write_text(content)
    return str(p)


class TestExitCodes:
    def test_clean_exits_zero(self, tmp_path, capsys):
        assert main([write(tmp_path, "ok.py", CLEAN)]) == EXIT_CLEAN

    def test_findings_exit_one(self, tmp_path, capsys):
        assert main([write(tmp_path, "bad.py", TRIGGER)]) == EXIT_FINDINGS

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.py")]) == EXIT_ERROR

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", CLEAN)
        assert main([path, "--select", "bogus-rule"]) == EXIT_ERROR


class TestOutput:
    def test_text_format(self, tmp_path, capsys):
        main([write(tmp_path, "bad.py", TRIGGER)])
        out = capsys.readouterr().out
        assert "bad.py:2:" in out and "wallclock-timing" in out

    def test_json_format(self, tmp_path, capsys):
        main([write(tmp_path, "bad.py", TRIGGER), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "wallclock-timing"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("unseeded-rng", "export-drift", "unordered-iteration"):
            assert rule_id in out

    def test_ignore_filters_rule(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", TRIGGER)
        assert main([path, "--ignore", "wallclock-timing"]) == EXIT_CLEAN


class TestModuleEntryPoint:
    def test_python_dash_m_runs(self, tmp_path):
        """The documented invocation works end to end as a subprocess."""
        bad = write(tmp_path, "bad.py", TRIGGER)
        repo_src = Path(__file__).resolve().parents[2] / "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", bad],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(repo_src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_FINDINGS
        assert "wallclock-timing" in proc.stdout
