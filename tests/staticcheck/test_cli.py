"""CLI contract: exit codes, formats, rule listing, filtering."""

import json
import subprocess
import sys
from pathlib import Path

from repro.staticcheck.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, build_parser, main

TRIGGER = "import time\nt0 = time.time()\n"
CLEAN = "import time\nt0 = time.perf_counter()\n"


def write(tmp_path, name, content):
    p = tmp_path / name
    p.write_text(content)
    return str(p)


class TestExitCodes:
    def test_clean_exits_zero(self, tmp_path, capsys):
        assert main([write(tmp_path, "ok.py", CLEAN)]) == EXIT_CLEAN

    def test_findings_exit_one(self, tmp_path, capsys):
        assert main([write(tmp_path, "bad.py", TRIGGER)]) == EXIT_FINDINGS

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.py")]) == EXIT_ERROR

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", CLEAN)
        assert main([path, "--select", "bogus-rule"]) == EXIT_ERROR

    def test_explicit_non_python_file_exits_two(self, tmp_path, capsys):
        readme = tmp_path / "README.md"
        readme.write_text("# not python\n")
        assert main([str(readme)]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err


class TestOutput:
    def test_text_format(self, tmp_path, capsys):
        main([write(tmp_path, "bad.py", TRIGGER)])
        out = capsys.readouterr().out
        assert "bad.py:2:" in out and "wallclock-timing" in out

    def test_json_format(self, tmp_path, capsys):
        main([write(tmp_path, "bad.py", TRIGGER), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "wallclock-timing"

    def test_sarif_format(self, tmp_path, capsys):
        main([write(tmp_path, "bad.py", TRIGGER), "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "wallclock-timing"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("unseeded-rng", "export-drift", "unordered-iteration"):
            assert rule_id in out
        assert "[project] " in out and "contract-drift" in out

    def test_ignore_filters_rule(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", TRIGGER)
        assert main([path, "--ignore", "wallclock-timing"]) == EXIT_CLEAN

    def test_statistics_go_to_stderr_not_stdout(self, tmp_path, capsys):
        main([write(tmp_path, "bad.py", TRIGGER), "--format", "json", "--statistics"])
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout stays machine-parseable
        assert "files checked" in captured.err
        assert "wallclock-timing" in captured.err  # per-rule counter


class TestCacheAndBaselineFlags:
    def test_cache_flag_creates_cache_and_warm_run_matches(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "bad.py", TRIGGER)
        assert main(["bad.py", "--cache", "--format", "json"]) == EXIT_FINDINGS
        cold = capsys.readouterr().out
        assert (tmp_path / ".staticcheck-cache.json").is_file()
        assert main(["bad.py", "--cache", "--format", "json"]) == EXIT_FINDINGS
        assert capsys.readouterr().out == cold

    def test_explicit_cache_path(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", CLEAN)
        cache = tmp_path / "custom-cache.json"
        assert main([path, "--cache", str(cache)]) == EXIT_CLEAN
        assert cache.is_file()

    def test_baseline_write_then_check_ratchets(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", TRIGGER)
        baseline = str(tmp_path / "baseline.json")
        assert main([bad, "--baseline", "write", "--baseline-file", baseline]) == EXIT_CLEAN
        assert "wrote 1 finding(s)" in capsys.readouterr().out
        assert main([bad, "--baseline", "check", "--baseline-file", baseline]) == EXIT_CLEAN
        capsys.readouterr()
        # fixing the tracked finding is announced on the next check
        write(tmp_path, "bad.py", CLEAN)
        assert main([bad, "--baseline", "check", "--baseline-file", baseline]) == EXIT_CLEAN
        assert "1 tracked finding(s) resolved" in capsys.readouterr().err

    def test_baseline_check_without_file_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", CLEAN)
        missing = str(tmp_path / "absent-baseline.json")
        assert main([path, "--baseline", "check", "--baseline-file", missing]) == EXIT_ERROR


class TestParser:
    def test_build_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.format == "text"
        assert args.cache is None and args.jobs == 1
        assert args.baseline is None and args.statistics is False

    def test_bare_cache_flag_uses_default_path(self):
        args = build_parser().parse_args(["--cache"])
        assert args.cache == ".staticcheck-cache.json"


class TestModuleEntryPoint:
    def test_python_dash_m_runs(self, tmp_path):
        """The documented invocation works end to end as a subprocess."""
        bad = write(tmp_path, "bad.py", TRIGGER)
        repo_src = Path(__file__).resolve().parents[2] / "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", bad],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(repo_src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_FINDINGS
        assert "wallclock-timing" in proc.stdout
