"""Tier-1 gate: the repo's own sources must pass the project linter.

This is the enforcement point for the correctness-tooling layer: any new
unseeded RNG, wall-clock duration, float-equality boundary, silent
handler, unpicklable parallel task, export drift or unordered iteration
in ``src/repro`` fails the build here — and so does any cross-module
regression the project rules see: circular runtime imports, call sites
drifting from intra-package signatures, tainted values flowing into
persistence, or ``__all__`` exports nothing imports.  Exactly as
``python -m repro.staticcheck`` would in CI.
"""

from pathlib import Path

from repro.staticcheck import check_paths, resolve_project_rules, resolve_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src" / "repro"

#: Usage in these trees keeps a public symbol alive for ``dead-export``.
REFERENCE_DIRS = [
    d for d in (REPO_ROOT / "tests", REPO_ROOT / "benchmarks", REPO_ROOT / "examples") if d.is_dir()
]


def test_repo_src_exists():
    assert REPO_SRC.is_dir(), f"expected package sources at {REPO_SRC}"


def test_repo_is_clean():
    result = check_paths([REPO_SRC], reference_paths=REFERENCE_DIRS)
    assert result.files_checked > 50  # the walk really saw the code base
    details = "\n".join(str(f) for f in result.findings)
    assert result.clean, (
        f"staticcheck found {len(result.findings)} unsuppressed finding(s); "
        f"fix them or add a justified '# staticcheck: ignore[rule]' comment:\n{details}"
    )


def test_project_rules_were_active():
    """The gate runs the whole-program layer, not just single-file rules."""
    assert {r.id for r in resolve_project_rules()} >= {
        "import-cycle",
        "contract-drift",
        "tainted-persistence",
        "dead-export",
    }


def test_flow_rules_were_active():
    """The gate runs the flow-sensitive tier: the roofline/counters unit
    annotations and the resource lifecycles in ``src/repro`` are being
    checked, not just the single-statement rules."""
    assert {r.id for r in resolve_rules()} >= {
        "unit-mismatch",
        "resource-leak",
        "double-release",
    }


def test_seeded_flow_violation_is_caught(tmp_path):
    """End-to-end: the gate bites on a flow-tier violation too."""
    bad = tmp_path / "leaky.py"
    bad.write_text(
        "import SharedArray\n"
        "def _f(name, xs):\n"
        "    seg = SharedArray.create(name, len(xs))\n"
        "    fill(seg, xs)\n"
        "    seg.close()\n"
    )
    result = check_paths([tmp_path])
    assert [f.rule_id for f in result.findings] == ["resource-leak"]
    assert result.findings[0].line == 3


def test_sysmodel_rules_were_active():
    """The gate holds the SystemModel plugin contract: conformance and
    unit conventions across the abstraction boundary, Fugaku constants
    confined to the Fugaku model modules, and registry-only dispatch."""
    assert {r.id for r in resolve_project_rules()} >= {
        "sysmodel-contract",
        "system-constant-leak",
        "system-dispatch",
    }
    assert "sysmodel-dimension" in {r.id for r in resolve_rules()}


def test_seeded_violation_is_caught(tmp_path):
    """End-to-end: the gate actually bites on a real violation."""
    bad = tmp_path / "regression.py"
    bad.write_text("import time\nelapsed_t0 = time.time()\n")
    result = check_paths([tmp_path])
    assert not result.clean
    assert [f.rule_id for f in result.findings] == ["wallclock-timing"]
