"""Perf-tier rules: dtype/shape dataflow and hot-path vectorization.

The two *seeded-bug* fixtures mirror the acceptance criteria: a scalar
per-row loop introduced into a fixture copy of ``_PackedForest.predict``
and a silent float64 upcast in an embedder-like projection.  Each must
produce exactly one finding at the right line — in the findings list, in
the JSON render and in the SARIF render — and so must a minimal fixture
for every other perf rule.
"""

import json
import textwrap

import pytest

from repro.staticcheck import (
    check_paths,
    check_source,
    render_json,
    render_sarif,
    resolve_rules,
)
from repro.staticcheck.perf.hotpath import (
    BATCH_CONTRACTS,
    ENTRY_POINTS,
    hot_functions,
    hotpath_lines,
)

PERF_RULES = [
    "dtype-upcast",
    "dtype-narrowing",
    "broadcast-mismatch",
    "scalar-loop",
    "per-item-call",
    "loop-alloc",
    "quadratic-growth",
    "hidden-copy",
]


def run(source, *, select=PERF_RULES, path="snippet.py"):
    return check_source(
        textwrap.dedent(source), path=path, rules=resolve_rules(select=select)
    )


def findings_of(source, **kwargs):
    return [(f.rule_id, f.line, f.message) for f in run(source, **kwargs).findings]


#: Acceptance fixture 1 — a fixture copy of ``_PackedForest.predict``
#: devectorized into a per-row Python loop (line 6).  ``predict`` is hot
#: by entry-point name alone, no annotation needed.
FOREST_BUG = """\
import numpy as np


class _PackedForest:
    def predict(self, X, out):
        for i in range(X.shape[0]):
            out[i] = self._route(X[i])
        return out
"""

#: Acceptance fixture 2 — embedder-like projection where a float32
#: matrix meets the float64 idf vector (line 7): the whole product is
#: silently promoted to float64.
EMBEDDER_BUG = """\
import numpy as np


def embed(n, dim):
    M = np.zeros((n, dim), dtype=np.float32)
    idf = np.linspace(0.0, 1.0, dim)
    return M * idf
"""

#: Minimal exactly-one-finding fixture per remaining perf rule.
RULE_FIXTURES = {
    "dtype-narrowing": (
        """\
        import numpy as np


        def compress(X):  # dtype: X=float64 -> float32
            return X * 2.0
        """,
        5,
    ),
    "broadcast-mismatch": (
        """\
        import numpy as np


        def add():
            a = np.zeros((4, 3))
            b = np.zeros((4, 4))
            return a + b
        """,
        7,
    ),
    "per-item-call": (
        """\
        import numpy as np


        def predict_records(model, batch):
            out = []
            for row in batch:
                out.append(model.predict(row))
            return out
        """,
        7,
    ),
    "loop-alloc": (
        """\
        import numpy as np


        def encode(batch):
            total = np.zeros(8)
            for row in batch:
                buf = np.zeros(8)
                total += buf + row
            return total
        """,
        7,
    ),
    "quadratic-growth": (
        """\
        import numpy as np


        def query(chunks):
            acc = np.zeros(0)
            for part in chunks:
                acc = np.concatenate([acc, part])
            return acc
        """,
        7,
    ),
    "hidden-copy": (
        """\
        import numpy as np


        def kneighbors(pairs):
            merged = []
            for a, b in pairs:
                merged.append(np.vstack([a, b]))
            return merged
        """,
        7,
    ),
}
RULE_FIXTURES["scalar-loop"] = (FOREST_BUG, 6)
RULE_FIXTURES["dtype-upcast"] = (EMBEDDER_BUG, 7)


class TestSeededForestBug:
    def test_exactly_one_finding_at_the_loop(self):
        result = run(FOREST_BUG)
        assert [(f.rule_id, f.line) for f in result.findings] == [("scalar-loop", 6)]
        assert "row by row" in result.findings[0].message
        assert "vectorized" in result.findings[0].message

    def test_cold_copy_of_the_same_loop_is_silent(self):
        # identical body, but the method is not an entry point and carries
        # no # hotpath: annotation — the vectorization tier must not fire
        assert findings_of(FOREST_BUG.replace("def predict", "def route_all")) == []


class TestSeededEmbedderBug:
    def test_exactly_one_finding_at_the_product(self):
        result = run(EMBEDDER_BUG)
        assert [(f.rule_id, f.line) for f in result.findings] == [("dtype-upcast", 7)]
        assert "float32" in result.findings[0].message
        assert "float64" in result.findings[0].message


class TestEveryRuleInBothRenders:
    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_exactly_one_finding(self, rule):
        source, line = RULE_FIXTURES[rule]
        result = run(source)
        assert [(f.rule_id, f.line) for f in result.findings] == [(rule, line)]

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_json_render_carries_the_same_single_finding(self, rule):
        source, line = RULE_FIXTURES[rule]
        doc = json.loads(render_json(run(source)))
        assert [(f["rule"], f["line"]) for f in doc["findings"]] == [(rule, line)]

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_sarif_render_carries_the_same_single_finding(self, rule):
        source, line = RULE_FIXTURES[rule]
        doc = json.loads(render_sarif(run(source)))
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == rule
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == line


class TestHotPathDerivation:
    def test_registries_are_sane(self):
        # the batch-contract registry is a subset of the entry points: an
        # API with a batched calling convention is itself serve-path hot
        assert BATCH_CONTRACTS <= ENTRY_POINTS
        assert "predict" in BATCH_CONTRACTS and "encode" in BATCH_CONTRACTS

    def test_hotpath_lines_parses_comments_only(self):
        src = 'msg = "# hotpath: not a comment"\nx = 1  # hotpath: real one\n'
        assert hotpath_lines(src) == {2: "real one"}

    def test_annotation_makes_a_helper_hot(self):
        src = """\
        import numpy as np


        def scale_rows(X, w):  # hotpath: called per serve batch
            for i in range(X.shape[0]):
                X[i] *= w
        """
        assert [(r, l) for r, l, _ in findings_of(src)] == [("scalar-loop", 5)]
        # without the annotation the same body is cold and silent
        assert findings_of(src.replace("  # hotpath: called per serve batch", "")) == []

    def test_intra_module_closure_reaches_helpers(self):
        src = """\
        import numpy as np


        def _accumulate(X):
            for i in range(X.shape[0]):
                X[i] += 1.0
            return X


        def predict(X):
            return _accumulate(X)
        """
        result = run(src)
        assert [(f.rule_id, f.line) for f in result.findings] == [("scalar-loop", 5)]
        hot = hot_functions(result_module(src))
        assert set(hot) == {"predict", "_accumulate"}

    def test_batched_call_in_iterator_position_is_not_per_item(self):
        src = """\
        def serve(model, X):
            out = []
            for row in model.predict(X):
                out.append(row)
            return out
        """
        assert findings_of(src) == []


def result_module(source):
    """A ModuleContext for white-box hot-set assertions."""
    import ast

    from repro.staticcheck.engine import ModuleContext

    text = textwrap.dedent(source)
    return ModuleContext(path="snippet.py", source=text, tree=ast.parse(text))


class TestSuppression:
    def test_inline_ignore_is_honoured(self):
        src = """\
        import numpy as np


        def predict(self, X, out):
            for i in range(X.shape[0]):  # staticcheck: ignore[scalar-loop] - tiny fixed batch
                out[i] = X[i] + 1.0
            return out
        """
        result = run(src)
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["scalar-loop"]

    def test_stale_perf_suppression_is_audited(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(
            textwrap.dedent(
                """\
                import numpy as np

                __all__ = ["predict"]


                def predict(X):
                    return X + 1.0  # staticcheck: ignore[loop-alloc]
                """
            )
        )
        result = check_paths([target])
        rows = [f for f in result.findings if f.rule_id == "unused-suppression"]
        assert len(rows) == 1
        assert "ignore[loop-alloc]" in rows[0].message


class TestHotPathGap:
    def write_project(self, tmp_path, *, annotated):
        pkg = tmp_path / "pkg"
        pkg.mkdir(exist_ok=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "serve.py").write_text(
            textwrap.dedent(
                """\
                from pkg.helpers import scale


                def predict(X):
                    return scale(X)
                """
            )
        )
        tag = "  # hotpath: scaled per predict request" if annotated else ""
        (pkg / "helpers.py").write_text(
            textwrap.dedent(
                f"""\
                def scale(X):{tag}
                    return X * 2.0
                """
            )
        )
        return pkg

    def check_gap(self, pkg):
        from repro.staticcheck.perf.hotpath import HotPathGapRule

        result = check_paths([pkg], rules=[], project_rules=[HotPathGapRule()])
        return [f for f in result.findings if f.rule_id == "hot-path-gap"]

    def test_cross_module_hot_callee_demands_annotation(self, tmp_path):
        pkg = self.write_project(tmp_path, annotated=False)
        rows = self.check_gap(pkg)
        assert [(f.path, f.line) for f in rows] == [(str(pkg / "helpers.py"), 1)]
        assert "pkg.serve.predict" in rows[0].message
        assert "# hotpath:" in rows[0].message

    def test_annotated_callee_closes_the_gap(self, tmp_path):
        pkg = self.write_project(tmp_path, annotated=True)
        assert self.check_gap(pkg) == []


class TestHiddenCopyVariants:
    def test_fancy_index_with_literal_list(self):
        src = """\
        import numpy as np


        def encode(X):
            return X[[0, 2, 5]]
        """
        assert [(r, l) for r, l, _ in findings_of(src)] == [("hidden-copy", 5)]

    def test_reshape_of_transpose(self):
        src = """\
        import numpy as np


        def predict(X):
            return X.T.reshape(-1)
        """
        assert [(r, l) for r, l, _ in findings_of(src)] == [("hidden-copy", 5)]


class TestDataflowPrecision:
    def test_weak_python_scalars_never_widen(self):
        src = """\
        import numpy as np


        def halve(dim):
            M = np.zeros((4, dim), dtype=np.float32)
            return M * 0.5
        """
        assert findings_of(src) == []

    def test_symbolic_dims_do_not_invent_conflicts(self):
        src = """\
        import numpy as np


        def outer(n, m):
            a = np.zeros((n, 1))
            b = np.zeros((1, m))
            return a + b
        """
        assert findings_of(src) == []
