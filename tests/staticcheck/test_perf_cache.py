"""Warm-cache behaviour of the perf tier.

The acceptance criterion for the perf tier's cache integration: editing
*only* a ``# hotpath:`` comment must invalidate the file on the next
warm run — the annotation is analysis input (it decides which functions
the vectorization rules even look at) even though it is dead weight to
the Python runtime.
"""

import textwrap

from repro.staticcheck import check_paths, render_json, resolve_rules

PERF_RULES = [
    "dtype-upcast",
    "dtype-narrowing",
    "broadcast-mismatch",
    "scalar-loop",
    "per-item-call",
    "loop-alloc",
    "quadratic-growth",
    "hidden-copy",
]


def make_project(tmp_path, *, annotated):
    """One module whose only hot-path evidence is a ``# hotpath:`` comment."""
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    tag = "  # hotpath: drains the serve queue" if annotated else ""
    (pkg / "drain.py").write_text(
        textwrap.dedent(
            f"""\
            import numpy as np


            def drain(X, out):{tag}
                for i in range(X.shape[0]):
                    out[i] = X[i] + 1.0
                return out
            """
        )
    )
    (pkg / "other.py").write_text("OTHER = 1\n")
    return pkg


def check(pkg, cache):
    return check_paths([pkg], cache_path=cache, rules=resolve_rules(select=PERF_RULES))


class TestHotpathCommentInvalidation:
    def test_comment_only_edit_reanalyzes_the_file(self, tmp_path):
        pkg = make_project(tmp_path, annotated=False)
        cache = tmp_path / "cache.json"

        cold = check(pkg, cache)
        assert cold.findings == []  # drain() is cold: no annotation, no entry name

        # Edit ONLY the comment: same runtime bytecode, different analysis
        # input.  The file's content hash changes, the entry is discarded,
        # and the loop is now on a hot path.
        make_project(tmp_path, annotated=True)
        warm = check(pkg, cache)
        assert [(f.rule_id, f.line) for f in warm.findings] == [("scalar-loop", 5)]
        assert warm.stats.cache_misses == 1
        assert warm.stats.cache_hits == 2

    def test_untouched_warm_run_reproduces_cold_output(self, tmp_path):
        pkg = make_project(tmp_path, annotated=True)
        cache = tmp_path / "cache.json"
        cold = check(pkg, cache)
        warm = check(pkg, cache)
        assert warm.stats.cache_hits == 3 and warm.stats.cache_misses == 0
        assert render_json(warm) == render_json(cold)


class TestPerfStatistics:
    def test_cold_run_counts_perf_work_and_warm_run_skips_it(self, tmp_path):
        pkg = make_project(tmp_path, annotated=True)
        cache = tmp_path / "cache.json"
        cold = check(pkg, cache)
        # drain() is hot (annotation) and has one CFG worth of array
        # fixpointing; the empty __init__/other contribute nothing
        assert cold.stats.perf_hot_functions >= 1
        assert cold.stats.perf_array_fixpoints >= 1
        warm = check(pkg, cache)
        assert warm.stats.perf_hot_functions == 0
        assert warm.stats.perf_array_fixpoints == 0
