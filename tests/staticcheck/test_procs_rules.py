"""Procs-tier rules: fork-safety, boundary escapes, shared-memory protocol.

Each of the five process-boundary rules has a *seeded trigger* fixture
(exactly one finding, at the right line, in the findings list and in both
the JSON and SARIF renders) and a *clean sibling* that differs only in
the property the rule checks — most importantly the start-method pair:
the identical inherited-lock module is flagged under (possible) fork and
clean once ``set_start_method("spawn")`` pins the boundary.

The lifecycle test at the bottom is the acceptance cross-check: the same
seeded use-after-unlink bug is flagged statically by
``sharedmem-protocol`` and dynamically by the fork-aware sanitizer (the
fork child's ``sharedmem-use-after-unlink`` event, flushed to the
per-pid JSONL log).
"""

import json
import multiprocessing
import os
import textwrap

import pytest

from repro.staticcheck import check_paths, render_json, render_sarif
from repro.staticcheck.procs.facts import (
    HANDLE_FACTORIES,
    PROCESS_FANOUT_BASENAMES,
    SEGMENT_ROLES,
)
from repro.staticcheck.procs.rules import (
    BlockingInWorkerRule,
    BoundaryEscapeRule,
    ChildGlobalDivergenceRule,
    ForkUnsafeInheritanceRule,
    SharedMemProtocolRule,
)
from repro.staticcheck.registry import all_project_rules

PROCS_RULE_IDS = [
    "blocking-in-worker",
    "boundary-escape",
    "child-global-divergence",
    "fork-unsafe-inheritance",
    "sharedmem-protocol",
]


def procs_rules():
    return [
        BlockingInWorkerRule(),
        BoundaryEscapeRule(),
        ChildGlobalDivergenceRule(),
        ForkUnsafeInheritanceRule(),
        SharedMemProtocolRule(),
    ]


def check_pkg(tmp_path, source):
    """Analyze ``pkg/mod.py`` with every procs rule (and only those)."""
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(textwrap.dedent(source))
    return check_paths([pkg], rules=[], project_rules=procs_rules())


def rows(result):
    return [(f.rule_id, f.line) for f in result.findings]


#: Trigger — a module-level tracked lock acquired by the Process target,
#: with no start method pinned (fork-possible): flagged at the spawn.
FORK_UNSAFE_BUG = """\
import multiprocessing

from repro.sanitizers import new_lock

_model_lock = new_lock("pkg.mod._model_lock")


def refresh():
    with _model_lock:
        return 1


def launch():
    worker = multiprocessing.Process(target=refresh)
    worker.start()
    return worker
"""

#: Clean sibling — identical module, but the 'spawn' start method is
#: pinned, so the child imports fresh and inherits nothing.
FORK_UNSAFE_PINNED = FORK_UNSAFE_BUG.replace(
    'from repro.sanitizers import new_lock\n',
    'from repro.sanitizers import new_lock\n\nmultiprocessing.set_start_method("spawn")\n',
)

#: Trigger — a lambda handed to a process-backend ``parallel_map``.
ESCAPE_BUG = """\
from repro.parallel.executor import ExecutorConfig, parallel_map


def fanout(items):
    config = ExecutorConfig(backend="process", n_workers=2)
    return parallel_map(lambda x: x + 1, items, config=config)
"""

#: Clean sibling — the task is a module-level function.
ESCAPE_CLEAN = """\
from repro.parallel.executor import ExecutorConfig, parallel_map


def add_one(x):
    return x + 1


def fanout(items):
    config = ExecutorConfig(backend="process", n_workers=2)
    return parallel_map(add_one, items, config=config)
"""

#: Trigger — a cross-process-visible segment (its descriptor is handed
#: out) written outside the StateGuard/state-lock swap protocol.
SHAREDMEM_BUG = """\
from repro.parallel.sharedmem import SharedArray


def publish(stats):
    seg = SharedArray.from_array(stats)
    handle = seg.descriptor()
    seg.array[0] = 1.0
    return handle
"""

#: Clean sibling — the same write wrapped in ``guard.writing()``.
SHAREDMEM_GUARDED = """\
from repro.parallel.sharedmem import SharedArray
from repro.sanitizers import StateGuard

_guard = StateGuard("pkg.mod.stats")


def publish(stats):
    seg = SharedArray.from_array(stats)
    handle = seg.descriptor()
    with _guard.writing():
        seg.array[0] = 1.0
    return handle
"""

#: Trigger — the worker target mutates a module-level dict; the update
#: lands in the child process and the parent never sees it.
DIVERGENCE_BUG = """\
import multiprocessing

COUNTS = {}


def tally(path):
    COUNTS[path] = COUNTS.get(path, 0) + 1


def launch(path):
    worker = multiprocessing.Process(target=tally, args=(path,))
    worker.start()
"""

#: Clean sibling — the worker returns its result instead.
DIVERGENCE_CLEAN = """\
import multiprocessing


def tally(path):
    return {path: 1}


def launch(path):
    worker = multiprocessing.Process(target=tally, args=(path,))
    worker.start()
"""

#: Trigger — ``predict`` (hot by entry-point name) runs on the worker
#: side of a process-backend ``parallel_map`` and blocks on the clock.
BLOCKING_BUG = """\
import time

from repro.parallel.executor import ExecutorConfig, parallel_map


def predict(row):
    time.sleep(0.01)
    return row


def serve(rows):
    config = ExecutorConfig(backend="process", n_workers=4)
    return parallel_map(predict, rows, config=config)
"""

#: Clean sibling — same body, but the worker function is not hot.
BLOCKING_COLD = BLOCKING_BUG.replace("predict", "transform")

RULE_FIXTURES = {
    "fork-unsafe-inheritance": (FORK_UNSAFE_BUG, FORK_UNSAFE_PINNED, 14),
    "boundary-escape": (ESCAPE_BUG, ESCAPE_CLEAN, 6),
    "sharedmem-protocol": (SHAREDMEM_BUG, SHAREDMEM_GUARDED, 7),
    "child-global-divergence": (DIVERGENCE_BUG, DIVERGENCE_CLEAN, 7),
    "blocking-in-worker": (BLOCKING_BUG, BLOCKING_COLD, 7),
}


class TestRegistry:
    def test_all_five_rules_are_registered(self):
        assert set(PROCS_RULE_IDS) <= set(all_project_rules())

    def test_fact_registries_are_sane(self):
        assert HANDLE_FACTORIES["open"] == "open file handle"
        assert SEGMENT_ROLES["create"] == "owner"
        assert SEGMENT_ROLES["attach"] == "attacher"
        assert "parallel_map" in PROCESS_FANOUT_BASENAMES


class TestEveryRuleFiresExactlyOnce:
    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_trigger_yields_exactly_one_finding(self, rule, tmp_path):
        source, _clean, line = RULE_FIXTURES[rule]
        assert rows(check_pkg(tmp_path, source)) == [(rule, line)]

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_clean_sibling_is_silent(self, rule, tmp_path):
        _source, clean, _line = RULE_FIXTURES[rule]
        assert rows(check_pkg(tmp_path, clean)) == []

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_json_render_carries_the_same_single_finding(self, rule, tmp_path):
        source, _clean, line = RULE_FIXTURES[rule]
        doc = json.loads(render_json(check_pkg(tmp_path, source)))
        assert [(f["rule"], f["line"]) for f in doc["findings"]] == [(rule, line)]

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_sarif_render_carries_the_same_single_finding(self, rule, tmp_path):
        source, _clean, line = RULE_FIXTURES[rule]
        doc = json.loads(render_sarif(check_pkg(tmp_path, source)))
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == rule
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == line


class TestStartMethodSensitivity:
    """The satellite pair: same module, flagged under fork, clean under spawn."""

    def test_unpinned_boundary_counts_as_fork_and_is_flagged(self, tmp_path):
        result = check_pkg(tmp_path, FORK_UNSAFE_BUG)
        assert rows(result) == [("fork-unsafe-inheritance", 14)]
        message = result.findings[0].message
        assert "mod._model_lock" in message
        assert "unpinned" in message and "fork" in message

    def test_spawn_pin_clears_the_same_module(self, tmp_path):
        assert rows(check_pkg(tmp_path, FORK_UNSAFE_PINNED)) == []

    def test_site_level_spawn_context_also_clears_it(self, tmp_path):
        pinned_at_site = FORK_UNSAFE_BUG.replace(
            "    worker = multiprocessing.Process(target=refresh)",
            '    ctx = multiprocessing.get_context("spawn")\n'
            "    worker = ctx.Process(target=refresh)",
        )
        assert rows(check_pkg(tmp_path, pinned_at_site)) == []

    def test_fork_pin_is_still_flagged(self, tmp_path):
        pinned_fork = FORK_UNSAFE_PINNED.replace('"spawn"', '"fork"')
        result = check_pkg(tmp_path, pinned_fork)
        assert [f.rule_id for f in result.findings] == ["fork-unsafe-inheritance"]
        assert "'fork' start method" in result.findings[0].message


class TestBoundaryEscapeVariants:
    def test_lambda_finding_names_the_object_path(self, tmp_path):
        result = check_pkg(tmp_path, ESCAPE_BUG)
        assert "lambda" in result.findings[0].message

    def test_module_level_lock_passed_as_argument(self, tmp_path):
        source = """\
        import multiprocessing

        from repro.sanitizers import new_lock

        _lock = new_lock("pkg.mod._lock")


        def worker(lock):
            return lock


        def launch():
            proc = multiprocessing.Process(target=worker, args=(_lock,))
            proc.start()
        """
        result = check_pkg(tmp_path, source)
        assert rows(result) == [("boundary-escape", 13)]
        assert "cannot synchronize across" in result.findings[0].message

    def test_nested_closure_target_is_flagged(self, tmp_path):
        source = """\
        from repro.parallel.executor import ExecutorConfig, parallel_map


        def fanout(items, scale):
            def task(x):
                return x * scale

            config = ExecutorConfig(backend="process", n_workers=2)
            return parallel_map(task, items, config=config)
        """
        result = check_pkg(tmp_path, source)
        assert rows(result) == [("boundary-escape", 9)]
        assert "fanout.<locals>.task" in result.findings[0].message


class TestSharedMemProtocolVariants:
    def test_attacher_unlink_is_flagged(self, tmp_path):
        source = """\
        from repro.parallel.sharedmem import SharedArray


        def consume(desc):
            seg = SharedArray.from_descriptor(desc)
            total = float(seg.array[0])
            seg.close()
            seg.unlink()
            return total
        """
        result = check_pkg(tmp_path, source)
        assert rows(result) == [("sharedmem-protocol", 8)]
        assert "owner's responsibility" in result.findings[0].message

    def test_use_after_unlink_is_flagged(self, tmp_path):
        result = check_pkg(tmp_path, LIFECYCLE_BUG)
        assert rows(result) == [("sharedmem-protocol", 8)]
        assert "used after unlink" in result.findings[0].message

    def test_private_segment_write_is_not_flagged(self, tmp_path):
        # the segment never crosses a boundary (no descriptor hand-off,
        # no spawn argument), so in-process writes are the owner's business
        source = """\
        from repro.parallel.sharedmem import SharedArray


        def scratch(stats):
            seg = SharedArray.from_array(stats)
            seg.array[0] = 1.0
            total = float(seg.array[0])
            seg.close()
            seg.unlink()
            return total
        """
        assert rows(check_pkg(tmp_path, source)) == []


class TestSuppression:
    def test_inline_ignore_is_honoured(self, tmp_path):
        suppressed = SHAREDMEM_BUG.replace(
            "    seg.array[0] = 1.0",
            "    seg.array[0] = 1.0  # staticcheck: ignore[sharedmem-protocol] - single-writer bootstrap",
        )
        result = check_pkg(tmp_path, suppressed)
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["sharedmem-protocol"]


#: The seeded lifecycle bug for the static/dynamic cross-check: the owner
#: unlinks the segment and then keeps using it (line 8) while the
#: descriptor is already out.
LIFECYCLE_BUG = """\
from repro.parallel.sharedmem import SharedArray


def refresh(stats):
    seg = SharedArray.from_array(stats)
    desc = seg.descriptor()
    seg.unlink()
    return seg.array[0], desc
"""


def _attach_after_unlink(desc):
    """Fork-child target: attach to a segment the parent already unlinked."""
    from repro.parallel.sharedmem import SharedArray

    try:
        SharedArray.from_descriptor(desc)
    except FileNotFoundError:
        pass


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable on this platform",
)
class TestLifecycleStaticAndDynamicAgree:
    """Acceptance: one seeded bug, flagged by the rule AND the sanitizer."""

    def test_static_rule_flags_the_seeded_bug(self, tmp_path):
        assert rows(check_pkg(tmp_path, LIFECYCLE_BUG)) == [("sharedmem-protocol", 8)]

    def test_fork_aware_sanitizer_flags_the_same_bug_at_runtime(
        self, tmp_path, monkeypatch
    ):
        np = pytest.importorskip("numpy")
        from repro.parallel.sharedmem import SharedArray

        log = tmp_path / "sanitize.jsonl"
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv("REPRO_SANITIZE_LOG", str(log))

        seg = SharedArray.from_array(np.zeros(4))
        desc = seg.descriptor()
        seg.close()
        seg.unlink()  # the seeded bug: unlinked while the descriptor is out

        child = multiprocessing.get_context("fork").Process(
            target=_attach_after_unlink, args=(desc,)
        )
        child.start()
        child.join(timeout=30)
        assert child.exitcode == 0

        child_logs = sorted(tmp_path.glob("sanitize.jsonl.*"))
        assert child_logs, "fork child flushed no per-pid sanitizer log"
        events = [json.loads(line) for line in child_logs[0].read_text().splitlines()]
        assert [e["kind"] for e in events] == ["sharedmem-use-after-unlink"]
        assert events[0]["pid"] == child.pid
        assert events[0]["pid"] != os.getpid()
