"""The stale-suppression audit: ``ignore[rule]`` directives that silence
nothing are themselves findings, gated on the rules that actually ran."""

import textwrap

from repro.staticcheck import check_paths
from repro.staticcheck.registry import all_rules


def write_module(tmp_path, source, name="m.py"):
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    return target


def unused_findings(result):
    return [f for f in result.findings if f.rule_id == "unused-suppression"]


class TestUnusedSuppression:
    def test_stale_directive_is_flagged(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            import numpy as np

            __all__ = ["seeded"]

            def seeded():
                return np.random.default_rng(0)  # staticcheck: ignore[unseeded-rng]
            """,
        )
        (finding,) = unused_findings(check_paths([target]))
        assert "ignore[unseeded-rng]" in finding.message
        assert finding.line == 7

    def test_used_directive_is_not_flagged(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            import numpy as np

            __all__ = ["unseeded"]

            def unseeded():
                return np.random.default_rng()  # staticcheck: ignore[unseeded-rng]
            """,
        )
        result = check_paths([target])
        assert unused_findings(result) == []
        assert [f.rule_id for f in result.suppressed] == ["unseeded-rng"]

    def test_standalone_directive_covering_next_line_counts_as_used(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            import numpy as np

            __all__ = ["unseeded"]

            def unseeded():
                # staticcheck: ignore[unseeded-rng]
                return np.random.default_rng()
            """,
        )
        assert unused_findings(check_paths([target])) == []

    def test_rule_that_did_not_run_is_not_audited(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            import numpy as np

            __all__ = ["seeded"]

            def seeded():
                return np.random.default_rng(0)  # staticcheck: ignore[unseeded-rng]
            """,
        )
        registry = all_rules()
        only_float = [registry["float-equality"]()]
        result = check_paths([target], rules=only_float, project_rules=[])
        assert unused_findings(result) == []

    def test_wildcard_audited_only_on_full_runs(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            __all__ = ["nothing"]

            def nothing():
                return 1  # staticcheck: ignore[*]
            """,
        )
        (finding,) = unused_findings(check_paths([target]))
        assert "ignore[*]" in finding.message

        registry = all_rules()
        partial = check_paths([target], rules=[registry["float-equality"]()], project_rules=[])
        assert unused_findings(partial) == []

    def test_unknown_rule_id_reports_unknown_not_unused(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            __all__ = ["nothing"]

            def nothing():
                return 1  # staticcheck: ignore[no-such-rule]
            """,
        )
        result = check_paths([target])
        assert unused_findings(result) == []
        assert "unknown-suppression" in [f.rule_id for f in result.findings]

    def test_unused_suppression_is_itself_suppressible(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            import numpy as np

            __all__ = ["seeded"]

            def seeded():
                return np.random.default_rng(0)  # staticcheck: ignore[unseeded-rng, unused-suppression] - kept while flipping seeds
            """,
        )
        result = check_paths([target])
        assert unused_findings(result) == []
        assert "unused-suppression" in [f.rule_id for f in result.suppressed]
