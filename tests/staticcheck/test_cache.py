"""Incremental engine: warm reuse, dependency invalidation, baselines,
SARIF output and parallel cold parsing."""

import json

import pytest

from repro.staticcheck import (
    apply_baseline,
    check_paths,
    check_source,
    load_baseline,
    render_json,
    render_sarif,
    write_baseline,
)
from repro.staticcheck.cache import AnalysisCache, file_digest, rule_fingerprint

TRIGGER = "import time\nt0 = time.time()\n"


def make_project(tmp_path):
    """pkg.a -> pkg.b (import edge); pkg.c standalone."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text("from pkg.b import helper\nX = helper()\n")
    (pkg / "b.py").write_text("__all__ = ['helper']\ndef helper():\n    return 1\n")
    (pkg / "c.py").write_text("Y = 2\n")
    return pkg


class TestIncrementalCache:
    def test_warm_run_hits_every_file_and_reproduces_output(self, tmp_path):
        pkg = make_project(tmp_path)
        cache = tmp_path / "cache.json"
        cold = check_paths([pkg], cache_path=cache)
        assert cache.is_file()
        assert cold.stats.cache_misses == 4 and cold.stats.cache_hits == 0
        warm = check_paths([pkg], cache_path=cache)
        assert warm.stats.cache_hits == 4 and warm.stats.cache_misses == 0
        assert render_json(warm) == render_json(cold)

    def test_mutating_one_module_reparses_only_it_and_its_importers(self, tmp_path):
        """Acceptance criterion: after a warm run, mutate one module and
        verify the other files are served from the cache."""
        pkg = make_project(tmp_path)
        cache = tmp_path / "cache.json"
        check_paths([pkg], cache_path=cache)
        (pkg / "b.py").write_text(
            "import time\n__all__ = ['helper']\ndef helper():\n    return time.time()\n"
        )
        result = check_paths([pkg], cache_path=cache)
        # b itself (content hash) and a (its dependency's hash changed)
        # go cold; __init__ and c are served from the cache.
        assert result.stats.cache_misses == 2
        assert result.stats.cache_hits == 2
        assert [f.rule_id for f in result.findings] == ["wallclock-timing"]
        assert result.findings[0].path.endswith("b.py")

    def test_rule_set_change_invalidates_the_fingerprint(self, tmp_path):
        pkg = make_project(tmp_path)
        cache = tmp_path / "cache.json"
        check_paths([pkg], cache_path=cache)
        from repro.staticcheck import resolve_rules

        narrowed = check_paths(
            [pkg], rules=resolve_rules(select=["wallclock-timing"]), cache_path=cache
        )
        assert narrowed.stats.cache_misses == 4  # different fingerprint: no reuse
        assert rule_fingerprint(["a"], []) != rule_fingerprint(["a"], ["b"])

    def test_corrupt_cache_file_is_discarded_not_fatal(self, tmp_path):
        pkg = make_project(tmp_path)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        result = check_paths([pkg], cache_path=cache)
        assert result.stats.cache_misses == 4
        doc = json.loads(cache.read_text())  # rewritten as a valid document
        assert len(doc["files"]) == 4

    def test_deleted_files_are_pruned_on_save(self, tmp_path):
        pkg = make_project(tmp_path)
        cache = tmp_path / "cache.json"
        check_paths([pkg], cache_path=cache)
        (pkg / "c.py").unlink()
        check_paths([pkg], cache_path=cache)
        doc = json.loads(cache.read_text())
        assert not any(key.endswith("c.py") for key in doc["files"])

    def test_reference_files_are_cached_too(self, tmp_path):
        pkg = make_project(tmp_path)
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_a.py").write_text("from pkg.a import X\n")
        cache = tmp_path / "cache.json"
        cold = check_paths([pkg], reference_paths=[tests_dir], cache_path=cache)
        assert cold.stats.reference_files == 1
        doc = json.loads(cache.read_text())
        assert len(doc["references"]) == 1
        warm = check_paths([pkg], reference_paths=[tests_dir], cache_path=cache)
        assert render_json(warm) == render_json(cold)

    def test_parallel_cold_parse_matches_serial(self, tmp_path):
        pkg = make_project(tmp_path)
        (pkg / "dirty.py").write_text(TRIGGER)
        serial = check_paths([pkg])
        parallel = check_paths([pkg], jobs=2)
        assert parallel.stats.jobs == 2
        assert render_json(parallel) == render_json(serial)

    def test_file_digest_is_content_addressed(self):
        assert file_digest(b"x") == file_digest(b"x")
        assert file_digest(b"x") != file_digest(b"y")


class TestBaseline:
    def test_write_then_check_hides_tracked_findings(self, tmp_path):
        dirty = tmp_path / "legacy.py"
        dirty.write_text(TRIGGER)
        baseline_file = tmp_path / "baseline.json"
        result = check_paths([tmp_path])
        assert write_baseline(result, baseline_file) == 1
        rechecked, resolved = apply_baseline(
            check_paths([tmp_path]), load_baseline(baseline_file)
        )
        assert resolved == 0
        assert rechecked.clean
        assert [f.rule_id for f in rechecked.baselined] == ["wallclock-timing"]

    def test_new_findings_still_fail_under_a_baseline(self, tmp_path):
        dirty = tmp_path / "legacy.py"
        dirty.write_text(TRIGGER)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(check_paths([tmp_path]), baseline_file)
        (tmp_path / "fresh.py").write_text("def _f(x, acc=[]):\n    return acc\n")
        rechecked, _ = apply_baseline(check_paths([tmp_path]), load_baseline(baseline_file))
        assert [f.rule_id for f in rechecked.findings] == ["mutable-default"]

    def test_ratchet_reports_resolved_findings(self, tmp_path):
        dirty = tmp_path / "legacy.py"
        dirty.write_text(TRIGGER)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(check_paths([tmp_path]), baseline_file)
        dirty.write_text("import time\nt0 = time.perf_counter()\n")  # fixed!
        rechecked, resolved = apply_baseline(
            check_paths([tmp_path]), load_baseline(baseline_file)
        )
        assert resolved == 1 and rechecked.clean

    def test_baselined_findings_survive_json_round_trip(self, tmp_path):
        dirty = tmp_path / "legacy.py"
        dirty.write_text(TRIGGER)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(check_paths([tmp_path]), baseline_file)
        rechecked, _ = apply_baseline(check_paths([tmp_path]), load_baseline(baseline_file))
        doc = json.loads(render_json(rechecked))
        assert doc["findings"] == []
        (entry,) = doc["baselined"]
        assert entry["rule"] == "wallclock-timing"

    def test_missing_baseline_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_baseline(tmp_path / "absent.json")


class TestSarif:
    def test_sarif_document_structure(self):
        result = check_source(TRIGGER, path="mod.py")
        doc = json.loads(render_sarif(result))
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro.staticcheck"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"wallclock-timing", "dead-export"} <= rule_ids
        (res,) = run["results"]
        assert res["ruleId"] == "wallclock-timing"
        assert res["level"] == "error"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "mod.py"
        assert loc["region"]["startLine"] == 2

    def test_suppressed_findings_are_notes_with_suppressions(self):
        src = "import time\nt0 = time.time()  # staticcheck: ignore[wallclock-timing]\n"
        doc = json.loads(render_sarif(check_source(src, path="mod.py")))
        (res,) = doc["runs"][0]["results"]
        assert res["level"] == "note"
        assert res["suppressions"][0]["kind"] == "inSource"

    def test_sarif_is_deterministic(self):
        a = render_sarif(check_source(TRIGGER, path="mod.py"))
        b = render_sarif(check_source(TRIGGER, path="mod.py"))
        assert a == b


class TestCacheObject:
    def test_fingerprint_mismatch_starts_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = AnalysisCache.load(path, "fp-one")
        cache.store("a.py", {"hash": "h", "deps": {}, "findings": [], "suppressed": [], "summary": None})
        cache.save()
        again = AnalysisCache.load(path, "fp-two")
        assert again.files == {}

    def test_dep_hash_mismatch_is_a_miss(self, tmp_path):
        cache = AnalysisCache.load(tmp_path / "cache.json", "fp")
        entry = {"hash": "h1", "deps": {"dep.py": "old"}, "findings": [], "suppressed": [], "summary": None}
        cache.store("a.py", entry)
        assert cache.lookup("a.py", "h1", {"a.py": "h1", "dep.py": "old"}) is not None
        assert cache.lookup("a.py", "h1", {"a.py": "h1", "dep.py": "new"}) is None
