"""Project rules: import-cycle, contract-drift, tainted-persistence,
dead-export — each against a minimal multi-module fixture that triggers
it and a neighbouring fixture that stays clean."""

import textwrap

from repro.staticcheck import check_paths
from repro.staticcheck.project import (
    ContractDriftRule,
    DeadExportRule,
    ImportCycleRule,
    ProjectContext,
    TaintedPersistenceRule,
    build_summary,
    module_name_for_path,
)
from repro.staticcheck.project.graph import ResolvedSymbol
from repro.staticcheck.project.summary import TAINT_SOURCES
from repro.staticcheck.project.taint import DEFAULT_SINKS


def make_package(tmp_path, files, name="pkg"):
    """Write a package tree; keys are paths relative to the package root."""
    root = tmp_path / name
    for rel, content in {"__init__.py": "", **files}.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        for parent in target.relative_to(root).parents:
            init = root / parent / "__init__.py"
            if not init.exists():
                init.write_text("")
        target.write_text(textwrap.dedent(content))
    return root


def project_findings(root, rule, reference_paths=()):
    result = check_paths(
        [root], rules=[], project_rules=[rule], reference_paths=reference_paths
    )
    return result


class TestImportCycle:
    def test_two_module_cycle_is_reported_once(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "a.py": "import pkg.b\n",
                "b.py": "from pkg import a\n",
            },
        )
        result = project_findings(root, ImportCycleRule())
        (finding,) = result.findings
        assert finding.rule_id == "import-cycle"
        assert "pkg.a" in finding.message and "pkg.b" in finding.message
        assert finding.path.endswith("a.py")

    def test_three_module_cycle_names_the_walk(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "a.py": "import pkg.b\n",
                "b.py": "import pkg.c\n",
                "c.py": "import pkg.a\n",
            },
        )
        (finding,) = project_findings(root, ImportCycleRule()).findings
        assert finding.message.count("->") == 3

    def test_type_checking_and_function_level_imports_break_cycles(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "a.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    import pkg.b\n"
                ),
                "b.py": "def lazy():\n    import pkg.a\n    return pkg.a\n",
            },
        )
        assert project_findings(root, ImportCycleRule()).clean

    def test_acyclic_chain_is_clean(self, tmp_path):
        root = make_package(
            tmp_path,
            {"a.py": "import pkg.b\n", "b.py": "import pkg.c\n", "c.py": "X = 1\n"},
        )
        assert project_findings(root, ImportCycleRule()).clean


class TestContractDrift:
    def test_unknown_keyword_is_reported(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "encoder.py": "def encode(tokens, dims=384):\n    return tokens, dims\n",
                "model.py": (
                    "from pkg.encoder import encode\n"
                    "def fit():\n"
                    "    return encode([1], dims=384, normalise=True)\n"
                ),
            },
        )
        (finding,) = project_findings(root, ContractDriftRule()).findings
        assert finding.rule_id == "contract-drift"
        assert "'normalise'" in finding.message
        assert finding.path.endswith("model.py")

    def test_too_many_positional_arguments(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "encoder.py": "def encode(tokens):\n    return tokens\n",
                "model.py": (
                    "import pkg.encoder\n"
                    "def fit():\n"
                    "    return pkg.encoder.encode([1], 384)\n"
                ),
            },
        )
        (finding,) = project_findings(root, ContractDriftRule()).findings
        assert "at most 1 positional argument" in finding.message

    def test_missing_required_argument(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "encoder.py": "def encode(tokens, dims):\n    return tokens, dims\n",
                "model.py": "from pkg.encoder import encode\nresult = encode([1])\n",
            },
        )
        (finding,) = project_findings(root, ContractDriftRule()).findings
        assert "'dims'" in finding.message

    def test_dataclass_constructor_contract(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "config.py": (
                    "from dataclasses import dataclass\n"
                    "@dataclass\n"
                    "class Settings:\n"
                    "    dims: int\n"
                    "    alpha: float = 0.5\n"
                ),
                "main.py": (
                    "from pkg.config import Settings\n"
                    "s = Settings(dims=384, beta=2.0)\n"
                ),
            },
        )
        (finding,) = project_findings(root, ContractDriftRule()).findings
        assert "'beta'" in finding.message

    def test_facade_reexport_resolves_to_definition(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "__init__.py": "from pkg.encoder import encode\n",
                "encoder.py": "def encode(tokens):\n    return tokens\n",
                "model.py": "import pkg\nresult = pkg.encode([1], 2)\n",
            },
        )
        (finding,) = project_findings(root, ContractDriftRule()).findings
        assert "pkg.encoder.encode" in finding.message

    def test_compatible_calls_and_escape_hatches_stay_clean(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "encoder.py": (
                    "def encode(tokens, dims=384):\n    return tokens, dims\n"
                    "def flex(*args, **kwargs):\n    return args, kwargs\n"
                    "import functools\n"
                    "@functools.lru_cache\n"
                    "def cached(x):\n    return x\n"
                ),
                "model.py": (
                    "from pkg.encoder import cached, encode, flex\n"
                    "a = encode([1])\n"
                    "b = encode([1], dims=128)\n"
                    "c = flex(1, 2, 3, anything=True)\n"
                    "args = [[1], 9]\n"
                    "d = encode(*args)\n"
                    "e = cached(1, 2, 3)\n"  # decorated: contract unknown, skipped
                ),
            },
        )
        assert project_findings(root, ContractDriftRule()).clean


class TestTaintedPersistence:
    SINKS = frozenset({"pkg.store.save_model"})

    def test_cross_module_taint_reaches_sink(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "helpers.py": "import time\ndef stamp():\n    return time.time()\n",
                "store.py": "def save_model(model, tag):\n    return model, tag\n",
                "train.py": (
                    "from pkg.helpers import stamp\n"
                    "from pkg.store import save_model\n"
                    "def run(model):\n"
                    "    save_model(model, stamp())\n"
                ),
            },
        )
        (finding,) = project_findings(root, TaintedPersistenceRule(sinks=self.SINKS)).findings
        assert finding.rule_id == "tainted-persistence"
        assert "time.time" in finding.message
        assert "module boundary" in finding.message
        assert finding.path.endswith("train.py")

    def test_direct_source_argument_is_reported(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "store.py": "def save_model(model, tag):\n    return model, tag\n",
                "train.py": (
                    "import random\n"
                    "from pkg.store import save_model\n"
                    "def run(model):\n"
                    "    save_model(model, random.random())\n"
                ),
            },
        )
        (finding,) = project_findings(root, TaintedPersistenceRule(sinks=self.SINKS)).findings
        assert "random.random" in finding.message

    def test_taint_propagates_through_assignment_and_two_hops(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "clock.py": "import time\ndef now():\n    return time.time()\n",
                "meta.py": "from pkg.clock import now\ndef run_id():\n    return now()\n",
                "store.py": "def save_model(model, tag):\n    return model, tag\n",
                "train.py": (
                    "from pkg.meta import run_id\n"
                    "from pkg.store import save_model\n"
                    "def run(model):\n"
                    "    tag = run_id()\n"
                    "    save_model(model, tag)\n"
                ),
            },
        )
        (finding,) = project_findings(root, TaintedPersistenceRule(sinks=self.SINKS)).findings
        assert "pkg.meta.run_id" in finding.message and "time.time" in finding.message

    def test_seeded_and_constant_values_stay_clean(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "helpers.py": (
                    "def stamp(seed):\n    return f'run-{seed}'\n"
                ),
                "store.py": "def save_model(model, tag):\n    return model, tag\n",
                "train.py": (
                    "from pkg.helpers import stamp\n"
                    "from pkg.store import save_model\n"
                    "def run(model):\n"
                    "    save_model(model, stamp(42))\n"
                ),
            },
        )
        assert project_findings(root, TaintedPersistenceRule(sinks=self.SINKS)).clean

    def test_default_sinks_cover_the_repro_persistence_layer(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "mlcore/persistence.py": "def save_model(model, path):\n    return path\n",
                "core/train.py": (
                    "import time\n"
                    "from repro.mlcore.persistence import save_model\n"
                    "def retrain(model):\n"
                    "    save_model(model, f'model-{time.time()}')\n"
                ),
            },
            name="repro",
        )
        (finding,) = project_findings(root, TaintedPersistenceRule()).findings
        assert "repro.mlcore.persistence.save_model" in finding.message
        assert "repro.mlcore.persistence.save_model" in DEFAULT_SINKS
        assert "time.time" in TAINT_SOURCES


class TestDeadExport:
    def test_unimported_definition_is_reported_at_its_all_entry(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "util.py": (
                    "__all__ = [\n    'used',\n    'unused',\n]\n"
                    "def used():\n    return 1\n"
                    "def unused():\n    return 2\n"
                ),
                "main.py": "from pkg.util import used\nX = used()\n",
            },
        )
        (finding,) = project_findings(root, DeadExportRule()).findings
        assert finding.rule_id == "dead-export"
        assert "'unused'" in finding.message
        assert finding.line == 3  # the list element, not the assignment
        assert finding.path.endswith("util.py")

    def test_reference_usage_keeps_a_symbol_alive(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "util.py": "__all__ = ['only_tests_use_me']\ndef only_tests_use_me():\n    return 1\n",
            },
        )
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_util.py").write_text(
            "from pkg.util import only_tests_use_me\n"
        )
        assert project_findings(root, DeadExportRule()).findings  # dead without references
        assert project_findings(root, DeadExportRule(), reference_paths=[tests_dir]).clean

    def test_facade_reexports_are_exempt(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "__init__.py": "from pkg.util import helper\n__all__ = ['helper']\n",
                "util.py": "__all__ = ['helper']\ndef helper():\n    return 1\n",
            },
        )
        # __init__'s entry is a re-export (exempt); util's definition is
        # kept alive by the facade's own import.
        assert project_findings(root, DeadExportRule()).clean

    def test_star_import_keeps_every_export_alive(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "util.py": "__all__ = ['a', 'b']\ndef a():\n    return 1\ndef b():\n    return 2\n",
                "main.py": "from pkg.util import *\n",
            },
        )
        assert project_findings(root, DeadExportRule()).clean

    def test_dotted_attribute_reference_counts_as_usage(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "util.py": "__all__ = ['CONST']\nCONST = 7\n",
                "main.py": "import pkg.util\nX = pkg.util.CONST\n",
            },
        )
        assert project_findings(root, DeadExportRule()).clean

    def test_project_finding_honours_inline_suppression(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "util.py": (
                    "__all__ = ['plugin_hook']  # staticcheck: ignore[dead-export] - loaded by name\n"
                    "def plugin_hook():\n    return 1\n"
                ),
            },
        )
        result = project_findings(root, DeadExportRule())
        assert result.clean
        assert [f.rule_id for f in result.suppressed] == ["dead-export"]


class TestProjectContext:
    def test_facade_alias_chasing_and_owning_module(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "__init__.py": "from pkg.inner import thing\n",
                "inner.py": "def thing(x):\n    return x\n",
            },
        )
        files = sorted(root.rglob("*.py"))
        summaries = {}
        for f in files:
            name, is_pkg = module_name_for_path(f)
            import ast

            summaries[name] = build_summary(str(f), f.read_text(), ast.parse(f.read_text()), name, is_pkg)
        project = ProjectContext(summaries=summaries)
        resolved = project.resolve("pkg.thing")
        assert isinstance(resolved, ResolvedSymbol)
        assert resolved.summary.module == "pkg.inner"
        assert resolved.qualname == "thing"
        assert resolved.signature is not None and resolved.signature.args == ["x"]
        assert project.owning_module("pkg.inner.thing") == "pkg.inner"

    def test_import_graph_edges_and_call_graph(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "a.py": "import pkg.b\npkg.b.run(1)\n",
                "b.py": "def run(x):\n    return x\n",
            },
        )
        files = sorted(root.rglob("*.py"))
        summaries = {}
        for f in files:
            name, is_pkg = module_name_for_path(f)
            import ast

            summaries[name] = build_summary(str(f), f.read_text(), ast.parse(f.read_text()), name, is_pkg)
        project = ProjectContext(summaries=summaries)
        assert project.import_graph.runtime_successors("pkg.a") == ["pkg.b"]
        assert project.import_graph.runtime_cycles() == []
        (edge,) = project.call_graph.calls_into("pkg.b")
        caller, call, resolved = edge
        assert caller == "pkg.a"
        assert call["nargs"] == 1
        assert resolved.qualname == "run"
