"""Concurrency project rules: lock-order-cycle, unguarded-shared-write,
blocking-under-lock — trigger and clean fixtures for each, plus the
shared racy fixture that the runtime sanitizer suite executes."""

from pathlib import Path

from repro.staticcheck import check_paths
from repro.staticcheck.project import (
    BlockingUnderLockRule,
    LockOrderCycleRule,
    UnguardedSharedWriteRule,
)
from repro.staticcheck.project.summary import LOCK_FACTORIES

from tests.staticcheck.test_project_rules import make_package, project_findings

SANITIZER_FIXTURES = Path(__file__).resolve().parent.parent / "sanitizers" / "fixtures"


class TestLockOrderCycle:
    def test_inconsistent_order_in_one_module(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "m.py": """
                    import threading

                    __all__ = ["first", "second"]

                    A = threading.Lock()
                    B = threading.Lock()

                    def first():
                        with A:
                            with B:
                                pass

                    def second():
                        with B:
                            with A:
                                pass
                """,
            },
        )
        result = project_findings(root, LockOrderCycleRule())
        (finding,) = result.findings
        assert finding.rule_id == "lock-order-cycle"
        assert "m.A" in finding.message and "m.B" in finding.message

    def test_cycle_through_a_project_call(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "locks.py": """
                    import threading

                    __all__ = ["A", "B"]

                    A = threading.Lock()
                    B = threading.Lock()
                """,
                "one.py": """
                    from pkg.locks import A, B

                    __all__ = ["outer"]

                    def inner():
                        with B:
                            pass

                    def outer():
                        with A:
                            inner()
                """,
                "two.py": """
                    from pkg.locks import A, B

                    __all__ = ["reversed_order"]

                    def reversed_order():
                        with B:
                            with A:
                                pass
                """,
            },
        )
        result = project_findings(root, LockOrderCycleRule())
        (finding,) = result.findings
        assert "lock ordering cycle" in finding.message

    def test_nonreentrant_self_reacquire(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "m.py": """
                    import threading

                    __all__ = ["grab"]

                    A = threading.Lock()

                    def grab():
                        with A:
                            with A:
                                pass
                """,
            },
        )
        result = project_findings(root, LockOrderCycleRule())
        (finding,) = result.findings
        assert "deadlocks against itself" in finding.message

    def test_consistent_order_and_rlock_reacquire_are_clean(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "m.py": """
                    import threading

                    __all__ = ["first", "second", "nested"]

                    A = threading.Lock()
                    B = threading.Lock()
                    R = threading.RLock()

                    def first():
                        with A:
                            with B:
                                pass

                    def second():
                        with A:
                            with B:
                                pass

                    def nested():
                        with R:
                            with R:
                                pass
                """,
            },
        )
        assert project_findings(root, LockOrderCycleRule()).findings == []

    def test_racy_sanitizer_fixture_is_flagged(self):
        result = check_paths(
            [SANITIZER_FIXTURES / "racy_order.py"],
            rules=[],
            project_rules=[LockOrderCycleRule()],
        )
        (finding,) = result.findings
        assert finding.rule_id == "lock-order-cycle"
        assert "LOCK_A" in finding.message and "LOCK_B" in finding.message

    def test_clean_sanitizer_fixture_is_not_flagged(self):
        result = check_paths(
            [SANITIZER_FIXTURES / "clean_order.py"],
            rules=[],
            project_rules=[LockOrderCycleRule()],
        )
        assert result.findings == []

    def test_sanitizer_factory_is_a_recognized_lock_source(self):
        assert "repro.sanitizers.new_lock" in LOCK_FACTORIES


class TestUnguardedSharedWrite:
    def test_handler_and_thread_write_without_lock(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "m.py": """
                    import threading

                    __all__ = ["build", "start_refresher", "refresher"]

                    STATE = {}

                    def refresher():
                        global STATE
                        STATE = {"fresh": True}

                    def start_refresher():
                        threading.Thread(target=refresher).start()

                    def build(app):
                        @app.route("/reset")
                        def reset_handler():
                            global STATE
                            STATE = {}
                """,
            },
        )
        result = project_findings(root, UnguardedSharedWriteRule())
        (finding,) = result.findings
        assert finding.rule_id == "unguarded-shared-write"
        assert "STATE" in finding.message
        assert "handler:reset_handler" in finding.message
        assert "thread:refresher" in finding.message

    def test_method_writes_reached_from_two_handlers(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "m.py": """
                    __all__ = ["Svc", "build"]

                    class Svc:
                        def __init__(self):
                            self.model = None

                        def retrain_model(self):
                            self.model = object()

                        def refresh_model(self):
                            self.model = object()

                    def build(app, svc):
                        @app.route("/train")
                        def train_handler():
                            svc.retrain_model()

                        @app.route("/refresh")
                        def refresh_handler():
                            svc.refresh_model()
                """,
            },
        )
        result = project_findings(root, UnguardedSharedWriteRule())
        (finding,) = result.findings
        assert "Svc.model" in finding.message

    def test_common_lock_makes_it_clean(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "m.py": """
                    import threading

                    __all__ = ["build", "start_refresher", "refresher"]

                    STATE = {}
                    GUARD = threading.Lock()

                    def refresher():
                        global STATE
                        with GUARD:
                            STATE = {"fresh": True}

                    def start_refresher():
                        threading.Thread(target=refresher).start()

                    def build(app):
                        @app.route("/reset")
                        def reset_handler():
                            global STATE
                            with GUARD:
                                STATE = {}
                """,
            },
        )
        assert project_findings(root, UnguardedSharedWriteRule()).findings == []

    def test_single_entry_point_is_clean(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "m.py": """
                    __all__ = ["build"]

                    STATE = {}

                    def build(app):
                        @app.route("/reset")
                        def reset_handler():
                            global STATE
                            STATE = {}
                """,
            },
        )
        assert project_findings(root, UnguardedSharedWriteRule()).findings == []


class TestBlockingUnderLock:
    def test_file_io_under_lock(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "m.py": """
                    import threading

                    __all__ = ["save"]

                    GUARD = threading.Lock()

                    def save(payload):
                        with GUARD:
                            with open("state.json", "w") as fh:
                                fh.write(payload)
                """,
            },
        )
        result = project_findings(root, BlockingUnderLockRule())
        assert result.findings
        assert all(f.rule_id == "blocking-under-lock" for f in result.findings)
        assert "'open'" in result.findings[0].message

    def test_sleep_and_fanout_under_lock(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "m.py": """
                    import threading
                    import time

                    from repro.parallel.executor import parallel_map

                    __all__ = ["wait_then_fan"]

                    GUARD = threading.Lock()

                    def wait_then_fan(fn, items):
                        with GUARD:
                            time.sleep(0.5)
                            return parallel_map(fn, items)
                """,
            },
        )
        result = project_findings(root, BlockingUnderLockRule())
        messages = " | ".join(f.message for f in result.findings)
        assert "time.sleep" in messages
        assert "parallel_map" in messages

    def test_retraining_under_lock(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "m.py": """
                    import threading

                    __all__ = ["Svc", "retrain"]

                    GUARD = threading.Lock()

                    class Svc:
                        def train(self, X, y):
                            self.model = (X, y)

                    def retrain(svc, X, y):
                        with GUARD:
                            svc.train(X, y)
                """,
            },
        )
        result = project_findings(root, BlockingUnderLockRule())
        (finding,) = result.findings
        assert "(re)trains a model" in finding.message

    def test_io_outside_lock_is_clean(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "m.py": """
                    import threading

                    __all__ = ["save"]

                    GUARD = threading.Lock()

                    def save(payload):
                        with open("state.json", "w") as fh:
                            fh.write(payload)
                        with GUARD:
                            return len(payload)
                """,
            },
        )
        assert project_findings(root, BlockingUnderLockRule()).findings == []
