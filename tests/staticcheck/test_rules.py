"""Per-rule coverage: a triggering snippet, a clean one, a suppressed one."""

import textwrap

from repro.staticcheck import check_source, resolve_rules


def run_rule(rule_id, source):
    """Findings + suppressed lists for one rule over one snippet."""
    result = check_source(
        textwrap.dedent(source), path="snippet.py", rules=resolve_rules(select=[rule_id])
    )
    return result


def fires(rule_id, source):
    return [f.rule_id for f in run_rule(rule_id, source).findings]


class TestUnseededRng:
    def test_default_rng_without_seed_fires(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()
        """
        assert fires("unseeded-rng", src) == ["unseeded-rng"]

    def test_legacy_global_numpy_fires(self):
        src = """
        import numpy as np
        x = np.random.rand(3)
        """
        assert fires("unseeded-rng", src) == ["unseeded-rng"]

    def test_stdlib_global_fires(self):
        src = """
        import random
        x = random.random()
        """
        assert fires("unseeded-rng", src) == ["unseeded-rng"]

    def test_from_import_alias_resolved(self):
        src = """
        from numpy.random import default_rng
        rng = default_rng()
        """
        assert fires("unseeded-rng", src) == ["unseeded-rng"]

    def test_seeded_is_clean(self):
        src = """
        import numpy as np
        import random
        a = np.random.default_rng(42)
        b = np.random.default_rng(seed=7)
        c = random.Random(0)
        """
        assert fires("unseeded-rng", src) == []

    def test_generator_methods_are_clean(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(0)
        x = rng.random(10)
        y = rng.choice([1, 2, 3])
        """
        assert fires("unseeded-rng", src) == []

    def test_suppression(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()  # staticcheck: ignore[unseeded-rng] - fallback entropy
        """
        result = run_rule("unseeded-rng", src)
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["unseeded-rng"]
        assert result.suppressed[0].suppressed is True


class TestWallclockTiming:
    def test_time_time_fires(self):
        src = """
        import time
        t0 = time.time()
        """
        assert fires("wallclock-timing", src) == ["wallclock-timing"]

    def test_from_import_fires(self):
        src = """
        from time import time
        t0 = time()
        """
        assert fires("wallclock-timing", src) == ["wallclock-timing"]

    def test_perf_counter_is_clean(self):
        src = """
        import time
        t0 = time.perf_counter()
        dt = time.monotonic()
        """
        assert fires("wallclock-timing", src) == []

    def test_suppression(self):
        src = """
        import time
        stamp = time.time()  # staticcheck: ignore[wallclock-timing] - row timestamp, not a duration
        """
        result = run_rule("wallclock-timing", src)
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestFloatEquality:
    def test_float_literal_comparison_fires(self):
        src = """
        def at_ridge(op):
            return op == 3.3
        """
        assert fires("float-equality", src) == ["float-equality"]

    def test_float_call_comparison_fires(self):
        src = """
        def f(a, b):
            return float(a) != b
        """
        assert fires("float-equality", src) == ["float-equality"]

    def test_integer_and_shape_comparisons_clean(self):
        src = """
        def f(a, b, n):
            if a.shape != b.shape:
                raise ValueError
            return n == 0
        """
        assert fires("float-equality", src) == []

    def test_ordering_comparisons_clean(self):
        src = """
        def classify(op):
            return op > 3.3
        """
        assert fires("float-equality", src) == []

    def test_suppression(self):
        src = """
        def dispatch(p):
            return p == 2.0  # staticcheck: ignore[float-equality] - exact parameter dispatch
        """
        result = run_rule("float-equality", src)
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestMutableDefault:
    def test_list_default_fires(self):
        src = """
        def f(x, acc=[]):
            return acc
        """
        assert fires("mutable-default", src) == ["mutable-default"]

    def test_kwonly_dict_default_fires(self):
        src = """
        def f(*, cache={}):
            return cache
        """
        assert fires("mutable-default", src) == ["mutable-default"]

    def test_factory_call_default_fires(self):
        src = """
        def f(x, seen=set()):
            return seen
        """
        assert fires("mutable-default", src) == ["mutable-default"]

    def test_none_default_clean(self):
        src = """
        def f(x, acc=None, name="x", k=3, scale=1.0, opts=()):
            return acc
        """
        assert fires("mutable-default", src) == []

    def test_suppression(self):
        src = """
        def f(x, acc=[]):  # staticcheck: ignore[mutable-default] - intentional memo shared across calls
            return acc
        """
        result = run_rule("mutable-default", src)
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestSilentExcept:
    def test_bare_except_pass_fires(self):
        src = """
        try:
            work()
        except:
            pass
        """
        assert fires("silent-except", src) == ["silent-except"]

    def test_broad_except_pass_fires(self):
        src = """
        try:
            work()
        except Exception:
            pass
        """
        assert fires("silent-except", src) == ["silent-except"]

    def test_narrow_except_is_trusted(self):
        src = """
        try:
            work()
        except ValueError:
            pass
        """
        assert fires("silent-except", src) == []

    def test_broad_but_reraised_clean(self):
        src = """
        try:
            work()
        except Exception as exc:
            raise RuntimeError("wrapped") from exc
        """
        assert fires("silent-except", src) == []

    def test_broad_but_logged_clean(self):
        src = """
        try:
            work()
        except Exception:
            log.exception("training step failed")
        """
        assert fires("silent-except", src) == []

    def test_broad_using_bound_error_clean(self):
        src = """
        try:
            work()
        except Exception as exc:
            failures.append(exc)
        """
        assert fires("silent-except", src) == []

    def test_suppression(self):
        src = """
        try:
            work()
        except Exception:  # staticcheck: ignore[silent-except] - best-effort cache warm, failure is benign
            pass
        """
        result = run_rule("silent-except", src)
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestUnpicklableTask:
    def test_lambda_fires(self):
        src = """
        from repro.parallel import parallel_map
        out = parallel_map(lambda x: x + 1, items)
        """
        assert fires("unpicklable-task", src) == ["unpicklable-task"]

    def test_nested_function_fires(self):
        src = """
        from repro.parallel import parallel_map

        def fit(X):
            def fit_one(i):
                return X[i]
            return parallel_map(fit_one, range(10))
        """
        assert fires("unpicklable-task", src) == ["unpicklable-task"]

    def test_bound_method_fires(self):
        src = """
        from repro.parallel import parallel_map

        class Trainer:
            def run(self, jobs):
                return parallel_map(self.step, jobs)
        """
        assert fires("unpicklable-task", src) == ["unpicklable-task"]

    def test_module_level_function_clean(self):
        src = """
        from repro.parallel import parallel_map

        def task(x):
            return x * x

        out = parallel_map(task, range(10))
        """
        assert fires("unpicklable-task", src) == []

    def test_suppression(self):
        src = """
        from repro.parallel import parallel_map

        def fit(X, cfg):
            def fit_one(i):
                return X[i]
            # staticcheck: ignore[unpicklable-task] - cfg pins the thread backend
            return parallel_map(fit_one, range(10), config=cfg)
        """
        result = run_rule("unpicklable-task", src)
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestExportDrift:
    def test_missing_all_fires_at_line_one(self):
        src = """\
        def public_api():
            pass
        """
        result = run_rule("export-drift", src)
        assert [(f.rule_id, f.line) for f in result.findings] == [("export-drift", 1)]

    def test_drifted_name_fires(self):
        src = """
        __all__ = ["renamed_away"]

        def current_name():
            pass
        """
        assert fires("export-drift", src) == ["export-drift"]

    def test_honest_all_clean(self):
        src = """
        import os

        __all__ = ["helper", "CONST", "os"]

        CONST = 1

        def helper():
            pass
        """
        assert fires("export-drift", src) == []

    def test_private_only_module_clean(self):
        src = """
        def _internal():
            pass
        """
        assert fires("export-drift", src) == []

    def test_suppression_via_standalone_comment(self):
        src = """\
        # staticcheck: ignore[export-drift] - script, not a library module
        def public_api():
            pass
        """
        result = run_rule("export-drift", src)
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestUnorderedIteration:
    def test_for_over_set_call_fires(self):
        src = """
        for name in set(feature_names):
            encode(name)
        """
        assert fires("unordered-iteration", src) == ["unordered-iteration"]

    def test_comprehension_over_set_literal_fires(self):
        src = """
        cols = [encode(x) for x in {"user", "name", "cores"}]
        """
        assert fires("unordered-iteration", src) == ["unordered-iteration"]

    def test_set_algebra_fires(self):
        src = """
        for k in seen | set(new):
            fit(k)
        """
        assert fires("unordered-iteration", src) == ["unordered-iteration"]

    def test_sorted_set_is_clean(self):
        src = """
        for name in sorted(set(feature_names)):
            encode(name)
        """
        assert fires("unordered-iteration", src) == []

    def test_list_iteration_clean(self):
        src = """
        for name in feature_names:
            encode(name)
        """
        assert fires("unordered-iteration", src) == []

    def test_suppression(self):
        src = """
        for name in set(feature_names):  # staticcheck: ignore[unordered-iteration] - feeds a counter, order-free
            count(name)
        """
        result = run_rule("unordered-iteration", src)
        assert result.findings == []
        assert len(result.suppressed) == 1
