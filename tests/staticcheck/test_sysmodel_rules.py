"""Sysmodel-tier rules: the SystemModel contract held statically.

Each rule gets an exactly-one-finding fixture (checked in the findings
list, the JSON render and the SARIF render) plus a clean sibling one
edit away.  The cross-module rules (``sysmodel-contract``,
``system-constant-leak``, ``system-dispatch``) run over multi-file
package fixtures through ``check_paths``; the warm-cache test pins the
schema-8 point that sysmodel facts ride in cached summaries and the
counters stay zero on warm runs.  Two seeded end-to-end tests mirror
the repo gate: a unit-wrong counter formula and a leaked Fugaku
constant each produce exactly one finding under the default rule set.
"""

import json
import textwrap

import pytest

from repro.staticcheck import (
    check_paths,
    check_source,
    render_json,
    render_sarif,
    resolve_project_rules,
    resolve_rules,
)
from repro.staticcheck.reporting import render_statistics
from repro.staticcheck.sysmodel.contract import SysmodelContractRule
from repro.staticcheck.sysmodel.facts import (
    FLAGGED_FLOATS,
    FLAGGED_INTS,
    FLAGGED_NAMES,
)
from repro.staticcheck.sysmodel.leaks import SystemConstantLeakRule, SystemDispatchRule


def run_dimension(source, path="snippet.py"):
    return check_source(
        textwrap.dedent(source),
        path=path,
        rules=resolve_rules(select=["sysmodel-dimension"]),
    )


#: a spec declaration with a negative peak (line 4): the single finding.
NEGATIVE_PEAK = """\
SPEC = MachineSpec(
    name="m",
    peak_gflops_node=-100.0,
    peak_membw_gbs=50.0,
    frequencies_ghz=(2.0, 2.2),
)
"""

CLEAN_SPEC = NEGATIVE_PEAK.replace("-100.0", "100.0")


class TestDimensionRule:
    def test_negative_peak_is_one_finding(self):
        result = run_dimension(NEGATIVE_PEAK)
        assert [(f.rule_id, f.line) for f in result.findings] == [
            ("sysmodel-dimension", 3)
        ]
        assert "must be positive" in result.findings[0].message

    def test_clean_sibling_is_silent(self):
        assert run_dimension(CLEAN_SPEC).findings == []

    def test_json_render_carries_the_finding(self):
        doc = json.loads(render_json(run_dimension(NEGATIVE_PEAK)))
        assert [(f["rule"], f["line"]) for f in doc["findings"]] == [
            ("sysmodel-dimension", 3)
        ]

    def test_sarif_render_carries_the_finding(self):
        doc = json.loads(render_sarif(run_dimension(NEGATIVE_PEAK)))
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "sysmodel-dimension"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 3

    def test_non_ascending_frequencies(self):
        src = CLEAN_SPEC.replace("(2.0, 2.2)", "(2.2, 2.0)")
        assert [f.rule_id for f in run_dimension(src).findings] == [
            "sysmodel-dimension"
        ]

    def test_non_monotone_knee_ladder(self):
        src = """\
        SPEC = MachineSpec(
            name="m",
            frequency_peaks=((2.0, 3072.0), (2.2, 3000.0)),
        )
        """
        rows = run_dimension(src).findings
        assert [f.rule_id for f in rows] == ["sysmodel-dimension"]
        assert "monotone in frequency" in rows[0].message

    def test_declared_knee_must_match_the_ratio(self):
        src = """\
        SPEC = MachineSpec(
            name="m",
            peak_gflops_node=3380.0,
            peak_membw_gbs=1024.0,
            ridge_point=3.5,
        )
        """
        rows = run_dimension(src).findings
        assert [f.rule_id for f in rows] == ["sysmodel-dimension"]
        assert "not a free parameter" in rows[0].message

    def test_consistent_knee_is_silent(self):
        src = """\
        SPEC = MachineSpec(
            name="m",
            peak_gflops_node=3380.0,
            peak_membw_gbs=1024.0,
            ridge_point=3.30078125,
        )
        """
        assert run_dimension(src).findings == []

    def test_non_positive_ceiling(self):
        src = 'LIMIT = Ceiling("hbm2", -1024.0)\n'
        rows = run_dimension(src).findings
        assert [f.rule_id for f in rows] == ["sysmodel-dimension"]

    def test_suppression_is_honoured(self):
        src = NEGATIVE_PEAK.replace(
            "peak_gflops_node=-100.0,",
            "peak_gflops_node=-100.0,  # staticcheck: ignore[sysmodel-dimension] - negative sentinel",
        )
        result = run_dimension(src)
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["sysmodel-dimension"]


BASE_MODULE = """\
import abc


class SystemModel(abc.ABC):
    @abc.abstractmethod
    def flops_from_counters(self, perf2, perf3):  # unit: perf2=flops, perf3=flops -> flops
        ...

    @abc.abstractmethod
    def ceilings(self):
        ...
"""

FULL_IMPL = """\
from pkg.base import SystemModel


class TinySystem(SystemModel):
    def flops_from_counters(self, perf2, perf3):  # unit: perf2=flops, perf3=flops -> flops
        return perf2 + perf3

    def ceilings(self):
        return ()
"""


class TestContractRule:
    def write_pkg(self, tmp_path, impl):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "base.py").write_text(BASE_MODULE)
        (pkg / "impl.py").write_text(textwrap.dedent(impl))
        return pkg

    def check(self, pkg):
        result = check_paths([pkg], rules=[], project_rules=[SysmodelContractRule()])
        return [(f.rule_id, f.line, f.message) for f in result.findings]

    def test_full_implementation_is_clean(self, tmp_path):
        assert self.check(self.write_pkg(tmp_path, FULL_IMPL)) == []

    def test_missing_member_is_one_finding(self, tmp_path):
        impl = FULL_IMPL.replace("    def ceilings(self):\n        return ()\n", "")
        rows = self.check(self.write_pkg(tmp_path, impl))
        assert len(rows) == 1
        rule, line, message = rows[0]
        assert rule == "sysmodel-contract"
        assert line == 4  # the class statement
        assert "does not implement SystemModel contract member 'ceilings'" in message

    def test_signature_drift_is_one_finding(self, tmp_path):
        impl = FULL_IMPL.replace(
            "def flops_from_counters(self, perf2, perf3):",
            "def flops_from_counters(self, p2, p3):",
        )
        rows = self.check(self.write_pkg(tmp_path, impl))
        assert len(rows) == 1
        assert rows[0][0] == "sysmodel-contract"
        assert "positional parameters" in rows[0][2]

    def test_dropped_unit_annotation_is_one_finding(self, tmp_path):
        impl = FULL_IMPL.replace(
            "def flops_from_counters(self, perf2, perf3):  # unit: perf2=flops, perf3=flops -> flops",
            "def flops_from_counters(self, perf2, perf3):",
        )
        rows = self.check(self.write_pkg(tmp_path, impl))
        assert len(rows) == 1
        assert "must repeat the contract's unit annotation" in rows[0][2]

    def test_abstract_intermediate_is_not_held_to_the_contract(self, tmp_path):
        impl = """\
        import abc

        from pkg.base import SystemModel


        class PartialSystem(SystemModel):
            @abc.abstractmethod
            def workload_config(self):
                ...
        """
        assert self.check(self.write_pkg(tmp_path, impl)) == []


class TestLeakAndDispatchRules:
    def test_leaked_constant_is_one_finding(self, tmp_path):
        (tmp_path / "sched.py").write_text("PEAK_GFLOPS = 3380.0\n")
        result = check_paths(
            [tmp_path], rules=[], project_rules=[SystemConstantLeakRule()]
        )
        assert [(f.rule_id, f.line) for f in result.findings] == [
            ("system-constant-leak", 1)
        ]
        assert "3380.0" in result.findings[0].message

    def test_leaked_counter_name_is_one_finding(self, tmp_path):
        (tmp_path / "events.py").write_text('EVENT = "FP_FIXED_OPS_SPEC"\n')
        result = check_paths(
            [tmp_path], rules=[], project_rules=[SystemConstantLeakRule()]
        )
        assert [f.rule_id for f in result.findings] == ["system-constant-leak"]

    def test_unflagged_constant_is_silent(self, tmp_path):
        (tmp_path / "sched.py").write_text("PEAK_GFLOPS = 3381.0\nN = 1024\n")
        result = check_paths(
            [tmp_path], rules=[], project_rules=[SystemConstantLeakRule()]
        )
        assert result.findings == []

    def write_dispatch_pkg(self, tmp_path, app_source):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "base.py").write_text(BASE_MODULE)
        (pkg / "impl.py").write_text(FULL_IMPL)
        (pkg / "app.py").write_text(textwrap.dedent(app_source))
        return pkg

    def test_direct_construction_is_one_finding(self, tmp_path):
        pkg = self.write_dispatch_pkg(
            tmp_path,
            """\
            from pkg.impl import TinySystem


            def build():
                return TinySystem()
            """,
        )
        result = check_paths([pkg], rules=[], project_rules=[SystemDispatchRule()])
        assert [(f.rule_id, f.line) for f in result.findings] == [
            ("system-dispatch", 5)
        ]
        assert "bypasses the registry" in result.findings[0].message

    def test_registry_resolution_is_silent(self, tmp_path):
        pkg = self.write_dispatch_pkg(
            tmp_path,
            """\
            from pkg.registry import get_system


            def build():
                return get_system("tiny")
            """,
        )
        (pkg / "registry.py").write_text(
            "def get_system(name):\n    return None\n"
        )
        result = check_paths([pkg], rules=[], project_rules=[SystemDispatchRule()])
        assert result.findings == []


class TestCacheAndStats:
    def test_sysmodel_facts_survive_a_warm_cache(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "base.py").write_text(BASE_MODULE)
        impl = FULL_IMPL.replace("    def ceilings(self):\n        return ()\n", "")
        (pkg / "impl.py").write_text(impl)
        cache = tmp_path / "cache.json"

        def go():
            return check_paths(
                [pkg],
                rules=[],
                project_rules=[SysmodelContractRule()],
                cache_path=cache,
            )

        cold, warm = go(), go()
        assert [(f.rule_id, f.line) for f in warm.findings] == [
            (f.rule_id, f.line) for f in cold.findings
        ]
        assert len(warm.findings) == 1
        assert warm.stats.cache_misses == 0
        # warm runs serve sysmodel facts from the cache: zero tier work
        assert warm.stats.sysmodel_classes == 0
        assert warm.stats.sysmodel_specs == 0
        assert cold.stats.sysmodel_classes > 0

    def test_spec_counter_flows_into_stats(self, tmp_path):
        (tmp_path / "m.py").write_text(CLEAN_SPEC)
        result = check_paths(
            [tmp_path],
            rules=resolve_rules(select=["sysmodel-dimension"]),
            project_rules=[],
        )
        assert result.stats.sysmodel_specs == 1
        text = render_statistics(result.stats)
        assert "sysmodel classes:" in text
        assert "sysmodel specs:" in text


class TestSeededEndToEnd:
    """The acceptance fixtures: default rule set, exactly one finding."""

    def test_seeded_unit_wrong_formula_is_caught(self, tmp_path):
        # a counter formula annotated -> bytes that computes flops: the
        # unit fixpoint must flag it through the method annotation
        bad = tmp_path / "model.py"
        bad.write_text(
            "def _moved_bytes_from_counters(perf4, perf5):  # unit: perf4=flops, perf5=flops -> bytes\n"
            "    return perf4 + perf5\n"
        )
        result = check_paths([tmp_path])
        assert [(f.rule_id, f.line) for f in result.findings] == [("unit-mismatch", 2)]

    def test_seeded_constant_leak_is_caught(self, tmp_path):
        bad = tmp_path / "policy.py"
        bad.write_text("NODE_PEAK = 3380.0\n")
        result = check_paths([tmp_path])
        assert [(f.rule_id, f.line) for f in result.findings] == [
            ("system-constant-leak", 1)
        ]

    def test_flagged_tables_cover_the_papers_constants(self):
        assert 3380.0 in FLAGGED_FLOATS and 1024.0 in FLAGGED_FLOATS
        assert 158_976 in FLAGGED_INTS
        assert "FP_SCALE_OPS_SPEC" in FLAGGED_NAMES


def test_sysmodel_rules_are_registered_by_default():
    assert "sysmodel-dimension" in {r.id for r in resolve_rules()}
    assert {r.id for r in resolve_project_rules()} >= {
        "sysmodel-contract",
        "system-constant-leak",
        "system-dispatch",
    }
