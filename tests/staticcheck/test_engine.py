"""Engine mechanics: suppressions, discovery, registry, reporters."""

import json
import textwrap

import pytest

from repro.staticcheck import (
    Finding,
    all_rules,
    check_paths,
    check_source,
    render_json,
    render_text,
    resolve_rules,
)
from repro.staticcheck.engine import SYNTAX_ERROR_ID, iter_python_files
from repro.staticcheck.suppressions import parse_suppressions

TRIGGER = "import time\nt0 = time.time()\n"


class TestSuppressions:
    def test_same_line_directive(self):
        index = parse_suppressions("x = 1  # staticcheck: ignore[some-rule]\n")
        assert index.covers(1, "some-rule")
        assert not index.covers(1, "other-rule")
        assert not index.covers(2, "some-rule")

    def test_standalone_comment_covers_next_line(self):
        index = parse_suppressions("# staticcheck: ignore[some-rule]\nx = 1\n")
        assert index.covers(1, "some-rule")
        assert index.covers(2, "some-rule")

    def test_wildcard_covers_every_rule(self):
        index = parse_suppressions("x = 1  # staticcheck: ignore[*]\n")
        assert index.covers(1, "anything")

    def test_multiple_rules_and_trailing_prose(self):
        index = parse_suppressions("x = 1  # staticcheck: ignore[rule-a, rule-b] - because\n")
        assert index.covers(1, "rule-a") and index.covers(1, "rule-b")

    def test_directive_inside_string_literal_ignored(self):
        index = parse_suppressions('x = "# staticcheck: ignore[some-rule]"\n')
        assert not index.covers(1, "some-rule")

    def test_trailing_comment_does_not_leak_to_next_line(self):
        index = parse_suppressions("x = 1  # staticcheck: ignore[some-rule]\ny = 2\n")
        assert not index.covers(2, "some-rule")


class TestCheckSource:
    def test_clean_source(self):
        result = check_source("import time\nt0 = time.perf_counter()\n")
        assert result.clean and result.files_checked == 1

    def test_finding_location_and_str(self):
        result = check_source(TRIGGER, path="mod.py")
        (finding,) = result.findings
        assert (finding.path, finding.line) == ("mod.py", 2)
        assert str(finding).startswith("mod.py:2:")

    def test_syntax_error_reported_not_raised(self):
        result = check_source("def broken(:\n", path="bad.py")
        (finding,) = result.findings
        assert finding.rule_id == SYNTAX_ERROR_ID
        assert not result.clean

    def test_suppressed_findings_are_kept_separately(self):
        src = "import time\nt0 = time.time()  # staticcheck: ignore[wallclock-timing] - stamp\n"
        result = check_source(src)
        assert result.clean
        assert [f.rule_id for f in result.suppressed] == ["wallclock-timing"]

    def test_findings_sorted_by_location(self):
        src = textwrap.dedent(
            """
            import time
            def _f(x, acc=[]):
                return x == 0.5
            t0 = time.time()
            """
        )
        result = check_source(src)
        assert [f.line for f in result.findings] == sorted(f.line for f in result.findings)
        assert len(result.findings) == 3


class TestCheckPaths:
    def test_directory_walk_and_counts(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "dirty.py").write_text(TRIGGER)
        (tmp_path / "pkg" / "clean.py").write_text("X = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text(TRIGGER)
        result = check_paths([tmp_path])
        assert result.files_checked == 2
        assert [f.rule_id for f in result.findings] == ["wallclock-timing"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            check_paths([tmp_path / "nope"])

    def test_iter_python_files_dedupes(self, tmp_path):
        f = tmp_path / "a.py"
        f.write_text("X = 1\n")
        assert iter_python_files([f, tmp_path]) == [f]


class TestRegistry:
    def test_all_eight_rules_registered(self):
        expected = {
            "unseeded-rng",
            "wallclock-timing",
            "float-equality",
            "mutable-default",
            "silent-except",
            "unpicklable-task",
            "export-drift",
            "unordered-iteration",
        }
        assert expected <= set(all_rules())

    def test_select_and_ignore(self):
        only = resolve_rules(select=["float-equality"])
        assert [r.id for r in only] == ["float-equality"]
        rest = resolve_rules(ignore=["float-equality"])
        assert "float-equality" not in [r.id for r in rest]

    def test_unknown_rule_id(self):
        with pytest.raises(KeyError):
            resolve_rules(select=["no-such-rule"])

    def test_every_rule_has_description(self):
        for cls in all_rules().values():
            assert cls.description


class TestReporters:
    def test_text_report_has_summary(self):
        result = check_source(TRIGGER, path="mod.py")
        text = render_text(result)
        assert "mod.py:2:" in text
        assert "1 finding (0 suppressed) in 1 file" in text

    def test_json_report_round_trips(self):
        result = check_source(TRIGGER, path="mod.py")
        doc = json.loads(render_json(result))
        assert doc["version"] == 1
        assert doc["files_checked"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "wallclock-timing"
        assert finding["suppressed"] is False

    def test_finding_to_dict(self):
        f = Finding(path="a.py", line=3, col=1, rule_id="x-y", message="m")
        assert f.to_dict() == {
            "path": "a.py",
            "line": 3,
            "col": 1,
            "rule": "x-y",
            "message": "m",
            "suppressed": False,
        }
