"""Engine mechanics: suppressions, discovery, registry, reporters."""

import json
import textwrap

import pytest

from repro.staticcheck import (
    Finding,
    all_rules,
    check_paths,
    check_source,
    render_json,
    render_text,
    resolve_rules,
)
from repro.staticcheck.engine import (
    SYNTAX_ERROR_ID,
    UNKNOWN_SUPPRESSION_ID,
    UsageError,
    iter_python_files,
)
from repro.staticcheck.suppressions import parse_directives, parse_suppressions

TRIGGER = "import time\nt0 = time.time()\n"


class TestSuppressions:
    def test_same_line_directive(self):
        index = parse_suppressions("x = 1  # staticcheck: ignore[some-rule]\n")
        assert index.covers(1, "some-rule")
        assert not index.covers(1, "other-rule")
        assert not index.covers(2, "some-rule")

    def test_standalone_comment_covers_next_line(self):
        index = parse_suppressions("# staticcheck: ignore[some-rule]\nx = 1\n")
        assert index.covers(1, "some-rule")
        assert index.covers(2, "some-rule")

    def test_wildcard_covers_every_rule(self):
        index = parse_suppressions("x = 1  # staticcheck: ignore[*]\n")
        assert index.covers(1, "anything")

    def test_multiple_rules_and_trailing_prose(self):
        index = parse_suppressions("x = 1  # staticcheck: ignore[rule-a, rule-b] - because\n")
        assert index.covers(1, "rule-a") and index.covers(1, "rule-b")

    def test_directive_inside_string_literal_ignored(self):
        index = parse_suppressions('x = "# staticcheck: ignore[some-rule]"\n')
        assert not index.covers(1, "some-rule")

    def test_trailing_comment_does_not_leak_to_next_line(self):
        index = parse_suppressions("x = 1  # staticcheck: ignore[some-rule]\ny = 2\n")
        assert not index.covers(2, "some-rule")

    def test_continuation_line_directive_covers_statement_start(self):
        # The closing line of a multi-line statement is often the only
        # place with room for a comment; the directive must still cover
        # findings reported at the statement head.
        src = "t0 = time.time(\n)  # staticcheck: ignore[wallclock-timing]\n"
        index = parse_suppressions(src)
        assert index.covers(1, "wallclock-timing")
        assert index.covers(2, "wallclock-timing")

    def test_continuation_directive_does_not_cover_unrelated_lines(self):
        src = "a = 1\nt0 = f(\n    2)  # staticcheck: ignore[some-rule]\nb = 3\n"
        index = parse_suppressions(src)
        assert index.covers(2, "some-rule") and index.covers(3, "some-rule")
        assert not index.covers(1, "some-rule")
        assert not index.covers(4, "some-rule")

    def test_multiple_rule_ids_with_odd_whitespace(self):
        index = parse_suppressions("x = 1  # staticcheck: ignore[ rule-a ,rule-b,  rule-c ]\n")
        for rule in ("rule-a", "rule-b", "rule-c"):
            assert index.covers(1, rule)

    def test_parse_directives_reports_locations(self):
        (directive,) = parse_directives("x = 1  # staticcheck: ignore[rule-a, rule-b]\n")
        assert directive.line == 1
        assert directive.rule_ids == frozenset({"rule-a", "rule-b"})


class TestUnknownSuppression:
    def test_unknown_rule_id_in_directive_is_reported(self):
        src = "x = 1  # staticcheck: ignore[no-such-rule]\n"
        result = check_source(src)
        (finding,) = result.findings
        assert finding.rule_id == UNKNOWN_SUPPRESSION_ID
        assert "no-such-rule" in finding.message
        assert finding.line == 1

    def test_known_rule_id_is_not_reported(self):
        src = "import time\nt0 = time.time()  # staticcheck: ignore[wallclock-timing]\n"
        result = check_source(src)
        assert result.clean

    def test_wildcard_is_not_reported(self):
        assert check_source("x = 1  # staticcheck: ignore[*]\n").clean

    def test_project_rule_ids_are_known(self):
        assert check_source("x = 1  # staticcheck: ignore[dead-export]\n").clean

    def test_mixed_known_and_unknown_ids(self):
        src = "import time\nt0 = time.time()  # staticcheck: ignore[wallclock-timing, bogus-rule]\n"
        result = check_source(src)
        assert [f.rule_id for f in result.findings] == [UNKNOWN_SUPPRESSION_ID]
        # the known id still suppresses its finding
        assert [f.rule_id for f in result.suppressed] == ["wallclock-timing"]


class TestCheckSource:
    def test_clean_source(self):
        result = check_source("import time\nt0 = time.perf_counter()\n")
        assert result.clean and result.files_checked == 1

    def test_finding_location_and_str(self):
        result = check_source(TRIGGER, path="mod.py")
        (finding,) = result.findings
        assert (finding.path, finding.line) == ("mod.py", 2)
        assert str(finding).startswith("mod.py:2:")

    def test_syntax_error_reported_not_raised(self):
        result = check_source("def broken(:\n", path="bad.py")
        (finding,) = result.findings
        assert finding.rule_id == SYNTAX_ERROR_ID
        assert not result.clean

    def test_suppressed_findings_are_kept_separately(self):
        src = "import time\nt0 = time.time()  # staticcheck: ignore[wallclock-timing] - stamp\n"
        result = check_source(src)
        assert result.clean
        assert [f.rule_id for f in result.suppressed] == ["wallclock-timing"]

    def test_findings_sorted_by_location(self):
        src = textwrap.dedent(
            """
            import time
            def _f(x, acc=[]):
                return x == 0.5
            t0 = time.time()
            """
        )
        result = check_source(src)
        assert [f.line for f in result.findings] == sorted(f.line for f in result.findings)
        assert len(result.findings) == 3


class TestCheckPaths:
    def test_directory_walk_and_counts(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "dirty.py").write_text(TRIGGER)
        (tmp_path / "pkg" / "clean.py").write_text("X = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text(TRIGGER)
        result = check_paths([tmp_path])
        assert result.files_checked == 2
        assert [f.rule_id for f in result.findings] == ["wallclock-timing"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            check_paths([tmp_path / "nope"])

    def test_iter_python_files_dedupes(self, tmp_path):
        f = tmp_path / "a.py"
        f.write_text("X = 1\n")
        assert iter_python_files([f, tmp_path]) == [f]

    def test_existing_non_python_file_raises_usage_error(self, tmp_path):
        readme = tmp_path / "README.md"
        readme.write_text("# not python\n")
        with pytest.raises(UsageError):
            iter_python_files([readme])

    def test_non_python_file_inside_directory_is_still_skipped(self, tmp_path):
        (tmp_path / "README.md").write_text("# not python\n")
        (tmp_path / "ok.py").write_text("X = 1\n")
        assert [p.name for p in iter_python_files([tmp_path])] == ["ok.py"]


class TestRelativeImports:
    def test_relative_import_resolves_to_absolute_name(self, tmp_path):
        pkg = tmp_path / "pkg"
        sub = pkg / "sub"
        sub.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (sub / "__init__.py").write_text("")
        (sub / "mod.py").write_text(
            "from . import sibling\n"
            "from .sibling import helper\n"
            "from ..other import thing as t\n"
        )
        from repro.staticcheck.project.summary import build_import_table, module_name_for_path
        import ast

        name, is_pkg = module_name_for_path(sub / "mod.py")
        assert (name, is_pkg) == ("pkg.sub.mod", False)
        table = build_import_table(ast.parse((sub / "mod.py").read_text()), name, is_pkg)
        assert table["sibling"] == "pkg.sub.sibling"
        assert table["helper"] == "pkg.sub.sibling.helper"
        assert table["t"] == "pkg.other.thing"

    def test_relative_import_above_package_root_is_skipped(self):
        from repro.staticcheck.project.summary import resolve_relative

        assert resolve_relative("pkg.mod", False, 3, "x") is None


class TestRegistry:
    def test_all_eight_rules_registered(self):
        expected = {
            "unseeded-rng",
            "wallclock-timing",
            "float-equality",
            "mutable-default",
            "silent-except",
            "unpicklable-task",
            "export-drift",
            "unordered-iteration",
        }
        assert expected <= set(all_rules())

    def test_select_and_ignore(self):
        only = resolve_rules(select=["float-equality"])
        assert [r.id for r in only] == ["float-equality"]
        rest = resolve_rules(ignore=["float-equality"])
        assert "float-equality" not in [r.id for r in rest]

    def test_unknown_rule_id(self):
        with pytest.raises(KeyError):
            resolve_rules(select=["no-such-rule"])

    def test_every_rule_has_description(self):
        for cls in all_rules().values():
            assert cls.description


class TestReporters:
    def test_text_report_has_summary(self):
        result = check_source(TRIGGER, path="mod.py")
        text = render_text(result)
        assert "mod.py:2:" in text
        assert "1 finding (0 suppressed) in 1 file" in text

    def test_json_report_round_trips(self):
        result = check_source(TRIGGER, path="mod.py")
        doc = json.loads(render_json(result))
        assert doc["version"] == 2
        assert doc["files_checked"] == 1
        assert doc["baselined"] == []
        (finding,) = doc["findings"]
        assert finding["rule"] == "wallclock-timing"
        assert finding["suppressed"] is False

    def test_finding_to_dict(self):
        f = Finding(path="a.py", line=3, col=1, rule_id="x-y", message="m")
        assert f.to_dict() == {
            "path": "a.py",
            "line": 3,
            "col": 1,
            "rule": "x-y",
            "message": "m",
            "suppressed": False,
        }
