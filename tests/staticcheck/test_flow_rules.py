"""Flow-sensitive rules: unit-mismatch, resource-leak, double-release.

The two *seeded-bug* fixtures mirror the acceptance criteria: a
roofline-like function that adds Flops to Bytes, and a SharedArray
segment leaked on an exception path.  Each must produce exactly one
finding at the right line — in the findings list, in the JSON render
and in the SARIF render.
"""

import json
import textwrap

from repro.staticcheck import (
    check_paths,
    check_source,
    render_json,
    render_sarif,
    resolve_rules,
)

FLOW_RULES = ["unit-mismatch", "resource-leak", "double-release"]


def run(source, *, select=FLOW_RULES, path="snippet.py"):
    return check_source(
        textwrap.dedent(source), path=path, rules=resolve_rules(select=select)
    )


def findings_of(source, **kwargs):
    return [(f.rule_id, f.line, f.message) for f in run(source, **kwargs).findings]


#: Acceptance fixture 1 — roofline math adding Flops to Bytes (line 3).
UNITS_BUG = """\
def operational_intensity(flops, moved_bytes):  # unit: flops=flops, moved_bytes=bytes -> flops/byte
    # A plausible-looking slip: "total work" mixing both axes.
    total = flops + moved_bytes
    return total / moved_bytes
"""

#: Acceptance fixture 2 — SharedArray segment leaked on the exception
#: path: ``fill`` may raise after ``create`` (line 5) but before
#: ``close``, and nothing releases the segment on that path.
LEAK_BUG = """\
import SharedArray


def broadcast(name, values):
    seg = SharedArray.create(name, len(values))
    fill(seg, values)
    seg.close()
"""


class TestSeededUnitBug:
    def test_exactly_one_finding_at_the_add(self):
        result = run(UNITS_BUG)
        assert [(f.rule_id, f.line) for f in result.findings] == [("unit-mismatch", 3)]
        assert "adds flops and bytes" in result.findings[0].message

    def test_json_render_carries_the_same_single_finding(self):
        doc = json.loads(render_json(run(UNITS_BUG)))
        assert [(f["rule"], f["line"]) for f in doc["findings"]] == [
            ("unit-mismatch", 3)
        ]

    def test_sarif_render_carries_the_same_single_finding(self):
        doc = json.loads(render_sarif(run(UNITS_BUG)))
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "unit-mismatch"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 3


class TestSeededResourceLeak:
    def test_exactly_one_finding_at_the_acquisition(self):
        result = run(LEAK_BUG)
        assert [(f.rule_id, f.line) for f in result.findings] == [("resource-leak", 5)]
        assert "SharedArray segment" in result.findings[0].message
        assert "close()" in result.findings[0].message

    def test_json_render_carries_the_same_single_finding(self):
        doc = json.loads(render_json(run(LEAK_BUG)))
        assert [(f["rule"], f["line"]) for f in doc["findings"]] == [
            ("resource-leak", 5)
        ]

    def test_sarif_render_carries_the_same_single_finding(self):
        doc = json.loads(render_sarif(run(LEAK_BUG)))
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "resource-leak"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5


class TestUnitMismatch:
    def test_dimensionless_scaling_is_clean(self):
        """Numeric literals are polymorphic, not dimensionless-typed."""
        src = """
        def perf(flops, duration):  # unit: flops=flops, duration=s -> gflops/s
            scaled = flops / 1e9
            return scaled / duration
        """
        assert findings_of(src) == []

    def test_compare_across_dimensions_fires(self):
        src = """
        def check(flops, duration):  # unit: flops=flops, duration=s
            return flops > duration
        """
        assert [(r, l) for r, l, _ in findings_of(src)] == [("unit-mismatch", 3)]

    def test_declared_return_is_checked(self):
        src = """
        def ridge(flops, moved_bytes):  # unit: flops=flops, moved_bytes=bytes -> flops/byte
            return moved_bytes / flops
        """
        rows = findings_of(src)
        assert [(r, l) for r, l, _ in rows] == [("unit-mismatch", 3)]
        assert "declared" in rows[0][2]

    def test_clock_calls_seed_seconds(self):
        src = """
        import time

        def timed(flops):  # unit: flops=flops
            t0 = time.perf_counter()
            return flops + t0
        """
        rows = findings_of(src)
        assert [(r, l) for r, l, _ in rows] == [("unit-mismatch", 6)]
        assert "adds flops and seconds" in rows[0][2]

    def test_flow_sensitivity_joins_to_unknown(self):
        """A variable holding flops on one branch and bytes on the other
        joins to unknown — no report on later use (may-analysis would
        drown the tier in noise)."""
        src = """
        def pick(flag, flops, moved_bytes):  # unit: flops=flops, moved_bytes=bytes
            if flag:
                x = flops
            else:
                x = moved_bytes
            return x + flops
        """
        assert findings_of(src) == []

    def test_tuple_unpack_annotation(self):
        src = """
        def split(pair, duration):  # unit: duration=s
            flops, moved = pair  # unit: flops, bytes
            return flops + moved
        """
        assert [(r, l) for r, l, _ in findings_of(src)] == [("unit-mismatch", 4)]

    def test_division_tracks_derived_units(self):
        """flops / s / (flops/byte) -> bytes/s: compatible with gb/s."""
        src = """
        def bandwidth(flops, duration, op):  # unit: flops=flops, duration=s, op=flops/byte -> bytes/s
            return flops / duration / op
        """
        assert findings_of(src) == []

    def test_suppression_is_honoured(self):
        src = """
        def hack(flops, moved_bytes):  # unit: flops=flops, moved_bytes=bytes
            return flops + moved_bytes  # staticcheck: ignore[unit-mismatch] - heuristic score
        """
        result = run(src)
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["unit-mismatch"]


class TestResourceLifecycle:
    def test_with_managed_acquisition_is_clean(self):
        src = """
        def read(path):
            with open(path) as fh:
                return fh.read()
        """
        assert findings_of(src) == []

    def test_try_finally_release_is_clean(self):
        src = """
        import SharedArray

        def broadcast(name, values):
            seg = SharedArray.create(name, len(values))
            try:
                fill(seg, values)
            finally:
                seg.close()
        """
        assert findings_of(src) == []

    def test_returned_resource_is_the_callers_problem(self):
        src = """
        def make(path):
            fh = open(path)
            return fh
        """
        assert findings_of(src) == []

    def test_registered_resource_escapes(self):
        src = """
        def pool_up(names, pools):
            for name in names:
                conn = sqlite3.connect(name)
                pools.append(conn)
        """
        assert findings_of(src) == []

    def test_conditional_close_leaks_on_the_other_path(self):
        src = """
        def flaky(path, keep):
            fh = open(path)
            if keep:
                fh.close()
        """
        rows = findings_of(src)
        assert [(r, l) for r, l, _ in rows] == [("resource-leak", 3)]

    def test_double_close_fires_once_at_the_second_close(self):
        src = """
        def twice(path):
            fh = open(path)
            try:
                fh.close()
            finally:
                fh.close()
        """
        rows = findings_of(src)
        assert [r for r, _, _ in rows] == ["double-release"]
        assert rows[0][1] == 7

    def test_bare_lock_acquire_without_release_fires(self):
        src = """
        def locked(lock):
            lock.acquire()
            work()
        """
        rows = findings_of(src)
        assert [r for r, _, _ in rows] == ["resource-leak"]
        assert "release()" in rows[0][2]

    def test_lock_acquire_release_pair_is_clean(self):
        src = """
        def locked(lock):
            lock.acquire()
            try:
                work()
            finally:
                lock.release()
        """
        assert findings_of(src) == []

    def test_suppression_is_honoured(self):
        src = """
        def intentional(path):
            fh = open(path)  # staticcheck: ignore[resource-leak] - lives for the process
            serve(fh)
        """
        result = run(src)
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["resource-leak"]


class TestCrossModuleSeeds:
    def make_pkg(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "units.py").write_text(
            textwrap.dedent(
                """
                def node_flops(raw):  # unit: raw=flops -> flops
                    return raw


                class Machine:
                    ridge_point: float  # unit: flops/byte
                """
            )
        )
        return pkg

    def test_imported_function_return_unit_is_seeded(self, tmp_path):
        pkg = self.make_pkg(tmp_path)
        (pkg / "use.py").write_text(
            textwrap.dedent(
                """
                from pkg.units import node_flops


                def mix(raw, duration):  # unit: duration=s
                    return node_flops(raw) + duration
                """
            )
        )
        result = check_paths([pkg], rules=resolve_rules(select=FLOW_RULES))
        rows = [(f.rule_id, f.path.endswith("use.py"), f.message) for f in result.findings]
        assert [(r, p) for r, p, _ in rows] == [("unit-mismatch", True)]
        assert "adds flops and seconds" in rows[0][2]

    def test_imported_attribute_unit_is_seeded(self, tmp_path):
        pkg = self.make_pkg(tmp_path)
        (pkg / "use.py").write_text(
            textwrap.dedent(
                """
                from pkg.units import Machine


                def label(machine, duration):  # unit: duration=s
                    return machine.ridge_point > duration
                """
            )
        )
        result = check_paths([pkg], rules=resolve_rules(select=FLOW_RULES))
        rows = [(f.rule_id, f.message) for f in result.findings]
        assert len(rows) == 1 and rows[0][0] == "unit-mismatch"
        assert "compares flops/bytes against seconds" in rows[0][1]
