"""Capacity-tier rules: cardinality dataflow and streaming discipline.

Each of the five rules has an exactly-one-finding fixture (checked in the
findings list, the JSON render and the SARIF render) plus a clean sibling
one lattice point away; the cross-module ``streaming-contract`` rule has
a two-file package fixture mirroring the hot-path-gap test.  The warm
test pins the cache behaviour the schema bump exists for: capacity
findings and the summaries' capacity facts survive a cache round-trip.
"""

import json
import textwrap

import pytest

from repro.staticcheck import (
    check_paths,
    check_source,
    render_json,
    render_sarif,
    resolve_rules,
)
from repro.staticcheck.capacity.dataflow import module_capacity_findings
from repro.staticcheck.capacity.scales import (
    SCALE_ORDER,
    SCALES,
    max_scale,
    parse_def_scale_spec,
    parse_scale_spec,
)
from repro.staticcheck.reporting import render_statistics

CAPACITY_RULES = [
    "full-materialization",
    "unbounded-accumulation",
    "scale-amplification",
    "rowwise-loop",
]


def run(source, *, select=CAPACITY_RULES, path="snippet.py"):
    return check_source(
        textwrap.dedent(source), path=path, rules=resolve_rules(select=select)
    )


def findings_of(source, **kwargs):
    return [(f.rule_id, f.line) for f in run(source, **kwargs).findings]


#: a # streaming: function that materializes the whole jobs-scale input
#: (line 7): the exact failure mode the streaming tier exists to catch.
FULL_MATERIALIZATION = """\
import numpy as np


def drain(fetch):
    # streaming: chunked drain of the jobs table
    col = fetch()  # scale: jobs
    return list(col)
"""

#: a loop accumulating batch-scale chunks with no bound (line 8): memory
#: grows with the trace length, not the chunk size.
UNBOUNDED_ACCUMULATION = """\
def load_day(day):  # scale: -> batch
    return day


def collect(days):
    acc = []
    for day in days:
        acc.append(load_day(day))
    return acc
"""

#: .tolist() on a jobs-scale column (line 6): per-row python objects at
#: ~10x the columnar footprint.
SCALE_AMPLIFICATION = """\
import numpy as np


def export(fetch):
    col = fetch()  # scale: jobs
    return col.tolist()
"""

#: python-level per-row iteration over a jobs-scale column (line 6).
ROWWISE_LOOP = """\
def total(col):  # scale: col=jobs
    acc = 0.0
    x = col
    for v in x:
        acc += v
    return acc
"""

RULE_FIXTURES = {
    "full-materialization": (FULL_MATERIALIZATION, 7),
    "unbounded-accumulation": (UNBOUNDED_ACCUMULATION, 8),
    "scale-amplification": (SCALE_AMPLIFICATION, 6),
    "rowwise-loop": (ROWWISE_LOOP, 4),
}

#: the same shape one lattice point away (or with the bound the rule
#: demands): every fixture's sibling must be silent.
CLEAN_SIBLINGS = {
    "full-materialization": FULL_MATERIALIZATION.replace(
        "# scale: jobs", "# scale: batch"
    ),
    "unbounded-accumulation": UNBOUNDED_ACCUMULATION.replace(
        "# scale: -> batch", "# scale: -> bounded"
    ),
    "scale-amplification": SCALE_AMPLIFICATION.replace(
        "# scale: jobs", "# scale: batch"
    ),
    "rowwise-loop": ROWWISE_LOOP.replace("# scale: col=jobs", "# scale: col=batch"),
}


class TestEveryRuleInBothRenders:
    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_exactly_one_finding(self, rule):
        source, line = RULE_FIXTURES[rule]
        result = run(source)
        assert [(f.rule_id, f.line) for f in result.findings] == [(rule, line)]

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_clean_sibling_is_silent(self, rule):
        assert findings_of(CLEAN_SIBLINGS[rule]) == []

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_json_render_carries_the_same_single_finding(self, rule):
        source, line = RULE_FIXTURES[rule]
        doc = json.loads(render_json(run(source)))
        assert [(f["rule"], f["line"]) for f in doc["findings"]] == [(rule, line)]

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_sarif_render_carries_the_same_single_finding(self, rule):
        source, line = RULE_FIXTURES[rule]
        doc = json.loads(render_sarif(run(source)))
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == rule
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == line


class TestLattice:
    def test_order_and_join(self):
        assert SCALES == ("bounded", "batch", "jobs")
        assert SCALE_ORDER["bounded"] < SCALE_ORDER["batch"] < SCALE_ORDER["jobs"]
        assert max_scale("batch", None, "jobs") == "jobs"
        assert max_scale(None, None) is None
        assert max_scale() is None

    def test_spec_parsing(self):
        assert parse_scale_spec(" jobs ") == "jobs"
        assert parse_scale_spec("huge") is None
        params, ret = parse_def_scale_spec("rows=jobs, header=bounded -> batch")
        assert params == {"rows": "jobs", "header": "bounded"}
        assert ret == "batch"
        params, ret = parse_def_scale_spec("-> jobs")
        assert params == {} and ret == "jobs"

    def test_module_findings_are_memoized(self):
        module = result_module(ROWWISE_LOOP)
        rows = module_capacity_findings(module)
        assert [(r, l) for r, l, _c, _m in rows] == [("rowwise-loop", 4)]
        assert module_capacity_findings(module) is rows

    def test_unannotated_file_costs_no_fixpoints(self):
        from repro.staticcheck.capacity import COUNTERS

        module = result_module("def f(xs):\n    return [x for x in xs]\n")
        before = COUNTERS["scale_fixpoints"]
        assert module_capacity_findings(module) == []
        assert COUNTERS["scale_fixpoints"] == before


def result_module(source):
    """A ModuleContext for white-box capacity assertions."""
    import ast

    from repro.staticcheck.engine import ModuleContext

    text = textwrap.dedent(source)
    return ModuleContext(path="snippet.py", source=text, tree=ast.parse(text))


class TestPropagation:
    def test_scale_flows_through_assignments_and_slices(self):
        src = """\
        def walk(col):  # scale: col=jobs
            window = col[10:]
            for v in window:
                print(v)
        """
        assert findings_of(src) == [("rowwise-loop", 3)]

    def test_reducers_drop_to_bounded(self):
        src = """\
        def stat(col):  # scale: col=jobs
            n = len(col)
            for v in range(3):
                print(n, v)
        """
        assert findings_of(src) == []

    def test_stepped_range_is_the_chunking_idiom(self):
        src = """\
        def scan(col):  # scale: col=jobs
            for start in range(0, len(col), 4096):
                print(col[start : start + 4096])
        """
        assert findings_of(src) == []

    def test_range_len_over_jobs_is_rowwise(self):
        src = """\
        def scan(col):  # scale: col=jobs
            for i in range(len(col)):
                print(col[i])
        """
        assert findings_of(src) == [("rowwise-loop", 2)]

    def test_break_bounds_the_accumulator(self):
        src = UNBOUNDED_ACCUMULATION.replace(
            "        acc.append(load_day(day))",
            "        acc.append(load_day(day))\n        if len(acc) > 3:\n            break",
        )
        assert findings_of(src) == []

    def test_row_dict_comprehension_amplifies(self):
        src = """\
        def to_dicts(col):  # scale: col=jobs
            return [dict(v=v) for v in col]
        """
        assert findings_of(src) == [("scale-amplification", 2)]

    def test_generator_call_binds_declared_scale_per_yield(self):
        # iterating a -> batch generator binds batch chunks, and piling
        # them up is the accumulation anti-pattern, not a rowwise loop
        src = """\
        def scan():  # scale: -> batch
            yield [1]


        def consume():
            out = []
            for chunk in scan():
                out.append(chunk)
            return out
        """
        assert findings_of(src) == [("unbounded-accumulation", 8)]


class TestSuppression:
    def test_inline_ignore_is_honoured(self):
        src = """\
        def total(col):  # scale: col=jobs
            acc = 0.0
            for v in col:  # staticcheck: ignore[rowwise-loop] - tiny debug helper
                acc += v
            return acc
        """
        result = run(src)
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["rowwise-loop"]

    def test_stale_capacity_suppression_is_audited(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(
            textwrap.dedent(
                """\
                __all__ = ["total"]


                def total(col):  # scale: col=jobs
                    return sum(col)  # staticcheck: ignore[rowwise-loop]
                """
            )
        )
        result = check_paths([target])
        rows = [f for f in result.findings if f.rule_id == "unused-suppression"]
        assert len(rows) == 1
        assert "ignore[rowwise-loop]" in rows[0].message


class TestStreamingContract:
    def write_project(self, tmp_path, *, returns="jobs"):
        pkg = tmp_path / "pkg"
        pkg.mkdir(exist_ok=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "store.py").write_text(
            textwrap.dedent(
                f"""\
                def fetch_all():  # scale: -> {returns}
                    return list(range(10))
                """
            )
        )
        (pkg / "serve.py").write_text(
            textwrap.dedent(
                """\
                from pkg.store import fetch_all


                def stream_jobs():
                    # streaming: serve-path drain
                    for row in fetch_all():
                        yield row
                """
            )
        )
        return pkg

    def check_contract(self, pkg, **kwargs):
        from repro.staticcheck.capacity.contract import StreamingContractRule

        result = check_paths(
            [pkg], rules=[], project_rules=[StreamingContractRule()], **kwargs
        )
        return result, [f for f in result.findings if f.rule_id == "streaming-contract"]

    def test_streaming_caller_of_materializing_jobs_fetch(self, tmp_path):
        pkg = self.write_project(tmp_path)
        _, rows = self.check_contract(pkg)
        assert [(f.path, f.line) for f in rows] == [(str(pkg / "serve.py"), 6)]
        assert "fetch_all" in rows[0].message
        assert "store.py" in rows[0].message

    def test_batch_scale_fetch_closes_the_gap(self, tmp_path):
        pkg = self.write_project(tmp_path, returns="batch")
        _, rows = self.check_contract(pkg)
        assert rows == []

    def test_streaming_function_materializing_its_own_return(self, tmp_path):
        pkg = tmp_path / "pkg2"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "bad.py").write_text(
            textwrap.dedent(
                """\
                def stream(col):  # scale: col=jobs
                    # streaming: must stay lazy
                    return sorted(col)
                """
            )
        )
        from repro.staticcheck.capacity.contract import StreamingContractRule

        result = check_paths([pkg], rules=[], project_rules=[StreamingContractRule()])
        rows = [f for f in result.findings if f.rule_id == "streaming-contract"]
        assert [(f.path, f.line) for f in rows] == [(str(pkg / "bad.py"), 3)]

    def test_contract_survives_a_warm_cache(self, tmp_path):
        # the schema-7 point: capacity facts ride in the cached summaries,
        # so the cross-module rule must fire identically with zero misses
        pkg = self.write_project(tmp_path)
        cache = tmp_path / "cache.json"
        cold, cold_rows = self.check_contract(pkg, cache_path=cache)
        warm, warm_rows = self.check_contract(pkg, cache_path=cache)
        assert [(f.path, f.line) for f in warm_rows] == [
            (f.path, f.line) for f in cold_rows
        ]
        assert warm.stats.cache_misses == 0
        assert warm.stats.capacity_fixpoints == 0


class TestStatistics:
    def test_capacity_counters_flow_into_stats(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(textwrap.dedent(FULL_MATERIALIZATION))
        result = check_paths(
            [target], rules=resolve_rules(select=CAPACITY_RULES), project_rules=[]
        )
        assert result.stats.capacity_fixpoints > 0
        assert result.stats.capacity_streaming == 1
        text = render_statistics(result.stats)
        assert "scale fixpoints:" in text
        assert "streaming defs:" in text

    def test_warm_run_does_no_capacity_work(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(textwrap.dedent(FULL_MATERIALIZATION))
        cache = tmp_path / "cache.json"
        cold = check_paths(
            [target],
            rules=resolve_rules(select=CAPACITY_RULES),
            project_rules=[],
            cache_path=cache,
        )
        warm = check_paths(
            [target],
            rules=resolve_rules(select=CAPACITY_RULES),
            project_rules=[],
            cache_path=cache,
        )
        assert [(f.rule_id, f.line) for f in warm.findings] == [
            (f.rule_id, f.line) for f in cold.findings
        ] == [("full-materialization", 7)]
        assert warm.stats.cache_hits == 1
        assert warm.stats.capacity_fixpoints == 0
