"""Warm-cache behaviour of the flow tier.

The acceptance criterion for the dataflow tier's cache integration:
editing *only* a ``# unit:`` annotation line in one module must
invalidate its dependents on the next warm run — the annotation is
analysis input even though it is dead weight to the Python runtime.
"""

import textwrap

from repro.staticcheck import check_paths, render_json, resolve_rules

FLOW_RULES = ["unit-mismatch", "resource-leak", "double-release"]


def make_project(tmp_path, *, ret="flops"):
    """pkg.use -> pkg.units (import edge); pkg.other standalone."""
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "units.py").write_text(
        textwrap.dedent(
            f"""
            def node_flops(raw):  # unit: raw={ret} -> {ret}
                return raw
            """
        )
    )
    (pkg / "use.py").write_text(
        textwrap.dedent(
            """
            from pkg.units import node_flops


            def mix(raw, duration):  # unit: duration=s
                return node_flops(raw) + duration
            """
        )
    )
    (pkg / "other.py").write_text("OTHER = 1\n")
    return pkg


def check(pkg, cache):
    return check_paths([pkg], cache_path=cache, rules=resolve_rules(select=FLOW_RULES))


class TestAnnotationInvalidation:
    def test_unit_line_edit_reanalyzes_dependents(self, tmp_path):
        pkg = make_project(tmp_path, ret="flops")
        cache = tmp_path / "cache.json"

        cold = check(pkg, cache)
        assert [f.rule_id for f in cold.findings] == ["unit-mismatch"]
        assert cold.findings[0].path.endswith("use.py")

        # Edit ONLY the annotation: node_flops now declares -> s, so the
        # consumer's ``+ duration`` becomes well-typed.
        make_project(tmp_path, ret="s")
        warm = check(pkg, cache)
        assert warm.findings == []
        # units.py went cold (content hash) and use.py went cold (its
        # dependency's hash changed); __init__ and other stay cached.
        assert warm.stats.cache_misses == 2
        assert warm.stats.cache_hits == 2

    def test_untouched_warm_run_reproduces_cold_output(self, tmp_path):
        pkg = make_project(tmp_path)
        cache = tmp_path / "cache.json"
        cold = check(pkg, cache)
        warm = check(pkg, cache)
        assert warm.stats.cache_hits == 4 and warm.stats.cache_misses == 0
        assert render_json(warm) == render_json(cold)


class TestFlowStatistics:
    def test_cold_run_counts_flow_work(self, tmp_path):
        pkg = make_project(tmp_path)
        cold = check(pkg, tmp_path / "cache.json")
        # 4 files, each with a module graph; two also have a function.
        assert cold.stats.flow_cfgs >= 6
        assert cold.stats.flow_blocks >= cold.stats.flow_cfgs
        assert cold.stats.flow_iterations > 0

    def test_warm_run_counts_no_flow_work(self, tmp_path):
        """Flow counters cover cold files only: a fully-warm run rebuilds
        no CFGs and runs no fixpoints."""
        pkg = make_project(tmp_path)
        cache = tmp_path / "cache.json"
        check(pkg, cache)
        warm = check(pkg, cache)
        assert warm.stats.flow_cfgs == 0
        assert warm.stats.flow_blocks == 0
        assert warm.stats.flow_iterations == 0
