"""Tests for the k-NN classifier (brute and KD-tree backends)."""

import numpy as np
import pytest

from repro.mlcore.base import NotFittedError
from repro.mlcore.knn import KNeighborsClassifier


def blobs(n=200, seed=0, d=4):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=-2.0, size=(n // 2, d))
    X1 = rng.normal(loc=+2.0, size=(n // 2, d))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestFitPredict:
    def test_separable_blobs(self):
        X, y = blobs()
        knn = KNeighborsClassifier(5).fit(X, y)
        assert knn.score(X, y) > 0.98

    def test_k1_memorizes_training_data(self):
        X, y = blobs(60)
        knn = KNeighborsClassifier(1).fit(X, y)
        assert knn.score(X, y) == 1.0

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KNeighborsClassifier().predict(np.zeros((1, 2)))

    def test_k_larger_than_n_rejected(self):
        X, y = blobs(8)
        with pytest.raises(ValueError):
            KNeighborsClassifier(9).fit(X, y)

    def test_dim_mismatch_rejected(self):
        X, y = blobs()
        knn = KNeighborsClassifier(3).fit(X, y)
        with pytest.raises(ValueError):
            knn.predict(np.zeros((2, 99)))

    def test_string_labels(self):
        X, y = blobs(40)
        knn = KNeighborsClassifier(3).fit(X, np.array(["m", "c"])[y])
        assert set(knn.predict(X)) <= {"m", "c"}


class TestKneighbors:
    def test_self_is_nearest_in_training(self):
        X, y = blobs(50)
        knn = KNeighborsClassifier(3, algorithm="brute").fit(X, y)
        dist, idx = knn.kneighbors(X)
        assert np.allclose(dist[:, 0], 0.0, atol=1e-6)  # BLAS-identity rounding
        assert np.array_equal(idx[:, 0], np.arange(50))

    def test_distances_sorted(self):
        X, y = blobs()
        knn = KNeighborsClassifier(5, algorithm="brute").fit(X, y)
        dist, _ = knn.kneighbors(X[:10])
        assert np.all(np.diff(dist, axis=1) >= -1e-12)

    def test_k_equals_n(self):
        X, y = blobs(10)
        knn = KNeighborsClassifier(3, algorithm="brute").fit(X, y)
        dist, idx = knn.kneighbors(X[:2], n_neighbors=10)
        assert dist.shape == (2, 10)
        assert set(idx[0].tolist()) == set(range(10))

    def test_brute_matches_exact_euclidean(self):
        X, y = blobs(80)
        q = np.random.default_rng(1).normal(size=(5, X.shape[1]))
        knn = KNeighborsClassifier(4, algorithm="brute").fit(X, y)
        dist, idx = knn.kneighbors(q)
        full = np.sqrt(((q[:, None, :] - X[None]) ** 2).sum(-1))
        expected = np.sort(full, axis=1)[:, :4]
        assert np.allclose(dist, expected, atol=1e-8)


class TestBackends:
    def test_kdtree_matches_brute(self):
        X, y = blobs(150, d=3)
        q = np.random.default_rng(2).normal(size=(20, 3))
        b = KNeighborsClassifier(5, algorithm="brute").fit(X, y)
        k = KNeighborsClassifier(5, algorithm="kd_tree").fit(X, y)
        db, _ = b.kneighbors(q)
        dk, _ = k.kneighbors(q)
        assert np.allclose(db, dk, atol=1e-10)

    def test_auto_picks_kdtree_low_dim(self):
        X, y = blobs(50, d=3)
        knn = KNeighborsClassifier(3, algorithm="auto").fit(X, y)
        assert knn._backend == "kd_tree"

    def test_auto_picks_brute_high_dim(self):
        X, y = blobs(50, d=32)
        knn = KNeighborsClassifier(3, algorithm="auto").fit(X, y)
        assert knn._backend == "brute"

    def test_chunking_consistent(self):
        X, y = blobs(300)
        big = KNeighborsClassifier(5, chunk_size=1000).fit(X, y)
        small = KNeighborsClassifier(5, chunk_size=7).fit(X, y)
        q = X[:40] + 0.01
        assert np.array_equal(big.predict(q), small.predict(q))


class TestMinkowski:
    def test_p1_manhattan(self):
        X = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 2.0]])
        y = np.array([0, 1, 1])
        knn = KNeighborsClassifier(1, p=1.0, algorithm="brute").fit(X, y)
        dist, idx = knn.kneighbors(np.array([[1.0, 1.0]]), n_neighbors=3)
        assert dist[0, 0] == pytest.approx(2.0)  # to the origin

    def test_p3_matches_definition(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 5))
        y = (X[:, 0] > 0).astype(int)
        q = rng.normal(size=(3, 5))
        knn = KNeighborsClassifier(4, p=3.0, algorithm="brute").fit(X, y)
        dist, idx = knn.kneighbors(q)
        ref = ((np.abs(q[:, None, :] - X[None]) ** 3).sum(-1)) ** (1 / 3)
        assert np.allclose(dist, np.sort(ref, axis=1)[:, :4], atol=1e-10)

    def test_kdtree_p1_matches_brute(self):
        X, y = blobs(100, d=3)
        b = KNeighborsClassifier(3, p=1.0, algorithm="brute").fit(X, y)
        k = KNeighborsClassifier(3, p=1.0, algorithm="kd_tree").fit(X, y)
        q = X[:15] + 0.05
        db, _ = b.kneighbors(q)
        dk, _ = k.kneighbors(q)
        assert np.allclose(db, dk, atol=1e-10)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(p=0.5)
        with pytest.raises(ValueError):
            KNeighborsClassifier(p=float("inf"))


class TestVoting:
    def test_majority_wins(self):
        X = np.array([[0.0], [0.1], [0.2], [10.0], [10.1]])
        y = np.array([0, 0, 0, 1, 1])
        knn = KNeighborsClassifier(5, algorithm="brute").fit(X, y)
        assert knn.predict(np.array([[0.05]]))[0] == 0

    def test_proba_is_vote_fraction(self):
        X = np.array([[0.0], [0.1], [10.0], [10.1], [10.2]])
        y = np.array([0, 0, 1, 1, 1])
        knn = KNeighborsClassifier(5, algorithm="brute").fit(X, y)
        p = knn.predict_proba(np.array([[5.0]]))
        assert p[0, 0] == pytest.approx(0.4)
        assert p[0, 1] == pytest.approx(0.6)

    def test_tie_breaks_to_smaller_class(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        knn = KNeighborsClassifier(2, algorithm="brute").fit(X, y)
        assert knn.predict(np.array([[0.5]]))[0] == 0


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        from repro.mlcore.persistence import load_model, save_model

        X, y = blobs(60)
        knn = KNeighborsClassifier(3).fit(X, y)
        save_model(knn, tmp_path / "knn")
        knn2 = load_model(tmp_path / "knn")
        q = X + 0.1
        assert np.array_equal(knn.predict(q), knn2.predict(q))
