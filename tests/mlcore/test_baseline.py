"""Tests for the (job name, #cores) lookup baseline."""

import numpy as np
import pytest

from repro.mlcore.base import NotFittedError
from repro.mlcore.baseline import LookupTableBaseline


class TestLookup:
    def test_exact_key_recall(self):
        keys = [("run.sh", 48), ("x.sh", 96)]
        model = LookupTableBaseline().fit(keys, [0, 1])
        assert model.predict(keys).tolist() == [0, 1]

    def test_majority_per_key(self):
        keys = [("a", 1)] * 3 + [("a", 1)] * 1
        y = [0, 0, 0, 1]
        model = LookupTableBaseline().fit(keys, y)
        assert model.predict([("a", 1)])[0] == 0

    def test_tie_breaks_to_smaller_label(self):
        model = LookupTableBaseline().fit([("a", 1), ("a", 1)], [1, 0])
        assert model.predict([("a", 1)])[0] == 0

    def test_unseen_key_falls_back_to_global_majority(self):
        keys = [("a", 1), ("b", 2), ("c", 3)]
        model = LookupTableBaseline().fit(keys, [1, 1, 0])
        assert model.predict([("zzz", 9)])[0] == 1

    def test_int_str_key_equivalence(self):
        # cores may arrive as int or str depending on the source
        model = LookupTableBaseline().fit([("a", 48)], [1, ][:1])
        assert model.predict([("a", "48")])[0] == 1

    def test_n_keys(self):
        model = LookupTableBaseline().fit([("a", 1), ("a", 1), ("b", 2)], [0, 0, 1])
        assert model.n_keys == 2

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LookupTableBaseline().predict([("a", 1)])
        with pytest.raises(NotFittedError):
            LookupTableBaseline().n_keys

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            LookupTableBaseline().fit([("a", 1)], [0, 1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LookupTableBaseline().fit([], [])


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        from repro.mlcore.persistence import load_model, save_model

        keys = [("run.sh", 48), ("job.sh", 96), ("x", 1)]
        model = LookupTableBaseline().fit(keys, [0, 1, 0])
        save_model(model, tmp_path / "b")
        model2 = load_model(tmp_path / "b")
        assert np.array_equal(model2.predict(keys), model.predict(keys))
        assert model2.predict([("unseen", 5)])[0] == 0
