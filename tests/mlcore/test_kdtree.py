"""Tests for the from-scratch KD-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlcore.kdtree import KDTree


def brute_knn(data, q, k, p=2.0):
    d = (np.abs(q[None, :] - data) ** p).sum(axis=1) ** (1 / p)
    idx = np.argsort(d, kind="stable")[:k]
    return d[idx], idx


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KDTree(np.empty((0, 3)))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros(5))

    def test_bad_leaf_size(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((3, 2)), leaf_size=0)

    def test_identical_points_single_leaf(self):
        t = KDTree(np.ones((100, 3)), leaf_size=4)
        d, i = t.query(np.ones((1, 3)), k=5)
        assert np.allclose(d, 0.0)

    def test_node_count_reasonable(self):
        rng = np.random.default_rng(0)
        t = KDTree(rng.normal(size=(256, 2)), leaf_size=8)
        assert t.n_nodes >= 256 // 8


class TestQueries:
    @pytest.fixture(scope="class")
    def data(self):
        return np.random.default_rng(1).normal(size=(300, 3))

    def test_k1_self_query(self, data):
        t = KDTree(data, leaf_size=16)
        d, i = t.query(data[:20], k=1)
        assert np.allclose(d[:, 0], 0.0)
        assert np.array_equal(i[:, 0], np.arange(20))

    @pytest.mark.parametrize("k", [1, 3, 17])
    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0])
    def test_matches_brute_force(self, data, k, p):
        t = KDTree(data, leaf_size=8)
        qs = np.random.default_rng(2).normal(size=(25, 3))
        d, i = t.query(qs, k=k, p=p)
        for row, q in enumerate(qs):
            bd, _ = brute_knn(data, q, k, p)
            assert np.allclose(d[row], bd, atol=1e-10)

    def test_sorted_output(self, data):
        t = KDTree(data)
        d, _ = t.query(np.zeros((1, 3)), k=10)
        assert np.all(np.diff(d[0]) >= -1e-12)

    def test_invalid_k(self, data):
        t = KDTree(data)
        with pytest.raises(ValueError):
            t.query(np.zeros((1, 3)), k=0)
        with pytest.raises(ValueError):
            t.query(np.zeros((1, 3)), k=len(data) + 1)

    def test_invalid_p(self, data):
        t = KDTree(data)
        with pytest.raises(ValueError):
            t.query(np.zeros((1, 3)), k=1, p=0.5)

    def test_dim_mismatch(self, data):
        t = KDTree(data)
        with pytest.raises(ValueError):
            t.query(np.zeros((1, 5)), k=1)

    def test_single_query_1d_input(self, data):
        t = KDTree(data)
        d, i = t.query(data[0], k=2)
        assert d.shape == (1, 2)


class TestPropertyBased:
    @given(
        n=st.integers(2, 80),
        k=st.integers(1, 5),
        seed=st.integers(0, 1000),
        leaf=st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_matches_brute(self, n, k, seed, leaf):
        k = min(k, n)
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 2))
        t = KDTree(data, leaf_size=leaf)
        q = rng.normal(size=2)
        d, _ = t.query(q, k=k)
        bd, _ = brute_knn(data, q, k)
        assert np.allclose(d[0], bd, atol=1e-10)
