"""Tests for pickle-free persistence and the model registry."""

import json

import numpy as np
import pytest

from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.knn import KNeighborsClassifier
from repro.mlcore.persistence import (
    ModelRegistry,
    load_model,
    registered_model_classes,
    save_model,
)
from repro.mlcore.tree import DecisionTreeClassifier


def fitted_tree():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(100, 3))
    y = (X[:, 0] > 0).astype(int)
    return DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y), X


class TestSaveLoad:
    def test_files_on_disk(self, tmp_path):
        t, _ = fitted_tree()
        out = save_model(t, tmp_path / "m")
        assert (out / "manifest.json").exists()
        assert (out / "arrays.npz").exists()

    def test_no_pickle_in_archive(self, tmp_path):
        t, _ = fitted_tree()
        save_model(t, tmp_path / "m")
        # loading with allow_pickle=False must work: nothing is pickled
        with np.load(tmp_path / "m" / "arrays.npz", allow_pickle=False) as z:
            assert len(z.files) > 0

    def test_roundtrip_tree(self, tmp_path):
        t, X = fitted_tree()
        save_model(t, tmp_path / "m")
        t2 = load_model(tmp_path / "m")
        assert np.array_equal(t.predict(X), t2.predict(X))

    def test_overwrite_existing(self, tmp_path):
        t, _ = fitted_tree()
        save_model(t, tmp_path / "m")
        save_model(t, tmp_path / "m")  # no error
        assert load_model(tmp_path / "m") is not None

    def test_unregistered_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(object(), tmp_path / "m")

    def test_unknown_class_in_manifest_rejected(self, tmp_path):
        t, _ = fitted_tree()
        save_model(t, tmp_path / "m")
        manifest = json.loads((tmp_path / "m" / "manifest.json").read_text())
        manifest["model_class"] = "EvilModel"
        (tmp_path / "m" / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(TypeError):
            load_model(tmp_path / "m")

    def test_registry_lists_all_models(self):
        names = registered_model_classes()
        assert "RandomForestClassifier" in names
        assert "KNeighborsClassifier" in names
        assert "LookupTableBaseline" in names

    def test_nested_forest_children(self, tmp_path):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(80, 3))
        y = (X[:, 1] > 0).astype(int)
        f = RandomForestClassifier(4, max_depth=3, random_state=0).fit(X, y)
        save_model(f, tmp_path / "f")
        f2 = load_model(tmp_path / "f")
        assert len(f2.estimators_) == 4
        assert np.allclose(f.predict_proba(X), f2.predict_proba(X))


class TestModelRegistry:
    def test_publish_increments_versions(self, tmp_path):
        t, _ = fitted_tree()
        reg = ModelRegistry(tmp_path / "reg")
        assert reg.latest_version is None
        assert reg.publish(t) == 1
        assert reg.publish(t) == 2
        assert reg.latest_version == 2

    def test_load_specific_version(self, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        t, X = fitted_tree()
        reg.publish(t)
        rng = np.random.default_rng(5)
        knn = KNeighborsClassifier(3).fit(X, (X[:, 0] > 0).astype(int))
        reg.publish(knn)
        assert isinstance(reg.load(1), DecisionTreeClassifier)
        assert isinstance(reg.load(2), KNeighborsClassifier)
        assert isinstance(reg.load_latest(), KNeighborsClassifier)

    def test_metadata_roundtrip(self, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        t, _ = fitted_tree()
        v = reg.publish(t, metadata={"alpha": 15, "beta": 1})
        assert reg.metadata(v) == {"alpha": 15, "beta": 1}
        assert reg.metadata(v) is not None

    def test_metadata_missing_is_empty(self, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        t, _ = fitted_tree()
        v = reg.publish(t)
        assert reg.metadata(v) == {}

    def test_load_missing_version(self, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        with pytest.raises(FileNotFoundError):
            reg.load(3)

    def test_empty_registry_load_latest(self, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        with pytest.raises(FileNotFoundError):
            reg.load_latest()

    def test_latest_pointer_file(self, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        t, _ = fitted_tree()
        reg.publish(t)
        assert (tmp_path / "reg" / "LATEST").read_text() == "1"
