"""Tests for the feature quantizer behind the hist splitter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlcore.histogram import FeatureQuantizer


class TestFit:
    def test_codes_in_range(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 4))
        q = FeatureQuantizer(32)
        codes = q.fit_transform(X)
        assert codes.dtype == np.uint8
        assert codes.max() < 32

    def test_monotone_codes(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        q = FeatureQuantizer(16)
        codes = q.fit_transform(X)
        assert np.all(np.diff(codes[:, 0].astype(int)) >= 0)

    def test_few_distinct_values_few_bins(self):
        X = np.array([[0.0], [0.0], [1.0], [1.0], [2.0]])
        q = FeatureQuantizer(64).fit(X)
        assert q.n_effective_bins(0) <= 3

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            FeatureQuantizer(1)
        with pytest.raises(ValueError):
            FeatureQuantizer(257)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FeatureQuantizer().transform(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            FeatureQuantizer().threshold_of_bin(0, 0)

    def test_wrong_width_rejected(self):
        q = FeatureQuantizer(8).fit(np.zeros((10, 3)))
        with pytest.raises(ValueError):
            q.transform(np.zeros((2, 5)))


class TestThresholdSemantics:
    """code <= b must be exactly equivalent to raw x < threshold_of_bin(b)."""

    @given(seed=st.integers(0, 500), n_bins=st.integers(2, 32))
    @settings(max_examples=60, deadline=None)
    def test_split_equivalence(self, seed, n_bins):
        rng = np.random.default_rng(seed)
        X = np.round(rng.normal(size=(80, 1)), 2)  # ties likely
        q = FeatureQuantizer(n_bins)
        codes = q.fit_transform(X)
        for b in range(q.n_effective_bins(0) - 1):
            t = q.threshold_of_bin(0, b)
            assert np.array_equal(codes[:, 0] <= b, X[:, 0] < t)

    def test_unseen_values_clipped(self):
        q = FeatureQuantizer(8).fit(np.linspace(0, 1, 50).reshape(-1, 1))
        codes = q.transform(np.array([[-10.0], [10.0]]))
        assert codes[0, 0] == 0
        assert codes[1, 0] == q.n_effective_bins(0) - 1

    def test_threshold_out_of_range(self):
        q = FeatureQuantizer(8).fit(np.linspace(0, 1, 50).reshape(-1, 1))
        with pytest.raises(IndexError):
            q.threshold_of_bin(0, 100)
