"""Vectorized-vs-scalar equivalence for the ML hot paths.

The vectorization PR promised exact behavioural parity: every batched
path must reproduce the preserved scalar references in
:mod:`repro.mlcore.reference` — bit-for-bit where the arithmetic is
shared, and across arithmetic families on integer-lattice inputs where
every distance is exact in float64.
"""

import numpy as np
import pytest

from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.kdtree import KDTree
from repro.mlcore.knn import KNeighborsClassifier
from repro.mlcore.reference import (
    best_split_exact_scalar,
    best_split_hist_scalar,
    brute_kneighbors_scalar,
    forest_predict_proba_scalar,
    kdtree_query_scalar,
    tree_predict_proba_scalar,
)
from repro.mlcore.tree import DecisionTreeClassifier


def lattice(rng, n, d, span=5):
    # small random integers stored as float64: every squared distance is an
    # exact integer, so equidistant points are bit-identical ties under any
    # summation order — exact tie-breaking is testable across backends
    return rng.integers(0, span, size=(n, d)).astype(np.float64)


class TestNeighborEquivalence:
    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0])
    def test_kdtree_matches_scalar_reference(self, p):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(300, 5))
        Q = rng.normal(size=(60, 5))
        tree = KDTree(X, leaf_size=7, query_chunk_size=13)
        d_new, i_new = tree.query(Q, k=5, p=p)
        d_ref, i_ref = kdtree_query_scalar(tree, Q, k=5, p=p)
        assert np.array_equal(i_new, i_ref)
        assert np.array_equal(d_new, d_ref)

    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_all_backends_agree_on_lattice_ties(self, k):
        rng = np.random.default_rng(3)
        X = lattice(rng, 250, 3)
        Q = lattice(rng, 80, 3)
        rd = ((Q[:, None, :] - X[None, :, :]) ** 2).sum(axis=2)
        kth = np.sort(rd, axis=1)[:, k - 1]
        # sanity: the data really does put multiple points at the k-th distance
        assert ((rd == kth[:, None]).sum(axis=1) > 1).any()

        d_ref, i_ref = brute_kneighbors_scalar(X, Q, k)
        tree = KDTree(X, leaf_size=5, query_chunk_size=17)
        d_t, i_t = tree.query(Q, k=k)
        assert np.array_equal(i_t, i_ref)
        assert np.array_equal(d_t, d_ref)

        d_s, i_s = kdtree_query_scalar(tree, Q, k=k)
        assert np.array_equal(i_s, i_ref)
        assert np.array_equal(d_s, d_ref)

        knn = KNeighborsClassifier(k, algorithm="brute")
        knn.fit(X, np.arange(X.shape[0]) % 2)
        d_b, i_b = knn.kneighbors(Q)
        assert np.array_equal(i_b, i_ref)
        assert np.array_equal(d_b, d_ref)

    @pytest.mark.parametrize("p", [1.0, 2.0])
    @pytest.mark.parametrize("k", [1, 5, 17])
    def test_brute_duplicate_heavy_matches_scalar_reference(self, k, p):
        # duplicate-heavy lattice batches drive nearly every query row
        # through the tie-admission path; the no-duplicates fast path and
        # the partition-based admission rewrite must stay exact on both
        rng = np.random.default_rng(23)
        X = lattice(rng, 400, 3, span=3)
        Q = lattice(rng, 90, 3, span=3)
        d_ref, i_ref = brute_kneighbors_scalar(X, Q, k, p=p)
        knn = KNeighborsClassifier(k, p=p, algorithm="brute", chunk_size=29)
        knn.fit(X, np.arange(X.shape[0]) % 2)
        d_b, i_b = knn.kneighbors(Q)
        assert np.array_equal(i_b, i_ref)
        assert np.array_equal(d_b, d_ref)

    def test_brute_tie_free_batch_matches_scalar_reference(self):
        # continuous data: the batch-level no-ties early return is taken
        rng = np.random.default_rng(29)
        X = rng.normal(size=(300, 4))
        Q = rng.normal(size=(70, 4))
        d_ref, i_ref = brute_kneighbors_scalar(X, Q, 5)
        knn = KNeighborsClassifier(5, algorithm="brute").fit(
            X, np.arange(X.shape[0]) % 2
        )
        d_b, i_b = knn.kneighbors(Q)
        assert np.array_equal(i_b, i_ref)
        # continuous data: the BLAS-identity distances agree to rounding,
        # not bit-for-bit (that guarantee is lattice-only)
        np.testing.assert_allclose(d_b, d_ref, rtol=1e-12, atol=1e-12)

    def test_brute_and_kdtree_classifiers_agree_continuous(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(200, 4))
        y = (X[:, 0] > 0).astype(int)
        Q = rng.normal(size=(50, 4))
        brute = KNeighborsClassifier(5, algorithm="brute").fit(X, y)
        kd = KNeighborsClassifier(5, algorithm="kd_tree").fit(X, y)
        d_b, i_b = brute.kneighbors(Q)
        d_k, i_k = kd.kneighbors(Q)
        assert np.array_equal(i_b, i_k)
        np.testing.assert_allclose(d_b, d_k, rtol=1e-12, atol=1e-12)


class TestSplitFinderEquivalence:
    @pytest.mark.parametrize("criterion", ["gini", "entropy"])
    @pytest.mark.parametrize("splitter", ["exact", "hist"])
    def test_fit_identical_with_per_feature_reference(
        self, criterion, splitter, monkeypatch
    ):
        rng = np.random.default_rng(19)
        X = rng.normal(size=(240, 7)).astype(np.float32)
        X[:, 2] = np.round(X[:, 2])  # repeated values exercise boundary masks
        y = ((X[:, 0] * X[:, 1] > 0) | (X[:, 2] > 1)).astype(int)

        def make():
            return DecisionTreeClassifier(
                max_depth=7,
                min_samples_leaf=2,
                max_features="sqrt",
                criterion=criterion,
                splitter=splitter,
                n_bins=16,
                random_state=5,
            )

        fast = make().fit(X, y)
        ref = make()
        monkeypatch.setattr(
            ref,
            "_best_split_exact",
            lambda *args: best_split_exact_scalar(ref, *args),
        )
        monkeypatch.setattr(
            ref,
            "_best_split_hist",
            lambda *args: best_split_hist_scalar(ref, *args),
        )
        ref.fit(X, y)

        assert np.array_equal(fast.feature_, ref.feature_)
        # leaf thresholds are NaN, so compare with equal_nan
        assert np.array_equal(fast.threshold_, ref.threshold_, equal_nan=True)
        assert np.array_equal(fast.children_left_, ref.children_left_)
        assert np.array_equal(fast.children_right_, ref.children_right_)
        assert np.array_equal(fast.value_, ref.value_)
        assert np.array_equal(fast.feature_importances_, ref.feature_importances_)


class TestPredictEquivalence:
    def test_tree_predict_proba_matches_node_walk(self):
        rng = np.random.default_rng(23)
        X = rng.normal(size=(300, 6)).astype(np.float32)
        y = (X[:, 0] + X[:, 1] ** 2 > 1).astype(int)
        tree = DecisionTreeClassifier(max_depth=8, random_state=1).fit(X, y)
        Q = rng.normal(size=(120, 6)).astype(np.float32)
        assert np.array_equal(tree.predict_proba(Q), tree_predict_proba_scalar(tree, Q))

    @pytest.mark.parametrize("splitter", ["exact", "hist"])
    def test_packed_forest_matches_per_tree_loop(self, splitter):
        rng = np.random.default_rng(29)
        X = rng.normal(size=(300, 8)).astype(np.float32)
        y = (X[:, 0] * X[:, 1] > 0).astype(int)
        forest = RandomForestClassifier(
            12, max_depth=6, splitter=splitter, random_state=3
        ).fit(X, y)
        Q = rng.normal(size=(90, 8)).astype(np.float32)
        assert np.array_equal(
            forest.predict_proba(Q), forest_predict_proba_scalar(forest, Q)
        )

    def test_packed_cache_invalidated_on_refit(self):
        rng = np.random.default_rng(31)
        X = rng.normal(size=(120, 4)).astype(np.float32)
        y = (X[:, 0] > 0).astype(int)
        forest = RandomForestClassifier(5, max_depth=4, random_state=0).fit(X, y)
        forest.predict_proba(X)  # builds the packed representation
        forest.fit(X, 1 - y)  # refit must not serve stale packed trees
        assert np.array_equal(
            forest.predict_proba(X), forest_predict_proba_scalar(forest, X)
        )
