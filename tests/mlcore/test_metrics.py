"""Tests for classification metrics, including the paper's macro-F1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlcore.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_macro,
    f1_score,
    precision_recall_f1,
)

_labels = st.lists(st.integers(0, 2), min_size=1, max_size=100)


class TestConfusionMatrix:
    def test_perfect_diagonal(self):
        y = np.array([0, 1, 1, 0])
        cm = confusion_matrix(y, y)
        assert np.array_equal(cm, [[2, 0], [0, 2]])

    def test_off_diagonal(self):
        cm = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert np.array_equal(cm, [[1, 1], [0, 1]])

    def test_explicit_labels_include_absent(self):
        cm = confusion_matrix([0, 0], [0, 0], labels=[0, 1])
        assert cm.shape == (2, 2)
        assert cm[1].sum() == 0

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 2], [0, 0], labels=[0, 1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([], [])

    def test_string_labels(self):
        cm = confusion_matrix(["m", "c"], ["m", "m"])
        assert cm.sum() == 2

    @given(_labels)
    @settings(max_examples=100, deadline=None)
    def test_row_sums_are_class_counts(self, y):
        y = np.array(y)
        rng = np.random.default_rng(0)
        pred = rng.integers(0, 3, size=len(y))
        cm = confusion_matrix(y, pred, labels=[0, 1, 2])
        for c in range(3):
            assert cm[c].sum() == np.sum(y == c)


class TestPrecisionRecallF1:
    def test_perfect(self):
        _, p, r, f = precision_recall_f1([0, 1, 0], [0, 1, 0])
        assert np.allclose(p, 1) and np.allclose(r, 1) and np.allclose(f, 1)

    def test_harmonic_mean(self):
        # class 1: tp=1, fp=1, fn=1 -> p=r=0.5 -> f1=0.5
        _, p, r, f = precision_recall_f1([1, 1, 0, 0], [1, 0, 1, 0])
        assert f[1] == pytest.approx(0.5)

    def test_zero_division_guard(self):
        # class 1 never predicted -> precision 0, f1 0, no warnings/nans
        _, p, r, f = precision_recall_f1([1, 1, 0], [0, 0, 0])
        assert p[1] == 0 and f[1] == 0
        assert not np.isnan(f).any()

    def test_asymmetry_of_classes(self):
        labels, p, r, _ = precision_recall_f1([0, 0, 0, 1], [0, 0, 1, 1])
        assert r[0] == pytest.approx(2 / 3)
        assert p[1] == pytest.approx(0.5)


class TestF1Macro:
    def test_unweighted_mean(self):
        # imbalanced: macro-F1 is NOT dominated by the majority class
        y = [0] * 90 + [1] * 10
        pred = [0] * 100  # majority guess
        assert accuracy_score(y, pred) == 0.9
        f = f1_macro(y, pred)
        assert f == pytest.approx((2 * 0.9 / 1.9 + 0.0) / 2, abs=1e-9)

    def test_matches_mean_of_per_class(self):
        y = [0, 1, 1, 0, 1]
        pred = [0, 1, 0, 0, 1]
        _, _, _, per = precision_recall_f1(y, pred)
        assert f1_macro(y, pred) == pytest.approx(per.mean())

    @given(_labels)
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, y):
        rng = np.random.default_rng(1)
        pred = rng.integers(0, 3, size=len(y))
        assert 0.0 <= f1_macro(y, pred) <= 1.0

    @given(_labels)
    @settings(max_examples=100, deadline=None)
    def test_perfect_prediction_is_one(self, y):
        assert f1_macro(y, y) == 1.0


class TestF1Binary:
    def test_pos_label(self):
        y = [0, 1, 1]
        pred = [0, 1, 0]
        assert f1_score(y, pred, pos_label=1) == pytest.approx(2 / 3)

    def test_missing_pos_label_rejected(self):
        with pytest.raises(ValueError):
            f1_score([0, 0], [0, 0], pos_label=5)


class TestAccuracy:
    def test_value(self):
        assert accuracy_score([1, 0, 1, 1], [1, 1, 1, 1]) == 0.75

    @given(_labels)
    @settings(max_examples=50, deadline=None)
    def test_complement_relationship(self, y):
        y = np.array(y)
        flipped = 1 - np.clip(y, 0, 1)
        acc = accuracy_score(np.clip(y, 0, 1), flipped)
        assert acc == pytest.approx(1.0 - accuracy_score(np.clip(y, 0, 1), np.clip(y, 0, 1) * 0 + np.clip(y, 0, 1))) or 0 <= acc <= 1


class TestReport:
    def test_contains_classes_and_macro(self):
        text = classification_report(
            [0, 1, 0, 1], [0, 1, 1, 1], target_names=["memory-bound", "compute-bound"]
        )
        assert "memory-bound" in text
        assert "macro avg" in text
        assert "accuracy" in text

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            classification_report([0, 1], [0, 1], target_names=["only-one"])
