"""Tests for the Gaussian naive Bayes classifier."""

import numpy as np
import pytest

from repro.mlcore.base import NotFittedError
from repro.mlcore.naive_bayes import GaussianNBClassifier


def blobs(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(-2.0, 1.0, size=(n // 2, 3))
    X1 = rng.normal(+2.0, 1.0, size=(n // 2, 3))
    return np.vstack([X0, X1]), np.array([0] * (n // 2) + [1] * (n // 2))


class TestFitPredict:
    def test_separable_blobs(self):
        X, y = blobs()
        nb = GaussianNBClassifier().fit(X, y)
        assert nb.score(X, y) > 0.98

    def test_generalizes(self):
        X, y = blobs()
        Xt, yt = blobs(seed=1)
        nb = GaussianNBClassifier().fit(X, y)
        assert nb.score(Xt, yt) > 0.95

    def test_proba_valid(self):
        X, y = blobs(100)
        nb = GaussianNBClassifier().fit(X, y)
        p = nb.predict_proba(X)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert p.min() >= 0

    def test_priors_reflect_imbalance(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 2))
        y = np.array([0] * 90 + [1] * 10)
        nb = GaussianNBClassifier().fit(X, y)
        assert nb.class_prior_[0] == pytest.approx(0.9)

    def test_string_labels(self):
        X, y = blobs(60)
        nb = GaussianNBClassifier().fit(X, np.array(["m", "c"])[y])
        assert set(nb.predict(X)) <= {"m", "c"}

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GaussianNBClassifier().predict(np.zeros((1, 2)))

    def test_shape_mismatch(self):
        X, y = blobs(40)
        nb = GaussianNBClassifier().fit(X, y)
        with pytest.raises(ValueError):
            nb.predict(np.zeros((2, 99)))

    def test_constant_feature_stable(self):
        X, y = blobs(60)
        X[:, 1] = 5.0  # zero variance; smoothing must keep densities finite
        nb = GaussianNBClassifier().fit(X, y)
        assert np.isfinite(nb._joint_log_likelihood(X)).all()

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            GaussianNBClassifier(var_smoothing=-1.0)


class TestIntegration:
    def test_registered_in_classification_model(self):
        from repro.core.classification_model import ClassificationModel

        assert "NB" in ClassificationModel.registered_algorithms()
        X, y = blobs(120)
        m = ClassificationModel("NB").training(X.astype(np.float32), y)
        assert float(np.mean(m.inference(X.astype(np.float32)) == y)) > 0.9

    def test_persistence_roundtrip(self, tmp_path):
        from repro.mlcore.persistence import load_model, save_model

        X, y = blobs(80)
        nb = GaussianNBClassifier().fit(X, y)
        save_model(nb, tmp_path / "nb")
        nb2 = load_model(tmp_path / "nb")
        assert np.array_equal(nb.predict(X), nb2.predict(X))
        assert np.allclose(nb.predict_proba(X), nb2.predict_proba(X))
