"""Tests for the Random Forest classifier."""

import numpy as np
import pytest

from repro.mlcore.base import NotFittedError
from repro.mlcore.forest import RandomForestClassifier


def noisy_data(n=600, seed=0, flip=0.1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 8))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    flips = rng.random(n) < flip
    y[flips] = 1 - y[flips]
    return X, y


class TestFitPredict:
    def test_beats_single_tree_on_noise(self):
        from repro.mlcore.tree import DecisionTreeClassifier

        X, y = noisy_data()
        Xt, yt = noisy_data(seed=1)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        forest = RandomForestClassifier(30, random_state=0).fit(X, y)
        assert forest.score(Xt, yt) >= tree.score(Xt, yt)

    def test_predict_proba_valid(self):
        X, y = noisy_data(200)
        f = RandomForestClassifier(10, random_state=0).fit(X, y)
        p = f.predict_proba(X[:20])
        assert p.shape == (20, 2)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_hist_splitter(self):
        X, y = noisy_data()
        f = RandomForestClassifier(15, splitter="hist", random_state=0).fit(X, y)
        assert f.score(X, y) > 0.85

    def test_string_labels(self):
        X, y = noisy_data(150)
        names = np.array(["memory-bound", "compute-bound"])[y]
        f = RandomForestClassifier(5, random_state=0).fit(X, names)
        assert set(f.predict(X[:10])) <= {"memory-bound", "compute-bound"}

    def test_deterministic_given_seed(self):
        X, y = noisy_data(200)
        a = RandomForestClassifier(8, random_state=7).fit(X, y).predict(X)
        b = RandomForestClassifier(8, random_state=7).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier(2).predict(np.zeros((1, 2)))


class TestBagging:
    def test_trees_differ(self):
        X, y = noisy_data(300)
        f = RandomForestClassifier(5, random_state=0).fit(X, y)
        structures = {tuple(t.feature_.tolist()) for t in f.estimators_}
        assert len(structures) > 1

    def test_no_bootstrap_mode(self):
        X, y = noisy_data(200)
        f = RandomForestClassifier(5, bootstrap=False, random_state=0).fit(X, y)
        # every tree sees all samples
        for t in f.estimators_:
            assert t.value_[0].sum() == len(y)

    def test_n_estimators_respected(self):
        X, y = noisy_data(100)
        f = RandomForestClassifier(7, random_state=0).fit(X, y)
        assert len(f.estimators_) == 7

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(0)


class TestOOB:
    def test_oob_score_close_to_holdout(self):
        X, y = noisy_data(800)
        Xt, yt = noisy_data(seed=3)
        f = RandomForestClassifier(40, oob_score=True, random_state=0).fit(X, y)
        holdout = f.score(Xt, yt)
        assert abs(f.oob_score_ - holdout) < 0.08

    def test_oob_absent_by_default(self):
        X, y = noisy_data(100)
        f = RandomForestClassifier(3, random_state=0).fit(X, y)
        assert not hasattr(f, "oob_score_")


class TestImportances:
    def test_informative_features_dominate(self):
        X, y = noisy_data(1000, flip=0.0)
        f = RandomForestClassifier(20, random_state=0).fit(X, y)
        imp = f.feature_importances_
        assert imp.sum() == pytest.approx(1.0)
        assert imp[0] + imp[1] > 0.7


class TestPersistence:
    def test_state_roundtrip(self, tmp_path):
        from repro.mlcore.persistence import load_model, save_model

        X, y = noisy_data(200)
        f = RandomForestClassifier(6, max_depth=6, oob_score=True, random_state=0).fit(X, y)
        save_model(f, tmp_path / "rf")
        f2 = load_model(tmp_path / "rf")
        assert np.array_equal(f.predict(X), f2.predict(X))
        assert f2.oob_score_ == f.oob_score_


class TestParallelFit:
    def test_n_jobs_deterministic(self):
        X, y = noisy_data(250)
        a = RandomForestClassifier(6, random_state=3, n_jobs=1).fit(X, y)
        b = RandomForestClassifier(6, random_state=3, n_jobs=3).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))
        for ta, tb in zip(a.estimators_, b.estimators_):
            assert np.array_equal(ta.feature_, tb.feature_)
            assert np.array_equal(ta.threshold_, tb.threshold_, equal_nan=True)

    def test_oob_same_across_n_jobs(self):
        X, y = noisy_data(400)
        a = RandomForestClassifier(10, random_state=1, oob_score=True, n_jobs=1).fit(X, y)
        b = RandomForestClassifier(10, random_state=1, oob_score=True, n_jobs=2).fit(X, y)
        assert a.oob_score_ == b.oob_score_

    def test_invalid_n_jobs(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(2, n_jobs=0)

    def test_n_jobs_persisted(self, tmp_path):
        from repro.mlcore.persistence import load_model, save_model

        X, y = noisy_data(100)
        f = RandomForestClassifier(3, random_state=0, n_jobs=2).fit(X, y)
        save_model(f, tmp_path / "p")
        assert load_model(tmp_path / "p").n_jobs == 2
