"""Tests for estimator plumbing."""

import numpy as np
import pytest

from repro.mlcore.base import (
    NotFittedError,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
    encode_labels,
)


class TestRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(5).integers(0, 100, 10)
        b = check_random_state(5).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert check_random_state(g) is g

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            check_random_state("seed")


class TestCheckArray:
    def test_accepts_lists(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_array(np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((0, 3)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_array([[np.nan]])
        with pytest.raises(ValueError):
            check_array([[np.inf]])


class TestCheckXy:
    def test_pairs(self):
        X, y = check_X_y([[1.0], [2.0]], [0, 1])
        assert X.shape == (2, 1) and y.shape == (2,)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0], [2.0]], [0])

    def test_2d_y_rejected(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0]], [[0]])


class TestFittedCheck:
    def test_raises_on_missing_attribute(self):
        class M:
            classes_ = None

        with pytest.raises(NotFittedError):
            check_is_fitted(M(), "classes_")

    def test_passes_when_set(self):
        class M:
            classes_ = np.array([0, 1])

        check_is_fitted(M(), "classes_")


class TestEncodeLabels:
    def test_contiguous_codes(self):
        classes, enc = encode_labels(np.array([5, 7, 5, 9]))
        assert classes.tolist() == [5, 7, 9]
        assert enc.tolist() == [0, 1, 0, 2]
        assert np.array_equal(classes[enc], [5, 7, 5, 9])

    def test_strings(self):
        classes, enc = encode_labels(np.array(["m", "c", "m"]))
        assert set(classes) == {"c", "m"}

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            encode_labels(np.array([1, 1, 1]))
