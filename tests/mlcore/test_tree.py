"""Tests for the CART decision tree (both splitters)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlcore.base import NotFittedError
from repro.mlcore.tree import DecisionTreeClassifier, _resolve_max_features


def simple_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


@pytest.fixture(params=["exact", "hist"])
def splitter(request):
    return request.param


class TestFitPredict:
    def test_learns_separable_data(self, splitter):
        X, y = simple_data()
        t = DecisionTreeClassifier(splitter=splitter, random_state=0).fit(X, y)
        assert t.score(X, y) > 0.98

    def test_generalizes(self, splitter):
        X, y = simple_data()
        Xt, yt = simple_data(seed=1)
        t = DecisionTreeClassifier(splitter=splitter, max_depth=8, random_state=0).fit(X, y)
        assert t.score(Xt, yt) > 0.85

    def test_single_feature_axis_split(self, splitter):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        t = DecisionTreeClassifier(splitter=splitter).fit(X, y)
        assert np.array_equal(t.predict(X), y)
        assert t.get_depth() == 1

    def test_pure_node_stops(self, splitter):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        t = DecisionTreeClassifier(splitter=splitter).fit(X, y)
        assert t.get_n_leaves() == 2

    def test_constant_features_become_single_leaf(self, splitter):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        t = DecisionTreeClassifier(splitter=splitter).fit(X, y)
        assert t.get_n_leaves() == 1
        # predicts the majority (tie -> class 0 by argmax convention)
        assert set(t.predict(X)) == {0}

    def test_multiclass(self, splitter):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 4))
        y = np.digitize(X[:, 0], [-0.5, 0.5])
        t = DecisionTreeClassifier(splitter=splitter, random_state=0).fit(X, y)
        assert t.score(X, y) > 0.95
        assert set(t.classes_) == {0, 1, 2}

    def test_string_class_labels(self, splitter):
        X, y = simple_data(100)
        names = np.array(["mem", "comp"])[y]
        t = DecisionTreeClassifier(splitter=splitter).fit(X, names)
        assert set(t.predict(X)) <= {"mem", "comp"}


class TestHyperparameters:
    def test_max_depth_respected(self, splitter):
        X, y = simple_data()
        t = DecisionTreeClassifier(splitter=splitter, max_depth=3, random_state=0).fit(X, y)
        assert t.get_depth() <= 3

    def test_min_samples_leaf(self, splitter):
        X, y = simple_data()
        t = DecisionTreeClassifier(splitter=splitter, min_samples_leaf=30, random_state=0).fit(X, y)
        leaf_sizes = t.value_[t.feature_ == -1].sum(axis=1)
        assert leaf_sizes.min() >= 30

    def test_min_samples_split(self, splitter):
        X, y = simple_data()
        t = DecisionTreeClassifier(splitter=splitter, min_samples_split=200, random_state=0).fit(X, y)
        internal = t.value_[t.feature_ >= 0].sum(axis=1)
        if internal.size:
            assert internal.min() >= 200

    def test_entropy_criterion_works(self, splitter):
        X, y = simple_data()
        t = DecisionTreeClassifier(splitter=splitter, criterion="entropy", random_state=0).fit(X, y)
        assert t.score(X, y) > 0.95

    def test_max_features_subsampling_changes_tree(self):
        X, y = simple_data()
        t1 = DecisionTreeClassifier(max_features=1, random_state=1).fit(X, y)
        t2 = DecisionTreeClassifier(max_features=None, random_state=1).fit(X, y)
        assert t1.n_nodes != t2.n_nodes or not np.array_equal(t1.feature_, t2.feature_)

    @pytest.mark.parametrize(
        "mf,expected", [(None, 10), ("sqrt", 3), ("log2", 3), (5, 5), (0.5, 5)]
    )
    def test_resolve_max_features(self, mf, expected):
        assert _resolve_max_features(mf, 10) == expected

    @pytest.mark.parametrize("mf", [0, 11, -1, 1.5, "bogus"])
    def test_resolve_max_features_invalid(self, mf):
        with pytest.raises(ValueError):
            _resolve_max_features(mf, 10)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"criterion": "mse"},
            {"splitter": "best"},
            {"min_samples_split": 1},
            {"min_samples_leaf": 0},
            {"max_depth": 0},
        ],
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(**kwargs)


class TestSampleIndices:
    def test_bootstrap_subset_used(self, splitter):
        X, y = simple_data(200)
        idx = np.arange(50)  # only class mix of the first 50 rows
        t = DecisionTreeClassifier(splitter=splitter, random_state=0).fit(
            X, y, sample_indices=idx
        )
        assert t.value_[0].sum() == 50  # root holds only the selected rows

    def test_repeated_indices_weight_samples(self, splitter):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 0, 1])
        idx = np.array([2, 2, 2, 2, 0])
        t = DecisionTreeClassifier(splitter=splitter).fit(X, y, sample_indices=idx)
        assert t.value_[0].sum() == 5

    def test_out_of_range_rejected(self):
        X, y = simple_data(10)
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, y, sample_indices=np.array([99]))

    def test_empty_rejected(self):
        X, y = simple_data(10)
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, y, sample_indices=np.array([], dtype=int))


class TestPrediction:
    def test_predict_proba_rows_sum_to_one(self, splitter):
        X, y = simple_data()
        t = DecisionTreeClassifier(splitter=splitter, max_depth=4, random_state=0).fit(X, y)
        proba = t.predict_proba(X[:50])
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert proba.min() >= 0

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_wrong_width_rejected(self):
        X, y = simple_data()
        t = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError):
            t.predict(np.zeros((3, 99)))

    def test_apply_returns_leaves(self, splitter):
        X, y = simple_data()
        t = DecisionTreeClassifier(splitter=splitter, max_depth=4, random_state=0).fit(X, y)
        leaves = t.apply(X[:20])
        assert np.all(t.feature_[leaves] == -1)


class TestInvariants:
    def test_feature_importances_normalized(self, splitter):
        X, y = simple_data()
        t = DecisionTreeClassifier(splitter=splitter, random_state=0).fit(X, y)
        imp = t.feature_importances_
        assert imp.shape == (6,)
        assert imp.min() >= 0
        assert imp.sum() == pytest.approx(1.0)

    def test_informative_features_dominate(self, splitter):
        X, y = simple_data(2000)
        t = DecisionTreeClassifier(splitter=splitter, max_depth=6, random_state=0).fit(X, y)
        imp = t.feature_importances_
        assert imp[0] + imp[1] > 0.8

    def test_node_arrays_consistent(self, splitter):
        X, y = simple_data()
        t = DecisionTreeClassifier(splitter=splitter, max_depth=6, random_state=0).fit(X, y)
        internal = t.feature_ >= 0
        # children of internal nodes are valid node ids
        assert np.all(t.children_left_[internal] > 0)
        assert np.all(t.children_right_[internal] > 0)
        # children counts sum to the parent's
        for node in np.flatnonzero(internal):
            l, r = t.children_left_[node], t.children_right_[node]
            assert np.allclose(t.value_[node], t.value_[l] + t.value_[r])

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_given_seed(self, seed):
        X, y = simple_data(150)
        a = DecisionTreeClassifier(max_features=2, random_state=seed).fit(X, y)
        b = DecisionTreeClassifier(max_features=2, random_state=seed).fit(X, y)
        assert np.array_equal(a.feature_, b.feature_)
        assert np.array_equal(a.threshold_, b.threshold_, equal_nan=True)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(5))

    def test_nan_rejected(self):
        X, y = simple_data(20)
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, y)


class TestPersistence:
    def test_state_roundtrip_preserves_predictions(self, splitter):
        X, y = simple_data()
        t = DecisionTreeClassifier(splitter=splitter, max_depth=8, random_state=0).fit(X, y)
        t2 = DecisionTreeClassifier.from_state(t.get_state())
        assert np.array_equal(t.predict(X), t2.predict(X))
        assert np.allclose(t.predict_proba(X), t2.predict_proba(X))

    def test_unfitted_state_rejected(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().get_state()
