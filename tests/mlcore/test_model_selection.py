"""Tests for splits, stratification and time windows."""

import numpy as np
import pytest

from repro.mlcore.model_selection import (
    StratifiedKFold,
    cross_val_score,
    time_window_indices,
    train_test_split,
)


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.arange(100) % 2
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, random_state=0)
        assert len(Xte) == 25
        assert len(Xtr) == 75

    def test_partition_no_overlap(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50) % 2
        Xtr, Xte, _, _ = train_test_split(X, y, random_state=1)
        assert set(Xtr[:, 0]) | set(Xte[:, 0]) == set(range(50))
        assert not set(Xtr[:, 0]) & set(Xte[:, 0])

    def test_stratified_preserves_ratio(self):
        y = np.array([0] * 80 + [1] * 20)
        X = np.arange(100).reshape(-1, 1)
        _, _, _, yte = train_test_split(X, y, test_size=0.25, stratify=True, random_state=2)
        assert np.sum(yte == 1) == 5

    def test_deterministic_given_seed(self):
        X = np.arange(30).reshape(-1, 1)
        y = np.arange(30) % 2
        a = train_test_split(X, y, random_state=7)[1]
        b = train_test_split(X, y, random_state=7)[1]
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("ts", [0.0, 1.0, -0.5])
    def test_invalid_test_size(self, ts):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((10, 1)), np.zeros(10), test_size=ts)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((10, 1)), np.zeros(9))


class TestStratifiedKFold:
    def test_folds_partition_data(self):
        y = np.array([0] * 30 + [1] * 20)
        seen = []
        for _, test in StratifiedKFold(5, random_state=0).split(y):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(50))

    def test_class_ratio_per_fold(self):
        y = np.array([0] * 40 + [1] * 10)
        for _, test in StratifiedKFold(5, random_state=0).split(y):
            assert np.sum(y[test] == 1) == 2

    def test_train_test_disjoint(self):
        y = np.arange(20) % 2
        for train, test in StratifiedKFold(4, random_state=0).split(y):
            assert not set(train) & set(test)

    def test_too_few_samples_per_class(self):
        y = np.array([0, 0, 0, 1])
        with pytest.raises(ValueError):
            list(StratifiedKFold(2).split(y))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(1)


class TestCrossValScore:
    def test_scores_reasonable(self):
        from repro.mlcore.knn import KNeighborsClassifier

        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 1, (50, 3)), rng.normal(2, 1, (50, 3))])
        y = np.array([0] * 50 + [1] * 50)
        scores = cross_val_score(
            lambda: KNeighborsClassifier(3), X, y, cv=5, random_state=0
        )
        assert scores.shape == (5,)
        assert scores.mean() > 0.9

    def test_custom_scorer(self):
        from repro.mlcore.knn import KNeighborsClassifier
        from repro.mlcore.metrics import f1_macro

        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 2))
        y = (X[:, 0] > 0).astype(int)
        scores = cross_val_score(
            lambda: KNeighborsClassifier(3),
            X,
            y,
            cv=3,
            scorer=lambda m, Xt, yt: f1_macro(yt, m.predict(Xt)),
            random_state=0,
        )
        assert np.all((0 <= scores) & (scores <= 1))


class TestTimeWindow:
    def test_half_open_interval(self):
        times = np.array([0.0, 1.0, 2.0, 3.0])
        idx = time_window_indices(times, 1.0, 3.0)
        assert idx.tolist() == [1, 2]

    def test_empty_window(self):
        assert time_window_indices(np.array([5.0]), 0.0, 1.0).size == 0
