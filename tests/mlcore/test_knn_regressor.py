"""Tests for k-NN regression (the §VI feature-prediction extension)."""

import numpy as np
import pytest

from repro.mlcore.base import NotFittedError
from repro.mlcore.knn import KNeighborsRegressor


def smooth_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-3, 3, size=(n, 2))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
    return X, y


class TestFitPredict:
    def test_learns_smooth_function(self):
        X, y = smooth_data()
        Xt, yt = smooth_data(seed=1)
        reg = KNeighborsRegressor(5).fit(X, y)
        assert reg.score(Xt, yt) > 0.9

    def test_k1_memorizes(self):
        X, y = smooth_data(50)
        reg = KNeighborsRegressor(1).fit(X, y)
        assert np.allclose(reg.predict(X), y, atol=1e-8)

    def test_uniform_is_neighbor_mean(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0]])
        y = np.array([1.0, 2.0, 3.0, 100.0])
        reg = KNeighborsRegressor(3, weights="uniform").fit(X, y)
        assert reg.predict(np.array([[1.0]]))[0] == pytest.approx(2.0)

    def test_distance_weights_favor_close(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 1.0, 100.0])
        uni = KNeighborsRegressor(3, weights="uniform").fit(X, y)
        dist = KNeighborsRegressor(3, weights="distance").fit(X, y)
        q = np.array([[0.1]])
        assert dist.predict(q)[0] < uni.predict(q)[0]

    def test_distance_weights_exact_match_dominates(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([7.0, 1.0, 9.0])
        reg = KNeighborsRegressor(3, weights="distance").fit(X, y)
        assert reg.predict(np.array([[0.0]]))[0] == pytest.approx(7.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KNeighborsRegressor().predict(np.zeros((1, 2)))

    def test_nan_target_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(1).fit([[0.0], [1.0]], [np.nan, 1.0])

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(weights="gaussian")


class TestScore:
    def test_perfect_r2(self):
        X, y = smooth_data(80)
        reg = KNeighborsRegressor(1).fit(X, y)
        assert reg.score(X, y) == pytest.approx(1.0)

    def test_constant_prediction_zero_r2(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = X[:, 0].copy()
        reg = KNeighborsRegressor(20).fit(X, y)  # always the global mean
        assert reg.score(X, y) == pytest.approx(0.0, abs=1e-9)


class TestBackends:
    def test_kdtree_matches_brute(self):
        X, y = smooth_data(150)
        q = np.random.default_rng(3).uniform(-3, 3, size=(20, 2))
        b = KNeighborsRegressor(4, algorithm="brute").fit(X, y).predict(q)
        t = KNeighborsRegressor(4, algorithm="kd_tree").fit(X, y).predict(q)
        assert np.allclose(b, t, atol=1e-10)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        from repro.mlcore.persistence import load_model, save_model

        X, y = smooth_data(60)
        reg = KNeighborsRegressor(3, weights="distance").fit(X, y)
        save_model(reg, tmp_path / "r")
        reg2 = load_model(tmp_path / "r")
        q = X + 0.05
        assert np.allclose(reg.predict(q), reg2.predict(q))
