"""Integration tests: the full MCBound pipeline over its real components.

These mirror the paper's deployment story end-to-end: generate a trace,
load it into the relational store, run the Training Workflow through a
cron schedule over several simulated days, run the Inference Workflow on
each day's submissions, and score predictions against the Roofline ground
truth.
"""

import numpy as np
import pytest

from repro.core import (
    InferenceWorkflow,
    MCBound,
    MCBoundConfig,
    Scheduler,
    SimClock,
    TrainingWorkflow,
    load_trace_into_db,
)
from repro.fugaku.workload import DAY_SECONDS
from repro.mlcore.metrics import f1_macro


@pytest.fixture(scope="module", params=["KNN", "RF"])
def deployed(request, small_trace, tmp_path_factory):
    algo = request.param
    params = (
        {"n_neighbors": 5, "algorithm": "brute"}
        if algo == "KNN"
        else {"n_estimators": 8, "max_depth": 10, "splitter": "hist", "random_state": 0}
    )
    cfg = MCBoundConfig(algorithm=algo, model_params=params, alpha_days=25.0, beta_days=2.0)
    fw = MCBound(
        cfg,
        load_trace_into_db(small_trace),
        model_store_root=tmp_path_factory.mktemp(f"store_{algo}"),
    )
    return fw


class TestScheduledDeployment:
    def test_online_period_with_cron(self, deployed):
        fw = deployed
        start = 40 * DAY_SECONDS
        clock = SimClock(start)
        sched = Scheduler(clock)
        tw = TrainingWorkflow(fw)
        iw = InferenceWorkflow(fw)
        sched.every(fw.config.beta_days, tw.run)
        sched.every(1.0, lambda t: iw.run_window(t - DAY_SECONDS, t), offset_days=1.0)
        # run_until excludes the end instant, so the day-6 inference (which
        # would cover day 5) fires on a horizon of 6 days + epsilon
        sched.run_until(start + 6 * DAY_SECONDS + 1.0)

        # beta=2: retrains at days 0, 2, 4 and at the 6d+eps horizon
        assert len(tw.history) == 4
        assert len(iw.history) == 6
        assert len(iw.predictions) > 50

        # score against ground truth
        ids = np.array(sorted(iw.predictions))
        preds = np.array([iw.predictions[j] for j in ids])
        truth_ids, truth = fw.characterize_window(start, start + 6 * DAY_SECONDS)
        order = np.argsort(truth_ids)
        aligned = dict(zip(truth_ids[order].tolist(), truth[order].tolist()))
        y_true = np.array([aligned[j] for j in ids])
        score = f1_macro(y_true, preds)
        assert score > 0.6

    def test_model_versions_published(self, deployed):
        assert deployed.store.latest_version >= 3
