"""Integration test: MCBound deployed behind a real HTTP socket.

Reproduces artifact A1 of the paper's AD appendix: deploy the backend,
hit its endpoints, train, and predict — all over HTTP.
"""

import json
import urllib.request

import pytest

from repro.core import MCBound, MCBoundConfig, build_app, load_trace_into_db
from repro.fugaku.workload import DAY_SECONDS
from repro.web import serve


def _post(url, payload):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


class TestLiveDeployment:
    def test_full_cycle_over_http(self, tiny_trace, tmp_path):
        # n_neighbors=5 (the sklearn default): the tiny trace is dominated by
        # duplicate submission strings, so identical embeddings produce exact
        # k-th-distance ties and the vote at k=3 is decided purely by the
        # neighbor tie-break order — not something an HTTP smoke test should
        # be sensitive to.  Ties resolve canonically to the smallest training
        # index (see repro.mlcore.knn), and k=5 votes past the tie noise.
        cfg = MCBoundConfig(
            algorithm="KNN",
            model_params={"n_neighbors": 5, "algorithm": "brute"},
            alpha_days=25.0,
        )
        fw = MCBound(cfg, load_trace_into_db(tiny_trace), model_store_root=tmp_path / "m")
        with serve(build_app(fw)) as handle:
            base = handle.url

            status, health = _get(f"{base}/health")
            assert status == 200 and health["model_trained"] is False

            now = 40 * DAY_SECONDS
            status, summary = _post(f"{base}/train", {"now": now})
            assert status == 201 and summary["n_jobs"] > 0

            status, pred = _post(
                f"{base}/predict",
                {"start_time": now, "end_time": now + DAY_SECONDS},
            )
            assert status == 200
            assert len(pred["labels"]) > 0
            assert set(pred["label_names"]) <= {"memory-bound", "compute-bound"}

            status, models = _get(f"{base}/models")
            assert models["latest"] == 1

            status, truth = _post(
                f"{base}/characterize",
                {"start_time": now, "end_time": now + DAY_SECONDS},
            )
            assert truth["job_ids"] == pred["job_ids"]
            agree = sum(
                a == b for a, b in zip(truth["labels"], pred["labels"])
            ) / len(truth["labels"])
            assert agree > 0.5
