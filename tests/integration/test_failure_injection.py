"""Failure-injection tests: the system degrades loudly, not silently."""

import json

import numpy as np
import pytest

from repro.core import (
    MCBound,
    MCBoundConfig,
    ModelStore,
    build_app,
    load_trace_into_db,
)
from repro.core.classification_model import ClassificationModel
from repro.fugaku.workload import DAY_SECONDS
from repro.storage.engine import Database
from repro.web import TestClient


def make_fw(trace, tmp_path=None, **over):
    cfg = MCBoundConfig(
        algorithm="KNN",
        model_params={"n_neighbors": 3, "algorithm": "brute"},
        alpha_days=over.pop("alpha_days", 20.0),
    )
    root = tmp_path / "m" if tmp_path else None
    return MCBound(cfg, load_trace_into_db(trace), model_store_root=root)


class TestHTTPBoundary:
    def test_handler_crash_is_500_not_connection_drop(self, tiny_trace, monkeypatch):
        fw = make_fw(tiny_trace)
        client = TestClient(build_app(fw))

        def boom(*a, **k):
            raise RuntimeError("backend exploded")

        monkeypatch.setattr(fw, "characterize_window", boom)
        r = client.post(
            "/characterize", json_body={"start_time": 0.0, "end_time": 1.0}
        )
        assert r.status == 500
        assert "backend exploded" in r.json()["error"]

    def test_malformed_json_is_400(self, tiny_trace):
        fw = make_fw(tiny_trace)
        client = TestClient(build_app(fw))
        r = client.post("/train", body=b"\x00\xff not json")
        assert r.status == 400

    def test_single_class_window_is_409(self, tiny_trace, monkeypatch):
        fw = make_fw(tiny_trace)
        # force every label to memory-bound for this window (training
        # streams through _characterize_batch)
        monkeypatch.setattr(
            fw, "_characterize_batch",
            lambda batch: (
                batch.column("job_id").astype(np.int64),
                np.zeros(len(batch.column("job_id")), dtype=np.int64),
            ),
        )
        client = TestClient(build_app(fw))
        r = client.post("/train", json_body={"now": 40 * DAY_SECONDS})
        assert r.status == 409
        assert "single class" in r.json()["error"]


class TestStorageFailures:
    def test_missing_jobs_table_surfaces(self, tiny_trace):
        cfg = MCBoundConfig(algorithm="KNN", model_params={"n_neighbors": 3})
        fw = MCBound(cfg, Database())  # empty database, no jobs table
        with pytest.raises(KeyError, match="jobs"):
            fw.characterize_window(0.0, 1.0)

    def test_http_missing_table_is_500(self, tiny_trace):
        cfg = MCBoundConfig(algorithm="KNN", model_params={"n_neighbors": 3})
        fw = MCBound(cfg, Database())
        client = TestClient(build_app(fw))
        r = client.post("/characterize", json_body={"start_time": 0, "end_time": 1})
        assert r.status == 500


class TestModelStoreCorruption:
    def _published_store(self, tmp_path):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 4)).astype(np.float32)
        y = (X[:, 0] > 0).astype(int)
        model = ClassificationModel("KNN", n_neighbors=3).training(X, y)
        store = ModelStore(tmp_path / "store")
        version = store.publish(model)
        return store, version

    def test_tampered_manifest_class_rejected(self, tmp_path):
        store, version = self._published_store(tmp_path)
        vdir = store.registry.root / f"v{version:08d}"
        manifest = json.loads((vdir / "manifest.json").read_text())
        manifest["model_class"] = "os.system"  # pickle-style gadget attempt
        (vdir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(TypeError, match="unknown model class"):
            store.load(version)

    def test_deleted_arrays_fail_loudly(self, tmp_path):
        store, version = self._published_store(tmp_path)
        vdir = store.registry.root / f"v{version:08d}"
        (vdir / "arrays.npz").unlink()
        with pytest.raises(FileNotFoundError):
            store.load(version)

    def test_framework_survives_empty_store_dir(self, tiny_trace, tmp_path):
        fw = make_fw(tiny_trace, tmp_path)
        # store exists but is empty: predict must raise NotFitted, not crash
        from repro.mlcore.base import NotFittedError

        with pytest.raises(NotFittedError):
            fw.predict_job(1)


class TestEvaluationEdges:
    def test_no_training_possible_skips_days(self, small_trace):
        """With alpha so small some windows are empty, the loop still runs."""
        from repro.evaluation.online import OnlineEvaluator

        ev = OnlineEvaluator(small_trace, test_start_day=66, test_end_day=69)
        # days 66-68 are the maintenance window: almost no jobs submitted,
        # but training windows reach back before the shutdown
        r = ev.evaluate("KNN", {"n_neighbors": 3}, alpha=10, beta=1)
        assert r.n_test_jobs >= 0
