"""Tests for the prediction-guided dispatch simulator (§VI)."""

import numpy as np
import pytest

from repro.core import JobCharacterizer
from repro.dispatch import (
    Cluster,
    CoschedulePolicy,
    DispatchSimulator,
    FrequencyPolicy,
    simulate_dispatch,
)
from repro.dispatch.policies import (
    COMPLEMENTARY_SLOWDOWN,
    CONTENTION_SLOWDOWN,
    DURATION_CUT_BOOST,
    POLICY_SOURCES,
    POWER_CUT_NORMAL,
)
from repro.fugaku.trace import JobTrace
from repro.fugaku.workload import DAY_SECONDS
from repro.roofline.characterize import COMPUTE_BOUND, MEMORY_BOUND


class TestCluster:
    def test_allocation_accounting(self):
        c = Cluster(10)
        c.allocate(1, 4)
        assert c.free_nodes == 6 and c.used_nodes == 4
        assert c.release(1) == 4
        assert c.free_nodes == 10

    def test_over_allocation_rejected(self):
        c = Cluster(3)
        with pytest.raises(RuntimeError):
            c.allocate(1, 4)

    def test_duplicate_id_rejected(self):
        c = Cluster(5)
        c.allocate(1, 1)
        with pytest.raises(RuntimeError):
            c.allocate(1, 1)

    def test_release_unknown(self):
        with pytest.raises(KeyError):
            Cluster(2).release(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Cluster(0)
        with pytest.raises(ValueError):
            Cluster(2).allocate(1, 0)


class TestFrequencyPolicy:
    def test_user_keeps_submitted(self):
        p = FrequencyPolicy("user")
        assert p.frequency(2.0, COMPUTE_BOUND) == 2.0

    def test_oracle_sets_by_class(self):
        p = FrequencyPolicy("oracle")
        assert p.frequency(2.0, COMPUTE_BOUND) == 2.2
        assert p.frequency(2.2, MEMORY_BOUND) == 2.0

    def test_duration_delta_only_for_true_compute(self):
        p = FrequencyPolicy("oracle")
        # normal -> boost: 10% faster
        assert p.effective_duration(100.0, 2.0, 2.2, COMPUTE_BOUND) == pytest.approx(
            100.0 * (1 - DURATION_CUT_BOOST)
        )
        # boost -> normal: inverse
        assert p.effective_duration(90.0, 2.2, 2.0, COMPUTE_BOUND) == pytest.approx(100.0)
        # unchanged frequency or memory-bound: no effect
        assert p.effective_duration(100.0, 2.2, 2.2, COMPUTE_BOUND) == 100.0
        assert p.effective_duration(100.0, 2.0, 2.2, MEMORY_BOUND) == 100.0

    def test_power_delta_only_for_true_memory(self):
        p = FrequencyPolicy("oracle")
        assert p.effective_power(1000.0, 2.2, 2.0, MEMORY_BOUND) == pytest.approx(
            1000.0 * (1 - POWER_CUT_NORMAL)
        )
        assert p.effective_power(850.0, 2.0, 2.2, MEMORY_BOUND) == pytest.approx(1000.0)
        assert p.effective_power(1000.0, 2.0, 2.0, MEMORY_BOUND) == 1000.0
        assert p.effective_power(1000.0, 2.2, 2.0, COMPUTE_BOUND) == 1000.0

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            FrequencyPolicy("ai")

    def test_every_documented_source_is_accepted(self):
        for source in POLICY_SOURCES:
            assert FrequencyPolicy(source).source == source


class TestCoschedulePolicy:
    def test_slowdowns(self):
        assert CoschedulePolicy.pair_slowdown(MEMORY_BOUND, COMPUTE_BOUND) == COMPLEMENTARY_SLOWDOWN
        assert CoschedulePolicy.pair_slowdown(MEMORY_BOUND, MEMORY_BOUND) == CONTENTION_SLOWDOWN


def _toy_trace(n=6, nodes=1, duration=100.0, gap=1000.0):
    cols = {
        "job_id": np.arange(1, n + 1),
        "user_name": np.array(["u"] * n, dtype=object),
        "job_name": np.array(["j"] * n, dtype=object),
        "environment": np.array(["e"] * n, dtype=object),
        "nodes_req": np.full(n, nodes),
        "cores_req": np.full(n, nodes * 48),
        "nodes_alloc": np.full(n, nodes),
        "freq_req_ghz": np.full(n, 2.2),
        "submit_time": np.arange(n) * gap,
        "start_time": np.arange(n) * gap,
        "end_time": np.arange(n) * gap + duration,
        "duration": np.full(n, duration),
        "perf2": np.full(n, 1e12),
        "perf3": np.full(n, 1e12),
        "perf4": np.full(n, 1e10),
        "perf5": np.full(n, 1e10),
        "power_avg_w": np.full(n, 1000.0),
    }
    return JobTrace(cols)


class TestSimulatorBasics:
    def test_sequential_jobs_no_wait(self):
        trace = _toy_trace(n=4, gap=1000.0, duration=100.0)
        y = np.array([0, 1, 0, 1])
        m = simulate_dispatch(trace, y, n_nodes=4)
        assert m.n_jobs == 4
        assert m.mean_wait_s == 0.0
        assert m.makespan_s == pytest.approx(3000.0 + 100.0)

    def test_contended_jobs_queue(self):
        # 4 single-node jobs arrive together on a 1-node cluster
        trace = _toy_trace(n=4, gap=0.0, duration=100.0)
        y = np.zeros(4, dtype=int)
        m = simulate_dispatch(trace, y, n_nodes=1)
        assert m.n_jobs == 4
        assert m.makespan_s == pytest.approx(400.0)
        assert m.mean_wait_s == pytest.approx((0 + 100 + 200 + 300) / 4)

    def test_energy_is_power_times_duration(self):
        trace = _toy_trace(n=2, gap=1000.0, duration=100.0)
        y = np.zeros(2, dtype=int)
        m = simulate_dispatch(trace, y, n_nodes=2)
        # both jobs memory-bound at boost: no frequency effect under "user"
        assert m.total_energy_gj == pytest.approx(2 * 1000.0 * 100.0 / 1e9)

    def test_oracle_frequency_saves_energy(self):
        # all submitted at boost: memory-bound jobs are moved to normal mode
        trace = _toy_trace(n=4, gap=0.0, duration=100.0)
        y = np.array([MEMORY_BOUND, MEMORY_BOUND, COMPUTE_BOUND, COMPUTE_BOUND])
        base = simulate_dispatch(trace, y, n_nodes=4)
        oracle = simulate_dispatch(trace, y, n_nodes=4, frequency_source="oracle")
        assert oracle.total_energy_gj < base.total_energy_gj
        # compute-bound jobs were already at boost: same node time
        assert oracle.total_node_seconds == pytest.approx(base.total_node_seconds)

    def test_labels_length_checked(self):
        trace = _toy_trace(n=2)
        with pytest.raises(ValueError):
            simulate_dispatch(trace, np.zeros(3, dtype=int), n_nodes=2)

    def test_oversized_jobs_clamped_to_cluster(self):
        trace = _toy_trace(n=1, nodes=100)
        m = simulate_dispatch(trace, np.zeros(1, dtype=int), n_nodes=8)
        assert m.n_jobs == 1


class TestCoscheduling:
    def test_complementary_pair_shares_nodes(self):
        trace = _toy_trace(n=2, gap=0.0, duration=100.0)
        y = np.array([MEMORY_BOUND, COMPUTE_BOUND])
        m = simulate_dispatch(
            trace, y, n_nodes=1, frequency_source="oracle", coschedule=True
        )
        assert m.n_coscheduled == 2
        assert m.n_contention_pairs == 0
        # pair runs concurrently on 1 node with the complementary slowdown;
        # exclusive dispatch would need ~2x the time
        assert m.makespan_s < 200.0

    def test_misprediction_causes_contention(self):
        trace = _toy_trace(n=2, gap=0.0, duration=100.0)
        y = np.array([MEMORY_BOUND, MEMORY_BOUND])  # truth: same class
        pred = np.array([MEMORY_BOUND, COMPUTE_BOUND])  # predictor disagrees
        m = simulate_dispatch(
            trace, y, n_nodes=1, frequency_source="mcbound",
            coschedule=True, predicted_labels=pred,
        )
        assert m.n_coscheduled == 2
        assert m.n_contention_pairs == 1

    def test_cosched_off_is_exclusive(self):
        trace = _toy_trace(n=2, gap=0.0, duration=100.0)
        y = np.array([MEMORY_BOUND, COMPUTE_BOUND])
        m = simulate_dispatch(trace, y, n_nodes=1, frequency_source="oracle")
        assert m.n_coscheduled == 0
        assert m.makespan_s >= 190.0

    def test_different_node_requests_not_paired(self):
        trace = _toy_trace(n=2, gap=0.0, duration=100.0)
        cols = {k: trace[k].copy() for k in trace.column_names}
        cols["nodes_alloc"] = np.array([1, 2])
        cols["nodes_req"] = np.array([1, 2])
        trace2 = JobTrace(cols)
        y = np.array([MEMORY_BOUND, COMPUTE_BOUND])
        m = simulate_dispatch(
            trace2, y, n_nodes=4, frequency_source="oracle", coschedule=True
        )
        assert m.n_coscheduled == 0


class TestOnRealTrace:
    @pytest.fixture(scope="class")
    def staged(self, tiny_trace):
        sl = tiny_trace.between(62 * DAY_SECONDS, 66 * DAY_SECONDS)
        y = JobCharacterizer().labels_from_trace(sl)
        return sl, y

    def test_mcbound_recovers_most_of_oracle_savings(self, staged):
        sl, y = staged
        rng = np.random.default_rng(1)
        pred = y.copy()
        flip = rng.random(len(y)) < 0.10  # the paper's ~90% accuracy
        pred[flip] = 1 - pred[flip]
        nodes = int(sl["nodes_alloc"].max() * 4)
        user = simulate_dispatch(sl, y, n_nodes=nodes)
        mcb = simulate_dispatch(
            sl, y, n_nodes=nodes, frequency_source="mcbound", predicted_labels=pred
        )
        oracle = simulate_dispatch(sl, y, n_nodes=nodes, frequency_source="oracle")
        assert oracle.total_energy_gj <= mcb.total_energy_gj <= user.total_energy_gj
        saved_oracle = user.total_energy_gj - oracle.total_energy_gj
        saved_mcb = user.total_energy_gj - mcb.total_energy_gj
        assert saved_oracle > 0
        assert saved_mcb > 0.6 * saved_oracle

    def test_all_jobs_complete(self, staged):
        sl, y = staged
        nodes = int(sl["nodes_alloc"].max() * 2)
        m = simulate_dispatch(sl, y, n_nodes=nodes, coschedule=True,
                              frequency_source="oracle")
        assert m.n_jobs == len(sl)
