"""Tests for the classical categorical encoder (§III-B alternative)."""

import numpy as np
import pytest

from repro.core.categorical_encoder import CategoricalEncoder

RECORDS = [
    {"user_name": "u1", "job_name": "a.sh", "cores_req": 48,
     "nodes_req": 1, "environment": "e1", "freq_req_ghz": 2.0},
    {"user_name": "u1", "job_name": "b.sh", "cores_req": 96,
     "nodes_req": 2, "environment": "e1", "freq_req_ghz": 2.2},
    {"user_name": "u2", "job_name": "a.sh", "cores_req": 48,
     "nodes_req": 1, "environment": "e2", "freq_req_ghz": 2.0},
]


class TestFit:
    def test_vocabularies_learned(self):
        enc = CategoricalEncoder().fit(RECORDS)
        assert set(enc.vocabularies_["user_name"]) == {"u1", "u2"}
        assert enc.vocabularies_["user_name"]["u1"] == 1  # most frequent first

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            CategoricalEncoder().fit([])

    def test_missing_feature_rejected(self):
        with pytest.raises(KeyError):
            CategoricalEncoder().fit([{"user_name": "x"}])

    def test_max_categories_cap(self):
        records = [dict(RECORDS[0], job_name=f"j{i}") for i in range(50)]
        enc = CategoricalEncoder(max_categories=8).fit(records)
        assert len(enc.vocabularies_["job_name"]) == 7  # code 0 reserved

    def test_validation(self):
        with pytest.raises(ValueError):
            CategoricalEncoder(feature_set=())
        with pytest.raises(ValueError):
            CategoricalEncoder(mode="embedding")
        with pytest.raises(ValueError):
            CategoricalEncoder(max_categories=1)


class TestOrdinal:
    def test_shape_and_range(self):
        enc = CategoricalEncoder().fit(RECORDS)
        X = enc.encode(RECORDS)
        assert X.shape == (3, 6)
        assert X.dtype == np.float32
        assert X.min() >= 0.0 and X.max() <= 1.0

    def test_same_value_same_code(self):
        enc = CategoricalEncoder(feature_set=("job_name",)).fit(RECORDS)
        X = enc.encode(RECORDS)
        assert X[0, 0] == X[2, 0]  # both a.sh
        assert X[0, 0] != X[1, 0]

    def test_unseen_maps_to_unknown(self):
        enc = CategoricalEncoder(feature_set=("job_name",)).fit(RECORDS)
        X = enc.encode([dict(RECORDS[0], job_name="never_seen.sh")])
        assert X[0, 0] == 0.0

    def test_unfitted_encode_rejected(self):
        with pytest.raises(RuntimeError):
            CategoricalEncoder().encode(RECORDS)

    def test_empty_encode(self):
        enc = CategoricalEncoder().fit(RECORDS)
        assert enc.encode([]).shape == (0, 6)


class TestOneHot:
    def test_dim_is_total_vocab(self):
        enc = CategoricalEncoder(
            feature_set=("user_name", "job_name"), mode="onehot"
        ).fit(RECORDS)
        # (2 users + unk) + (2 names + unk)
        assert enc.dim == 6
        X = enc.encode(RECORDS)
        assert X.shape == (3, 6)

    def test_one_hot_rows(self):
        enc = CategoricalEncoder(feature_set=("user_name",), mode="onehot").fit(RECORDS)
        X = enc.encode(RECORDS)
        assert np.allclose(X.sum(axis=1), 1.0)

    def test_unseen_hits_unknown_slot(self):
        enc = CategoricalEncoder(feature_set=("user_name",), mode="onehot").fit(RECORDS)
        X = enc.encode([dict(RECORDS[0], user_name="ghost")])
        assert X[0, 0] == 1.0


class TestUnknownRate:
    def test_zero_on_training_data(self):
        enc = CategoricalEncoder().fit(RECORDS)
        assert enc.unknown_rate(RECORDS) == 0.0

    def test_counts_unseen_values(self):
        enc = CategoricalEncoder(feature_set=("user_name", "job_name")).fit(RECORDS)
        probe = [dict(RECORDS[0], user_name="ghost", job_name="a.sh")]
        assert enc.unknown_rate(probe) == pytest.approx(0.5)

    def test_generalization_gap_vs_embedder(self, tiny_trace):
        """The §V-A story: categorical mapping cannot place unseen values."""
        records = [r.as_dict() for r in tiny_trace.iter_rows()]
        cut = len(records) * 2 // 3
        enc = CategoricalEncoder().fit(records[:cut])
        # later jobs include templates born after the fit window
        assert enc.unknown_rate(records[cut:]) > 0.0
