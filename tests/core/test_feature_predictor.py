"""Tests for pre-execution prediction of duration/power (§VI extension)."""

import numpy as np
import pytest

from repro.core import DataFetcher, JobFeaturePredictor, load_trace_into_db
from repro.fugaku.workload import DAY_SECONDS
from repro.mlcore.base import NotFittedError


@pytest.fixture(scope="module")
def windows(small_trace):
    train = small_trace.between(10 * DAY_SECONDS, 40 * DAY_SECONDS)
    test = small_trace.between(40 * DAY_SECONDS, 42 * DAY_SECONDS)
    train_records = [r.as_dict() for r in train.iter_rows()]
    test_records = [r.as_dict() for r in test.iter_rows()]
    return train_records, test_records


class TestTargets:
    def test_unsupported_target_rejected(self):
        with pytest.raises(ValueError):
            JobFeaturePredictor("user_name")

    def test_duration_prediction_beats_global_mean(self, windows):
        train, test = windows
        predictor = JobFeaturePredictor("duration").training(train)
        y_true = np.array([r["duration"] for r in test])
        y_pred = predictor.inference(test)
        assert y_pred.shape == y_true.shape
        assert np.all(y_pred >= 0)
        mean_pred = np.full_like(y_true, np.mean([r["duration"] for r in train]))
        err_model = predictor.median_relative_error(y_true, y_pred)
        err_mean = predictor.median_relative_error(y_true, mean_pred)
        assert err_model < err_mean

    def test_power_prediction_reasonable(self, windows):
        train, test = windows
        predictor = JobFeaturePredictor("power_avg_w").training(train)
        y_true = np.array([r["power_avg_w"] for r in test])
        y_pred = predictor.inference(test)
        # similar jobs repeat: the median relative error should be small
        assert predictor.median_relative_error(y_true, y_pred) < 0.5

    def test_nodes_prediction_near_exact(self, windows):
        """#nodes is fixed per template, so known templates predict exactly."""
        train, test = windows
        predictor = JobFeaturePredictor(
            "nodes_alloc", log_target=False, n_neighbors=1
        ).training(train)
        y_true = np.array([r["nodes_alloc"] for r in test], dtype=float)
        y_pred = predictor.inference(test)
        assert np.mean(np.round(y_pred) == y_true) > 0.7


class TestWorkflow:
    def test_inference_requires_training(self, windows):
        _, test = windows
        with pytest.raises(NotFittedError):
            JobFeaturePredictor("duration").inference(test)

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            JobFeaturePredictor("duration").training([])

    def test_empty_inference(self, windows):
        train, _ = windows
        predictor = JobFeaturePredictor("duration").training(train)
        assert predictor.inference([]).shape == (0,)

    def test_train_window_through_fetcher(self, small_trace):
        db = load_trace_into_db(small_trace)
        predictor = JobFeaturePredictor("duration")
        predictor.train_window(DataFetcher(db), 10 * DAY_SECONDS, 30 * DAY_SECONDS)
        assert predictor.is_trained

    def test_log_target_flag(self, windows):
        train, test = windows
        lin = JobFeaturePredictor("duration", log_target=False).training(train)
        log = JobFeaturePredictor("duration", log_target=True).training(train)
        assert lin.inference(test).shape == log.inference(test).shape


class TestErrorMetrics:
    def test_mape(self):
        assert JobFeaturePredictor.mape([100.0, 200.0], [110.0, 180.0]) == pytest.approx(0.1)

    def test_median_relative_error(self):
        got = JobFeaturePredictor.median_relative_error(
            [100.0, 100.0, 100.0], [100.0, 150.0, 400.0]
        )
        assert got == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            JobFeaturePredictor.mape([1.0], [1.0, 2.0])
