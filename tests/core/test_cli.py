"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace"
    assert main(["generate", str(path), "--scale", "0.002", "--seed", "9"]) == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out"])
        assert args.scale == pytest.approx(1 / 200)
        assert args.seed == 2024


class TestGenerate:
    def test_writes_trace_files(self, trace_path):
        assert trace_path.with_suffix(".npz").exists()
        assert trace_path.with_suffix(".strings.json").exists()

    def test_trace_loadable(self, trace_path):
        from repro.fugaku.trace import JobTrace

        trace = JobTrace.load(trace_path)
        assert len(trace) > 1000


class TestCharacterize:
    def test_prints_table(self, trace_path, capsys):
        assert main(["characterize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "memory-bound" in out
        assert "ridge point" in out
        assert "ratio" in out


class TestEvaluate:
    def test_knn_run(self, trace_path, capsys):
        code = main([
            "evaluate", str(trace_path), "--algorithm", "KNN",
            "--alpha", "20", "--beta", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "F1=" in out
        assert "KNN alpha=20 beta=5" in out

    def test_rf_run_with_trees(self, trace_path, capsys):
        code = main([
            "evaluate", str(trace_path), "--algorithm", "RF",
            "--trees", "4", "--beta", "10",
        ])
        assert code == 0
        assert "RF alpha=15" in capsys.readouterr().out

    def test_nb_run(self, trace_path, capsys):
        code = main(["evaluate", str(trace_path), "--algorithm", "NB", "--beta", "10"])
        assert code == 0
        assert "NB" in capsys.readouterr().out


class TestServe:
    def test_smoke_deployment(self, trace_path, capsys):
        code = main([
            "serve", "--trace", str(trace_path), "--smoke", "--train-at-day", "40",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "listening on" in out
        assert "trained on" in out
        assert '"status": "ok"' in out
