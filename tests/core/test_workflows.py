"""Tests for the Training and Inference Workflows (Fig. 1)."""

import pytest

from repro.core import InferenceWorkflow, MCBound, MCBoundConfig, TrainingWorkflow, load_trace_into_db
from repro.fugaku.workload import DAY_SECONDS


@pytest.fixture()
def framework(tiny_trace):
    cfg = MCBoundConfig(
        algorithm="KNN",
        model_params={"n_neighbors": 3, "algorithm": "brute"},
        alpha_days=20.0,
    )
    return MCBound(cfg, load_trace_into_db(tiny_trace))


NOW = 40 * DAY_SECONDS


class TestTrainingWorkflow:
    def test_run_records_history(self, framework):
        tw = TrainingWorkflow(framework)
        r = tw.run(NOW)
        assert r.kind == "training"
        assert r.n_jobs > 0
        assert r.runtime_seconds >= 0
        assert len(tw.history) == 1

    def test_alpha_override(self, framework):
        tw = TrainingWorkflow(framework, alpha_days=5)
        r = tw.run(NOW)
        assert r.payload["window"][0] == NOW - 5 * DAY_SECONDS

    def test_mean_runtime(self, framework):
        tw = TrainingWorkflow(framework)
        assert tw.mean_runtime == 0.0
        tw.run(NOW)
        tw.run(NOW + DAY_SECONDS)
        assert tw.mean_runtime > 0


class TestInferenceWorkflow:
    def test_window_mode(self, framework):
        TrainingWorkflow(framework).run(NOW)
        iw = InferenceWorkflow(framework)
        r = iw.run_window(NOW, NOW + DAY_SECONDS)
        assert r.kind == "inference"
        assert r.n_jobs == len(iw.predictions)
        assert r.n_jobs > 0

    def test_per_job_mode(self, framework):
        TrainingWorkflow(framework).run(NOW)
        iw = InferenceWorkflow(framework)
        ids, _ = framework.predict_window(NOW, NOW + DAY_SECONDS)
        r = iw.run_job(int(ids[0]), now=NOW)
        assert r.n_jobs == 1
        assert int(ids[0]) in iw.predictions

    def test_predictions_accumulate_across_triggers(self, framework):
        TrainingWorkflow(framework).run(NOW)
        iw = InferenceWorkflow(framework)
        iw.run_window(NOW, NOW + DAY_SECONDS)
        n1 = len(iw.predictions)
        iw.run_window(NOW + DAY_SECONDS, NOW + 2 * DAY_SECONDS)
        assert len(iw.predictions) > n1

    def test_mean_runtime_per_job(self, framework):
        TrainingWorkflow(framework).run(NOW)
        iw = InferenceWorkflow(framework)
        assert iw.mean_runtime_per_job == 0.0
        iw.run_window(NOW, NOW + DAY_SECONDS)
        assert iw.mean_runtime_per_job > 0

    def test_runtime_per_job_property(self, framework):
        TrainingWorkflow(framework).run(NOW)
        iw = InferenceWorkflow(framework)
        r = iw.run_window(NOW, NOW + DAY_SECONDS)
        assert r.runtime_per_job == pytest.approx(r.runtime_seconds / r.n_jobs)
