"""Streaming fetch + characterize: batched paths equal the materializing ones."""

import numpy as np
import pytest

from repro.core.config import MCBoundConfig
from repro.core.data_fetcher import DataFetcher, load_trace_into_db
from repro.core.framework import MCBound
from repro.fugaku.workload import WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def trace():
    return WorkloadGenerator(WorkloadConfig(scale=1.0 / 400.0, n_days=20, seed=11)).generate()


@pytest.fixture(scope="module")
def db(trace):
    return load_trace_into_db(trace)


def window(trace):
    st = trace["submit_time"]
    return float(st[len(st) // 4]), float(st[3 * len(st) // 4])


class TestFetchBatches:
    def test_same_rows_as_windowed_fetch(self, trace, db):
        fetcher = DataFetcher(db)
        lo, hi = window(trace)
        rows = fetcher.fetch(start_time=lo, end_time=hi)
        ids = np.concatenate(
            [b.column("job_id") for b in fetcher.fetch_batches(lo, hi, batch_rows=512)]
        )
        assert np.array_equal(ids, np.array([r["job_id"] for r in rows]))

    def test_batches_are_bounded(self, trace, db):
        fetcher = DataFetcher(db)
        lo, hi = window(trace)
        sizes = [len(b) for b in fetcher.fetch_batches(lo, hi, batch_rows=256)]
        assert sizes and max(sizes) <= 256

    def test_empty_window_yields_nothing(self, db):
        fetcher = DataFetcher(db)
        assert list(fetcher.fetch_batches(-2.0, -1.0)) == []

    def test_rejects_inverted_window(self, db):
        fetcher = DataFetcher(db)
        with pytest.raises(ValueError):
            list(fetcher.fetch_batches(10.0, 5.0))


class TestCharacterizeWindowBatches:
    def test_labels_match_the_materializing_path(self, trace, db):
        lo, hi = window(trace)
        config = MCBoundConfig()
        ref = MCBound(config, db)
        ref_ids, ref_labels = ref.characterize_window(lo, hi)

        streamed = MCBound(config, db)
        got_ids, got_labels = [], []
        for ids, labels in streamed.characterize_window_batches(lo, hi, batch_rows=512):
            got_ids.append(ids)
            got_labels.append(labels)
        assert np.array_equal(np.concatenate(got_ids), ref_ids)
        assert np.array_equal(np.concatenate(got_labels), ref_labels)
        assert streamed.label_cache == ref.label_cache

    def test_labels_from_result_matches_records(self, trace, db):
        from repro.core.job_characterizer import JobCharacterizer

        fetcher = DataFetcher(db)
        lo, hi = window(trace)
        characterizer = JobCharacterizer()
        batch = next(fetcher.fetch_batches(lo, hi, batch_rows=512))
        via_result = characterizer.labels_from_result(batch)
        via_records = characterizer.labels_from_records(batch.iter_rows())
        assert np.array_equal(via_result, via_records)
