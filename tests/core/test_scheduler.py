"""Tests for the simulated clock and cron scheduling (§III-E)."""

import pytest

from repro.core.scheduler import CronSchedule, Scheduler, SimClock

DAY = 86_400.0


class TestSimClock:
    def test_advances(self):
        c = SimClock(10.0)
        c.advance_to(20.0)
        assert c.now == 20.0

    def test_no_time_travel(self):
        c = SimClock(10.0)
        with pytest.raises(ValueError):
            c.advance_to(5.0)


class TestCronSchedule:
    def test_occurrences(self):
        s = CronSchedule(interval_days=1.0)
        occ = s.occurrences(0.0, 3 * DAY)
        assert occ == [0.0, DAY, 2 * DAY]

    def test_offset(self):
        s = CronSchedule(interval_days=2.0, offset_days=0.5)
        occ = s.occurrences(0.0, 5 * DAY)
        assert occ == [0.5 * DAY, 2.5 * DAY, 4.5 * DAY]

    def test_next_after(self):
        s = CronSchedule(interval_days=1.0)
        assert s.next_after(0.0, 0.0) == DAY
        assert s.next_after(DAY * 1.5, 0.0) == 2 * DAY
        assert s.next_after(-5.0, 0.0) == 0.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            CronSchedule(0.0)


class TestScheduler:
    def test_fires_in_time_order(self):
        clock = SimClock(0.0)
        sched = Scheduler(clock)
        fired = []
        sched.every(2.0, lambda t: fired.append(("a", t)))
        sched.every(3.0, lambda t: fired.append(("b", t)))
        sched.run_until(7 * DAY)
        times = [t for _, t in fired]
        assert times == sorted(times)
        a_times = [t for n, t in fired if n == "a"]
        assert a_times == [0.0, 2 * DAY, 4 * DAY, 6 * DAY]

    def test_tie_breaks_by_registration(self):
        clock = SimClock(0.0)
        sched = Scheduler(clock)
        fired = []
        sched.every(1.0, lambda t: fired.append("first"))
        sched.every(1.0, lambda t: fired.append("second"))
        sched.run_until(1.0)  # only t=0 fires
        assert fired == ["first", "second"]

    def test_clock_at_end(self):
        clock = SimClock(0.0)
        sched = Scheduler(clock)
        sched.every(10.0, lambda t: None)
        sched.run_until(5 * DAY)
        assert clock.now == 5 * DAY

    def test_log_contains_job_ids(self):
        clock = SimClock(0.0)
        sched = Scheduler(clock)
        ida = sched.every(1.0, lambda t: None)
        idb = sched.every(2.0, lambda t: None)
        log = sched.run_until(3 * DAY)
        assert (0.0, ida) in log and (0.0, idb) in log
        assert (DAY, ida) in log
        assert (DAY, idb) not in log

    def test_paper_deployment_pattern(self):
        """Cron retraining every β days + daily periodic inference."""
        clock = SimClock(0.0)
        sched = Scheduler(clock)
        trainings, inferences = [], []
        beta = 2.0
        sched.every(beta, trainings.append)
        sched.every(1.0, inferences.append, offset_days=0.5)
        sched.run_until(10 * DAY)
        assert len(trainings) == 5
        assert len(inferences) == 10
        # every inference happens after at least one training
        assert min(inferences) > min(trainings)


class TestFloatGridRegression:
    def test_next_after_strictly_increases_on_grid_points(self):
        """Regression: (t - first) // step can floor under-count when t sits
        exactly on the schedule grid, which used to return t itself and spin
        the scheduler forever (found by the property tests)."""
        s = CronSchedule(interval_days=0.9012051940133423)
        t = 0.0
        for _ in range(10_000):
            nxt = s.next_after(t, 0.0)
            assert nxt > t
            t = nxt

    def test_run_until_terminates_on_adversarial_intervals(self):
        clock = SimClock(0.0)
        sched = Scheduler(clock)
        fired = []
        sched.every(0.9012051940133423, fired.append)
        sched.every(19.630669874839654, fired.append)
        sched.run_until(4.640786921020104 * DAY)
        assert len(fired) <= 8
