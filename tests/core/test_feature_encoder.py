"""Tests for the Feature Encoder component (§III-B)."""

import numpy as np
import pytest

from repro.core.config import DEFAULT_FEATURE_SET
from repro.core.feature_encoder import FeatureEncoder
from repro.nlp.embedder import SentenceEmbedder


RECORD = {
    "user_name": "riken-ra0042",
    "job_name": "run_cavity.sh",
    "cores_req": 192,
    "nodes_req": 4,
    "environment": "gcc-12.2/openmpi",
    "freq_req_ghz": 2.0,
    "duration": 99.0,  # extra fields are ignored
}


class TestFeatureString:
    def test_selected_and_ordered(self):
        enc = FeatureEncoder()
        s = enc.feature_string(RECORD)
        assert s == "riken-ra0042,run_cavity.sh,192,4,gcc-12.2/openmpi,2"

    def test_frequency_distinguishes_modes(self):
        enc = FeatureEncoder()
        a = enc.feature_string({**RECORD, "freq_req_ghz": 2.0})
        b = enc.feature_string({**RECORD, "freq_req_ghz": 2.2})
        assert a != b

    def test_custom_feature_set(self):
        enc = FeatureEncoder(feature_set=("job_name", "cores_req"))
        assert enc.feature_string(RECORD) == "run_cavity.sh,192"

    def test_missing_feature_raises(self):
        enc = FeatureEncoder()
        with pytest.raises(KeyError, match="job_name"):
            enc.feature_string({"user_name": "x"})

    def test_empty_feature_set_rejected(self):
        with pytest.raises(ValueError):
            FeatureEncoder(feature_set=())

    def test_default_feature_set_is_papers(self):
        # §V-A: the feature set of [4] + frequency requested
        assert DEFAULT_FEATURE_SET == (
            "user_name", "job_name", "cores_req", "nodes_req",
            "environment", "freq_req_ghz",
        )


class TestEncode:
    def test_shape_and_dtype(self):
        enc = FeatureEncoder()
        X = enc.encode([RECORD, RECORD])
        assert X.shape == (2, 384)
        assert X.dtype == np.float32

    def test_identical_records_identical_rows(self):
        enc = FeatureEncoder()
        X = enc.encode([RECORD, dict(RECORD)])
        assert np.array_equal(X[0], X[1])

    def test_empty_input(self):
        enc = FeatureEncoder()
        assert enc.encode([]).shape == (0, 384)

    def test_custom_embedder_dim(self):
        enc = FeatureEncoder(embedder=SentenceEmbedder(dim=64))
        assert enc.dim == 64
        assert enc.encode([RECORD]).shape == (1, 64)


class TestEncodeTrace:
    def test_matches_record_path(self, tiny_trace):
        enc = FeatureEncoder()
        sub = tiny_trace.select(np.arange(20))
        X_trace = enc.encode_trace(sub)
        X_records = enc.encode([r.as_dict() for r in sub.iter_rows()])
        assert np.allclose(X_trace, X_records)

    def test_strings_match_row_construction(self, tiny_trace):
        enc = FeatureEncoder()
        sub = tiny_trace.select(np.arange(10))
        strings = enc.feature_strings_from_trace(sub)
        for i, r in enumerate(sub.iter_rows()):
            assert strings[i] == enc.feature_string(r.as_dict())

    def test_missing_column_raises(self, tiny_trace):
        enc = FeatureEncoder(feature_set=("no_such_column",))
        with pytest.raises(KeyError):
            enc.encode_trace(tiny_trace)


class TestIDFIntegration:
    def test_partial_fit_changes_encodings(self):
        enc = FeatureEncoder(embedder=SentenceEmbedder(dim=64, use_idf=True))
        before = enc.encode([RECORD]).copy()
        enc.partial_fit_idf([RECORD] * 30 + [{**RECORD, "job_name": "rare.sh"}])
        after = enc.encode([RECORD])
        assert not np.allclose(before, after)
