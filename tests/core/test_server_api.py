"""Tests for the MCBound HTTP API (§III-E)."""

import pytest

from repro.core import MCBound, MCBoundConfig, build_app, load_trace_into_db
from repro.fugaku.workload import DAY_SECONDS
from repro.web import TestClient


@pytest.fixture()
def client(tiny_trace, tmp_path):
    cfg = MCBoundConfig(
        algorithm="KNN",
        model_params={"n_neighbors": 3, "algorithm": "brute"},
        alpha_days=20.0,
    )
    fw = MCBound(cfg, load_trace_into_db(tiny_trace), model_store_root=tmp_path / "m")
    return TestClient(build_app(fw))


NOW = 40 * DAY_SECONDS


class TestHealthAndConfig:
    def test_health(self, client):
        body = client.get("/health").json()
        assert body["status"] == "ok"
        assert body["model_trained"] is False
        assert body["algorithm"] == "KNN"

    def test_config(self, client):
        body = client.get("/config").json()
        assert body["algorithm"] == "KNN"
        assert body["feature_set"][0] == "user_name"

    def test_ridge(self, client):
        body = client.get("/ridge").json()
        assert body["ridge_point_flops_per_byte"] == pytest.approx(3.30, abs=0.01)


class TestTrainEndpoint:
    def test_train_then_health(self, client):
        r = client.post("/train", json_body={"now": NOW})
        assert r.status == 201
        body = r.json()
        assert body["n_jobs"] > 0
        assert body["version"] == 1
        assert client.get("/health").json()["model_trained"] is True

    def test_train_missing_now(self, client):
        assert client.post("/train", json_body={}).status == 400

    def test_train_empty_window_conflict(self, client):
        r = client.post("/train", json_body={"now": -999 * DAY_SECONDS, "alpha_days": 1})
        assert r.status == 409

    def test_alpha_override(self, client):
        r = client.post("/train", json_body={"now": NOW, "alpha_days": 5})
        assert r.json()["window"][0] == NOW - 5 * DAY_SECONDS


class TestPredictEndpoint:
    def test_predict_before_training_503(self, client):
        r = client.post("/predict", json_body={"job_id": 1})
        assert r.status == 503

    def test_predict_by_job_id(self, client):
        client.post("/train", json_body={"now": NOW})
        r = client.post("/predict", json_body={"job_id": 1})
        assert r.status == 200
        body = r.json()
        assert body["labels"][0] in (0, 1)
        assert body["label_names"][0] in ("memory-bound", "compute-bound")

    def test_predict_window(self, client):
        client.post("/train", json_body={"now": NOW})
        r = client.post(
            "/predict", json_body={"start_time": NOW, "end_time": NOW + DAY_SECONDS}
        )
        body = r.json()
        assert len(body["job_ids"]) == len(body["labels"]) > 0

    def test_predict_raw_records(self, client):
        client.post("/train", json_body={"now": NOW})
        job = {
            "user_name": "riken-ra0001", "job_name": "run.sh", "cores_req": 48,
            "nodes_req": 1, "environment": "gcc", "freq_req_ghz": 2.0,
        }
        r = client.post("/predict", json_body={"jobs": [job]})
        assert r.status == 200
        assert len(r.json()["labels"]) == 1

    def test_predict_unknown_job_404(self, client):
        client.post("/train", json_body={"now": NOW})
        assert client.post("/predict", json_body={"job_id": 99999999}).status == 404

    def test_predict_bad_body(self, client):
        client.post("/train", json_body={"now": NOW})
        assert client.post("/predict", json_body={"bogus": 1}).status == 400
        assert client.post("/predict", json_body={"jobs": "notalist"}).status == 400


class TestCharacterizeEndpoint:
    def test_window(self, client):
        r = client.post(
            "/characterize", json_body={"start_time": 0.0, "end_time": 5 * DAY_SECONDS}
        )
        body = r.json()
        assert len(body["labels"]) > 0
        assert set(body["labels"]) <= {0, 1}

    def test_records_with_counters(self, client):
        job = {"perf2": 1e15, "perf3": 1e15, "perf4": 1e10, "perf5": 1e10,
               "duration": 100.0, "nodes_alloc": 1}
        r = client.post("/characterize", json_body={"jobs": [job]})
        assert r.status == 200

    def test_bad_body(self, client):
        assert client.post("/characterize", json_body={}).status == 400


class TestModelsEndpoint:
    def test_lists_versions(self, client):
        assert client.get("/models").json() == {
            "versions": [], "latest": None, "persistent": True,
        }
        client.post("/train", json_body={"now": NOW})
        client.post("/train", json_body={"now": NOW + DAY_SECONDS})
        body = client.get("/models").json()
        assert body["versions"] == [1, 2]
        assert body["latest"] == 2
