"""Property-based tests of the cron schedule algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import CronSchedule, Scheduler, SimClock

DAY = 86_400.0

_interval = st.floats(min_value=0.25, max_value=20.0)
_offset = st.floats(min_value=0.0, max_value=10.0)
_span = st.floats(min_value=0.0, max_value=40.0)


class TestCronScheduleProperties:
    @given(interval=_interval, offset=_offset, span=_span)
    @settings(max_examples=150, deadline=None)
    def test_occurrence_count_matches_arithmetic(self, interval, offset, span):
        s = CronSchedule(interval, offset)
        occ = s.occurrences(0.0, span * DAY)
        # occurrences are offset + k*interval for k = 0.. while < span
        expected = 0
        t = offset
        while t < span - 1e-12:
            expected += 1
            t += interval
        assert abs(len(occ) - expected) <= 1  # float-edge tolerance

    @given(interval=_interval, offset=_offset, span=_span)
    @settings(max_examples=150, deadline=None)
    def test_occurrences_sorted_and_spaced(self, interval, offset, span):
        s = CronSchedule(interval, offset)
        occ = s.occurrences(0.0, span * DAY)
        for a, b in zip(occ, occ[1:]):
            assert b - a >= interval * DAY * 0.999

    @given(interval=_interval, offset=_offset, t=st.floats(-5.0, 50.0))
    @settings(max_examples=200, deadline=None)
    def test_next_after_is_strictly_after(self, interval, offset, t):
        s = CronSchedule(interval, offset)
        nxt = s.next_after(t * DAY, 0.0)
        assert nxt > t * DAY
        # and it is on the grid
        k = (nxt - offset * DAY) / (interval * DAY)
        assert abs(k - round(k)) < 1e-6

    @given(
        intervals=st.lists(_interval, min_size=1, max_size=4),
        span=st.floats(min_value=1.0, max_value=15.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_scheduler_log_is_time_ordered(self, intervals, span):
        clock = SimClock(0.0)
        sched = Scheduler(clock)
        for iv in intervals:
            sched.every(iv, lambda t: None)
        log = sched.run_until(span * DAY)
        times = [t for t, _ in log]
        assert times == sorted(times)
        assert clock.now == span * DAY
        assert all(t < span * DAY for t in times)
