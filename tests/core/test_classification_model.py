"""Tests for the Classification Model component (§III-D)."""

import numpy as np
import pytest

from repro.core.classification_model import ClassificationModel
from repro.mlcore.base import NotFittedError


def data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 8)).astype(np.float32)
    y = (X[:, 0] > 0).astype(int)
    return X, y


class TestConstruction:
    def test_knn_and_rf_registered(self):
        names = ClassificationModel.registered_algorithms()
        assert "KNN" in names and "RF" in names

    def test_case_insensitive(self):
        m = ClassificationModel("rf", n_estimators=2)
        assert m.algorithm == "RF"

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            ClassificationModel("SVM")

    def test_params_forwarded(self):
        m = ClassificationModel("KNN", n_neighbors=7)
        assert m.model.n_neighbors == 7

    def test_knn_backend_param_does_not_collide(self):
        m = ClassificationModel("KNN", algorithm="brute")
        assert m.model.algorithm == "brute"


class TestTrainInfer:
    def test_paper_contract_inference_requires_training(self):
        m = ClassificationModel("RF", n_estimators=2)
        with pytest.raises(NotFittedError):
            m.inference(np.zeros((1, 8), dtype=np.float32))

    def test_training_then_inference(self):
        X, y = data()
        m = ClassificationModel("RF", n_estimators=5, random_state=0)
        assert not m.is_trained
        m.training(X, y)
        assert m.is_trained
        pred = m.inference(X)
        assert pred.shape == (len(X),)
        assert float(np.mean(pred == y)) > 0.9

    def test_knn_pipeline(self):
        X, y = data()
        m = ClassificationModel("KNN", n_neighbors=3).training(X, y)
        assert float(np.mean(m.inference(X) == y)) > 0.9

    def test_proba(self):
        X, y = data()
        m = ClassificationModel("RF", n_estimators=5, random_state=0).training(X, y)
        p = m.inference_proba(X[:10])
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_proba_requires_training(self):
        with pytest.raises(NotFittedError):
            ClassificationModel("KNN").inference_proba(np.zeros((1, 2)))


class TestRegistration:
    def test_register_custom_algorithm(self):
        class Majority:
            def fit(self, X, y):
                vals, counts = np.unique(y, return_counts=True)
                self.winner = vals[np.argmax(counts)]
                return self

            def predict(self, X):
                return np.full(len(X), self.winner)

        name = "MAJORITY_TEST"
        if name not in ClassificationModel.registered_algorithms():
            ClassificationModel.register(name, lambda **kw: Majority())
        X, y = data()
        m = ClassificationModel(name).training(X, y)
        assert set(m.inference(X)) == {int(np.bincount(y).argmax())}

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            ClassificationModel.register("RF", lambda **kw: None)
