"""Tests for the framework configuration."""

import pytest

from repro.core.config import DEFAULT_FEATURE_SET, MCBoundConfig


class TestDefaults:
    def test_fugaku_ceilings(self):
        cfg = MCBoundConfig()
        assert cfg.peak_gflops_node == 3380.0
        assert cfg.peak_membw_gbs == 1024.0

    def test_paper_schedule_defaults(self):
        cfg = MCBoundConfig()
        assert cfg.alpha_days == 15.0  # RF's best (§V-C.d)
        assert cfg.beta_days == 1.0

    def test_embedding_dim_matches_sbert(self):
        assert MCBoundConfig().embedding_dim == 384


class TestValidation:
    def test_negative_ceiling(self):
        with pytest.raises(ValueError):
            MCBoundConfig(peak_gflops_node=-1.0)

    def test_empty_features(self):
        with pytest.raises(ValueError):
            MCBoundConfig(feature_set=())

    def test_bad_alpha_beta(self):
        with pytest.raises(ValueError):
            MCBoundConfig(alpha_days=0)
        with pytest.raises(ValueError):
            MCBoundConfig(beta_days=-1)


class TestSerialization:
    def test_to_dict_json_friendly(self):
        import json

        cfg = MCBoundConfig(model_params={"n_estimators": 5})
        d = cfg.to_dict()
        json.dumps(d)  # must not raise
        assert d["feature_set"] == list(DEFAULT_FEATURE_SET)
        assert d["model_params"]["n_estimators"] == 5
