"""Tests for the Data Fetcher component (§III-A)."""

import numpy as np
import pytest

from repro.core.data_fetcher import DataFetcher, load_trace_into_db
from repro.fugaku.workload import DAY_SECONDS
from repro.storage.engine import Database


@pytest.fixture()
def fetcher(jobs_db):
    return DataFetcher(jobs_db)


class TestLoadTrace:
    def test_creates_table_and_rows(self, tiny_trace):
        db = load_trace_into_db(tiny_trace)
        assert "jobs" in db.table_names
        assert len(db.table("jobs")) == len(tiny_trace)

    def test_appends_to_existing_db(self, tiny_trace):
        db = load_trace_into_db(tiny_trace)
        load_trace_into_db(tiny_trace, db)
        assert len(db.table("jobs")) == 2 * len(tiny_trace)


class TestFetchByJobId:
    def test_single_job(self, fetcher, tiny_trace):
        records = fetcher.fetch(job_id=1)
        assert len(records) == 1
        assert records[0]["job_id"] == 1
        assert records[0]["user_name"] == tiny_trace["user_name"][0]

    def test_missing_job_empty(self, fetcher):
        assert fetcher.fetch(job_id=10_000_000) == []

    def test_all_features_present(self, fetcher):
        record = fetcher.fetch(job_id=1)[0]
        for field in ("user_name", "job_name", "cores_req", "nodes_req",
                      "environment", "freq_req_ghz", "perf2", "perf5", "duration"):
            assert field in record


class TestFetchByWindow:
    def test_window_matches_trace_slice(self, fetcher, tiny_trace):
        start, end = 10 * DAY_SECONDS, 12 * DAY_SECONDS
        records = fetcher.fetch(start_time=start, end_time=end)
        expected = tiny_trace.between(start, end)
        assert len(records) == len(expected)

    def test_ordered_by_submit_time(self, fetcher):
        records = fetcher.fetch(start_time=0.0, end_time=5 * DAY_SECONDS)
        times = [r["submit_time"] for r in records]
        assert times == sorted(times)

    def test_half_open_interval(self, fetcher, tiny_trace):
        t0 = float(tiny_trace["submit_time"][0])
        records = fetcher.fetch(start_time=t0, end_time=t0)
        assert records == []

    def test_empty_window(self, fetcher):
        assert fetcher.fetch(start_time=1e12, end_time=2e12) == []

    def test_count(self, fetcher, tiny_trace):
        n = fetcher.fetch_count(0.0, 200 * DAY_SECONDS)
        assert n == len(tiny_trace)


class TestArgumentValidation:
    def test_both_modes_rejected(self, fetcher):
        with pytest.raises(ValueError):
            fetcher.fetch(job_id=1, start_time=0.0, end_time=1.0)

    def test_neither_mode_rejected(self, fetcher):
        with pytest.raises(ValueError):
            fetcher.fetch()

    def test_partial_window_rejected(self, fetcher):
        with pytest.raises(ValueError):
            fetcher.fetch(start_time=0.0)

    def test_inverted_window_rejected(self, fetcher):
        with pytest.raises(ValueError):
            fetcher.fetch(start_time=10.0, end_time=1.0)

    def test_bad_table_name_rejected(self):
        with pytest.raises(ValueError):
            DataFetcher(Database(), table="jobs; DROP")
