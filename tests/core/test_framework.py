"""Tests for the MCBound facade."""

import numpy as np
import pytest

from repro.core import MCBound, MCBoundConfig, load_trace_into_db
from repro.fugaku.workload import DAY_SECONDS
from repro.mlcore.base import NotFittedError


def make_framework(trace, tmp_path=None, **cfg_over):
    cfg = MCBoundConfig(
        algorithm=cfg_over.pop("algorithm", "RF"),
        model_params=cfg_over.pop(
            "model_params",
            {"n_estimators": 5, "max_depth": 8, "splitter": "hist", "random_state": 0},
        ),
        **cfg_over,
    )
    db = load_trace_into_db(trace)
    root = str(tmp_path / "models") if tmp_path is not None else None
    return MCBound(cfg, db, model_store_root=root)


@pytest.fixture(scope="module")
def now():
    return 40 * DAY_SECONDS


class TestTraining:
    def test_train_summary(self, tiny_trace, now):
        fw = make_framework(tiny_trace)
        summary = fw.train(now, alpha_days=20)
        assert summary["n_jobs"] > 0
        assert set(summary["class_counts"]) <= {0, 1}
        assert summary["window"] == (now - 20 * DAY_SECONDS, now)
        assert fw.model is not None

    def test_default_alpha_from_config(self, tiny_trace, now):
        fw = make_framework(tiny_trace, alpha_days=10.0)
        summary = fw.train(now)
        assert summary["window"][0] == now - 10 * DAY_SECONDS

    def test_empty_window_rejected(self, tiny_trace):
        fw = make_framework(tiny_trace)
        with pytest.raises(ValueError, match="no jobs"):
            fw.train(-100 * DAY_SECONDS, alpha_days=1)

    def test_publishes_to_store(self, tiny_trace, now, tmp_path):
        fw = make_framework(tiny_trace, tmp_path)
        s1 = fw.train(now, alpha_days=15)
        s2 = fw.train(now + DAY_SECONDS, alpha_days=15)
        assert (s1["version"], s2["version"]) == (1, 2)

    def test_label_cache_reused(self, tiny_trace, now):
        fw = make_framework(tiny_trace)
        fw.train(now, alpha_days=15)
        cached = len(fw.label_cache)
        assert cached > 0
        fw.train(now, alpha_days=15)  # same window: nothing new to label
        assert len(fw.label_cache) == cached


class TestInference:
    def test_predict_before_training_raises(self, tiny_trace):
        fw = make_framework(tiny_trace)
        with pytest.raises(NotFittedError):
            fw.predict_job(1)

    def test_predict_window(self, tiny_trace, now):
        fw = make_framework(tiny_trace)
        fw.train(now, alpha_days=20)
        ids, labels = fw.predict_window(now, now + DAY_SECONDS)
        assert ids.shape == labels.shape
        assert set(labels.tolist()) <= {0, 1}

    def test_predict_single_job(self, tiny_trace, now):
        fw = make_framework(tiny_trace)
        fw.train(now, alpha_days=20)
        ids, _ = fw.predict_window(now, now + DAY_SECONDS)
        assert fw.predict_job(int(ids[0])) in (0, 1)

    def test_predict_unknown_job(self, tiny_trace, now):
        fw = make_framework(tiny_trace)
        fw.train(now, alpha_days=20)
        with pytest.raises(KeyError):
            fw.predict_job(99_999_999)

    def test_predictions_reasonably_accurate(self, tiny_trace, now):
        fw = make_framework(tiny_trace)
        fw.train(now, alpha_days=30)
        ids, pred = fw.predict_window(now, now + 3 * DAY_SECONDS)
        _, truth = fw.characterize_window(now, now + 3 * DAY_SECONDS)
        assert float(np.mean(pred == truth)) > 0.6

    def test_model_reloaded_from_store(self, tiny_trace, now, tmp_path):
        fw = make_framework(tiny_trace, tmp_path)
        fw.train(now, alpha_days=20)
        # a fresh framework instance finds the persisted model
        fw2 = make_framework(tiny_trace, tmp_path)
        assert fw2.model is None
        label = fw2.predict_job(1)
        assert label in (0, 1)
        assert fw2.model is not None


class TestCharacterization:
    def test_characterize_window(self, tiny_trace, characterizer):
        fw = make_framework(tiny_trace)
        ids, labels = fw.characterize_window(0.0, 10 * DAY_SECONDS)
        sub = tiny_trace.between(0.0, 10 * DAY_SECONDS)
        expected = characterizer.labels_from_trace(sub)
        # DB returns jobs ordered by submit time, same as the trace slice
        assert np.array_equal(np.sort(ids), np.sort(sub["job_id"]))
        assert np.array_equal(labels, expected)


class TestPredictMemo:
    """The §V-C.c serve-path memo: batches of identical jobs hit the LRU."""

    def test_memo_matches_the_unmemoized_path(self, tiny_trace, now):
        memo_fw = make_framework(tiny_trace)
        plain_fw = make_framework(tiny_trace, predict_memo=0)
        memo_fw.train(now, alpha_days=20)
        plain_fw.train(now, alpha_days=20)
        records = memo_fw.fetcher.fetch(start_time=now, end_time=now + DAY_SECONDS)
        expected = plain_fw.predict_records(records)
        # twice: the second call is served from the memo
        first = memo_fw.predict_records(records)
        second = memo_fw.predict_records(records)
        assert np.array_equal(first, expected)
        assert np.array_equal(second, expected)
        assert len(memo_fw._predict_memo) > 0

    def test_repeats_within_a_call_encode_once(self, tiny_trace, now):
        fw = make_framework(tiny_trace)
        fw.train(now, alpha_days=20)
        records = fw.fetcher.fetch(start_time=now, end_time=now + DAY_SECONDS)
        batch = [records[0]] * 5 + [records[1]] * 3
        labels = fw.predict_records(batch)
        assert np.unique(labels[:5]).size == 1
        assert np.unique(labels[5:]).size == 1
        # only the distinct submissions were memoized
        distinct = {fw.encoder.feature_string(r) for r in batch}
        assert set(fw._predict_memo) == distinct

    def test_memo_is_bounded(self, tiny_trace, now):
        fw = make_framework(tiny_trace, predict_memo=2)
        fw.train(now, alpha_days=20)
        records = fw.fetcher.fetch(start_time=now, end_time=now + 2 * DAY_SECONDS)
        assert len({fw.encoder.feature_string(r) for r in records}) > 2
        fw.predict_records(records)
        assert len(fw._predict_memo) <= 2

    def test_new_model_invalidates_the_memo(self, tiny_trace, now):
        fw = make_framework(tiny_trace)
        fw.train(now, alpha_days=20)
        records = fw.fetcher.fetch(start_time=now, end_time=now + DAY_SECONDS)
        fw.predict_records(records)
        assert fw._memo_model is fw.model
        stale = fw.model
        fw.train(now + DAY_SECONDS, alpha_days=20)
        assert fw.model is not stale
        labels = fw.predict_records(records)
        assert fw._memo_model is fw.model
        plain = make_framework(tiny_trace, predict_memo=0)
        plain.train(now + DAY_SECONDS, alpha_days=20)
        assert np.array_equal(labels, plain.predict_records(records))

    def test_cap_zero_disables_the_memo(self, tiny_trace, now):
        fw = make_framework(tiny_trace, predict_memo=0)
        fw.train(now, alpha_days=20)
        records = fw.fetcher.fetch(start_time=now, end_time=now + DAY_SECONDS)
        fw.predict_records(records)
        assert len(fw._predict_memo) == 0


class TestStreamingTrain:
    """train() folds batches into a bounded reservoir (# streaming:)."""

    def test_small_window_matches_materialized_fit(self, tiny_trace, now):
        """Windows under the reservoir use every row in submit order, so
        the streamed fit equals a manual fit on the materialized window."""
        from repro.core.classification_model import ClassificationModel

        fw = make_framework(tiny_trace)
        summary = fw.train(now, alpha_days=20)
        start = now - 20 * DAY_SECONDS
        records = fw.fetcher.fetch(start_time=start, end_time=now)
        assert summary["n_jobs"] == len(records) <= fw.config.train_reservoir
        ref = make_framework(tiny_trace, predict_memo=0)
        strings = [ref.encoder.feature_string(r) for r in records]
        X = ref.encoder.embedder.encode(strings)
        y = ref.characterizer.labels_from_records(records)
        manual = ClassificationModel(
            fw.config.algorithm, **fw.config.model_params
        )
        manual.training(X, y)
        test = fw.fetcher.fetch(start_time=now, end_time=now + DAY_SECONDS)
        Xt = ref.encoder.embedder.encode(
            [ref.encoder.feature_string(r) for r in test]
        )
        assert np.array_equal(
            fw.predict_records(test), np.asarray(manual.inference(Xt))
        )

    def test_reservoir_bounds_the_fit(self, tiny_trace, now):
        fw = make_framework(tiny_trace, train_reservoir=50)
        summary = fw.train(now, alpha_days=30)
        assert summary["n_jobs"] > 50  # the window really exceeded the cap
        assert fw.model is not None
        records = fw.fetcher.fetch(start_time=now, end_time=now + DAY_SECONDS)
        labels = fw.predict_records(records)
        assert set(labels.tolist()) <= {0, 1}

    def test_class_counts_cover_the_whole_window(self, tiny_trace, now):
        fw = make_framework(tiny_trace, train_reservoir=50)
        summary = fw.train(now, alpha_days=30)
        assert sum(summary["class_counts"].values()) == summary["n_jobs"]
