"""Tests for the Job Characterizer component (§III-C)."""

import numpy as np
import pytest

from repro.core.job_characterizer import FugakuCounterTransform, JobCharacterizer
from repro.fugaku.counters import counters_from_flops_bytes
from repro.roofline.characterize import COMPUTE_BOUND, MEMORY_BOUND


class TestInitialization:
    def test_default_is_fugaku(self):
        ch = JobCharacterizer()
        assert ch.ridge_point == pytest.approx(3.30, abs=0.01)

    def test_custom_system(self):
        ch = JobCharacterizer(1000.0, 100.0)
        assert ch.ridge_point == pytest.approx(10.0)

    def test_label_names(self):
        assert JobCharacterizer.LABEL_NAMES == ("memory-bound", "compute-bound")
        assert JobCharacterizer.MEMORY_BOUND == 0
        assert JobCharacterizer.COMPUTE_BOUND == 1


class TestGenerateLabels:
    def test_paper_method_signature(self):
        """generate_labels(#flops, duration, #nodes_alloc, #moved_memory_bytes)."""
        ch = JobCharacterizer()
        labels = ch.generate_labels(
            np.array([1e12, 1e14]),
            np.array([100.0, 100.0]),
            np.array([1, 1]),
            np.array([1e12, 1e12]),
        )
        assert labels.tolist() == [MEMORY_BOUND, COMPUTE_BOUND]

    def test_characterize_returns_coordinates(self):
        ch = JobCharacterizer()
        p, mb, op, lab = ch.characterize(1e12, 10.0, 2, 5e11)
        assert np.asarray(p) == pytest.approx(50.0)
        assert np.asarray(mb) == pytest.approx(25.0)
        assert np.asarray(op) == pytest.approx(2.0)
        assert lab == MEMORY_BOUND


class TestCounterTransform:
    def test_fugaku_equations(self):
        tr = FugakuCounterTransform()
        flops, moved = tr(10.0, 5.0, 12.0, 0.0)
        assert flops == 30.0  # 10 + 5*4
        assert moved == pytest.approx(256.0)  # 12*256/12

    def test_labels_from_records_roundtrip(self):
        """Counters synthesized at a known roofline point get the right label."""
        ch = JobCharacterizer()
        records = []
        for op, want in ((0.5, MEMORY_BOUND), (50.0, COMPUTE_BOUND)):
            flops = 1e12
            moved = flops / op
            p2, p3, p4, p5 = counters_from_flops_bytes(flops, moved)
            records.append(
                {"perf2": p2, "perf3": p3, "perf4": p4, "perf5": p5,
                 "duration": 100.0, "nodes_alloc": 2}
            )
        labels = ch.labels_from_records(records)
        assert labels.tolist() == [MEMORY_BOUND, COMPUTE_BOUND]

    def test_empty_records(self):
        assert JobCharacterizer().labels_from_records([]).size == 0


class TestTraceLevel:
    def test_labels_match_record_path(self, tiny_trace, characterizer):
        sub = tiny_trace.select(np.arange(50))
        fast = characterizer.labels_from_trace(sub)
        slow = characterizer.labels_from_records([r.as_dict() for r in sub.iter_rows()])
        assert np.array_equal(fast, slow)

    def test_roofline_coordinates_consistent(self, tiny_trace, characterizer):
        p, mb, op, lab = characterizer.roofline_coordinates(tiny_trace)
        assert p.shape == (len(tiny_trace),)
        # op = p / mb by Equation 3
        assert np.allclose(op, p / mb, rtol=1e-9)
        # labels consistent with ridge rule
        assert np.array_equal(lab == COMPUTE_BOUND, op > characterizer.ridge_point)

    def test_labels_deterministic(self, tiny_trace, characterizer):
        a = characterizer.labels_from_trace(tiny_trace)
        b = characterizer.labels_from_trace(tiny_trace)
        assert np.array_equal(a, b)
