"""Tests for the MCBound model store."""

import numpy as np
import pytest

from repro.core.classification_model import ClassificationModel
from repro.core.registry import ModelStore
from repro.nlp.embedder import SentenceEmbedder


def trained_model(algorithm="KNN", **params):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(60, 6)).astype(np.float32)
    y = (X[:, 0] > 0).astype(int)
    defaults = {"n_neighbors": 3} if algorithm == "KNN" else {"n_estimators": 3}
    defaults.update(params)
    return ClassificationModel(algorithm, **defaults).training(X, y), X


class TestPublishLoad:
    def test_roundtrip_predictions(self, tmp_path):
        store = ModelStore(tmp_path)
        model, X = trained_model()
        v = store.publish(model)
        assert v == 1
        loaded, meta = store.load()
        assert np.array_equal(loaded.inference(X), model.inference(X))
        assert meta["algorithm"] == "KNN"

    def test_versions_increment(self, tmp_path):
        store = ModelStore(tmp_path)
        model, _ = trained_model()
        assert store.publish(model) == 1
        assert store.publish(model) == 2
        assert store.latest_version == 2

    def test_metadata_fields(self, tmp_path):
        store = ModelStore(tmp_path)
        model, _ = trained_model()
        emb = SentenceEmbedder(dim=32)
        store.publish(
            model, embedder=emb, trained_at=123.0, window=(0.0, 100.0),
            extra={"alpha": 30},
        )
        _, meta = store.load()
        assert meta["trained_at"] == 123.0
        assert meta["window"] == [0.0, 100.0]
        assert meta["extra"] == {"alpha": 30}
        assert meta["embedder"]["dim"] == 32

    def test_load_embedder(self, tmp_path):
        store = ModelStore(tmp_path)
        model, _ = trained_model()
        emb = SentenceEmbedder(dim=48, seed=5)
        store.publish(model, embedder=emb)
        emb2 = store.load_embedder()
        assert np.array_equal(emb.encode("hello"), emb2.encode("hello"))

    def test_load_embedder_absent(self, tmp_path):
        store = ModelStore(tmp_path)
        model, _ = trained_model()
        store.publish(model)
        assert store.load_embedder() is None

    def test_empty_store_raises(self, tmp_path):
        store = ModelStore(tmp_path)
        with pytest.raises(FileNotFoundError):
            store.load()
        with pytest.raises(FileNotFoundError):
            store.load_embedder()

    def test_loaded_model_is_trained(self, tmp_path):
        store = ModelStore(tmp_path)
        model, X = trained_model("RF", random_state=0)
        store.publish(model)
        loaded, _ = store.load()
        assert loaded.is_trained
        assert loaded.algorithm == "RF"
