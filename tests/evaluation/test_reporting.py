"""Tests for tables, ASCII plots and CSV dumps."""

import pytest

from repro.evaluation.reporting import ascii_series, format_table, results_to_csv
from repro.evaluation.timing import Timer, time_call


class TestFormatTable:
    def test_alignment_and_rows(self):
        text = format_table(
            ["alpha", "F1"], [[15, 0.9012], [30, 0.8899]], title="Fig 6"
        )
        lines = text.splitlines()
        assert lines[0] == "Fig 6"
        assert "alpha" in lines[1]
        assert "0.9012" in text
        assert len(lines) == 5

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text


class TestAsciiSeries:
    def test_contains_points_and_range(self):
        out = ascii_series([1, 2, 3], [0.1, 0.5, 0.9], label="F1")
        assert out.count("*") == 3
        assert "[0.1, 0.9]" in out

    def test_flat_series(self):
        out = ascii_series([1, 2], [0.5, 0.5])
        assert "*" in out

    def test_explicit_range(self):
        out = ascii_series([1, 2], [0.2, 0.4], y_range=(0.0, 1.0))
        assert "[0, 1]" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_series([], [])


class TestCSV:
    def test_roundtrip(self, tmp_path):
        p = results_to_csv(tmp_path / "out.csv", ["a", "b"], [[1, "x"], [2.5, "y,z"]])
        lines = p.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"
        assert lines[2] == '2.5,"y,z"'

    def test_creates_parent_dirs(self, tmp_path):
        p = results_to_csv(tmp_path / "deep" / "out.csv", ["a"], [[1]])
        assert p.exists()


class TestTiming:
    def test_timer_context(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0

    def test_time_call(self):
        out, dt = time_call(lambda a, b: a + b, 2, b=3)
        assert out == 5
        assert dt >= 0


class TestAsciiHeatmap:
    def test_renders_mass(self):
        import numpy as np

        from repro.evaluation.reporting import ascii_heatmap

        counts = np.zeros((30, 20))
        counts[5, 5] = 100
        out = ascii_heatmap(counts, label="demo")
        assert out.startswith("demo")
        assert "@" in out  # the hotspot
        assert out.count("\n") == 17  # label + 16 rows + axis line

    def test_empty_rejected(self):
        import numpy as np
        import pytest

        from repro.evaluation.reporting import ascii_heatmap

        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((0, 3)))

    def test_total_shading_monotone(self):
        import numpy as np

        from repro.evaluation.reporting import ascii_heatmap

        light = ascii_heatmap(np.ones((10, 10)))
        heavy = ascii_heatmap(np.ones((10, 10)) * 1000)
        assert light != "" and heavy != ""
