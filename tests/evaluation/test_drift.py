"""Tests for drift detection and adaptive retraining."""

import numpy as np
import pytest

from repro.evaluation.drift import (
    AdaptiveRetrainingPolicy,
    EmbeddingDriftDetector,
    population_stability_index,
)


class TestPSI:
    def test_identical_distributions_zero(self):
        h = np.array([10, 20, 30, 40])
        assert population_stability_index(h, h) == pytest.approx(0.0, abs=1e-9)

    def test_scale_invariant(self):
        a = np.array([10, 20, 30])
        assert population_stability_index(a, a * 7) == pytest.approx(0.0, abs=1e-9)

    def test_shifted_distribution_positive(self):
        a = np.array([50, 30, 15, 5])
        b = np.array([5, 15, 30, 50])
        assert population_stability_index(a, b) > 0.25

    def test_symmetric(self):
        a = np.array([40, 30, 20, 10])
        b = np.array([10, 20, 30, 40])
        assert population_stability_index(a, b) == pytest.approx(
            population_stability_index(b, a)
        )

    def test_zero_bins_handled(self):
        a = np.array([100, 0, 0])
        b = np.array([0, 0, 100])
        psi = population_stability_index(a, b)
        assert np.isfinite(psi) and psi > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            population_stability_index([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            population_stability_index([0, 0], [1, 1])


class TestEmbeddingDriftDetector:
    @pytest.fixture(scope="class")
    def reference(self):
        rng = np.random.default_rng(0)
        return rng.normal(size=(500, 32))

    def test_same_distribution_low_score(self, reference):
        det = EmbeddingDriftDetector(reference)
        rng = np.random.default_rng(1)
        batch = rng.normal(size=(300, 32))
        assert det.score(batch) < 0.1

    def test_shifted_distribution_high_score(self, reference):
        det = EmbeddingDriftDetector(reference)
        rng = np.random.default_rng(2)
        batch = rng.normal(loc=2.0, size=(300, 32))
        assert det.score(batch) > 0.25

    def test_reference_scores_itself_near_zero(self, reference):
        det = EmbeddingDriftDetector(reference)
        assert det.score(reference) < 0.02

    def test_empty_batch_zero(self, reference):
        det = EmbeddingDriftDetector(reference)
        assert det.score(np.empty((0, 32))) == 0.0

    def test_dim_mismatch(self, reference):
        det = EmbeddingDriftDetector(reference)
        with pytest.raises(ValueError):
            det.score(np.zeros((5, 7)))

    def test_tiny_reference_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingDriftDetector(np.zeros((3, 4)), n_bins=10)

    def test_deterministic_directions(self, reference):
        rng = np.random.default_rng(3)
        batch = rng.normal(size=(100, 32))
        a = EmbeddingDriftDetector(reference).score(batch)
        b = EmbeddingDriftDetector(reference).score(batch)
        assert a == b


class TestPolicy:
    def test_deadline_forces_retrain(self):
        p = AdaptiveRetrainingPolicy(max_days_between=5)
        assert p.should_retrain(0.0, 5.0, 100)
        assert not p.should_retrain(0.0, 4.0, 100)

    def test_drift_triggers(self):
        p = AdaptiveRetrainingPolicy(psi_threshold=0.15, max_days_between=99)
        assert p.should_retrain(0.2, 1.0, 100)
        assert not p.should_retrain(0.1, 1.0, 100)

    def test_small_batches_never_trigger_on_drift(self):
        p = AdaptiveRetrainingPolicy(psi_threshold=0.15, min_batch=50)
        assert not p.should_retrain(5.0, 1.0, 10)

    def test_none_score_does_not_trigger(self):
        p = AdaptiveRetrainingPolicy()
        assert not p.should_retrain(None, 1.0, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRetrainingPolicy(psi_threshold=0.0)
        with pytest.raises(ValueError):
            AdaptiveRetrainingPolicy(max_days_between=0.5)


class TestAdaptiveLoop:
    @pytest.fixture(scope="class")
    def evaluator(self, small_trace):
        from repro.evaluation.online import OnlineEvaluator

        return OnlineEvaluator(small_trace, test_start_day=40, test_end_day=50)

    def test_returns_result_and_scores(self, evaluator):
        result, scores = evaluator.evaluate_adaptive(
            "KNN", {"n_neighbors": 3}, alpha=20,
            policy=AdaptiveRetrainingPolicy(max_days_between=5),
        )
        assert result.sampling == "adaptive"
        assert np.isnan(result.beta)
        assert len(scores) == 10
        assert 0 <= result.f1 <= 1

    def test_retrains_bounded_by_deadline(self, evaluator):
        result, _ = evaluator.evaluate_adaptive(
            "KNN", {"n_neighbors": 3}, alpha=20,
            policy=AdaptiveRetrainingPolicy(psi_threshold=99.0, max_days_between=5),
        )
        # only the deadline fires: first day + every 5 days
        assert result.n_retrainings == 2

    def test_sensitive_policy_retrains_more(self, evaluator):
        lazy, _ = evaluator.evaluate_adaptive(
            "KNN", {"n_neighbors": 3}, alpha=20,
            policy=AdaptiveRetrainingPolicy(psi_threshold=99.0, max_days_between=9),
        )
        eager, _ = evaluator.evaluate_adaptive(
            "KNN", {"n_neighbors": 3}, alpha=20,
            policy=AdaptiveRetrainingPolicy(psi_threshold=0.01, max_days_between=9),
        )
        assert eager.n_retrainings >= lazy.n_retrainings

    def test_quality_close_to_daily_retraining(self, evaluator):
        adaptive, _ = evaluator.evaluate_adaptive(
            "KNN", {"n_neighbors": 3}, alpha=20,
            policy=AdaptiveRetrainingPolicy(psi_threshold=0.15, max_days_between=7),
        )
        daily = evaluator.evaluate("KNN", {"n_neighbors": 3}, alpha=20, beta=1)
        assert adaptive.f1 > daily.f1 - 0.05
        assert adaptive.n_retrainings <= daily.n_retrainings
