"""Tests for the online evaluation loop (§V-B)."""

import numpy as np
import pytest

from repro.evaluation.online import OnlineEvaluator
from repro.fugaku.workload import DAY_SECONDS


@pytest.fixture(scope="module")
def evaluator(small_trace):
    # short test window keeps the loop fast; training pool is days < 40
    return OnlineEvaluator(small_trace, test_start_day=40, test_end_day=46)


KNN = ("KNN", {"n_neighbors": 3, "algorithm": "brute"})
RF = ("RF", {"n_estimators": 5, "max_depth": 8, "splitter": "hist", "random_state": 0})


class TestSetup:
    def test_precomputed_state(self, evaluator, small_trace):
        assert evaluator.X.shape == (len(small_trace), 384)
        assert evaluator.y.shape == (len(small_trace),)
        assert evaluator.encode_time_per_job > 0

    def test_empty_test_window_rejected(self, small_trace):
        with pytest.raises(ValueError):
            OnlineEvaluator(small_trace, test_start_day=40, test_end_day=40)


class TestEvaluate:
    def test_result_fields(self, evaluator):
        r = evaluator.evaluate(*KNN, alpha=20, beta=1)
        assert 0.0 <= r.f1 <= 1.0
        assert 0.0 <= r.accuracy <= 1.0
        assert r.n_test_jobs > 0
        assert r.n_retrainings == 6  # beta=1 over 6 test days
        assert len(r.train_times) == 6
        assert r.mean_train_time > 0
        assert r.mean_inference_time_per_job > 0

    def test_beta_reduces_retrainings(self, evaluator):
        r = evaluator.evaluate(*KNN, alpha=20, beta=3)
        assert r.n_retrainings == 2  # days 40 and 43

    def test_alpha_window_size(self, evaluator):
        r_small = evaluator.evaluate(*KNN, alpha=5, beta=6)
        r_big = evaluator.evaluate(*KNN, alpha=30, beta=6)
        assert r_big.train_sizes[0] > r_small.train_sizes[0]

    def test_alpha_plus_growing_window(self, evaluator):
        r = evaluator.evaluate(*KNN, alpha=("plus", 20), beta=1)
        sizes = r.train_sizes
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))

    def test_sliding_window_sizes_stable(self, evaluator):
        r = evaluator.evaluate(*KNN, alpha=20, beta=1)
        sizes = np.array(r.train_sizes)
        assert sizes.max() < 2.5 * sizes.min()

    def test_models_predict_better_than_chance(self, evaluator):
        for spec in (KNN, RF):
            r = evaluator.evaluate(*spec, alpha=30, beta=1)
            assert r.f1 > 0.6

    def test_invalid_beta(self, evaluator):
        with pytest.raises(ValueError):
            evaluator.evaluate(*KNN, alpha=20, beta=0.5)

    def test_rf_deterministic(self, evaluator):
        a = evaluator.evaluate(*RF, alpha=20, beta=2)
        b = evaluator.evaluate(*RF, alpha=20, beta=2)
        assert a.f1 == b.f1


class TestTheta:
    def test_theta_caps_train_size(self, evaluator):
        r = evaluator.evaluate(*KNN, alpha=30, beta=1, theta=50, sampling="random", seed=0)
        assert max(r.train_sizes) <= 50

    def test_theta_larger_than_window_is_noop(self, evaluator):
        full = evaluator.evaluate(*KNN, alpha=10, beta=3)
        capped = evaluator.evaluate(*KNN, alpha=10, beta=3, theta=10**9, sampling="random", seed=0)
        assert capped.f1 == full.f1

    def test_random_sampling_seeded(self, evaluator):
        a = evaluator.evaluate(*KNN, alpha=30, beta=2, theta=60, sampling="random", seed=520)
        b = evaluator.evaluate(*KNN, alpha=30, beta=2, theta=60, sampling="random", seed=520)
        c = evaluator.evaluate(*KNN, alpha=30, beta=2, theta=60, sampling="random", seed=90)
        assert a.f1 == b.f1
        assert a.f1 != c.f1 or a.train_sizes == c.train_sizes

    def test_latest_sampling_takes_most_recent(self, evaluator, small_trace):
        idx = evaluator._training_indices(40, 30)
        sub = evaluator._subsample(idx, 40, "latest", np.random.default_rng(0))
        chosen_end = evaluator.end_time[sub]
        others = np.setdiff1d(idx, sub)
        assert chosen_end.min() >= np.partition(evaluator.end_time[others], -1)[-1] - 1e9
        # strictly: the chosen are the max-end_time jobs
        assert chosen_end.min() >= np.sort(evaluator.end_time[idx])[-40]

    def test_unknown_sampling_rejected(self, evaluator):
        with pytest.raises(ValueError):
            evaluator.evaluate(*KNN, alpha=20, beta=1, theta=10, sampling="bogus")


class TestBaseline:
    def test_baseline_runs(self, evaluator):
        r = evaluator.evaluate_baseline(alpha=20, beta=1)
        assert r.model_name == "baseline"
        assert 0.0 <= r.f1 <= 1.0
        assert r.n_retrainings == 6
        assert r.encode_time_per_job == 0.0

    def test_baseline_not_better_than_knn(self, evaluator):
        """§V-C.a: the lookup baseline underperforms the NLP-augmented models."""
        knn = evaluator.evaluate(*KNN, alpha=20, beta=1)
        base = evaluator.evaluate_baseline(alpha=20, beta=1)
        assert base.f1 <= knn.f1 + 0.05
