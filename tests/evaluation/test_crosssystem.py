"""Per-system and cross-system online evaluation (portability claim).

Tiny-scale end-to-end runs: the same α/β/θ loop must work unchanged on
every registered system, and the Fugaku→Supercloud transfer must both
run and exhibit the expected macro-F1 drift relative to the in-system
run (a model trained against the wrong knee and workload mix cannot
match the native one).
"""

import pytest

from repro.evaluation import (
    OnlineRunResult,
    TransferResult,
    evaluate_all,
    evaluate_system,
    evaluator_for_system,
    transfer_evaluation,
)

SCALE = 0.002
KW = dict(scale=SCALE, alpha=15.0, beta=7.0, model_params={"random_state": 0})


@pytest.fixture(scope="module")
def all_results():
    return evaluate_all(("fugaku", "supercloud", "in2p3"), **KW)


def test_every_system_runs_end_to_end(all_results):
    assert set(all_results) == {"fugaku", "supercloud", "in2p3"}
    for name, result in all_results.items():
        assert isinstance(result, OnlineRunResult)
        assert result.model_name == f"RF@{name}"
        assert result.n_test_jobs > 50
        assert result.n_retrainings >= 1
        # the loop genuinely learned something on every system
        assert result.f1 > 0.5, name


def test_characterization_uses_each_systems_knee():
    fugaku = evaluator_for_system("fugaku", scale=SCALE)
    supercloud = evaluator_for_system("supercloud", scale=SCALE)
    assert fugaku.characterizer.ridge_point != supercloud.characterizer.ridge_point


def test_transfer_runs_and_reports_drift(all_results):
    result = transfer_evaluation("fugaku", "supercloud", **KW)
    assert isinstance(result, TransferResult)
    assert result.train_system == "fugaku"
    assert result.infer_system == "supercloud"
    assert result.n_train_jobs > 0
    assert result.n_test_jobs == all_results["supercloud"].n_test_jobs
    assert 0.0 <= result.f1_transfer <= 1.0
    assert result.f1_native == pytest.approx(all_results["supercloud"].f1)
    # the drift test: a Fugaku-trained model serving Supercloud jobs loses
    # macro-F1 relative to training in-system (different knee, different
    # users/apps); drift = native - transfer must be visibly positive.
    assert result.drift > 0.05


def test_transfer_requires_distinct_systems():
    with pytest.raises(ValueError, match="distinct"):
        transfer_evaluation("fugaku", "fugaku", **KW)


def test_evaluate_system_is_deterministic():
    a = evaluate_system("in2p3", **KW, model_seed=3)
    b = evaluate_system("in2p3", **KW, model_seed=3)
    assert a.f1 == b.f1
    assert a.n_test_jobs == b.n_test_jobs
