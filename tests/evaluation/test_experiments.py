"""Tests for the §V experiment sweeps."""

import pytest

from repro.evaluation.experiments import (
    ModelSpec,
    PAPER_ALPHAS,
    PAPER_BETAS,
    PAPER_THETA_SEEDS,
    alpha_plus_experiment,
    baseline_comparison,
    sweep_alpha_beta,
    sweep_theta,
)
from repro.evaluation.online import OnlineEvaluator


@pytest.fixture(scope="module")
def evaluator(small_trace):
    return OnlineEvaluator(small_trace, test_start_day=40, test_end_day=44)


KNN_SPEC = ModelSpec("KNN", "KNN", {"n_neighbors": 3, "algorithm": "brute"})
RF_SPEC = ModelSpec("RF", "RF", {"n_estimators": 4, "max_depth": 6, "splitter": "hist", "random_state": 0})


class TestConstants:
    def test_paper_grids(self):
        assert PAPER_ALPHAS == (15, 30, 45, 60)
        assert PAPER_BETAS == (1, 2, 5, 10)

    def test_paper_seeds(self):
        # footnote 11 of the paper
        assert PAPER_THETA_SEEDS == (520, 90, 1905, 7, 22)

    def test_best_alpha_per_model(self):
        assert RF_SPEC.best_alpha == 15
        assert KNN_SPEC.best_alpha == 30


class TestAlphaBetaSweep:
    def test_grid_covered(self, evaluator):
        res = sweep_alpha_beta(evaluator, KNN_SPEC, alphas=(10, 20), betas=(1, 2))
        assert set(res) == {(10, 1), (10, 2), (20, 1), (20, 2)}
        for r in res.values():
            assert r.model_name == "KNN"
            assert 0 <= r.f1 <= 1

    def test_beta_controls_retraining_count(self, evaluator):
        res = sweep_alpha_beta(evaluator, KNN_SPEC, alphas=(15,), betas=(1, 2))
        assert res[(15, 1)].n_retrainings == 4
        assert res[(15, 2)].n_retrainings == 2


class TestAlphaPlus:
    def test_returns_both_modes(self, evaluator):
        res = alpha_plus_experiment(evaluator, KNN_SPEC, alpha_best=20)
        assert set(res) == {"sliding", "plus"}
        assert res["plus"].alpha == ("plus", 20)
        # the growing window trains on at least as much data
        assert max(res["plus"].train_sizes) >= max(res["sliding"].train_sizes)


class TestThetaSweep:
    def test_structure(self, evaluator):
        res = sweep_theta(
            evaluator, KNN_SPEC, thetas=(30,), alpha=20, seeds=(520, 90)
        )
        assert set(res) == {(30, "random"), (30, "latest")}
        rnd = res[(30, "random")]
        assert len(rnd["runs"]) == 2
        assert rnd["f1_std"] >= 0
        assert len(res[(30, "latest")]["runs"]) == 1

    def test_mean_over_seeds(self, evaluator):
        res = sweep_theta(evaluator, KNN_SPEC, thetas=(40,), alpha=20, seeds=(1, 2, 3))
        runs = res[(40, "random")]["runs"]
        mean = sum(r.f1 for r in runs) / 3
        assert res[(40, "random")]["f1_mean"] == pytest.approx(mean)


class TestBaselineComparison:
    def test_structure(self, evaluator):
        res = baseline_comparison(evaluator, RF_SPEC, alpha=20)
        assert res["model"].model_name == "RF"
        assert res["baseline"].model_name == "baseline"
        assert res["baseline"].alpha == 30.0  # paper: baseline uses KNN's best
