"""Shared fixtures: small deterministic traces and pipeline objects.

Traces are generated once per session at tiny scale; tests that need
different generator parameters build their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import JobCharacterizer, load_trace_into_db
from repro.fugaku import WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="session")
def tiny_trace():
    """≈2750 jobs over the full 122-day span; fast to generate."""
    return WorkloadGenerator(WorkloadConfig(scale=1 / 800, seed=123)).generate()


@pytest.fixture(scope="session")
def small_trace():
    """≈11k jobs; used by the evaluation/integration tests."""
    return WorkloadGenerator(WorkloadConfig(scale=1 / 200, seed=321)).generate()


@pytest.fixture(scope="session")
def characterizer():
    return JobCharacterizer()


@pytest.fixture(scope="session")
def tiny_labels(tiny_trace, characterizer):
    return characterizer.labels_from_trace(tiny_trace)


@pytest.fixture()
def jobs_db(tiny_trace):
    """A fresh Database loaded with the tiny trace."""
    return load_trace_into_db(tiny_trace)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(99)
