"""Tests for balanced chunking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.chunking import chunk_bounds, chunk_indices, split_array


class TestChunkBounds:
    def test_example(self):
        assert chunk_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_chunks_than_items(self):
        assert chunk_bounds(2, 5) == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert chunk_bounds(0, 3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_bounds(-1, 2)
        with pytest.raises(ValueError):
            chunk_bounds(5, 0)

    @given(st.integers(0, 10_000), st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_partition_properties(self, n, k):
        bounds = chunk_bounds(n, k)
        # covers exactly [0, n) without gaps or overlaps
        pos = 0
        for lo, hi in bounds:
            assert lo == pos
            assert hi > lo
            pos = hi
        assert pos == n
        # balanced: sizes differ by at most one
        if bounds:
            sizes = [hi - lo for lo, hi in bounds]
            assert max(sizes) - min(sizes) <= 1


class TestChunkIndices:
    def test_fixed_size(self):
        assert chunk_indices(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_indices(10, 0)

    @given(st.integers(0, 5000), st.integers(1, 100))
    @settings(max_examples=100, deadline=None)
    def test_cover(self, n, size):
        chunks = chunk_indices(n, size)
        total = sum(hi - lo for lo, hi in chunks)
        assert total == n
        for lo, hi in chunks[:-1]:
            assert hi - lo == size


class TestSplitArray:
    def test_views_not_copies(self):
        a = np.arange(10)
        parts = split_array(a, 2)
        parts[0][0] = 99
        assert a[0] == 99

    def test_round_trip(self):
        a = np.arange(17)
        assert np.array_equal(np.concatenate(split_array(a, 5)), a)
