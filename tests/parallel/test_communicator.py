"""Tests for the MPI-style local communicator."""

import numpy as np
import pytest

from repro.parallel.communicator import LocalCommunicator, run_spmd


class TestCollectives:
    def test_bcast(self):
        def region(comm, rank):
            data = {"payload": 42} if rank == 0 else None
            return comm.bcast(data, rank, root=0)

        results = run_spmd(region, 4)
        assert all(r == {"payload": 42} for r in results)

    def test_scatter(self):
        def region(comm, rank):
            items = [10, 20, 30] if rank == 0 else None
            return comm.scatter(items, rank, root=0)

        assert run_spmd(region, 3) == [10, 20, 30]

    def test_scatter_wrong_length(self):
        def region(comm, rank):
            items = [1, 2] if rank == 0 else None
            return comm.scatter(items, rank)

        with pytest.raises(ValueError):
            run_spmd(region, 3)

    def test_gather_root_only(self):
        def region(comm, rank):
            return comm.gather(rank * rank, rank, root=0)

        results = run_spmd(region, 4)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_allgather(self):
        def region(comm, rank):
            return comm.allgather(rank, rank)

        results = run_spmd(region, 3)
        assert all(r == [0, 1, 2] for r in results)

    def test_allreduce_sum(self):
        def region(comm, rank):
            return comm.allreduce(rank + 1, rank)

        assert run_spmd(region, 4) == [10, 10, 10, 10]

    def test_allreduce_custom_op(self):
        def region(comm, rank):
            return comm.allreduce(rank, rank, op=max)

        assert run_spmd(region, 5) == [4, 4, 4, 4, 4]

    def test_allreduce_arrays(self):
        def region(comm, rank):
            return comm.allreduce(np.full(3, rank), rank)

        results = run_spmd(region, 3)
        assert np.array_equal(results[0], np.full(3, 3))

    def test_chunk_for_rank_partitions(self):
        comm = LocalCommunicator(3)
        spans = [comm.chunk_for_rank(10, r) for r in range(3)]
        assert spans == [(0, 4), (4, 7), (7, 10)]

    def test_spmd_parallel_sum_matches_serial(self):
        data = np.arange(1000, dtype=np.float64)

        def region(comm, rank):
            lo, hi = comm.chunk_for_rank(len(data), rank)
            return comm.allreduce(float(data[lo:hi].sum()), rank)

        results = run_spmd(region, 4)
        assert all(r == pytest.approx(data.sum()) for r in results)


class TestValidation:
    def test_size_positive(self):
        with pytest.raises(ValueError):
            LocalCommunicator(0)

    def test_bad_rank(self):
        comm = LocalCommunicator(1)
        with pytest.raises(ValueError):
            comm.allgather(1, 5)

    def test_single_rank_degenerates(self):
        def region(comm, rank):
            assert comm.bcast("x", rank) == "x"
            assert comm.allgather(7, rank) == [7]
            return comm.allreduce(3, rank)

        assert run_spmd(region, 1) == [3]

    def test_exception_in_rank_propagates(self):
        def region(comm, rank):
            if rank == 1:
                raise RuntimeError("rank 1 died")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 died"):
            run_spmd(region, 2)
