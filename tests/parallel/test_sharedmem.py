"""Tests for shared-memory arrays."""

import numpy as np
import pytest

from repro.parallel.sharedmem import SharedArray


class TestLifecycle:
    def test_create_zeroed(self):
        with SharedArray.create((4, 3)) as sa:
            assert sa.array.shape == (4, 3)
            assert np.all(sa.array == 0)

    def test_from_array_copies(self):
        src = np.arange(6, dtype=np.float32).reshape(2, 3)
        with SharedArray.from_array(src) as sa:
            assert np.array_equal(sa.array, src)
            src[0, 0] = 99  # source mutation does not affect the segment
            assert sa.array[0, 0] == 0

    def test_attach_sees_writes(self):
        owner = SharedArray.create(8, dtype=np.int64)
        try:
            owner.array[:] = np.arange(8)
            other = SharedArray.attach(owner.name, (8,), np.int64)
            assert np.array_equal(other.array, np.arange(8))
            other.array[0] = -1
            assert owner.array[0] == -1
            other.close()
        finally:
            owner.close()
            owner.unlink()

    def test_descriptor_roundtrip(self):
        owner = SharedArray.create((2, 2))
        try:
            owner.array[:] = 7.0
            desc = owner.descriptor()
            assert desc["shape"] == [2, 2]
            back = SharedArray.from_descriptor(desc)
            assert np.all(back.array == 7.0)
            back.close()
        finally:
            owner.close()
            owner.unlink()

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            SharedArray.create((0, 3))

    def test_context_manager_unlinks(self):
        with SharedArray.create(4) as sa:
            name = sa.name
        with pytest.raises(FileNotFoundError):
            SharedArray.attach(name, (4,), np.float64)
