"""Tests for the ordered parallel map."""

import multiprocessing
import os
import threading

import pytest

from repro.parallel.executor import (
    ExecutorConfig,
    effective_workers,
    ensure_picklable,
    parallel_map,
)

AVAILABLE_START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


def square(x):
    return x * x


class TestSerial:
    def test_order_preserved(self):
        out = parallel_map(square, range(10))
        assert out == [x * x for x in range(10)]

    def test_empty(self):
        assert parallel_map(square, []) == []

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(boom, [1])


class TestThreads:
    def test_order_preserved(self):
        cfg = ExecutorConfig(backend="thread", n_workers=4)
        out = parallel_map(square, range(50), config=cfg)
        assert out == [x * x for x in range(50)]

    def test_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise ValueError("x3")
            return x

        cfg = ExecutorConfig(backend="thread", n_workers=2)
        with pytest.raises(ValueError):
            parallel_map(boom, range(6), config=cfg)


class TestProcesses:
    def test_order_preserved(self):
        cfg = ExecutorConfig(backend="process", n_workers=2)
        out = parallel_map(square, range(8), config=cfg)
        assert out == [x * x for x in range(8)]

    @pytest.mark.parametrize("method", AVAILABLE_START_METHODS)
    def test_round_trip_under_each_start_method(self, method):
        cfg = ExecutorConfig(backend="process", n_workers=2, start_method=method)
        out = parallel_map(square, range(6), config=cfg)
        assert out == [x * x for x in range(6)]


class TestPicklabilityPreflight:
    def test_lambda_rejected_before_pool_spawn(self):
        cfg = ExecutorConfig(backend="process", n_workers=2)
        with pytest.raises(ValueError, match="not picklable"):
            parallel_map(lambda x: x, range(4), config=cfg)

    def test_closure_rejected_with_callable_name(self):
        def local_task(x):
            return x + 1

        cfg = ExecutorConfig(backend="process", n_workers=2)
        with pytest.raises(ValueError, match="local_task"):
            parallel_map(local_task, range(4), config=cfg)

    def test_error_suggests_the_fix(self):
        with pytest.raises(ValueError, match="module top level"):
            ensure_picklable(lambda x: x)

    def test_module_level_function_passes(self):
        ensure_picklable(square)  # no raise

    def test_closure_error_names_the_offending_cell(self):
        lock = threading.Lock()

        def guarded(x):
            with lock:
                return x

        with pytest.raises(ValueError, match=r"__closure__\['lock'\]"):
            ensure_picklable(guarded)

    def test_bound_method_error_names_the_instance_attribute(self):
        class Holder:
            def __init__(self):
                self.guard = threading.Lock()

            def work(self, x):
                return x

        with pytest.raises(ValueError, match=r"__self__\.guard"):
            ensure_picklable(Holder().work)

    def test_partial_error_names_the_argument(self):
        import functools

        task = functools.partial(square, threading.Lock())
        with pytest.raises(ValueError, match=r"\.args\[0\]"):
            ensure_picklable(task)

    def test_thread_backend_accepts_closures(self):
        def local_task(x):
            return x + 1

        cfg = ExecutorConfig(backend="thread", n_workers=2)
        assert parallel_map(local_task, range(4), config=cfg) == [1, 2, 3, 4]

    def test_serial_path_skips_preflight(self):
        # one item -> serial fallback, lambda is fine there
        cfg = ExecutorConfig(backend="process", n_workers=2)
        assert parallel_map(lambda x: x * 2, [21], config=cfg) == [42]


class TestConfig:
    def test_defaults(self):
        assert ExecutorConfig().backend == "serial"
        assert effective_workers(ExecutorConfig()) == 1

    def test_thread_default_workers(self):
        w = effective_workers(ExecutorConfig(backend="thread"))
        assert w == (os.cpu_count() or 1)

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            ExecutorConfig(backend="gpu")

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ExecutorConfig(n_workers=0)

    def test_invalid_start_method(self):
        with pytest.raises(ValueError):
            ExecutorConfig(backend="process", start_method="teleport")

    def test_start_method_requires_process_backend(self):
        with pytest.raises(ValueError, match="process"):
            ExecutorConfig(backend="thread", start_method="spawn")

    def test_single_worker_thread_runs_serial_path(self):
        # still correct (and avoids pool overhead)
        cfg = ExecutorConfig(backend="thread", n_workers=1)
        assert parallel_map(square, [1, 2, 3], config=cfg) == [1, 4, 9]
