"""Tests for table schemas and column types."""

import numpy as np
import pytest

from repro.storage.schema import ColumnDef, ColumnType, TableSchema


class TestColumnType:
    def test_dtypes(self):
        assert ColumnType.INTEGER.dtype == np.dtype(np.int64)
        assert ColumnType.REAL.dtype == np.dtype(np.float64)
        assert ColumnType.TEXT.dtype == np.dtype(object)

    def test_coerce_integer(self):
        assert ColumnType.INTEGER.coerce(np.int32(5)) == 5
        with pytest.raises(TypeError):
            ColumnType.INTEGER.coerce(1.5)
        with pytest.raises(TypeError):
            ColumnType.INTEGER.coerce(True)  # bools are not INTEGERs here

    def test_coerce_real_accepts_int(self):
        assert ColumnType.REAL.coerce(3) == 3.0
        with pytest.raises(TypeError):
            ColumnType.REAL.coerce("x")

    def test_coerce_text(self):
        assert ColumnType.TEXT.coerce("hi") == "hi"
        with pytest.raises(TypeError):
            ColumnType.TEXT.coerce(1)


class TestColumnDef:
    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            ColumnDef("1bad", ColumnType.REAL)


class TestTableSchema:
    def test_accessors(self):
        s = TableSchema(
            "t",
            [ColumnDef("a", ColumnType.INTEGER, indexed=True), ColumnDef("b", ColumnType.TEXT)],
        )
        assert s.column_names == ("a", "b")
        assert s.indexed_columns == ("a",)
        assert "a" in s and "c" not in s
        assert s["a"].ctype is ColumnType.INTEGER

    def test_unknown_column_keyerror(self):
        s = TableSchema("t", [ColumnDef("a", ColumnType.REAL)])
        with pytest.raises(KeyError):
            s["zz"]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", [ColumnDef("a", ColumnType.REAL)] * 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", [])

    def test_bad_table_name_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("bad name", [ColumnDef("a", ColumnType.REAL)])
