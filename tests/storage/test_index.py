"""Tests for sorted secondary indexes."""

import numpy as np
import pytest

from repro.storage.index import SortedIndex


@pytest.fixture()
def idx():
    values = np.array([5.0, 1.0, 3.0, 3.0, 9.0, 7.0])
    i = SortedIndex("v")
    i.rebuild(values)
    return i


class TestLookups:
    def test_eq_hits(self, idx):
        assert sorted(idx.lookup_eq(3.0).tolist()) == [2, 3]

    def test_eq_miss(self, idx):
        assert idx.lookup_eq(4.0).size == 0

    def test_range_inclusive(self, idx):
        assert sorted(idx.lookup_range(3.0, 7.0).tolist()) == [0, 2, 3, 5]

    def test_range_exclusive(self, idx):
        got = idx.lookup_range(3.0, 7.0, low_inclusive=False, high_inclusive=False)
        assert sorted(got.tolist()) == [0]

    def test_open_ranges(self, idx):
        assert sorted(idx.lookup_range(low=7.0).tolist()) == [4, 5]
        assert sorted(idx.lookup_range(high=1.0).tolist()) == [1]

    def test_empty_interval(self, idx):
        assert idx.lookup_range(8.0, 2.0).size == 0

    def test_lookup_in(self, idx):
        assert sorted(idx.lookup_in([1.0, 9.0, 42.0]).tolist()) == [1, 4]

    def test_lookup_in_empty(self, idx):
        assert idx.lookup_in([]).size == 0


class TestStaleness:
    def test_stale_until_rebuilt(self):
        i = SortedIndex("v")
        assert i.is_stale
        with pytest.raises(RuntimeError):
            i.lookup_eq(1.0)

    def test_invalidate_marks_stale(self, idx):
        idx.invalidate()
        assert idx.is_stale
        with pytest.raises(RuntimeError):
            idx.lookup_range(0, 1)

    def test_rebuild_refreshes(self, idx):
        idx.invalidate()
        idx.rebuild(np.array([2.0, 2.0]))
        assert sorted(idx.lookup_eq(2.0).tolist()) == [0, 1]


class TestAgainstBruteForce:
    def test_random_ranges_match_mask(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 100, size=300).astype(np.float64)
        i = SortedIndex("v")
        i.rebuild(values)
        for _ in range(50):
            lo, hi = sorted(rng.uniform(0, 100, size=2))
            expected = np.flatnonzero((values >= lo) & (values <= hi))
            got = np.sort(i.lookup_range(lo, hi))
            assert np.array_equal(got, expected)
