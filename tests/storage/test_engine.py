"""Tests for the column-store engine: DDL, DML, planning, filters."""

import numpy as np
import pytest

from repro.storage import ColumnDef, ColumnType, Database, TableSchema
from repro.storage.sqlparser import SQLSyntaxError


@pytest.fixture()
def db():
    d = Database()
    d.execute(
        "CREATE TABLE jobs (job_id INTEGER INDEXED, t REAL INDEXED, "
        "name TEXT, nodes INTEGER)"
    )
    d.execute(
        "INSERT INTO jobs (job_id, t, name, nodes) VALUES "
        "(1, 10.0, 'a', 2), (2, 20.0, 'b', 4), (3, 30.0, 'a', 8), "
        "(4, 40.0, 'c', 16), (5, 50.0, 'b', 32)"
    )
    return d


class TestDDL:
    def test_create_and_catalog(self):
        d = Database()
        d.execute("CREATE TABLE x (a INTEGER)")
        assert d.table_names == ("x",)

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(ValueError):
            db.execute("CREATE TABLE jobs (a INTEGER)")

    def test_missing_table(self, db):
        with pytest.raises(KeyError):
            db.execute("SELECT * FROM nope")

    def test_create_via_schema_object(self):
        d = Database()
        t = d.create_table(TableSchema("s", [ColumnDef("a", ColumnType.REAL)]))
        assert len(t) == 0


class TestInsert:
    def test_returns_row_count(self, db):
        n = db.execute("INSERT INTO jobs (job_id, t, name, nodes) VALUES (6, 60.0, 'd', 1)")
        assert n == 1
        assert len(db.table("jobs")) == 6

    def test_type_coercion_enforced(self, db):
        with pytest.raises(TypeError):
            db.execute("INSERT INTO jobs (job_id, t, name, nodes) VALUES ('x', 1.0, 'a', 1)")

    def test_params(self, db):
        db.execute(
            "INSERT INTO jobs (job_id, t, name, nodes) VALUES (?, ?, ?, ?)",
            [7, 70.0, "e", 64],
        )
        rows = db.execute("SELECT name FROM jobs WHERE job_id = 7").rows()
        assert rows == [{"name": "e"}]

    def test_missing_param_rejected(self, db):
        with pytest.raises(ValueError):
            db.execute("SELECT * FROM jobs WHERE job_id = ?", [])

    def test_column_mismatch_rejected(self, db):
        with pytest.raises(ValueError):
            db.execute("INSERT INTO jobs (job_id) VALUES (9)")

    def test_row_width_mismatch_rejected(self, db):
        with pytest.raises(ValueError):
            db.execute("INSERT INTO jobs (job_id, t, name, nodes) VALUES (9, 1.0)")

    def test_growth_beyond_initial_capacity(self):
        d = Database()
        d.execute("CREATE TABLE g (a INTEGER)")
        for i in range(200):
            d.execute(f"INSERT INTO g (a) VALUES ({i})")
        assert len(d.table("g")) == 200
        out = d.execute("SELECT a FROM g ORDER BY a DESC LIMIT 1").rows()
        assert out == [{"a": 199}]

    def test_bulk_columnar_insert(self):
        d = Database()
        d.execute("CREATE TABLE b (a INTEGER, s TEXT)")
        d.table("b").insert_columns(
            {"a": np.arange(100), "s": np.array(["x"] * 100, dtype=object)}
        )
        assert len(d.table("b")) == 100


class TestSelect:
    def test_select_all(self, db):
        rs = db.execute("SELECT * FROM jobs")
        assert len(rs) == 5
        assert set(rs.column_names) == {"job_id", "t", "name", "nodes"}

    def test_projection(self, db):
        rs = db.execute("SELECT name FROM jobs")
        assert rs.column_names == ("name",)

    def test_unknown_column_rejected(self, db):
        with pytest.raises(KeyError):
            db.execute("SELECT nope FROM jobs")

    def test_where_equality_on_indexed(self, db):
        rows = db.execute("SELECT name FROM jobs WHERE job_id = 3").rows()
        assert rows == [{"name": "a"}]

    def test_where_range_on_indexed(self, db):
        rs = db.execute("SELECT job_id FROM jobs WHERE t >= 20.0 AND t < 40.0")
        assert sorted(r["job_id"] for r in rs.rows()) == [2, 3]

    def test_where_on_unindexed_text(self, db):
        rs = db.execute("SELECT job_id FROM jobs WHERE name = 'b'")
        assert sorted(r["job_id"] for r in rs.rows()) == [2, 5]

    def test_between(self, db):
        rs = db.execute("SELECT job_id FROM jobs WHERE nodes BETWEEN 4 AND 16")
        assert sorted(r["job_id"] for r in rs.rows()) == [2, 3, 4]

    def test_in_list(self, db):
        rs = db.execute("SELECT job_id FROM jobs WHERE name IN ('a', 'c')")
        assert sorted(r["job_id"] for r in rs.rows()) == [1, 3, 4]

    def test_not_in(self, db):
        rs = db.execute("SELECT job_id FROM jobs WHERE name NOT IN ('a', 'c')")
        assert sorted(r["job_id"] for r in rs.rows()) == [2, 5]

    def test_or_combination(self, db):
        rs = db.execute("SELECT job_id FROM jobs WHERE job_id = 1 OR nodes > 16")
        assert sorted(r["job_id"] for r in rs.rows()) == [1, 5]

    def test_not(self, db):
        rs = db.execute("SELECT job_id FROM jobs WHERE NOT (nodes > 4)")
        assert sorted(r["job_id"] for r in rs.rows()) == [1, 2]

    def test_order_by_asc_desc(self, db):
        asc = [r["job_id"] for r in db.execute("SELECT job_id FROM jobs ORDER BY t").rows()]
        desc = [r["job_id"] for r in db.execute("SELECT job_id FROM jobs ORDER BY t DESC").rows()]
        assert asc == list(reversed(desc))

    def test_limit(self, db):
        rs = db.execute("SELECT job_id FROM jobs ORDER BY job_id LIMIT 2")
        assert [r["job_id"] for r in rs.rows()] == [1, 2]

    def test_limit_zero(self, db):
        assert len(db.execute("SELECT * FROM jobs LIMIT 0")) == 0

    def test_where_no_match(self, db):
        assert len(db.execute("SELECT * FROM jobs WHERE job_id = 99")) == 0

    def test_unknown_where_column_rejected(self, db):
        with pytest.raises(KeyError):
            db.execute("SELECT * FROM jobs WHERE ghost = 1")


class TestPlannerEquivalence:
    """Index-assisted plans must return the same rows as full scans."""

    @pytest.fixture()
    def big(self):
        d = Database()
        d.execute("CREATE TABLE x (k INTEGER INDEXED, v REAL, s TEXT)")
        rng = np.random.default_rng(0)
        ks = rng.integers(0, 50, size=500)
        vs = rng.normal(size=500)
        d.table("x").insert_columns(
            {
                "k": ks,
                "v": vs,
                "s": np.array([f"s{int(k) % 7}" for k in ks], dtype=object),
            }
        )
        return d

    @pytest.mark.parametrize(
        "where",
        [
            "k = 7",
            "k > 25",
            "k <= 10",
            "k BETWEEN 10 AND 20",
            "k IN (3, 5, 8)",
            "k = 7 AND v > 0.0",
            "k > 40 AND s = 's1'",
            "s = 's2' AND k < 5",
        ],
    )
    def test_same_result_with_and_without_index(self, big, where):
        with_index = big.execute(f"SELECT k, v FROM x WHERE {where} ORDER BY v")
        # same data in an index-free table
        d2 = Database()
        d2.execute("CREATE TABLE x (k INTEGER, v REAL, s TEXT)")
        src = big.table("x")
        d2.table("x").insert_columns({c: src.column(c) for c in ("k", "v", "s")})
        without = d2.execute(f"SELECT k, v FROM x WHERE {where} ORDER BY v")
        assert np.allclose(with_index.column("v"), without.column("v"))
        assert np.array_equal(with_index.column("k"), without.column("k"))

    def test_index_invalidated_by_insert(self, big):
        before = len(big.execute("SELECT * FROM x WHERE k = 7"))
        big.execute("INSERT INTO x (k, v, s) VALUES (7, 0.0, 's0')")
        after = len(big.execute("SELECT * FROM x WHERE k = 7"))
        assert after == before + 1


class TestResultSet:
    def test_rows_are_python_scalars(self, db):
        row = db.execute("SELECT job_id, t, name FROM jobs WHERE job_id = 1").rows()[0]
        assert type(row["job_id"]) is int
        assert type(row["t"]) is float
        assert type(row["name"]) is str
