"""Property-based tests of the SQL engine against a Python-level oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import Database

_names = st.sampled_from(["alpha", "beta", "gamma", "delta"])


@st.composite
def table_data(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    ks = draw(st.lists(st.integers(min_value=-20, max_value=20), min_size=n, max_size=n))
    vs = draw(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    ss = draw(st.lists(_names, min_size=n, max_size=n))
    return ks, vs, ss


def build_db(ks, vs, ss, indexed: bool) -> Database:
    d = Database()
    idx = "INDEXED" if indexed else ""
    d.execute(f"CREATE TABLE t (k INTEGER {idx}, v REAL, s TEXT)")
    d.table("t").insert_columns(
        {
            "k": np.array(ks, dtype=np.int64),
            "v": np.array(vs, dtype=np.float64),
            "s": np.array(ss, dtype=object),
        }
    )
    return d


class TestFilterOracle:
    @given(data=table_data(), lo=st.integers(-20, 20), hi=st.integers(-20, 20))
    @settings(max_examples=80, deadline=None)
    def test_between_matches_python_filter(self, data, lo, hi):
        ks, vs, ss = data
        for indexed in (False, True):
            d = build_db(ks, vs, ss, indexed)
            got = d.execute(
                "SELECT k FROM t WHERE k BETWEEN ? AND ? ORDER BY k", [lo, hi]
            )
            expected = sorted(k for k in ks if lo <= k <= hi)
            assert list(got.column("k")) == expected

    @given(data=table_data(), key=st.integers(-20, 20), name=_names)
    @settings(max_examples=80, deadline=None)
    def test_conjunction_matches_python_filter(self, data, key, name):
        ks, vs, ss = data
        d = build_db(ks, vs, ss, indexed=True)
        got = d.execute(
            "SELECT v FROM t WHERE k = ? AND s = ? ORDER BY v", [key, name]
        )
        expected = sorted(v for k, v, s in zip(ks, vs, ss) if k == key and s == name)
        assert np.allclose(list(got.column("v")), expected)

    @given(data=table_data())
    @settings(max_examples=60, deadline=None)
    def test_negation_partitions_rows(self, data):
        ks, vs, ss = data
        d = build_db(ks, vs, ss, indexed=False)
        pos = len(d.execute("SELECT k FROM t WHERE k >= 0"))
        neg = len(d.execute("SELECT k FROM t WHERE NOT k >= 0"))
        assert pos + neg == len(ks)

    @given(data=table_data(), limit=st.integers(0, 70))
    @settings(max_examples=60, deadline=None)
    def test_order_limit_prefix(self, data, limit):
        ks, vs, ss = data
        d = build_db(ks, vs, ss, indexed=True)
        full = list(d.execute("SELECT v FROM t ORDER BY v").column("v"))
        lim = list(d.execute(f"SELECT v FROM t ORDER BY v LIMIT {limit}").column("v"))
        assert lim == full[:limit]
        assert full == sorted(full)


class TestInsertRoundtrip:
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(-1000, 1000),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                st.text(
                    alphabet=st.characters(
                        whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F
                    ),
                    max_size=12,
                ),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_inserted_rows_come_back(self, rows):
        d = Database()
        d.execute("CREATE TABLE t (k INTEGER, v REAL, s TEXT)")
        for k, v, s in rows:
            d.execute("INSERT INTO t (k, v, s) VALUES (?, ?, ?)", [k, v, s])
        out = d.execute("SELECT k, v, s FROM t").rows()
        assert len(out) == len(rows)
        for got, (k, v, s) in zip(out, rows):
            assert got["k"] == k
            assert got["v"] == v
            assert got["s"] == s
