"""Tests for SQL aggregate queries (COUNT/SUM/AVG/MIN/MAX, GROUP BY)."""

import numpy as np
import pytest

from repro.storage import Database, SQLSyntaxError
from repro.storage.sqlparser import Aggregate, parse_sql


@pytest.fixture()
def db():
    d = Database()
    d.execute("CREATE TABLE j (u TEXT, nodes INTEGER INDEXED, dur REAL)")
    d.execute(
        "INSERT INTO j (u, nodes, dur) VALUES "
        "('a', 1, 10.0), ('a', 2, 20.0), ('b', 4, 30.0), ('b', 8, 50.0), ('c', 1, 5.0)"
    )
    return d


class TestParser:
    def test_count_star(self):
        stmt = parse_sql("SELECT COUNT(*) FROM j")
        assert stmt.aggregates == (Aggregate("COUNT", None),)

    def test_output_names(self):
        assert Aggregate("COUNT", None).output_name == "count"
        assert Aggregate("AVG", "dur").output_name == "avg_dur"

    def test_group_by_parsed(self):
        stmt = parse_sql("SELECT u, COUNT(*) FROM j GROUP BY u")
        assert stmt.group_by == "u"

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT AVG(*) FROM j",                  # only COUNT(*) allowed
            "SELECT u, COUNT(*) FROM j",             # plain col needs GROUP BY
            "SELECT nodes, COUNT(*) FROM j GROUP BY u",  # col not the group key
            "SELECT u FROM j GROUP BY u",            # GROUP BY needs an aggregate
            "SELECT * FROM j GROUP BY u",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(SQLSyntaxError):
            parse_sql(bad)


class TestGlobalAggregates:
    def test_count_star(self, db):
        assert db.execute("SELECT COUNT(*) FROM j").rows() == [{"count": 5}]

    def test_all_functions(self, db):
        row = db.execute(
            "SELECT COUNT(*), SUM(dur), AVG(dur), MIN(nodes), MAX(nodes) FROM j"
        ).rows()[0]
        assert row["count"] == 5
        assert row["sum_dur"] == pytest.approx(115.0)
        assert row["avg_dur"] == pytest.approx(23.0)
        assert row["min_nodes"] == 1
        assert row["max_nodes"] == 8

    def test_with_where(self, db):
        row = db.execute("SELECT COUNT(*), AVG(dur) FROM j WHERE nodes > 1").rows()[0]
        assert row["count"] == 3
        assert row["avg_dur"] == pytest.approx(100.0 / 3)

    def test_with_indexed_where(self, db):
        row = db.execute("SELECT COUNT(*) FROM j WHERE nodes = 1").rows()[0]
        assert row["count"] == 2

    def test_empty_match(self, db):
        row = db.execute("SELECT COUNT(*), SUM(dur), AVG(dur) FROM j WHERE nodes > 99").rows()[0]
        assert row["count"] == 0
        assert row["sum_dur"] == 0.0
        assert np.isnan(row["avg_dur"])

    def test_params_in_where(self, db):
        row = db.execute("SELECT COUNT(*) FROM j WHERE u = ?", ["b"]).rows()[0]
        assert row["count"] == 2


class TestGroupBy:
    def test_group_counts(self, db):
        rows = db.execute("SELECT u, COUNT(*) FROM j GROUP BY u").rows()
        assert {r["u"]: r["count"] for r in rows} == {"a": 2, "b": 2, "c": 1}

    def test_group_avg(self, db):
        rows = db.execute("SELECT u, AVG(dur) FROM j GROUP BY u").rows()
        got = {r["u"]: r["avg_dur"] for r in rows}
        assert got["a"] == pytest.approx(15.0)
        assert got["b"] == pytest.approx(40.0)

    def test_group_with_where(self, db):
        rows = db.execute(
            "SELECT u, SUM(nodes) FROM j WHERE dur >= 20.0 GROUP BY u"
        ).rows()
        assert {r["u"]: r["sum_nodes"] for r in rows} == {"a": 2.0, "b": 12.0}

    def test_order_and_limit(self, db):
        rows = db.execute(
            "SELECT u, COUNT(*) FROM j GROUP BY u ORDER BY u DESC LIMIT 2"
        ).rows()
        assert [r["u"] for r in rows] == ["c", "b"]

    def test_aggregate_only_with_group(self, db):
        rows = db.execute("SELECT COUNT(*) FROM j GROUP BY u").rows()
        assert sorted(r["count"] for r in rows) == [1, 2, 2]

    def test_order_by_non_group_rejected(self, db):
        with pytest.raises(KeyError):
            db.execute("SELECT u, COUNT(*) FROM j GROUP BY u ORDER BY nodes")

    def test_unknown_group_column(self, db):
        with pytest.raises(KeyError):
            db.execute("SELECT ghost, COUNT(*) FROM j GROUP BY ghost")

    def test_text_aggregation_rejected(self, db):
        with pytest.raises(TypeError):
            db.execute("SELECT AVG(u) FROM j")


class TestOnJobsTable:
    def test_jobs_per_user(self, jobs_db):
        rows = jobs_db.execute(
            "SELECT user_name, COUNT(*) FROM jobs GROUP BY user_name"
        ).rows()
        total = sum(r["count"] for r in rows)
        assert total == len(jobs_db.table("jobs"))

    def test_mean_duration_positive(self, jobs_db):
        row = jobs_db.execute("SELECT AVG(duration) FROM jobs").rows()[0]
        assert row["avg_duration"] > 0
