"""Tests for the SQL subset parser."""

import pytest

from repro.storage.schema import ColumnType
from repro.storage.sqlparser import (
    And,
    Between,
    Comparison,
    CreateTable,
    InList,
    Insert,
    Not,
    Or,
    Param,
    Select,
    SQLSyntaxError,
    parse_sql,
)


class TestSelect:
    def test_star(self):
        s = parse_sql("SELECT * FROM jobs")
        assert isinstance(s, Select)
        assert s.columns is None
        assert s.table == "jobs"

    def test_column_list(self):
        s = parse_sql("SELECT a, b, c FROM t")
        assert s.columns == ("a", "b", "c")

    def test_case_insensitive_keywords(self):
        s = parse_sql("select * from t where a = 1 order by a desc limit 3")
        assert s.order_by == "a" and s.descending and s.limit == 3

    def test_where_comparison(self):
        s = parse_sql("SELECT * FROM t WHERE a >= 10")
        assert s.where == Comparison("a", ">=", 10)

    def test_operator_aliases(self):
        assert parse_sql("SELECT * FROM t WHERE a == 1").where.op == "="
        assert parse_sql("SELECT * FROM t WHERE a <> 1").where.op == "!="

    def test_where_and_or_precedence(self):
        s = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(s.where, Or)
        assert isinstance(s.where.operands[1], And)

    def test_parentheses(self):
        s = parse_sql("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(s.where, And)
        assert isinstance(s.where.operands[0], Or)

    def test_not(self):
        s = parse_sql("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(s.where, Not)

    def test_between(self):
        s = parse_sql("SELECT * FROM t WHERE a BETWEEN 1 AND 5")
        assert s.where == Between("a", 1, 5)

    def test_in_list(self):
        s = parse_sql("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert s.where == InList("a", (1, 2, 3), negated=False)

    def test_not_in(self):
        s = parse_sql("SELECT * FROM t WHERE a NOT IN ('x')")
        assert s.where == InList("a", ("x",), negated=True)

    def test_string_literal_with_escaped_quote(self):
        s = parse_sql("SELECT * FROM t WHERE a = 'o''brien'")
        assert s.where.value == "o'brien"

    def test_float_and_scientific_literals(self):
        assert parse_sql("SELECT * FROM t WHERE a = 1.5").where.value == 1.5
        assert parse_sql("SELECT * FROM t WHERE a = 1e3").where.value == 1000.0

    def test_params_numbered_in_order(self):
        s = parse_sql("SELECT * FROM t WHERE a = ? AND b = ?")
        assert s.where.operands[0].value == Param(0)
        assert s.where.operands[1].value == Param(1)

    def test_order_asc_default(self):
        s = parse_sql("SELECT * FROM t ORDER BY a")
        assert not s.descending

    def test_limit_rejects_float(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT * FROM t LIMIT 1.5")

    def test_limit_rejects_negative(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT * FROM t LIMIT -1")


class TestInsert:
    def test_with_columns(self):
        s = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(s, Insert)
        assert s.columns == ("a", "b")
        assert s.rows == ((1, "x"),)

    def test_without_columns(self):
        s = parse_sql("INSERT INTO t VALUES (1, 2)")
        assert s.columns is None

    def test_multi_row(self):
        s = parse_sql("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert len(s.rows) == 3

    def test_params(self):
        s = parse_sql("INSERT INTO t (a, b) VALUES (?, ?)")
        assert s.rows == ((Param(0), Param(1)),)


class TestCreate:
    def test_types_and_indexed(self):
        s = parse_sql("CREATE TABLE t (a INTEGER INDEXED, b REAL, c TEXT)")
        assert isinstance(s, CreateTable)
        assert s.columns == (
            ("a", ColumnType.INTEGER, True),
            ("b", ColumnType.REAL, False),
            ("c", ColumnType.TEXT, False),
        )

    def test_unknown_type_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("CREATE TABLE t (a BLOB)")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "DROP TABLE t",
            "SELECT FROM t",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE a",
            "SELECT * FROM t WHERE a = ",
            "SELECT * FROM t trailing garbage",
            "INSERT INTO t VALUES",
            "SELECT * FROM t WHERE a IN ()",
            "SELECT * FROM t; SELECT * FROM u",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(SQLSyntaxError):
            parse_sql(bad)

    def test_error_carries_position(self):
        with pytest.raises(SQLSyntaxError, match="at"):
            parse_sql("SELECT * FROM t WHERE a ~ 1")
