"""Streaming discipline of the storage layer.

What the capacity tier promises statically, these tests check
dynamically: generator ingest, chunked scans and the partitioned table
all peak at O(batch), never O(table) — including a tracemalloc bound at
10^5 rows that is independent of table size.
"""

import numpy as np
import pytest

from repro.evaluation.timing import peak_memory_bytes
from repro.storage.engine import SCAN_BATCH_ROWS, Database, Table, _INSERT_CHUNK
from repro.storage.partition import SegmentedTable
from repro.storage.schema import ColumnDef, ColumnType, TableSchema


def jobs_schema(name="t"):
    return TableSchema(
        name,
        [
            ColumnDef("key", ColumnType.REAL, True),
            ColumnDef("val", ColumnType.INTEGER, False),
        ],
    )


def filled_table(n, *, sorted_key=True):
    t = Table(jobs_schema())
    key = np.arange(n, dtype=float)
    if not sorted_key:
        key = key[::-1].copy()
    t.insert_columns({"key": key, "val": np.arange(n, dtype=np.int64)})
    return t


class TestGeneratorInsert:
    def test_generator_input_is_consumed_in_chunks(self):
        t = Table(jobs_schema())
        n = _INSERT_CHUNK * 2 + 7  # straddle chunk boundaries
        count = t.insert_rows(("key", "val"), ((float(i), i) for i in range(n)))
        assert count == n and len(t) == n
        assert np.array_equal(t.column("val"), np.arange(n))

    def test_peak_memory_is_bounded_by_chunk_not_input(self):
        n = 100_000
        t = Table(jobs_schema())
        t.insert_rows(("key", "val"), ((float(i), i) for i in range(2 * _INSERT_CHUNK)))
        # warm path measured; a fresh table ingests n rows lazily
        t2 = Table(jobs_schema())
        _, peak = peak_memory_bytes(
            t2.insert_rows, ("key", "val"), ((float(i), i) for i in range(n))
        )
        # the table's own arrays grow with n; the *row tuples* must not.
        # 16 bytes/row of column data is expected; 10x chunk covers the
        # transient python tuples without scaling with n.
        assert len(t2) == n
        assert peak < n * 16 * 4 + _INSERT_CHUNK * 400

    def test_empty_iterable_inserts_nothing(self):
        t = Table(jobs_schema())
        assert t.insert_rows(("key", "val"), iter(())) == 0
        assert len(t) == 0

    def test_bad_row_width_raises(self):
        t = Table(jobs_schema())
        with pytest.raises(ValueError, match="row width"):
            t.insert_rows(("key", "val"), [(1.0, 1), (2.0,)])


class TestIterRows:
    def test_matches_rows_and_is_lazy(self):
        db = Database()
        db.execute("CREATE TABLE x (a INTEGER, b TEXT)")
        db.execute("INSERT INTO x (a, b) VALUES (1, 'u'), (2, 'v')")
        rs = db.execute("SELECT a, b FROM x")
        it = rs.iter_rows()
        assert next(it) == {"a": 1, "b": "u"}  # nothing materialized yet
        assert list(it) == [{"a": 2, "b": "v"}]
        assert rs.rows() == [{"a": 1, "b": "u"}, {"a": 2, "b": "v"}]

    def test_values_are_python_scalars(self):
        db = Database()
        db.execute("CREATE TABLE x (a INTEGER, r REAL)")
        db.execute("INSERT INTO x (a, r) VALUES (1, 2.5)")
        row = next(db.execute("SELECT a, r FROM x").iter_rows())
        assert type(row["a"]) is int and type(row["r"]) is float


class TestScanBatches:
    def test_sorted_fast_path_matches_sql_range_query(self):
        t = filled_table(10_000)
        got = np.concatenate(
            [rs.column("val") for rs in t.scan_batches("key", 100.0, 9_000.0, batch_rows=777)]
        )
        assert np.array_equal(got, np.arange(100, 9000))

    def test_unsorted_fallback_preserves_row_order(self):
        t = filled_table(1_000, sorted_key=False)
        got = np.concatenate(
            [rs.column("val") for rs in t.scan_batches("key", 10.0, 500.0, batch_rows=64)]
        )
        # row i holds key 999-i, so the matches are rows 500..989 in row order
        assert np.array_equal(got, np.arange(500, 990))

    def test_open_ended_bounds(self):
        t = filled_table(100)
        assert sum(len(rs) for rs in t.scan_batches("key")) == 100
        assert sum(len(rs) for rs in t.scan_batches("key", low=90.0)) == 10
        assert sum(len(rs) for rs in t.scan_batches("key", high=10.0)) == 10

    def test_batches_are_bounded_and_are_copies(self):
        t = filled_table(1_000)
        batches = list(t.scan_batches("key", batch_rows=128))
        assert max(len(b) for b in batches) <= 128
        batches[0].column("val")[:] = -1
        assert t.column("val")[0] == 0  # the table is untouched

    def test_column_projection(self):
        t = filled_table(100)
        rs = next(t.scan_batches("key", columns=["val"]))
        assert rs.column_names == ("val",)

    def test_sortedness_cache_invalidated_by_insert(self):
        t = filled_table(1_000)
        assert sum(len(rs) for rs in t.scan_batches("key", 0.0, 1_000.0)) == 1_000
        t.insert_rows(("key", "val"), [(0.5, 7)])  # breaks sorted order
        got = sum(len(rs) for rs in t.scan_batches("key", 0.0, 1_000.0))
        assert got == 1_001  # fallback path still finds everything

    def test_peak_memory_tracks_batch_size_not_table_size(self):
        # satellite acceptance: at 1e5 rows, the scan's transient peak is
        # bounded by the batch, independent of how big the table is
        small, large = filled_table(20_000), filled_table(100_000)
        batch = 1_000

        def drain(table):
            total = 0
            for rs in table.scan_batches("key", batch_rows=batch):
                total += len(rs)
            return total

        n_small, peak_small = peak_memory_bytes(drain, small)
        n_large, peak_large = peak_memory_bytes(drain, large)
        assert (n_small, n_large) == (20_000, 100_000)
        per_batch = batch * 16 * 20  # generous transient allowance
        assert peak_small < per_batch and peak_large < per_batch
        # 5x the rows must not mean anywhere near 5x the peak
        assert peak_large < peak_small * 2


class TestSegmentedTable:
    def test_routing_and_total_length(self):
        st = SegmentedTable(jobs_schema(), "key", 100.0)
        st.insert_columns(
            {"key": np.arange(1_000, dtype=float), "val": np.arange(1_000)}
        )
        assert len(st) == 1_000
        assert st.segment_ids == tuple(range(10))
        assert all(len(st.segment(b)) == 100 for b in st.segment_ids)

    def test_scan_skips_non_overlapping_segments(self):
        st = SegmentedTable(jobs_schema(), "key", 100.0)
        st.insert_columns(
            {"key": np.arange(1_000, dtype=float), "val": np.arange(1_000)}
        )
        got = np.concatenate(
            [rs.column("val") for rs in st.scan_batches(150.0, 420.0, batch_rows=33)]
        )
        assert np.array_equal(got, np.arange(150, 420))

    def test_interleaved_inserts_land_in_key_order_scan(self):
        st = SegmentedTable(jobs_schema(), "key", 10.0)
        st.insert_columns({"key": np.array([5.0, 25.0]), "val": np.array([5, 25])})
        st.insert_columns({"key": np.array([15.0, 7.0]), "val": np.array([15, 7])})
        got = [int(v) for rs in st.scan_batches() for v in rs.column("val")]
        # partition order; insertion order within a partition
        assert got == [5, 7, 15, 25]

    def test_rejects_bad_key_and_width(self):
        with pytest.raises(KeyError):
            SegmentedTable(jobs_schema(), "missing", 10.0)
        with pytest.raises(ValueError):
            SegmentedTable(jobs_schema(), "key", 0.0)
