"""Tests for tokenization of job feature strings."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.nlp.tokenizer import char_ngrams, feature_tokens, word_tokens


class TestWordTokens:
    def test_splits_code_like_names(self):
        assert word_tokens("run_cavity_LES012.sh") == ["run", "cavity", "les", "012", "sh"]

    def test_lowercases(self):
        assert word_tokens("ABC") == ["abc"]

    def test_digits_split_from_letters(self):
        assert word_tokens("job42x") == ["job", "42", "x"]

    def test_empty(self):
        assert word_tokens("") == []
        assert word_tokens("___") == []


class TestCharNgrams:
    def test_boundary_markers(self):
        assert char_ngrams("ab", 3, 3) == ["^ab", "ab$"]

    def test_range(self):
        grams = char_ngrams("abc", 3, 4)
        assert "^ab" in grams and "^abc" in grams

    def test_short_string(self):
        # "^a$" has length 3; no 4-grams exist
        assert char_ngrams("a", 3, 4) == ["^a$"]

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", 0, 3)
        with pytest.raises(ValueError):
            char_ngrams("abc", 4, 3)

    @given(st.text(max_size=30), st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_ngram_lengths(self, text, n):
        for g in char_ngrams(text, n, n):
            assert len(g) == n


class TestFeatureTokens:
    def test_word_tokens_doubled(self):
        toks = feature_tokens("abc")
        assert toks.count("w:abc") == 2

    def test_namespaces_disjoint(self):
        toks = feature_tokens("run_x")
        kinds = {t.split(":", 1)[0] for t in toks}
        assert kinds == {"w", "g"}

    def test_similar_strings_share_tokens(self):
        a = set(feature_tokens("riken-ra0042,run_01.sh"))
        b = set(feature_tokens("riken-ra0042,run_02.sh"))
        c = set(feature_tokens("corp-hp9000,train_bert"))
        assert len(a & b) > len(a & c)

    def test_deterministic(self):
        assert feature_tokens("x,y,1") == feature_tokens("x,y,1")
