"""Batch-encode parity and cache behaviour for the vectorized embedder."""

import numpy as np
import pytest

from repro.nlp.embedder import SentenceEmbedder
from repro.nlp.reference import embed_one_scalar, encode_scalar

TEXTS = [
    "srun --ntasks=128 gemm avx512",
    "mpi stream triad nodes=4",
    "gromacs gpu --exclusive mem=64G",
    "lbm d3q19 cg solver ib0",
    "",
    "   ",
    "a",
    "fft 1024 batched vasp",
]


class TestBatchScalarParity:
    @pytest.mark.parametrize("use_idf", [False, True])
    def test_batch_matches_scalar_bit_for_bit(self, use_idf):
        emb = SentenceEmbedder(dim=96, use_idf=use_idf, cache_size=0)
        if use_idf:
            emb.partial_fit_idf(TEXTS * 3)
        batch = emb._embed_batch(list(TEXTS))
        scalar = encode_scalar(emb, TEXTS)
        assert np.array_equal(batch, scalar)

    def test_collision_heavy_config_matches(self):
        # dim=2 with 4 hashes forces duplicate dimensions inside single
        # tokens, pinning the keep-last fancy-assignment collapse
        emb = SentenceEmbedder(dim=2, n_hashes=4, cache_size=0)
        batch = emb._embed_batch(list(TEXTS))
        scalar = encode_scalar(emb, TEXTS)
        assert np.array_equal(batch, scalar)

    def test_public_encode_matches_scalar_with_repeats(self):
        emb = SentenceEmbedder(dim=64)
        batch = TEXTS * 5  # repeats exercise cache + in-batch dedup
        out = emb.encode(batch)
        assert np.array_equal(out, encode_scalar(emb, batch))
        # a second (fully cached) pass returns the same rows
        assert np.array_equal(emb.encode(batch), out)

    def test_single_string_matches_batch_row(self):
        emb = SentenceEmbedder(dim=64, cache_size=0)
        single = np.stack([emb.encode(t) for t in TEXTS])
        assert np.array_equal(single, emb.encode(TEXTS))

    def test_embed_one_is_the_scalar_reference(self):
        emb = SentenceEmbedder(dim=64, cache_size=0)
        for t in TEXTS:
            assert np.array_equal(emb._embed_one(t), embed_one_scalar(emb, t))


class TestLRUCache:
    def test_hit_refreshes_recency(self):
        emb = SentenceEmbedder(dim=32, cache_size=3)
        emb.encode(["a1", "b2", "c3"])
        assert emb.cache_len == 3
        emb.encode("a1")  # hit: "a1" becomes most recently used
        emb.encode("d4")  # eviction drops the least recently used: "b2"
        assert "a1" in emb._cache
        assert "b2" not in emb._cache
        assert set(emb._cache) == {"a1", "c3", "d4"}

    def test_hit_serves_cached_vector(self):
        emb = SentenceEmbedder(dim=32, cache_size=4)
        first = emb.encode("srun gemm")
        cached = emb._cache["srun gemm"]
        again = emb.encode("srun gemm")
        assert np.array_equal(first, again)
        assert emb._cache["srun gemm"] is cached  # hit did not re-embed

    def test_batch_hits_refresh_recency_too(self):
        emb = SentenceEmbedder(dim=32, cache_size=3)
        emb.encode(["a1", "b2", "c3"])
        emb.encode(["a1", "d4"])  # list-path hit on "a1", miss on "d4"
        assert "a1" in emb._cache
        assert "b2" not in emb._cache


class TestPartialFitIdf:
    def test_batched_tokenization_matches_per_string(self):
        texts = TEXTS * 2  # duplicates must still count as separate docs
        one = SentenceEmbedder(dim=48, use_idf=True)
        one.partial_fit_idf(texts)
        per = SentenceEmbedder(dim=48, use_idf=True)
        for t in texts:
            per.partial_fit_idf([t])
        assert one.idf_table.state_dict() == per.idf_table.state_dict()
        assert np.array_equal(one.encode(TEXTS), per.encode(TEXTS))

    def test_idf_update_invalidates_contribution_cache(self):
        emb = SentenceEmbedder(dim=48, use_idf=True)
        before = emb.encode(TEXTS).copy()
        emb.partial_fit_idf(TEXTS * 4)
        after = emb.encode(TEXTS)
        # weights changed, so cached contributions must have been recomputed
        assert not np.array_equal(before, after)
        assert np.array_equal(after, encode_scalar(emb, TEXTS))
