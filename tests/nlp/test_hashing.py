"""Tests for deterministic FNV-1a hashing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.hashing import fnv1a64, hash_token


class TestFNV:
    def test_known_vector(self):
        # FNV-1a 64-bit of empty input is the offset basis
        assert fnv1a64(b"") == 0xCBF29CE484222325

    def test_determinism(self):
        assert fnv1a64(b"hello") == fnv1a64(b"hello")

    def test_seed_changes_hash(self):
        assert fnv1a64(b"hello", seed=1) != fnv1a64(b"hello", seed=2)

    def test_64_bit_range(self):
        for s in (b"", b"a", b"abcdef" * 10):
            assert 0 <= fnv1a64(s) < 2**64

    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_always_in_range(self, data):
        assert 0 <= fnv1a64(data) < 2**64

    @given(st.text(max_size=32), st.text(max_size=32))
    @settings(max_examples=150, deadline=None)
    def test_distinct_tokens_rarely_collide(self, a, b):
        # not a strict guarantee, but FNV on short tokens should separate
        # unequal inputs in a 64-bit space essentially always
        if a != b:
            assert hash_token(a) != hash_token(b)

    def test_unicode_handled(self):
        assert isinstance(hash_token("日本語ジョブ"), int)


class TestBitDispersion:
    def test_top_bit_used(self):
        # the embedder derives signs from the top bit; both signs must occur
        tops = {(hash_token(f"t{i}") >> 63) & 1 for i in range(64)}
        assert tops == {0, 1}
