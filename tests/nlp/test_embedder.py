"""Tests for the hashed sentence embedder (SBERT substitute)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.embedder import SentenceEmbedder

_safe_text = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd", "Po"), max_codepoint=0x7F),
    min_size=0,
    max_size=40,
)


class TestShapeAndNorm:
    def test_default_dim_matches_sbert(self):
        e = SentenceEmbedder()
        assert e.encode("hello").shape == (384,)

    def test_batch_shape(self):
        e = SentenceEmbedder(dim=64)
        out = e.encode(["a", "b", "c"])
        assert out.shape == (3, 64)
        assert out.dtype == np.float32

    def test_unit_norm(self):
        e = SentenceEmbedder(dim=128)
        v = e.encode("riken-ra0042,run_cavity.sh,48,1,env,2.0")
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-5)

    def test_empty_string_has_canonical_vector(self):
        e = SentenceEmbedder(dim=32)
        v = e.encode("")
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-6)

    def test_empty_batch(self):
        e = SentenceEmbedder(dim=32)
        assert e.encode([]).shape == (0, 32)

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            SentenceEmbedder(dim=32).encode([1])

    @given(_safe_text)
    @settings(max_examples=100, deadline=None)
    def test_norm_property(self, text):
        v = SentenceEmbedder(dim=64, cache_size=0).encode(text)
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-4)


class TestDeterminism:
    def test_same_config_same_vectors(self):
        a = SentenceEmbedder(dim=96, seed=3).encode("x,y,z")
        b = SentenceEmbedder(dim=96, seed=3).encode("x,y,z")
        assert np.array_equal(a, b)

    def test_seed_changes_projection(self):
        a = SentenceEmbedder(dim=96, seed=3).encode("x,y,z")
        b = SentenceEmbedder(dim=96, seed=4).encode("x,y,z")
        assert not np.allclose(a, b)

    def test_cache_does_not_change_values(self):
        e1 = SentenceEmbedder(dim=96, cache_size=1000)
        e2 = SentenceEmbedder(dim=96, cache_size=0)
        texts = ["a,b", "a,b", "c,d"]
        assert np.allclose(e1.encode(texts), e2.encode(texts))


class TestLocality:
    """The property KNN/RF rely on: similar strings => nearby vectors."""

    def test_similar_beats_dissimilar(self):
        e = SentenceEmbedder()
        a = e.encode("riken-ra0042,run_cavity_les012.sh,192,4,gcc/openmpi,2.0")
        b = e.encode("riken-ra0042,run_cavity_les013.sh,192,4,gcc/openmpi,2.0")
        c = e.encode("corp-hp9001,train_bert_07,3072,64,conda/pytorch,2.2")
        assert float(a @ b) > 0.8
        assert float(a @ b) > float(a @ c) + 0.3

    def test_identical_strings_identical_vectors(self):
        e = SentenceEmbedder()
        out = e.encode(["same,string"] * 2)
        assert np.array_equal(out[0], out[1])

    def test_shared_user_shares_similarity(self):
        e = SentenceEmbedder()
        a = e.encode("univ-gp1234,jobA,48,1,envX,2.0")
        b = e.encode("univ-gp1234,jobB,96,2,envY,2.2")
        c = e.encode("intl-ex9999,jobC,12,1,envZ,2.0")
        assert float(a @ b) > float(a @ c)


class TestCache:
    def test_cache_grows_and_hits(self):
        e = SentenceEmbedder(dim=32, cache_size=10)
        e.encode(["a", "b", "a"])
        assert e.cache_len == 2

    def test_cache_eviction_fifo(self):
        e = SentenceEmbedder(dim=32, cache_size=2)
        e.encode(["a", "b", "c"])
        assert e.cache_len == 2

    def test_clear_cache(self):
        e = SentenceEmbedder(dim=32)
        e.encode("a")
        e.clear_cache()
        assert e.cache_len == 0

    def test_cache_disabled(self):
        e = SentenceEmbedder(dim=32, cache_size=0)
        e.encode(["a", "a"])
        assert e.cache_len == 0


class TestIDF:
    def test_idf_changes_vectors(self):
        e = SentenceEmbedder(dim=64, use_idf=True)
        before = e.encode("alpha beta").copy()
        e.partial_fit_idf(["beta common"] * 50 + ["alpha rare"])
        after = e.encode("alpha beta")
        assert not np.allclose(before, after)

    def test_idf_downweights_common_tokens(self):
        e = SentenceEmbedder(dim=256, use_idf=True)
        e.partial_fit_idf(["common"] * 200 + ["rare"])
        rare = e.encode("rare")
        both = e.encode("rare common")
        common = e.encode("common")
        # "rare common" should stay closer to "rare" than to "common"
        assert float(both @ rare) > float(both @ common)

    def test_partial_fit_clears_cache(self):
        e = SentenceEmbedder(dim=32, use_idf=True)
        e.encode("x")
        e.partial_fit_idf(["x"])
        assert e.cache_len == 0


class TestPersistence:
    def test_config_roundtrip(self):
        e = SentenceEmbedder(dim=48, n_hashes=3, seed=9, use_idf=True, ngram_range=(2, 3))
        e.partial_fit_idf(["a b c", "a d"])
        e2 = SentenceEmbedder.from_config_dict(e.config_dict())
        assert np.array_equal(e.encode("a b x"), e2.encode("a b x"))


class TestValidation:
    def test_bad_dim(self):
        with pytest.raises(ValueError):
            SentenceEmbedder(dim=1)

    def test_bad_hashes(self):
        with pytest.raises(ValueError):
            SentenceEmbedder(n_hashes=0)

    def test_bad_cache(self):
        with pytest.raises(ValueError):
            SentenceEmbedder(cache_size=-1)
