"""Tests for online document-frequency statistics."""

import math

import pytest

from repro.nlp.tfidf import DocumentFrequencyTable


class TestDocumentFrequency:
    def test_empty_table_neutral(self):
        t = DocumentFrequencyTable()
        assert t.n_docs == 0
        assert t.idf(123) == 1.0

    def test_counts_documents_not_occurrences(self):
        t = DocumentFrequencyTable()
        t.partial_fit([[1, 1, 1], [1, 2]])
        assert t.document_frequency(1) == 2  # not 4
        assert t.document_frequency(2) == 1

    def test_idf_formula(self):
        t = DocumentFrequencyTable()
        t.partial_fit([[1], [1], [2]])
        assert t.idf(1) == pytest.approx(math.log(4 / 3) + 1)
        assert t.idf(2) == pytest.approx(math.log(4 / 2) + 1)

    def test_unseen_token_gets_max_weight(self):
        t = DocumentFrequencyTable()
        t.partial_fit([[1]] * 10)
        assert t.idf(999) > t.idf(1)

    def test_incremental_fit_accumulates(self):
        t = DocumentFrequencyTable()
        t.partial_fit([[1]])
        t.partial_fit([[1], [2]])
        assert t.n_docs == 3
        assert t.document_frequency(1) == 2

    def test_rare_weighs_more_than_common(self):
        t = DocumentFrequencyTable()
        t.partial_fit([[1, 2]] * 5 + [[2]] * 95)
        assert t.idf(1) > t.idf(2)

    def test_state_roundtrip(self):
        t = DocumentFrequencyTable()
        t.partial_fit([[1, 2], [2, 3]])
        t2 = DocumentFrequencyTable.from_state_dict(t.state_dict())
        assert t2.n_docs == t.n_docs
        for tok in (1, 2, 3, 4):
            assert t2.idf(tok) == t.idf(tok)
