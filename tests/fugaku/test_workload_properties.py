"""Property-based invariants of the workload generator.

Each example generates a (tiny) trace with a random seed and checks the
structural invariants every consumer of :class:`JobTrace` relies on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JobCharacterizer
from repro.fugaku.workload import APR_1, DAY_SECONDS, WorkloadConfig, WorkloadGenerator


def _trace(seed, scale=1 / 2000):
    return WorkloadGenerator(WorkloadConfig(scale=scale, seed=seed)).generate()


class TestGeneratorInvariants:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_structural_invariants(self, seed):
        trace = _trace(seed)
        n = len(trace)
        assert n == WorkloadConfig(scale=1 / 2000).n_jobs

        sub = trace["submit_time"]
        assert np.all(np.diff(sub) >= 0)
        assert sub.min() >= 0 and sub.max() < APR_1 * DAY_SECONDS

        assert np.array_equal(trace["job_id"], np.arange(1, n + 1))
        assert np.all(trace["start_time"] >= sub)
        assert np.all(trace["duration"] > 0)
        assert np.all(trace["nodes_alloc"] >= 1)
        assert np.all(trace["cores_req"] >= 1)
        for c in ("perf2", "perf3", "perf4", "perf5", "power_avg_w"):
            assert np.all(trace[c] >= 0)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_characterizable_and_two_sided(self, seed):
        trace = _trace(seed)
        labels = JobCharacterizer().labels_from_trace(trace)
        assert set(np.unique(labels)) <= {0, 1}
        # both classes occur (the catalog straddles the ridge)
        assert len(np.unique(labels)) == 2
        # At 1/2000 scale (~1100 jobs) the memory-bound share fluctuates
        # wildly with the seed (median ~0.78, but hypothesis found 0.496
        # at seed=233 and 0.335 at seed=344), so per-seed this can only be
        # a non-degeneracy bound: the class mix never collapses.  The
        # paper's 3.44:1 aggregate dominance is pinned at full scale by
        # benchmarks/test_table2_distribution.py.
        assert 0.2 < (labels == 0).mean() < 0.995

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_counters_encode_plausible_intensity(self, seed):
        """Synthesized counters land jobs in a physical roofline region."""
        trace = _trace(seed)
        ch = JobCharacterizer()
        p, mb, op, _ = ch.roofline_coordinates(trace)
        assert np.all(p >= 0)
        assert np.all(mb > 0)
        # per-node performance cannot exceed the boost-mode peak by more
        # than the generator's efficiency jitter allows
        assert p.max() <= 3380.0 * 1.6
        # operational intensity spans both sides of the ridge
        assert op.min() < 3.3 < op.max()
