"""Tests for the JobTrace column store."""

import numpy as np
import pytest

from repro.fugaku.trace import JobRecord, JobTrace, NUMERIC_COLUMNS, STRING_COLUMNS


def make_columns(n=5):
    cols = {}
    for i, name in enumerate(NUMERIC_COLUMNS):
        if NUMERIC_COLUMNS[name].kind == "i":
            cols[name] = np.arange(1, n + 1, dtype=np.int64) + i
        else:
            cols[name] = np.linspace(1.0, 2.0, n) + i
    for name in STRING_COLUMNS:
        cols[name] = np.array([f"{name}_{j}" for j in range(n)], dtype=object)
    cols["submit_time"] = np.arange(n, dtype=np.float64) * 100.0
    return cols


class TestConstruction:
    def test_roundtrip_columns(self):
        t = JobTrace(make_columns())
        assert len(t) == 5
        assert "job_id" in t
        assert t["user_name"][0] == "user_name_0"

    def test_missing_column_rejected(self):
        cols = make_columns()
        del cols["perf2"]
        with pytest.raises(KeyError):
            JobTrace(cols)

    def test_length_mismatch_rejected(self):
        cols = make_columns()
        cols["perf2"] = cols["perf2"][:-1]
        with pytest.raises(ValueError):
            JobTrace(cols)

    def test_diagnostic_columns_optional(self):
        cols = make_columns()
        cols["template_id"] = np.zeros(5, dtype=np.int64)
        t = JobTrace(cols)
        assert "template_id" in t

    def test_non_1d_rejected(self):
        cols = make_columns()
        cols["perf2"] = np.zeros((5, 2))
        with pytest.raises(ValueError):
            JobTrace(cols)


class TestRowAccess:
    def test_row_materializes_record(self):
        t = JobTrace(make_columns())
        r = t.row(0)
        assert isinstance(r, JobRecord)
        assert r.user_name == "user_name_0"
        assert isinstance(r.job_id, int)
        assert isinstance(r.duration, float)

    def test_row_out_of_range(self):
        t = JobTrace(make_columns())
        with pytest.raises(IndexError):
            t.row(10)

    def test_negative_index(self):
        t = JobTrace(make_columns())
        assert t.row(-1).user_name == "user_name_4"

    def test_iter_rows_count(self):
        t = JobTrace(make_columns())
        assert sum(1 for _ in t.iter_rows()) == 5

    def test_as_dict(self):
        t = JobTrace(make_columns())
        d = t.row(0).as_dict()
        assert set(d) == set(NUMERIC_COLUMNS) | set(STRING_COLUMNS)


class TestSlicing:
    def test_between_uses_submit_time(self):
        t = JobTrace(make_columns())
        sub = t.between(100.0, 300.0)
        assert len(sub) == 2
        assert np.all(sub["submit_time"] >= 100.0)
        assert np.all(sub["submit_time"] < 300.0)

    def test_select_mask(self):
        t = JobTrace(make_columns())
        sub = t.select(t["submit_time"] > 150.0)
        assert len(sub) == 3

    def test_sort_by_submit(self):
        cols = make_columns()
        cols["submit_time"] = np.array([3.0, 1.0, 2.0, 5.0, 4.0])
        t = JobTrace(cols).sort_by_submit()
        assert np.all(np.diff(t["submit_time"]) >= 0)

    def test_concat(self):
        t = JobTrace(make_columns())
        both = JobTrace.concat([t, t])
        assert len(both) == 10

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValueError):
            JobTrace.concat([])


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        t = JobTrace(make_columns())
        t.save(tmp_path / "trace")
        t2 = JobTrace.load(tmp_path / "trace")
        assert len(t2) == len(t)
        assert np.allclose(t2["perf2"], t["perf2"])
        assert list(t2["user_name"]) == list(t["user_name"])

    def test_generated_trace_roundtrip(self, tiny_trace, tmp_path):
        tiny_trace.save(tmp_path / "g")
        back = JobTrace.load(tmp_path / "g")
        assert len(back) == len(tiny_trace)
        assert np.allclose(back["submit_time"], tiny_trace["submit_time"])
