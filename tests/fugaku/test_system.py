"""Tests for the Fugaku machine model (Table I)."""

import pytest

from repro.fugaku.system import BOOST_MODE_GHZ, FUGAKU, FugakuSpec, NORMAL_MODE_GHZ


class TestTable1Constants:
    def test_node_count(self):
        assert FUGAKU.num_nodes == 158_976

    def test_cores(self):
        assert FUGAKU.cores_per_node == 48
        assert FUGAKU.assistant_cores_per_node == 4

    def test_peaks(self):
        assert FUGAKU.peak_gflops_node == 3380.0
        assert FUGAKU.peak_membw_gbs == 1024.0

    def test_memory(self):
        assert FUGAKU.memory_gib_per_node == 32

    def test_frequencies(self):
        assert NORMAL_MODE_GHZ in FUGAKU.frequencies_ghz
        assert BOOST_MODE_GHZ in FUGAKU.frequencies_ghz


class TestDerivedQuantities:
    def test_ridge_point_matches_paper(self):
        # paper §IV-B: op_r ≈ 3.3 Flops/Byte
        assert FUGAKU.ridge_point == pytest.approx(3.30, abs=0.01)

    def test_sve_multiplier_is_four(self):
        # 512-bit SVE / 128-bit slices (the x4 of Equation 4)
        assert FUGAKU.sve_multiplier == 4

    def test_cmg_count(self):
        assert FUGAKU.num_cmgs_per_node == 4

    def test_attainable_below_ridge_is_bandwidth_bound(self):
        op = 1.0
        assert FUGAKU.attainable_gflops(op) == pytest.approx(FUGAKU.peak_membw_gbs * op)

    def test_attainable_above_ridge_is_peak(self):
        assert FUGAKU.attainable_gflops(100.0) == FUGAKU.peak_gflops_node

    def test_attainable_at_ridge_touches_both_ceilings(self):
        at = FUGAKU.attainable_gflops(FUGAKU.ridge_point)
        assert at == pytest.approx(FUGAKU.peak_gflops_node)

    def test_attainable_rejects_negative(self):
        with pytest.raises(ValueError):
            FUGAKU.attainable_gflops(-1.0)

    def test_is_boost(self):
        assert FUGAKU.is_boost(2.2)
        assert not FUGAKU.is_boost(2.0)


class TestCustomSpec:
    def test_other_system_ridge(self):
        spec = FugakuSpec(name="toy", peak_gflops_node=1000.0, peak_membw_gbs=100.0)
        assert spec.ridge_point == pytest.approx(10.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            FUGAKU.num_nodes = 1
