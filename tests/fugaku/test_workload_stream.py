"""generate_stream(): day-batched generation must equal generate() bit for bit."""

import numpy as np

from repro.fugaku.trace import JobTrace
from repro.fugaku.workload import WorkloadConfig, WorkloadGenerator

CFG = WorkloadConfig(scale=1.0 / 400.0, n_days=25, seed=31)


def test_stream_concat_is_bit_identical_to_generate():
    full = WorkloadGenerator(CFG).generate()
    batches = list(WorkloadGenerator(CFG).generate_stream())
    cat = JobTrace(
        {k: np.concatenate([b[k] for b in batches]) for k in batches[0].column_names}
    )
    assert cat.column_names == full.column_names
    for name in full.column_names:
        assert np.array_equal(full[name], cat[name]), name


def test_batches_are_day_local_and_submit_sorted():
    day_seconds = 86_400.0
    last_end = -np.inf
    for batch in WorkloadGenerator(CFG).generate_stream():
        st = batch["submit_time"]
        assert np.all(np.diff(st) >= 0)  # sorted within the day
        days = np.floor_divide(st, day_seconds)
        assert days.min() == days.max()  # one day per batch
        assert st[0] >= last_end  # days never interleave
        last_end = st[-1]


def test_job_ids_are_sequential_across_batches():
    next_id = 1
    for batch in WorkloadGenerator(CFG).generate_stream():
        ids = batch["job_id"]
        assert np.array_equal(ids, np.arange(next_id, next_id + len(batch)))
        next_id += len(batch)


def test_maintenance_days_yield_no_batch():
    cfg = WorkloadConfig(scale=1.0 / 400.0, n_days=80, seed=5, maintenance_days=(40, 43))
    gen = WorkloadGenerator(cfg)
    daily = gen.daily_job_counts()
    expected = int(np.count_nonzero(daily))
    assert len(list(gen.generate_stream())) == expected
