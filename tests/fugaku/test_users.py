"""Tests for the user population model."""

import numpy as np
import pytest

from repro.fugaku.users import UserPopulation


@pytest.fixture(scope="module")
def pop():
    return UserPopulation(50, np.random.default_rng(3))


class TestPopulation:
    def test_size(self, pop):
        assert len(pop) == 50

    def test_zero_users_rejected(self):
        with pytest.raises(ValueError):
            UserPopulation(0, np.random.default_rng(0))

    def test_names_look_like_accounts(self, pop):
        for u in pop.users:
            group, rest = u.user_name.split("-", 1)
            assert group in ("riken", "univ", "jcahpc", "corp", "intl")
            assert rest[2:].isdigit()

    def test_affinity_is_distribution(self, pop):
        for u in pop.users:
            assert u.app_affinity.min() >= 0
            assert np.isclose(u.app_affinity.sum(), 1.0)

    def test_activity_weights_normalized(self, pop):
        w = pop.activity_weights()
        assert np.isclose(w.sum(), 1.0)
        assert w.min() > 0

    def test_activity_is_skewed(self, pop):
        # Zipf-like: the top decile of users carries well above 10% of traffic
        w = np.sort(pop.activity_weights())[::-1]
        assert w[:5].sum() > 0.15

    def test_boost_probs_in_range(self, pop):
        for u in pop.users:
            assert 0.0 < u.boost_prob_memory < 1.0
            assert 0.0 < u.boost_prob_compute < 1.0

    def test_sample_user_respects_rng(self, pop):
        a = pop.sample_user(np.random.default_rng(1)).user_name
        b = pop.sample_user(np.random.default_rng(1)).user_name
        assert a == b

    def test_boost_habits_differ_by_typical_class(self):
        # population means calibrated to Table II: memory-bound templates
        # request boost more often than compute-bound ones
        pop = UserPopulation(400, np.random.default_rng(11))
        bm = np.mean([u.boost_prob_memory for u in pop.users])
        bc = np.mean([u.boost_prob_compute for u in pop.users])
        assert bm > bc
