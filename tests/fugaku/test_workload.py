"""Tests for the calibrated workload generator."""

import numpy as np
import pytest

from repro.core import JobCharacterizer
from repro.fugaku.workload import (
    APR_1,
    DAY_SECONDS,
    FEB_1,
    JobTemplate,
    WorkloadConfig,
    WorkloadGenerator,
    generate_trace,
)


def make_template(**overrides):
    base = dict(
        template_id=1,
        user=None,
        app=None,
        job_name="job",
        environment="env",
        nodes_req=4,
        cores_req=192,
        freq_req_ghz=2.0,
        op_mu0=-1.0,
        op_slope=0.01,
        job_sigma=0.05,
        efficiency=0.5,
        duration_mu=6.0,
        duration_sigma=0.5,
        power_node_w=150.0,
        sve_fraction=0.4,
        read_fraction=0.7,
        birth_day=0.0,
        death_day=120.0,
        weight=1.0,
    )
    base.update(overrides)
    return JobTemplate(**base)


class TestJobTemplate:
    def test_op_mu_drifts_linearly_from_birth(self):
        t = make_template(op_mu0=-1.0, op_slope=0.01, birth_day=10.0)
        assert t.op_mu_at(10.0) == pytest.approx(-1.0)
        assert t.op_mu_at(30.0) == pytest.approx(-1.0 + 0.01 * 20)

    def test_regime_changes_apply_only_once_reached(self):
        t = make_template(
            op_slope=0.0, change_days=(50.0,), change_offsets=(0.3,)
        )
        assert t.op_mu_at(49.0) == pytest.approx(-1.0)
        assert t.op_mu_at(50.0) == pytest.approx(-0.7)
        assert t.op_mu_at(119.0) == pytest.approx(-0.7)


class TestConfig:
    def test_n_jobs_scales(self):
        assert WorkloadConfig(scale=1.0).n_jobs == 2_200_000
        assert WorkloadConfig(scale=1 / 100).n_jobs == 22_000

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(scale=1e-9).n_jobs

    def test_day_time_conversion(self):
        cfg = WorkloadConfig()
        assert cfg.day_to_time(2) == 2 * DAY_SECONDS
        assert cfg.time_to_day(DAY_SECONDS * 3.5) == 3.5

    def test_calendar_constants(self):
        # Dec(31) + Jan(31) = 62 -> Feb 1; trace spans 122 days
        assert FEB_1 == 62
        assert APR_1 == 122


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace(scale=1 / 1000, seed=5)
        b = generate_trace(scale=1 / 1000, seed=5)
        assert len(a) == len(b)
        assert np.array_equal(a["submit_time"], b["submit_time"])
        assert list(a["job_name"]) == list(b["job_name"])

    def test_different_seed_different_trace(self):
        a = generate_trace(scale=1 / 1000, seed=5)
        b = generate_trace(scale=1 / 1000, seed=6)
        assert not np.array_equal(a["perf2"], b["perf2"])


class TestStructure:
    def test_job_count_close_to_target(self, tiny_trace):
        assert len(tiny_trace) == WorkloadConfig(scale=1 / 800).n_jobs

    def test_sorted_by_submit_time(self, tiny_trace):
        assert np.all(np.diff(tiny_trace["submit_time"]) >= 0)

    def test_job_ids_sequential(self, tiny_trace):
        assert np.array_equal(
            tiny_trace["job_id"], np.arange(1, len(tiny_trace) + 1)
        )

    def test_time_span(self, tiny_trace):
        days = tiny_trace["submit_time"] / DAY_SECONDS
        assert days.min() >= 0
        assert days.max() < APR_1

    def test_timestamps_ordered_per_job(self, tiny_trace):
        assert np.all(tiny_trace["start_time"] >= tiny_trace["submit_time"])
        assert np.all(tiny_trace["end_time"] > tiny_trace["start_time"])
        assert np.allclose(
            tiny_trace["end_time"] - tiny_trace["start_time"], tiny_trace["duration"]
        )

    def test_resources_positive(self, tiny_trace):
        assert tiny_trace["nodes_req"].min() >= 1
        assert tiny_trace["cores_req"].min() >= 1
        assert np.array_equal(tiny_trace["nodes_alloc"], tiny_trace["nodes_req"])

    def test_counters_non_negative(self, tiny_trace):
        for c in ("perf2", "perf3", "perf4", "perf5"):
            assert tiny_trace[c].min() >= 0

    def test_frequencies_are_fugaku_modes(self, tiny_trace):
        assert set(np.unique(tiny_trace["freq_req_ghz"])) <= {2.0, 2.2}

    def test_batches_of_identical_jobs_exist(self, tiny_trace):
        # §V-C.c: jobs are usually submitted in batches of identical jobs
        _, counts = np.unique(tiny_trace["template_id"], return_counts=True)
        assert counts.max() >= 10


class TestCalibration:
    """The published statistics the generator is calibrated to (DESIGN.md §2)."""

    @pytest.fixture(scope="class")
    def cal_trace(self):
        return generate_trace(scale=1 / 200, seed=31)

    @pytest.fixture(scope="class")
    def cal_labels(self, cal_trace):
        return JobCharacterizer().labels_from_trace(cal_trace)

    def test_memory_bound_majority(self, cal_labels):
        # paper Table II: 77.5% memory-bound; generator targets that with
        # sampling noise at small scale
        frac = float((cal_labels == 0).mean())
        assert 0.65 < frac < 0.88

    def test_maintenance_gap_present(self, cal_trace):
        days = (cal_trace["submit_time"] / DAY_SECONDS).astype(int)
        counts = np.bincount(days, minlength=APR_1)
        lo, hi = WorkloadConfig().maintenance_days
        gap = counts[lo:hi].mean()
        normal = np.median(counts[counts > 0])
        assert gap < 0.25 * normal

    def test_boost_mode_not_aligned_with_class(self, cal_trace, cal_labels):
        # Fig 5 / Table II: many memory-bound jobs in boost mode, most
        # compute-bound jobs NOT in boost mode
        boost = cal_trace["freq_req_ghz"] >= 2.2
        mem = cal_labels == 0
        boost_given_mem = float(boost[mem].mean())
        boost_given_comp = float(boost[~mem].mean())
        assert 0.25 < boost_given_mem < 0.65
        assert 0.03 < boost_given_comp < 0.55

    def test_most_jobs_below_roofline(self, cal_trace):
        ch = JobCharacterizer()
        p, _, op, _ = ch.roofline_coordinates(cal_trace)
        eff = ch.roofline.efficiency(op, p)
        # §IV-C: the majority of jobs do not saturate the resources
        assert float((eff >= 0.5).mean()) < 0.5
        # but the values are physical
        assert float(np.max(eff)) <= 1.5  # jitter may slightly exceed 1


class TestGeneratorInternals:
    def test_daily_counts_sum_to_n_jobs(self):
        gen = WorkloadGenerator(WorkloadConfig(scale=1 / 800, seed=9))
        assert gen.daily_job_counts().sum() == gen.config.n_jobs

    def test_templates_have_valid_lifetimes(self):
        gen = WorkloadGenerator(WorkloadConfig(scale=1 / 800, seed=9))
        for t in gen.templates:
            assert t.death_day > t.birth_day
            assert 0 < t.daily_prob <= 1.0

    def test_template_drift_moves_op(self):
        gen = WorkloadGenerator(WorkloadConfig(scale=1 / 800, seed=9))
        tpl = max(gen.templates, key=lambda t: abs(t.op_slope))
        assert tpl.op_mu_at(tpl.birth_day + 10) != pytest.approx(
            tpl.op_mu_at(tpl.birth_day)
        )

    def test_generic_names_shared_across_users(self):
        gen = WorkloadGenerator(WorkloadConfig(scale=1 / 100, seed=9))
        generic = [t for t in gen.templates if t.job_name in gen.GENERIC_NAMES]
        users = {t.user.user_name for t in generic}
        assert len(users) > 3
