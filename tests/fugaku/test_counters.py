"""Tests for the A64FX PMU counter mapping (Equations 4 and 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fugaku.counters import (
    CounterSet,
    counters_from_flops_bytes,
    flops_from_counters,
    moved_bytes_from_counters,
)
from repro.fugaku.system import FUGAKU


class TestEquation4:
    def test_fixed_ops_only(self):
        assert flops_from_counters(100.0, 0.0) == 100.0

    def test_sve_ops_scaled_by_four(self):
        # perf3 counts per 128-bit slice; A64FX is 512-bit SVE
        assert flops_from_counters(0.0, 25.0) == 100.0

    def test_combined(self):
        assert flops_from_counters(10.0, 5.0) == 10.0 + 20.0

    def test_vectorized(self):
        out = flops_from_counters(np.array([1.0, 2.0]), np.array([1.0, 0.0]))
        assert np.allclose(out, [5.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            flops_from_counters(-1.0, 0.0)


class TestEquation5:
    def test_single_read_request_moves_one_line_per_cmg_share(self):
        # (1 + 0) * 256 / 12
        assert moved_bytes_from_counters(1.0, 0.0) == pytest.approx(256.0 / 12.0)

    def test_reads_and_writes_summed(self):
        assert moved_bytes_from_counters(6.0, 6.0) == pytest.approx(12 * 256.0 / 12.0)

    def test_vectorized(self):
        out = moved_bytes_from_counters(np.array([12.0]), np.array([0.0]))
        assert np.allclose(out, [256.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            moved_bytes_from_counters(0.0, -2.0)


class TestInverse:
    def test_scalar_roundtrip(self):
        p2, p3, p4, p5 = counters_from_flops_bytes(1e12, 5e11)
        assert flops_from_counters(p2, p3) == pytest.approx(1e12, rel=1e-12)
        assert moved_bytes_from_counters(p4, p5) == pytest.approx(5e11, rel=1e-12)

    def test_fraction_bounds_enforced(self):
        with pytest.raises(ValueError):
            counters_from_flops_bytes(1.0, 1.0, sve_fraction=1.5)
        with pytest.raises(ValueError):
            counters_from_flops_bytes(1.0, 1.0, read_fraction=-0.1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            counters_from_flops_bytes(-1.0, 1.0)

    def test_sve_fraction_splits_ops(self):
        p2, p3, _, _ = counters_from_flops_bytes(100.0, 1.0, sve_fraction=0.0)
        assert p2 == 100.0 and p3 == 0.0
        p2, p3, _, _ = counters_from_flops_bytes(100.0, 1.0, sve_fraction=1.0)
        assert p2 == 0.0 and p3 == 25.0

    @given(
        flops=st.floats(min_value=0.0, max_value=1e18),
        moved=st.floats(min_value=0.0, max_value=1e18),
        sve=st.floats(min_value=0.0, max_value=1.0),
        read=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, flops, moved, sve, read):
        p2, p3, p4, p5 = counters_from_flops_bytes(
            flops, moved, sve_fraction=sve, read_fraction=read
        )
        assert flops_from_counters(p2, p3) == pytest.approx(flops, rel=1e-9, abs=1e-9)
        assert moved_bytes_from_counters(p4, p5) == pytest.approx(moved, rel=1e-9, abs=1e-9)

    def test_vectorized_roundtrip(self, rng):
        flops = rng.uniform(0, 1e15, size=100)
        moved = rng.uniform(0, 1e15, size=100)
        p2, p3, p4, p5 = counters_from_flops_bytes(flops, moved)
        assert np.allclose(flops_from_counters(p2, p3), flops)
        assert np.allclose(moved_bytes_from_counters(p4, p5), moved)


class TestCounterSet:
    def test_valid(self):
        cs = CounterSet(1.0, 2.0, 3.0, 4.0)
        assert cs.perf2 == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CounterSet(-1.0, 0.0, 0.0, 0.0)


class TestSpecDependence:
    def test_different_cache_line(self):
        from repro.fugaku.system import FugakuSpec

        spec = FugakuSpec(cache_line_bytes=64)
        assert moved_bytes_from_counters(12.0, 0.0, spec=spec) == pytest.approx(64.0)

    def test_different_sve_width(self):
        from repro.fugaku.system import FugakuSpec

        spec = FugakuSpec(sve_bits=256)  # x2 multiplier
        assert flops_from_counters(0.0, 10.0, spec=spec) == 20.0
