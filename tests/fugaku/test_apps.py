"""Tests for the application archetype catalog."""

import numpy as np
import pytest

from repro.fugaku.apps import APP_CATALOG, AppArchetype, build_catalog, catalog_weights


class TestCatalog:
    def test_build_is_deterministic(self):
        assert [a.name for a in build_catalog()] == [a.name for a in APP_CATALOG]

    def test_unique_names(self):
        names = [a.name for a in APP_CATALOG]
        assert len(set(names)) == len(names)

    def test_weights_normalize(self):
        w = catalog_weights()
        assert np.isclose(w.sum(), 1.0)
        assert w.min() > 0

    def test_covers_both_sides_of_ridge(self):
        ridge_log = np.log10(3380.0 / 1024.0)
        mus = np.array([a.op_mu for a in APP_CATALOG])
        assert (mus < ridge_log - 0.5).any()
        assert (mus > ridge_log + 0.5).any()

    def test_ambiguous_archetypes_near_ridge(self):
        # the irreducible-noise suppliers straddle the ridge (±1 sigma)
        ridge_log = np.log10(3380.0 / 1024.0)
        near = [a for a in APP_CATALOG if abs(a.op_mu - ridge_log) < a.op_sigma]
        assert len(near) >= 1

    def test_memory_side_has_most_weight(self):
        ridge_log = np.log10(3380.0 / 1024.0)
        w = catalog_weights()
        mem_w = sum(wi for a, wi in zip(APP_CATALOG, w) if a.op_mu <= ridge_log)
        assert mem_w > 0.6

    def test_node_probs_valid(self):
        for a in APP_CATALOG:
            assert np.isclose(sum(a.node_probs), 1.0)
            assert all(n >= 1 for n in a.node_choices)

    def test_environments_and_tokens_nonempty(self):
        for a in APP_CATALOG:
            assert a.environments
            assert a.name_tokens


class TestArchetypeValidation:
    def _kwargs(self, **over):
        base = dict(
            name="x", domain="d", weight=1.0, op_mu=0.0, op_sigma=0.1,
            job_sigma=0.1, drift_sigma=0.001, eff_alpha=1.0, eff_beta=1.0,
            node_choices=(1, 2), node_probs=(0.5, 0.5), duration_mu=7.0,
            duration_sigma=1.0, power_base_w=100.0,
            environments=("e",), name_tokens=("t",),
        )
        base.update(over)
        return base

    def test_valid(self):
        AppArchetype(**self._kwargs())

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            AppArchetype(**self._kwargs(weight=-0.1))

    def test_prob_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AppArchetype(**self._kwargs(node_probs=(1.0,)))

    def test_prob_sum_rejected(self):
        with pytest.raises(ValueError):
            AppArchetype(**self._kwargs(node_probs=(0.5, 0.6)))

    def test_empty_catalog_weights_rejected(self):
        zero = AppArchetype(**self._kwargs(weight=0.0))
        with pytest.raises(ValueError):
            catalog_weights((zero,))
