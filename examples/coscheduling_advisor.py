"""Co-scheduling advisor: a downstream use of MCBound's predictions.

The paper motivates pre-execution classification with job co-scheduling:
pairing a memory-bound job with a compute-bound one on the same node
improves throughput because they saturate different resources (§I, [8,9]).
This example builds that consumer: it takes one day of incoming
submissions, predicts each job's class with a trained MCBound instance,
and greedily pairs complementary jobs into co-schedule slots, reporting
how many pairings the predictions enabled and how many were correct
against ground truth.

Run:  python examples/coscheduling_advisor.py
"""

from collections import deque

import numpy as np

from repro.core import MCBound, MCBoundConfig, TrainingWorkflow, load_trace_into_db
from repro.fugaku import generate_trace
from repro.fugaku.workload import DAY_SECONDS
from repro.roofline.characterize import COMPUTE_BOUND, MEMORY_BOUND


def pair_jobs(job_ids, labels):
    """Greedy pairing: one memory-bound with one compute-bound, FIFO order."""
    mem = deque(j for j, l in zip(job_ids, labels) if l == MEMORY_BOUND)
    comp = deque(j for j, l in zip(job_ids, labels) if l == COMPUTE_BOUND)
    pairs = []
    while mem and comp:
        pairs.append((mem.popleft(), comp.popleft()))
    return pairs, list(mem) + list(comp)


def main() -> None:
    trace = generate_trace(scale=1 / 200, seed=11)
    framework = MCBound(
        MCBoundConfig(
            algorithm="RF",
            model_params={"n_estimators": 15, "max_depth": 12,
                          "splitter": "hist", "random_state": 0},
            alpha_days=15.0,
        ),
        load_trace_into_db(trace),
    )
    now = 70 * DAY_SECONDS
    TrainingWorkflow(framework).run(now)

    job_ids, predicted = framework.predict_window(now, now + DAY_SECONDS)
    pairs, leftovers = pair_jobs(job_ids.tolist(), predicted.tolist())
    print(f"incoming jobs today    : {len(job_ids)}")
    print(f"co-schedule pairs made : {len(pairs)}")
    print(f"unpaired (same class)  : {len(leftovers)}")

    # validate pairings against the post-execution ground truth
    truth_ids, truth = framework.characterize_window(now, now + DAY_SECONDS)
    truth_of = dict(zip(truth_ids.tolist(), truth.tolist()))
    good = sum(
        1 for m, c in pairs
        if truth_of[m] == MEMORY_BOUND and truth_of[c] == COMPUTE_BOUND
    )
    if pairs:
        print(f"correctly complementary: {good}/{len(pairs)} "
              f"({good / len(pairs):.1%})")

    # what random pairing would have achieved on the same day
    rng = np.random.default_rng(0)
    shuffled = rng.permutation(job_ids)
    random_pairs = [
        (int(shuffled[i]), int(shuffled[i + 1]))
        for i in range(0, len(shuffled) - 1, 2)
    ][: len(pairs)]
    rand_good = sum(
        1 for a, b in random_pairs
        if {truth_of[a], truth_of[b]} == {MEMORY_BOUND, COMPUTE_BOUND}
    )
    if random_pairs:
        print(f"random-pairing baseline: {rand_good}/{len(random_pairs)} "
              f"({rand_good / len(random_pairs):.1%})")


if __name__ == "__main__":
    main()
