"""Predict job duration and power before execution (§VI future work).

The paper's planned extension: reuse the KNN similar-jobs search to
predict *continuous* job features from submission metadata.  This example
trains :class:`repro.core.JobFeaturePredictor` on a month of completed
jobs and predicts the duration and average power of the next day's
submissions, comparing against a global-mean baseline.

Run:  python examples/predict_job_features.py
"""

import numpy as np

from repro.core import DataFetcher, JobFeaturePredictor, load_trace_into_db
from repro.evaluation.reporting import format_table
from repro.fugaku import generate_trace
from repro.fugaku.workload import DAY_SECONDS


def main() -> None:
    trace = generate_trace(scale=1 / 200, seed=23)
    fetcher = DataFetcher(load_trace_into_db(trace))

    train_start, now = 32 * DAY_SECONDS, 62 * DAY_SECONDS
    test_records = fetcher.fetch(start_time=now, end_time=now + DAY_SECONDS)
    print(f"training window: 30 days; predicting {len(test_records)} new jobs\n")

    rows = []
    for target, unit in (("duration", "s"), ("power_avg_w", "W")):
        predictor = JobFeaturePredictor(target, n_neighbors=5, weights="distance")
        predictor.train_window(fetcher, train_start, now)

        y_true = np.array([r[target] for r in test_records])
        y_pred = predictor.inference(test_records)
        baseline = np.full_like(
            y_true,
            np.mean([r[target] for r in fetcher.fetch(start_time=train_start, end_time=now)]),
        )
        rows.append([
            target,
            f"{np.median(y_true):.0f} {unit}",
            f"{predictor.median_relative_error(y_true, y_pred):.1%}",
            f"{predictor.median_relative_error(y_true, baseline):.1%}",
        ])

    print(format_table(
        ["target", "median true", "KNN med.rel.err", "global-mean med.rel.err"],
        rows,
        title="Pre-execution feature prediction (KNN regression)",
    ))
    print("\nThe same submission embedding serves every target — the point of")
    print("the paper's 'predict other job features with the KNN model' plan.")


if __name__ == "__main__":
    main()
