"""Deploy MCBound as an HTTP backend (paper artifact A1).

Boots the full deployment story of §III-E: loads a trace into the jobs
data storage, runs the first Training Workflow, starts the HTTP app on a
local port, and exercises the API over real sockets — then keeps serving
until interrupted (pass --once to exit after the smoke test).

Run:  python examples/deploy_server.py [--once] [--port 8080]
"""

import argparse
import json
import urllib.request

from repro.core import MCBound, MCBoundConfig, build_app, load_trace_into_db
from repro.fugaku import generate_trace
from repro.fugaku.workload import DAY_SECONDS
from repro.web import serve


def call(url, payload=None):
    if payload is None:
        req = urllib.request.Request(url)
    else:
        req = urllib.request.Request(
            url, data=json.dumps(payload).encode(), method="POST",
            headers={"Content-Type": "application/json"},
        )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--once", action="store_true", help="exit after the smoke test")
    parser.add_argument("--port", type=int, default=0, help="port (0 = auto)")
    args = parser.parse_args()

    trace = generate_trace(scale=1 / 400, seed=7)
    framework = MCBound(
        MCBoundConfig(
            algorithm="KNN",
            model_params={"n_neighbors": 5, "algorithm": "brute"},
            alpha_days=30.0,
        ),
        load_trace_into_db(trace),
    )

    handle = serve(build_app(framework), port=args.port)
    print(f"MCBound backend listening on {handle.url}")

    # deploy script behaviour: first Training Workflow, then live API
    now = 62 * DAY_SECONDS
    summary = call(f"{handle.url}/train", {"now": now})
    print(f"initial training: {summary['n_jobs']:,} jobs, "
          f"classes {summary['class_counts']}")

    health = call(f"{handle.url}/health")
    print(f"health: {health}")

    pred = call(
        f"{handle.url}/predict",
        {"start_time": now, "end_time": now + DAY_SECONDS / 4},
    )
    shown = list(zip(pred["job_ids"], pred["label_names"]))[:5]
    print(f"predicted {len(pred['labels'])} new jobs; first few: {shown}")

    if args.once:
        handle.stop()
        print("smoke test complete; server stopped")
        return

    print("serving... Ctrl-C to stop")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        handle.stop()


if __name__ == "__main__":
    main()
