"""Characterize a workload and reproduce the paper's §IV analysis.

The stand-alone characterization use of MCBound (paper artifact A2):
labels every job of the trace with the Roofline rule, then prints the
Fig. 2 submission series, the Fig. 3/5 roofline summaries, Table II, and
the §V-C.d what-if impact estimate.

Run:  python examples/characterize_jobs.py [scale]
"""

import sys

import numpy as np

from repro.analysis import (
    class_share_per_day,
    detect_maintenance_gap,
    estimate_impact,
    fig3_scatter_summary,
    fig5_frequency_split,
    frequency_position_association,
    jobs_per_day,
    table2_distribution,
)
from repro.core import JobCharacterizer
from repro.evaluation.reporting import ascii_series, format_table
from repro.fugaku import generate_trace
from repro.fugaku.workload import APR_1


def main(scale: float = 1 / 200) -> None:
    trace = generate_trace(scale=scale, seed=42)
    characterizer = JobCharacterizer()
    labels = characterizer.labels_from_trace(trace)
    print(f"characterized {len(trace):,} jobs "
          f"(ridge = {characterizer.ridge_point:.2f} Flops/Byte)\n")

    # -- Fig. 2: submissions over time -------------------------------------
    days, counts = jobs_per_day(trace, n_days=APR_1)
    print(ascii_series(days.tolist(), counts, label="Fig 2 - submissions/day"))
    gap = detect_maintenance_gap(counts)
    print(f"maintenance shutdown detected on days: {gap}\n")

    # -- Fig. 3: the collective roofline ------------------------------------
    fig3 = fig3_scatter_summary(trace, characterizer)
    print("Fig 3 - collective roofline:")
    print(f"  memory-bound share     : {fig3.frac_memory_bound:.1%}")
    print(f"  median op intensity    : {fig3.median_op:.3f} Flops/Byte")
    print(f"  jobs >=50% of ceiling  : {fig3.frac_near_ceiling:.1%}")
    print(f"  jobs >=10% of ceiling  : {fig3.frac_within_decade_of_ceiling:.1%}\n")

    # -- Fig. 4: class share over time ---------------------------------------
    _, _, _, share = class_share_per_day(trace, labels, n_days=APR_1)
    valid = np.where(np.isnan(share), np.nanmean(share), share)
    print(ascii_series(days.tolist(), valid, label="Fig 4 - memory-bound share/day",
                       y_range=(0.0, 1.0)))
    print()

    # -- Table II + Fig. 5 ----------------------------------------------------
    t2 = table2_distribution(trace, labels)
    print(format_table(
        ["Frequency", "memory-bound", "compute-bound", "Total"],
        t2.rows(), title="Table II - distribution of job types",
    ))
    print(f"\nmemory:compute ratio = {t2.memory_to_compute_ratio:.2f} (paper: 3.44)")
    print(f"memory-bound at normal mode = {t2.frac_memory_in_normal:.1%} (paper: 54%)")
    print(f"compute-bound at boost mode = {t2.frac_compute_in_boost:.1%} (paper: 31%)")
    r = frequency_position_association(trace, characterizer)
    print(f"boost-vs-position correlation = {r:+.3f} (paper Fig 5: none observable)\n")
    for freq, summary in sorted(fig5_frequency_split(trace, characterizer).items()):
        print(f"  {freq} GHz: {summary.n_jobs:,} jobs, "
              f"{summary.frac_memory_bound:.1%} memory-bound")

    # -- §V-C.d impact estimate ------------------------------------------------
    est = estimate_impact(trace, labels, classifier_accuracy=0.90)
    print("\nImpact of semi-automatic frequency selection (classifier acc 90%):")
    print(format_table(
        ["population", "#jobs", "per-job", "total", "energy"],
        est.summary_rows(),
    ))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1 / 200)
