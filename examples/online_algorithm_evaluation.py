"""Evaluate the online prediction algorithm (paper artifact A3, compact).

Runs a reduced version of the §V experiments: trains KNN and RF online
over February with a couple of (α, β) settings, compares them to the
(job name, #cores) lookup baseline, and reports macro-F1 plus the
training/inference runtimes of Figs. 7-8.

The full-grid reproduction of every figure lives in benchmarks/; this
example finishes in about a minute.

Run:  python examples/online_algorithm_evaluation.py
"""

from repro.evaluation import ModelSpec, OnlineEvaluator, format_table
from repro.fugaku import generate_trace


def main() -> None:
    trace = generate_trace(scale=1 / 200, seed=42)
    print(f"trace: {len(trace):,} jobs; test period: February (days 62-91)")
    evaluator = OnlineEvaluator(trace)
    print(f"encoding cost: {1e3 * evaluator.encode_time_per_job:.3f} ms/job "
          "(cached across retraining triggers, as in §V-A)\n")

    specs = [
        ModelSpec("KNN", "KNN", {"n_neighbors": 5, "algorithm": "brute"}),
        ModelSpec("RF", "RF", {"n_estimators": 15, "max_depth": 12,
                               "splitter": "hist", "random_state": 0}),
    ]

    rows = []
    for spec in specs:
        for alpha, beta in ((spec.best_alpha, 1), (spec.best_alpha, 5)):
            r = evaluator.evaluate(
                spec.algorithm, spec.params, alpha=alpha, beta=beta,
                model_name=spec.name,
            )
            rows.append([
                spec.name, alpha, beta, round(r.f1, 3),
                f"{r.mean_train_time:.3f}s",
                f"{1e3 * r.mean_inference_time_per_job:.2f}ms",
                r.n_retrainings,
            ])

    base = evaluator.evaluate_baseline(alpha=30, beta=1)
    rows.append(["baseline", 30, 1, round(base.f1, 3),
                 f"{base.mean_train_time:.3f}s", "-", base.n_retrainings])

    print(format_table(
        ["model", "alpha", "beta", "F1", "train/trigger", "infer/job", "retrains"],
        rows,
        title="Online prediction algorithm (February test month)",
    ))
    print("\npaper reference: F1=0.90 (RF, a=15), 0.89 (KNN, a=30), 0.83 (baseline)")


if __name__ == "__main__":
    main()
