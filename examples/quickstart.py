"""Quickstart: classify memory/compute-bound jobs before execution.

Walks the whole MCBound pipeline on a small synthetic Fugaku trace:

1. generate a workload and load it into the jobs data storage;
2. stand up the framework (Data Fetcher + Feature Encoder + Job
   Characterizer + Classification Model);
3. run one Training Workflow trigger on the last 30 days;
4. predict the next day's submissions *from submission metadata only*;
5. compare against the Roofline ground truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    InferenceWorkflow,
    MCBound,
    MCBoundConfig,
    TrainingWorkflow,
    load_trace_into_db,
)
from repro.fugaku import generate_trace
from repro.fugaku.workload import DAY_SECONDS
from repro.mlcore.metrics import classification_report, f1_macro
from repro.roofline.characterize import LABEL_NAMES


def main() -> None:
    print("=== MCBound quickstart ===")

    # 1. a small trace: ~11k jobs across Dec 2023 - Mar 2024
    trace = generate_trace(scale=1 / 200, seed=42)
    db = load_trace_into_db(trace)
    print(f"generated {len(trace):,} jobs; loaded into the jobs data storage")

    # 2. the framework, configured like the paper's RF instantiation
    config = MCBoundConfig(
        algorithm="RF",
        model_params={"n_estimators": 15, "max_depth": 12, "splitter": "hist",
                      "random_state": 0},
        alpha_days=15.0,  # paper's best for RF
        beta_days=1.0,
    )
    framework = MCBound(config, db)
    print(f"ridge point: {framework.characterizer.ridge_point:.2f} Flops/Byte")

    # 3. one training trigger at the start of February
    now = 62 * DAY_SECONDS
    training = TrainingWorkflow(framework)
    result = training.run(now)
    counts = result.payload["class_counts"]
    print(
        f"trained on {result.n_jobs:,} jobs in {result.runtime_seconds:.2f}s "
        f"(memory-bound={counts.get(0, 0):,}, compute-bound={counts.get(1, 0):,})"
    )

    # 4. predict the next day's submissions
    inference = InferenceWorkflow(framework)
    pred_result = inference.run_window(now, now + DAY_SECONDS)
    print(
        f"predicted {pred_result.n_jobs} new jobs in "
        f"{1e3 * pred_result.runtime_per_job:.2f} ms/job"
    )

    # 5. score against the Roofline ground truth (available post-execution)
    job_ids, truth = framework.characterize_window(now, now + DAY_SECONDS)
    pred = np.array([inference.predictions[j] for j in job_ids.tolist()])
    print(f"\nF1-macro on day one: {f1_macro(truth, pred):.3f}\n")
    print(classification_report(truth, pred, target_names=list(LABEL_NAMES)))


if __name__ == "__main__":
    main()
