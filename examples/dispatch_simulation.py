"""Prediction-guided dispatching (§VI): frequency selection + co-scheduling.

Replays one week of the synthetic Fugaku workload through the dispatch
simulator under four policies:

1. **user** — the submitted frequencies, exclusive nodes (status quo);
2. **mcbound** — frequencies set from a trained MCBound classifier;
3. **oracle** — frequencies set from the true Roofline labels;
4. **mcbound + co-scheduling** — additionally pairs predicted-complementary
   jobs on shared nodes.

Run:  python examples/dispatch_simulation.py
"""

import numpy as np

from repro.core import MCBound, MCBoundConfig, TrainingWorkflow, load_trace_into_db
from repro.dispatch import simulate_dispatch
from repro.evaluation.reporting import format_table
from repro.fugaku import generate_trace
from repro.fugaku.workload import DAY_SECONDS


def main() -> None:
    trace = generate_trace(scale=1 / 200, seed=17)
    framework = MCBound(
        MCBoundConfig(
            algorithm="RF",
            model_params={"n_estimators": 15, "max_depth": 12,
                          "splitter": "hist", "random_state": 0},
            alpha_days=15.0,
        ),
        load_trace_into_db(trace),
    )
    week_start, week_end = 62 * DAY_SECONDS, 69 * DAY_SECONDS
    TrainingWorkflow(framework).run(week_start)

    job_ids, predicted = framework.predict_window(week_start, week_end)
    _, truth = framework.characterize_window(week_start, week_end)
    week = trace.between(week_start, week_end)
    accuracy = float(np.mean(predicted == truth))
    print(f"dispatching {len(week):,} jobs; classifier accuracy this week: {accuracy:.1%}\n")

    n_nodes = int(np.percentile(week["nodes_alloc"], 99)) * 6
    runs = [
        ("user (status quo)", dict(frequency_source="user")),
        ("mcbound", dict(frequency_source="mcbound", predicted_labels=predicted)),
        ("oracle", dict(frequency_source="oracle")),
        ("mcbound + cosched", dict(frequency_source="mcbound",
                                   predicted_labels=predicted, coschedule=True)),
    ]
    rows = []
    for name, kw in runs:
        m = simulate_dispatch(week, truth, n_nodes=n_nodes, **kw)
        rows.append(m.summary_row(name))

    print(format_table(
        ["policy", "jobs", "makespan", "mean wait", "energy", "node time", "cosched"],
        rows,
        title=f"One week of dispatch on {n_nodes} nodes",
    ))
    base = simulate_dispatch(week, truth, n_nodes=n_nodes, frequency_source="user")
    mcb = simulate_dispatch(week, truth, n_nodes=n_nodes,
                            frequency_source="mcbound", predicted_labels=predicted)
    oracle = simulate_dispatch(week, truth, n_nodes=n_nodes, frequency_source="oracle")
    saved = base.total_energy_gj - mcb.total_energy_gj
    possible = base.total_energy_gj - oracle.total_energy_gj
    if possible > 0:
        print(f"\nMCBound recovers {saved / possible:.0%} of the oracle's "
              f"energy saving ({saved:.3f} of {possible:.3f} GJ).")


if __name__ == "__main__":
    main()
