"""Classification metrics.

The paper's headline metric is the F1-macro average (Sokolova et al.):
the unweighted mean of per-class F1 scores, where each class's F1 is the
harmonic mean of its precision and recall.  All metrics here are computed
from one vectorized confusion-matrix pass.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "confusion_matrix",
    "accuracy_score",
    "precision_recall_f1",
    "f1_score",
    "f1_macro",
    "classification_report",
]


def _validate_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.ndim != 1 or y_pred.ndim != 1:
        raise ValueError("y_true and y_pred must be 1-D")
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = #samples of class i predicted as j.

    ``labels`` fixes the class order (and includes classes absent from the
    data); defaults to the sorted union of observed labels.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
        seen = np.unique(np.concatenate([y_true, y_pred]))
        unknown = np.setdiff1d(seen, labels)
        if unknown.size:
            raise ValueError(f"labels {unknown.tolist()} present in data but not in labels=")
    k = labels.shape[0]
    lut = {v: i for i, v in enumerate(labels.tolist())}
    ti = np.fromiter((lut[v] for v in y_true.tolist()), dtype=np.int64, count=len(y_true))
    pi = np.fromiter((lut[v] for v in y_pred.tolist()), dtype=np.int64, count=len(y_pred))
    return np.bincount(ti * k + pi, minlength=k * k).reshape(k, k)


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact matches."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision_recall_f1(y_true, y_pred, labels=None):
    """Per-class precision, recall and F1.

    Classes with no predicted (resp. true) samples get precision (resp.
    recall) 0, matching scikit-learn's ``zero_division=0``.

    Returns
    -------
    (labels, precision, recall, f1): arrays aligned on class order.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    cm = confusion_matrix(y_true, y_pred, labels=labels)
    tp = np.diag(cm).astype(np.float64)
    pred_total = cm.sum(axis=0).astype(np.float64)
    true_total = cm.sum(axis=1).astype(np.float64)
    precision = np.divide(tp, pred_total, out=np.zeros_like(tp), where=pred_total > 0)
    recall = np.divide(tp, true_total, out=np.zeros_like(tp), where=true_total > 0)
    denom = precision + recall
    f1 = np.divide(2 * precision * recall, denom, out=np.zeros_like(tp), where=denom > 0)
    return np.asarray(labels), precision, recall, f1


def f1_score(y_true, y_pred, *, pos_label=1) -> float:
    """Binary F1 of one target class."""
    labels, _, _, f1 = precision_recall_f1(y_true, y_pred)
    matches = np.flatnonzero(labels == pos_label)
    if matches.size == 0:
        raise ValueError(f"pos_label {pos_label!r} not present in data")
    return float(f1[matches[0]])


def f1_macro(y_true, y_pred, labels=None) -> float:
    """Unweighted mean of per-class F1 — the paper's prediction-quality metric."""
    _, _, _, f1 = precision_recall_f1(y_true, y_pred, labels=labels)
    return float(np.mean(f1))


def classification_report(y_true, y_pred, *, target_names=None) -> str:
    """Human-readable per-class report, plus macro averages."""
    labels, p, r, f1 = precision_recall_f1(y_true, y_pred)
    cm = confusion_matrix(y_true, y_pred, labels=labels)
    support = cm.sum(axis=1)
    if target_names is None:
        target_names = [str(v) for v in labels.tolist()]
    if len(target_names) != len(labels):
        raise ValueError("target_names length must match the number of classes")
    width = max(12, max(len(n) for n in target_names) + 2)
    lines = [f"{'':<{width}} precision  recall      f1  support"]
    for i, name in enumerate(target_names):
        lines.append(
            f"{name:<{width}} {p[i]:9.3f} {r[i]:7.3f} {f1[i]:7.3f} {support[i]:8d}"
        )
    lines.append(
        f"{'macro avg':<{width}} {p.mean():9.3f} {r.mean():7.3f} {f1.mean():7.3f} "
        f"{support.sum():8d}"
    )
    lines.append(f"{'accuracy':<{width}} {accuracy_score(y_true, y_pred):9.3f}")
    return "\n".join(lines)
