"""k-Nearest Neighbors classifier (Fix & Hodges 1951/1989).

The paper's KNN instantiation uses the scikit-learn defaults: 5 neighbours,
Minkowski distance with p=2 (Euclidean), uniform-weight majority voting.
"Training" just stores the data (which is exactly why its training time in
Fig. 7 is near zero and its inference time grows with the window in
Fig. 8).

Backends:

- ``"brute"`` — chunked distance computation.  For p=2 the squared
  distances come from the BLAS identity ``|q-x|² = |q|² + |x|² - 2 q·x``,
  which turns the hot loop into one matrix multiply per query chunk.
- ``"kd_tree"`` — the from-scratch :class:`repro.mlcore.kdtree.KDTree`.
- ``"auto"`` — kd-tree in low dimension where it wins, brute otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.mlcore.base import check_is_fitted, check_X_y, check_array, encode_labels
from repro.mlcore.kdtree import KDTree

__all__ = ["KNeighborsClassifier", "KNeighborsRegressor"]

_AUTO_KDTREE_MAX_DIM = 15


def _lexicographic_argselect(d: np.ndarray, k: int) -> np.ndarray:  # hotpath: top-k kernel of every brute query
    """Column indices of the k smallest ``(distance, index)`` pairs per row.

    ``np.argpartition`` alone picks an *arbitrary* subset of the columns
    tied at the k-th distance; every neighbour backend instead resolves
    such boundary ties toward the smaller training index (the canonical
    rule shared with :class:`repro.mlcore.kdtree.KDTree`).  Returned
    columns are index-ascending, not distance-sorted.
    """
    nq, n = d.shape
    if k >= n:
        return np.broadcast_to(np.arange(n, dtype=np.int64), (nq, n)).copy()
    part = np.argpartition(d, (k - 1, k), axis=1)
    kth = np.take_along_axis(d, part[:, k - 1 : k], axis=1)
    # rows whose k-th and (k+1)-th order statistics differ have a *unique*
    # k-smallest set, so argpartition's arbitrary pick is already the
    # canonical set — sorting its columns ascending finishes the job.
    # (exact comparison of values copied out of the same array: this
    # detects genuine ties at the selection boundary, not "close" floats)
    out = np.sort(part[:, :k], axis=1).astype(np.int64)
    ambiguous = np.flatnonzero(
        (kth == np.take_along_axis(d, part[:, k : k + 1], axis=1)).ravel()
    )
    if ambiguous.size == 0:
        return out  # no boundary ties anywhere in the batch
    # Tie-admission for the ambiguous rows only.  The partition already
    # hands us every strictly-below-threshold column inside its first k
    # slots, so a (na, k) gather replaces the old full-width < scan; the
    # one unavoidable full-width pass finds the columns tied *at* the
    # threshold, of which the smallest-index `need` per row are admitted.
    na = ambiguous.size
    kth_a = kth[ambiguous]  # (na, 1)
    sel = out[ambiguous]  # (na, k) arbitrary pick, ascending columns
    below = d[ambiguous[:, None], sel] < kth_a  # (na, k)
    need = k - below.sum(axis=1)  # ties to admit per row, >= 1
    at_rows, at_cols = np.nonzero(d[ambiguous] == kth_a)  # cols ascend per row
    tie_counts = np.bincount(at_rows, minlength=na)
    row_starts = np.concatenate(([0], np.cumsum(tie_counts[:-1])))
    rank = np.arange(at_rows.size) - row_starts[at_rows]
    admit = rank < need[at_rows]
    # assemble: below-threshold columns fill slots [0, k - need), admitted
    # ties the rest; a final per-row sort restores ascending column order
    res = np.empty((na, k), dtype=np.int64)
    b_rows, b_idx = np.nonzero(below)
    b_slot = np.cumsum(below, axis=1) - 1
    res[b_rows, b_slot[b_rows, b_idx]] = sel[b_rows, b_idx]
    a_rows = at_rows[admit]
    res[a_rows, (k - need)[a_rows] + rank[admit]] = at_cols[admit]
    out[ambiguous] = np.sort(res, axis=1)
    return out


class _NeighborsBase:
    """Shared neighbour-search machinery for k-NN estimators."""

    def __init__(
        self,
        n_neighbors: int = 5,
        *,
        p: float = 2.0,
        algorithm: str = "auto",
        leaf_size: int = 32,
        chunk_size: int = 512,
    ) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if p < 1 or not np.isfinite(p):
            raise ValueError("p must be finite and >= 1")
        if algorithm not in ("auto", "brute", "kd_tree"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.n_neighbors = int(n_neighbors)
        self.p = float(p)
        self.algorithm = algorithm
        self.leaf_size = int(leaf_size)
        self.chunk_size = int(chunk_size)
        self.classes_: np.ndarray | None = None

    # -- fit -------------------------------------------------------------------

    def _fit_features(self, X: np.ndarray) -> None:
        """Store the feature matrix and build the selected backend."""
        if self.n_neighbors > X.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} > n_samples={X.shape[0]}"
            )
        self._X = np.ascontiguousarray(X)
        self._backend = self.algorithm
        if self._backend == "auto":
            self._backend = (
                "kd_tree" if X.shape[1] <= _AUTO_KDTREE_MAX_DIM else "brute"
            )
        self._tree = KDTree(self._X, self.leaf_size) if self._backend == "kd_tree" else None
        if self._backend == "brute" and self.p == 2.0:  # staticcheck: ignore[float-equality] - dispatch on exact Minkowski parameter value
            self._sq_norms = np.einsum("ij,ij->i", self._X, self._X)

    # -- neighbour search ---------------------------------------------------------

    def kneighbors(self, X, n_neighbors: int | None = None):
        """Distances and indices of the k nearest training points.

        Returns ``(dist, idx)`` of shape ``(n_queries, k)``, nearest first.
        """
        check_is_fitted(self, "_X")
        k = self.n_neighbors if n_neighbors is None else int(n_neighbors)
        if not 1 <= k <= self._X.shape[0]:
            raise ValueError(f"n_neighbors must be in [1, {self._X.shape[0]}]")
        X = check_array(X, dtype=np.float64)
        if X.shape[1] != self._X.shape[1]:
            raise ValueError("query dimensionality mismatch")
        if self._backend == "kd_tree":
            return self._tree.query(X, k=k, p=self.p)
        return self._brute_kneighbors(X, k)

    def _brute_kneighbors(self, X, k):  # hotpath: chunked distance sweep behind kneighbors()
        n_train = self._X.shape[0]
        nq = X.shape[0]
        dist = np.empty((nq, k), dtype=np.float64)
        idx = np.empty((nq, k), dtype=np.int64)
        for lo in range(0, nq, self.chunk_size):
            hi = min(lo + self.chunk_size, nq)
            q = X[lo:hi]
            if self.p == 2.0:  # staticcheck: ignore[float-equality] - dispatch on exact Minkowski parameter value
                d = (
                    np.einsum("ij,ij->i", q, q)[:, None]
                    + self._sq_norms[None, :]
                    - 2.0 * (q @ self._X.T)
                )
                np.maximum(d, 0.0, out=d)
            else:
                d = self._minkowski_reduced(q)
            sel_idx = _lexicographic_argselect(d, k)
            dsel = np.take_along_axis(d, sel_idx, axis=1)
            order = np.argsort(dsel, axis=1, kind="stable")
            idx[lo:hi] = np.take_along_axis(sel_idx, order, axis=1)
            dsorted = np.take_along_axis(dsel, order, axis=1)
            # staticcheck: ignore[float-equality] - dispatch on exact Minkowski parameter value
            dist[lo:hi] = dsorted ** (0.5 if self.p == 2.0 else 1.0 / self.p)
        return dist, idx

    def _minkowski_reduced(self, q: np.ndarray) -> np.ndarray:
        """Reduced (root-free) Minkowski distances of a query chunk, blocked
        over training rows to bound the |q|x|x|x d intermediate."""
        n_train = self._X.shape[0]
        out = np.empty((q.shape[0], n_train), dtype=np.float64)
        block = max(1, int(2**22 // max(1, q.shape[0] * self._X.shape[1])))
        for lo in range(0, n_train, block):
            hi = min(lo + block, n_train)
            diff = np.abs(q[:, None, :] - self._X[None, lo:hi, :])
            if self.p == 1.0:  # staticcheck: ignore[float-equality] - dispatch on exact Minkowski parameter value
                out[:, lo:hi] = diff.sum(axis=2)
            else:
                out[:, lo:hi] = (diff**self.p).sum(axis=2)
        return out


class KNeighborsClassifier(_NeighborsBase):
    """Majority-vote k-NN classifier with Minkowski distances.

    Parameters
    ----------
    n_neighbors:
        Vote size k (default 5, as in sklearn).
    p:
        Minkowski order (p >= 1; 2 = Euclidean).
    algorithm:
        "brute", "kd_tree" or "auto".
    leaf_size:
        KD-tree leaf size.
    chunk_size:
        Query rows per brute-force chunk (bounds peak memory).
    """

    def fit(self, X, y) -> "KNeighborsClassifier":
        """Store the training set (and build the KD-tree if selected)."""
        X, y = check_X_y(X, y, dtype=np.float64)
        self.classes_, self._y = encode_labels(y)
        self._fit_features(X)
        return self

    # -- prediction ------------------------------------------------------------------

    def predict_proba(self, X) -> np.ndarray:
        """Neighbour vote fractions per class."""
        _, idx = self.kneighbors(X)
        votes = self._y[idx]  # (nq, k) encoded labels
        k = votes.shape[1]
        n_classes = len(self.classes_)
        counts = np.zeros((votes.shape[0], n_classes), dtype=np.float64)
        rows = np.repeat(np.arange(votes.shape[0]), k)
        np.add.at(counts, (rows, votes.ravel()), 1.0)
        return counts / k

    def predict(self, X) -> np.ndarray:
        """Majority-vote labels (ties break toward the smaller class index)."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        """Mean accuracy."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    # -- persistence --------------------------------------------------------------------

    def get_state(self) -> dict:
        check_is_fitted(self, "classes_")
        return {
            "meta": {
                "n_neighbors": self.n_neighbors,
                "p": self.p,
                "algorithm": self.algorithm,
                "leaf_size": self.leaf_size,
                "chunk_size": self.chunk_size,
            },
            "arrays": {"classes": self.classes_, "X": self._X, "y": self._y},
        }

    @classmethod
    def from_state(cls, state: dict) -> "KNeighborsClassifier":
        meta = state["meta"]
        knn = cls(
            meta["n_neighbors"],
            p=meta["p"],
            algorithm=meta["algorithm"],
            leaf_size=meta["leaf_size"],
            chunk_size=meta["chunk_size"],
        )
        arrays = state["arrays"]
        classes = np.asarray(arrays["classes"])
        knn.fit(np.asarray(arrays["X"]), classes[np.asarray(arrays["y"], dtype=np.int64)])
        return knn


class KNeighborsRegressor(_NeighborsBase):
    """k-NN regression: predict a continuous target from similar jobs.

    The paper's future-work direction (§VI): "the KNN finds the most
    similar jobs regardless of the target feature, hence we can easily
    adapt the framework for the prediction of multiple features" —
    duration, power consumption, and so on.  Same neighbour search as the
    classifier; the prediction is the (optionally distance-weighted) mean
    of the neighbours' target values.

    Parameters are those of :class:`KNeighborsClassifier` plus
    ``weights``: "uniform" (default) or "distance" (inverse-distance
    weighting, exact matches dominate).
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        *,
        p: float = 2.0,
        algorithm: str = "auto",
        leaf_size: int = 32,
        chunk_size: int = 512,
        weights: str = "uniform",
    ) -> None:
        super().__init__(
            n_neighbors, p=p, algorithm=algorithm, leaf_size=leaf_size,
            chunk_size=chunk_size,
        )
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights {weights!r}")
        self.weights = weights

    def fit(self, X, y) -> "KNeighborsRegressor":
        """Store the training features and continuous targets."""
        X, y = check_X_y(X, y, dtype=np.float64)
        y = y.astype(np.float64)
        if not np.all(np.isfinite(y)):
            raise ValueError("targets contain NaN or infinity")
        self._targets = y
        self._fit_features(X)
        return self

    def predict(self, X) -> np.ndarray:
        """Neighbour-mean prediction of the target."""
        check_is_fitted(self, "_targets")
        dist, idx = self.kneighbors(X)
        vals = self._targets[idx]
        if self.weights == "uniform":
            return vals.mean(axis=1)
        # inverse-distance weights; exact matches get all the weight
        with np.errstate(divide="ignore"):
            w = 1.0 / np.maximum(dist, 1e-300)
        exact = dist <= 1e-12
        has_exact = exact.any(axis=1)
        w[has_exact] = exact[has_exact].astype(np.float64)
        return (vals * w).sum(axis=1) / w.sum(axis=1)

    def score(self, X, y) -> float:
        """Coefficient of determination R^2."""
        y = np.asarray(y, dtype=np.float64)
        pred = self.predict(X)
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        if ss_tot == 0:
            return 1.0 if ss_res == 0 else 0.0
        return 1.0 - ss_res / ss_tot

    # -- persistence --------------------------------------------------------------------

    def get_state(self) -> dict:
        check_is_fitted(self, "_targets")
        return {
            "meta": {
                "n_neighbors": self.n_neighbors,
                "p": self.p,
                "algorithm": self.algorithm,
                "leaf_size": self.leaf_size,
                "chunk_size": self.chunk_size,
                "weights": self.weights,
            },
            "arrays": {"X": self._X, "targets": self._targets},
        }

    @classmethod
    def from_state(cls, state: dict) -> "KNeighborsRegressor":
        meta = state["meta"]
        reg = cls(
            meta["n_neighbors"],
            p=meta["p"],
            algorithm=meta["algorithm"],
            leaf_size=meta["leaf_size"],
            chunk_size=meta["chunk_size"],
            weights=meta["weights"],
        )
        arrays = state["arrays"]
        reg.fit(np.asarray(arrays["X"]), np.asarray(arrays["targets"]))
        return reg
