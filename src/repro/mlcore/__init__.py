"""From-scratch ML substrate (scikit-learn substitute).

The paper's Classification Model relies on scikit-learn's default Random
Forest and k-Nearest Neighbors.  This package implements those algorithms
(and the metric/model-selection/persistence machinery around them) on plain
numpy, with vectorized hot paths:

- :mod:`repro.mlcore.tree` — CART decision trees with an exact sort-based
  splitter; :mod:`repro.mlcore.histogram` adds a quantized 256-bin splitter.
- :mod:`repro.mlcore.forest` — bagged random forest with per-node feature
  subsampling and out-of-bag scoring (Breiman 2001).
- :mod:`repro.mlcore.knn` — k-NN with Minkowski distances, chunked
  brute-force and a from-scratch KD-tree backend
  (:mod:`repro.mlcore.kdtree`).
- :mod:`repro.mlcore.metrics` — confusion matrix, precision/recall/F1 and
  the F1-macro average the paper reports.
- :mod:`repro.mlcore.model_selection` — stratified splits and time-window
  folds.
- :mod:`repro.mlcore.persistence` — pickle-free model serialization and a
  versioned on-disk registry (the role skops.io plays in the paper).
- :mod:`repro.mlcore.baseline` — the (job name, #cores) lookup baseline of
  §V-C.a.
"""

from repro.mlcore.base import NotFittedError, check_is_fitted, check_random_state
from repro.mlcore.tree import DecisionTreeClassifier
from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.knn import KNeighborsClassifier, KNeighborsRegressor
from repro.mlcore.naive_bayes import GaussianNBClassifier
from repro.mlcore.kdtree import KDTree
from repro.mlcore.baseline import LookupTableBaseline
from repro.mlcore.metrics import (
    accuracy_score,
    confusion_matrix,
    precision_recall_f1,
    f1_score,
    f1_macro,
    classification_report,
)
from repro.mlcore.model_selection import (
    train_test_split,
    StratifiedKFold,
    cross_val_score,
)
from repro.mlcore.persistence import save_model, load_model, ModelRegistry

__all__ = [
    "NotFittedError",
    "check_is_fitted",
    "check_random_state",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "GaussianNBClassifier",
    "KDTree",
    "LookupTableBaseline",
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "f1_score",
    "f1_macro",
    "classification_report",
    "train_test_split",
    "StratifiedKFold",
    "cross_val_score",
    "save_model",
    "load_model",
    "ModelRegistry",
]
