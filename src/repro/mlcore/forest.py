"""Random Forest classifier (Breiman 2001).

An ensemble of CART trees, each grown on a bootstrap resample of the
training data with per-node random feature subsets; prediction averages
the trees' class-probability votes (scikit-learn's "soft voting"), which
is what the paper's RF instantiation uses via the sklearn defaults.

With ``splitter="hist"`` the expensive feature quantization is done once
and shared by all trees.  Optional out-of-bag scoring estimates
generalization without a held-out set.

Prediction is fully vectorized across the whole ensemble: after fit the
trees' flat node arrays are packed into padded ``(n_trees, max_nodes)``
matrices (leaves rewired to self-loops), and one level-order sweep routes
every (tree, sample) pair simultaneously — ``max_depth`` fancy-indexing
steps total instead of a Python loop over trees.  The historical per-tree
prediction loop is preserved in :mod:`repro.mlcore.reference`.
"""

from __future__ import annotations

import numpy as np

from repro.mlcore.base import check_is_fitted, check_random_state, check_X_y, encode_labels
from repro.mlcore.histogram import FeatureQuantizer
from repro.mlcore.tree import DecisionTreeClassifier
from repro.parallel.executor import ExecutorConfig, parallel_map_sharded

__all__ = ["RandomForestClassifier"]

_LEAF = -1


class _PackedForest:
    """Ensemble-wide flat node arrays for level-order batch prediction.

    Every tree's ``feature_/threshold_/children_*`` arrays are concatenated
    into one flat node pool with *global* node ids (tree t's node j lives
    at ``offset[t] + j``, and child pointers are rewritten to global ids at
    pack time).  Prediction routes all (tree, sample) pairs together: one
    level-order step is a single gather + compare + ``np.where`` over the
    still-active pairs, and pairs drop out of the active set as they reach
    leaves — the ensemble-fused version of the narrowing loop in
    :meth:`DecisionTreeClassifier.apply`, with the Python-per-tree
    overhead removed.
    """

    def __init__(self, trees: list[DecisionTreeClassifier]) -> None:
        sizes = np.array([t.feature_.shape[0] for t in trees], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        self.feature = np.concatenate([t.feature_ for t in trees])
        is_leaf = self.feature == _LEAF
        self.feature = np.where(is_leaf, 0, self.feature)
        self.threshold = np.concatenate([t.threshold_ for t in trees])
        # child pointers to leaves are bitwise-complement encoded (~id < 0),
        # so the traversal's "reached a leaf?" test is a sign check on the
        # freshly gathered child instead of another is_leaf gather
        left = np.concatenate([t.children_left_ + o for t, o in zip(trees, offsets)])
        right = np.concatenate([t.children_right_ + o for t, o in zip(trees, offsets)])
        self.left = np.where(is_leaf[np.where(is_leaf, 0, left)] | is_leaf, ~left, left)
        self.right = np.where(
            is_leaf[np.where(is_leaf, 0, right)] | is_leaf, ~right, right
        )
        self.roots = np.where(is_leaf[offsets], ~offsets, offsets)
        values = np.concatenate([t.value_ for t in trees])
        self.leaf_proba = values / values.sum(axis=1, keepdims=True)
        self.n_trees = len(trees)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:  # hotpath: fused ensemble traversal
        """Soft-vote probabilities, one fused narrowing sweep for the ensemble."""
        nq = X.shape[0]
        # flat (tree-major) pair layout: pair p = (tree p // nq, sample p % nq)
        node = np.repeat(self.roots, nq)
        col_of = np.tile(np.arange(nq), self.n_trees)
        active = np.flatnonzero(node >= 0)
        while active.size:
            gn = node[active]
            go_left = X[col_of[active], self.feature[gn]] < self.threshold[gn]
            nxt = np.where(go_left, self.left[gn], self.right[gn])
            node[active] = nxt
            active = active[nxt >= 0]
        np.bitwise_not(node, out=node)  # decode: every pair ended on ~leaf_id
        probs = self.leaf_proba[node].reshape(self.n_trees, nq, -1)
        return probs.sum(axis=0) / self.n_trees


class RandomForestClassifier:
    """Bagged forest of :class:`DecisionTreeClassifier`.

    Parameters
    ----------
    n_estimators:
        Number of trees (sklearn default: 100).
    max_features:
        Per-node feature subset; defaults to "sqrt" as in sklearn.
    bootstrap:
        Draw n-out-of-n resamples with replacement per tree; if False every
        tree sees the full data (then only feature subsampling decorrelates
        trees).
    oob_score:
        If True, compute :attr:`oob_score_` — accuracy of each sample voted
        on only by trees that did not train on it.
    splitter, n_bins, max_depth, min_samples_split, min_samples_leaf,
    criterion:
        Forwarded to the trees.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        criterion: str = "gini",
        splitter: str = "exact",
        n_bins: int = 64,
        bootstrap: bool = True,
        oob_score: bool = False,
        random_state=None,
        n_jobs: int = 1,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.splitter = splitter
        self.n_bins = n_bins
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.random_state = random_state
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.n_jobs = int(n_jobs)
        self.classes_: np.ndarray | None = None
        self.estimators_: list[DecisionTreeClassifier] = []
        self._packed: _PackedForest | None = None

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            criterion=self.criterion,
            splitter=self.splitter,
            n_bins=self.n_bins,
            random_state=seed,
        )

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit all trees on bootstrap resamples."""
        X, y = check_X_y(X, y, dtype=np.float32)
        self.classes_, y_enc = encode_labels(y)
        n = X.shape[0]
        self.n_features_in_ = X.shape[1]
        rng = check_random_state(self.random_state)

        hist_cache = None
        if self.splitter == "hist":
            q = FeatureQuantizer(self.n_bins)
            hist_cache = (q, q.fit_transform(X))

        oob_votes = (
            np.zeros((n, len(self.classes_)), dtype=np.float64) if self.oob_score else None
        )
        # all randomness is drawn up front so results are identical for any
        # n_jobs: per-tree seeds and bootstrap resamples
        seeds = rng.integers(0, 2**31 - 1, size=self.n_estimators)
        if self.bootstrap:
            bootstraps = [rng.integers(0, n, size=n) for _ in range(self.n_estimators)]
        else:
            bootstraps = [np.arange(n)] * self.n_estimators

        def fit_one(t: int) -> DecisionTreeClassifier:
            tree = self._make_tree(int(seeds[t]))
            tree.fit(X, y_enc, sample_indices=bootstraps[t], _hist_cache=hist_cache)
            return tree

        exec_cfg = ExecutorConfig(
            backend="thread" if self.n_jobs > 1 else "serial",
            n_workers=self.n_jobs,
        )
        # exec_cfg pins thread/serial, so the closure may share X and
        # hist_cache by reference without crossing a process boundary
        self.estimators_ = parallel_map_sharded(
            fit_one, range(self.n_estimators), config=exec_cfg
        )
        self._packed = None  # stale after refit; rebuilt lazily on predict

        if oob_votes is not None and self.bootstrap:
            for tree, idx in zip(self.estimators_, bootstraps):
                mask = np.ones(n, dtype=bool)
                mask[np.unique(idx)] = False
                if mask.any():
                    oob_votes[mask] += tree.predict_proba(X[mask])

        if oob_votes is not None:
            voted = oob_votes.sum(axis=1) > 0
            if voted.any():
                pred = np.argmax(oob_votes[voted], axis=1)
                self.oob_score_ = float(np.mean(pred == y_enc[voted]))
            else:  # pragma: no cover - requires tiny forests
                self.oob_score_ = float("nan")
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Mean of per-tree class probabilities (packed level-order sweep)."""
        check_is_fitted(self, "classes_")
        X = np.asarray(X, dtype=np.float32)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X must have shape (n, {self.n_features_in_}), got {X.shape}"
            )
        if self._packed is None:
            self._packed = _PackedForest(self.estimators_)
        return self._packed.predict_proba(X)

    def predict(self, X) -> np.ndarray:
        """Soft-voted class labels."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        """Mean accuracy."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean impurity-decrease importances over trees."""
        check_is_fitted(self, "classes_")
        imp = np.mean([t.feature_importances_ for t in self.estimators_], axis=0)
        total = imp.sum()
        return imp / total if total > 0 else imp

    # -- persistence --------------------------------------------------------------

    def get_state(self) -> dict:
        check_is_fitted(self, "classes_")
        state = {
            "meta": {
                "n_estimators": self.n_estimators,
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
                "criterion": self.criterion,
                "splitter": self.splitter,
                "n_bins": self.n_bins,
                "bootstrap": self.bootstrap,
                "oob_score": self.oob_score,
                "n_jobs": self.n_jobs,
                "n_features_in": self.n_features_in_,
            },
            "arrays": {"classes": self.classes_},
            "children": {
                f"tree_{i}": t.get_state() for i, t in enumerate(self.estimators_)
            },
        }
        if getattr(self, "oob_score_", None) is not None and self.oob_score:
            state["meta"]["oob_score_value"] = self.oob_score_
        return state

    @classmethod
    def from_state(cls, state: dict) -> "RandomForestClassifier":
        meta = state["meta"]
        forest = cls(
            meta["n_estimators"],
            max_depth=meta["max_depth"],
            min_samples_split=meta["min_samples_split"],
            min_samples_leaf=meta["min_samples_leaf"],
            max_features=meta["max_features"],
            criterion=meta["criterion"],
            splitter=meta["splitter"],
            n_bins=meta["n_bins"],
            bootstrap=meta["bootstrap"],
            oob_score=meta["oob_score"],
            n_jobs=meta.get("n_jobs", 1),
        )
        forest.n_features_in_ = int(meta["n_features_in"])
        forest.classes_ = np.asarray(state["arrays"]["classes"])
        forest.estimators_ = [
            DecisionTreeClassifier.from_state(state["children"][f"tree_{i}"])
            for i in range(meta["n_estimators"])
        ]
        if "oob_score_value" in meta:
            forest.oob_score_ = meta["oob_score_value"]
        return forest
