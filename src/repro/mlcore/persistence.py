"""Pickle-free model persistence and a versioned on-disk registry.

Plays the role skops.io plays in the paper's deployment (§III-E): trained
model instances are written to the filesystem so different versions can be
kept and reloaded, without the arbitrary-code-execution risk of pickle.

Format: a directory with ``manifest.json`` (model class, metadata, nested
child references) and one ``.npy``-in-``.npz`` archive per state level.
A model participates by implementing ``get_state() -> dict`` with keys
``meta`` (JSON-serializable), ``arrays`` (name -> ndarray) and optionally
``children`` (name -> nested state), plus a ``from_state`` classmethod.
"""

from __future__ import annotations

import json
import re
import shutil
from pathlib import Path

import numpy as np

__all__ = ["save_model", "load_model", "ModelRegistry", "registered_model_classes"]


def _model_classes() -> dict:
    # Imported lazily to avoid import cycles at package init.
    from repro.mlcore.baseline import LookupTableBaseline
    from repro.mlcore.forest import RandomForestClassifier
    from repro.mlcore.knn import KNeighborsClassifier, KNeighborsRegressor
    from repro.mlcore.naive_bayes import GaussianNBClassifier
    from repro.mlcore.tree import DecisionTreeClassifier

    return {
        "DecisionTreeClassifier": DecisionTreeClassifier,
        "RandomForestClassifier": RandomForestClassifier,
        "KNeighborsClassifier": KNeighborsClassifier,
        "KNeighborsRegressor": KNeighborsRegressor,
        "GaussianNBClassifier": GaussianNBClassifier,
        "LookupTableBaseline": LookupTableBaseline,
    }


def registered_model_classes() -> tuple[str, ...]:
    """Names of the model classes save/load understands."""
    return tuple(_model_classes())


def _flatten_state(state: dict, prefix: str, manifest: dict, arrays: dict) -> None:
    manifest["meta"] = state.get("meta", {})
    manifest["arrays"] = []
    for name, arr in state.get("arrays", {}).items():
        key = f"{prefix}{name}"
        arrays[key] = np.asarray(arr)
        manifest["arrays"].append(name)
    manifest["children"] = {}
    for name, child in state.get("children", {}).items():
        child_manifest: dict = {}
        _flatten_state(child, f"{prefix}{name}.", child_manifest, arrays)
        manifest["children"][name] = child_manifest


def _unflatten_state(manifest: dict, prefix: str, arrays) -> dict:
    state = {
        "meta": manifest.get("meta", {}),
        "arrays": {name: arrays[f"{prefix}{name}"] for name in manifest.get("arrays", [])},
    }
    children = manifest.get("children", {})
    if children:
        state["children"] = {
            name: _unflatten_state(child, f"{prefix}{name}.", arrays)
            for name, child in children.items()
        }
    return state


def save_model(model, path: str | Path) -> Path:
    """Serialize a model to directory ``path`` (created/overwritten)."""
    classes = _model_classes()
    cls_name = type(model).__name__
    if cls_name not in classes:
        raise TypeError(f"{cls_name} is not a registered persistable model")
    state = model.get_state()
    path = Path(path)
    if path.exists():
        shutil.rmtree(path)
    path.mkdir(parents=True)
    manifest: dict = {"model_class": cls_name, "format_version": 1}
    arrays: dict[str, np.ndarray] = {}
    _flatten_state(state, "", manifest, arrays)
    (path / "manifest.json").write_text(json.dumps(manifest))
    np.savez_compressed(path / "arrays.npz", **arrays)
    return path


def load_model(path: str | Path):
    """Load a model saved by :func:`save_model`."""
    path = Path(path)
    manifest = json.loads((path / "manifest.json").read_text())
    cls = _model_classes().get(manifest.get("model_class"))
    if cls is None:
        raise TypeError(f"unknown model class {manifest.get('model_class')!r}")
    with np.load(path / "arrays.npz", allow_pickle=False) as npz:
        arrays = {k: npz[k] for k in npz.files}
    state = _unflatten_state(manifest, "", arrays)
    return cls.from_state(state)


_VERSION_RE = re.compile(r"^v(\d{8})$")


class ModelRegistry:
    """Versioned store of trained models under one root directory.

    Every :meth:`publish` writes a new ``v<number>`` directory and updates
    ``LATEST``; :meth:`load_latest` reads the most recent version.  This is
    how the Training Workflow hands a freshly retrained model to the
    Inference Workflow (paper Fig. 1).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _versions(self) -> list[int]:
        out = []
        for p in self.root.iterdir():
            m = _VERSION_RE.match(p.name)
            if m and p.is_dir():
                out.append(int(m.group(1)))
        return sorted(out)

    @property
    def latest_version(self) -> int | None:
        versions = self._versions()
        return versions[-1] if versions else None

    def publish(self, model, *, metadata: dict | None = None) -> int:
        """Save ``model`` as the next version; returns the version number."""
        version = (self.latest_version or 0) + 1
        vdir = self.root / f"v{version:08d}"
        save_model(model, vdir)
        if metadata is not None:
            (vdir / "metadata.json").write_text(json.dumps(metadata))
        (self.root / "LATEST").write_text(str(version))
        return version

    def load(self, version: int):
        """Load a specific version."""
        vdir = self.root / f"v{version:08d}"
        if not vdir.exists():
            raise FileNotFoundError(f"no model version {version} in {self.root}")
        return load_model(vdir)

    def load_latest(self):
        """Load the newest published model (raises if none)."""
        v = self.latest_version
        if v is None:
            raise FileNotFoundError(f"registry {self.root} is empty")
        return self.load(v)

    def metadata(self, version: int) -> dict:
        """Metadata recorded at publish time (empty dict if none)."""
        mpath = self.root / f"v{version:08d}" / "metadata.json"
        if not mpath.exists():
            return {}
        return json.loads(mpath.read_text())
