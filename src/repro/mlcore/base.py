"""Shared estimator plumbing: validation, rng handling, fitted-state checks."""

from __future__ import annotations

import numpy as np

__all__ = [
    "NotFittedError",
    "check_random_state",
    "check_array",
    "check_X_y",
    "check_is_fitted",
    "encode_labels",
]


class NotFittedError(RuntimeError):
    """Raised when predict/transform is called before fit."""


def check_random_state(seed) -> np.random.Generator:
    """Coerce ``None | int | Generator`` into a :class:`numpy.random.Generator`."""
    if seed is None:
        # sklearn-compatible escape hatch: random_state=None explicitly asks
        # for OS entropy; every repro pipeline passes a concrete seed.
        return np.random.default_rng()  # staticcheck: ignore[unseeded-rng] - None means caller opted out of replayability
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot seed an rng from {type(seed).__name__}")


def check_array(X, *, dtype=np.float64, name: str = "X") -> np.ndarray:  # hotpath: validates every predict/encode batch
    """Validate a 2-D finite numeric array."""
    X = np.asarray(X, dtype=dtype)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError(f"{name} has no samples")
    if not np.all(np.isfinite(X)):
        raise ValueError(f"{name} contains NaN or infinity")
    return X


def check_X_y(X, y, *, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / label vector pair."""
    X = check_array(X, dtype=dtype)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(f"X has {X.shape[0]} samples but y has {y.shape[0]}")
    return X, y


def check_is_fitted(estimator, attribute: str) -> None:  # hotpath: guards every predict call
    """Raise :class:`NotFittedError` unless the estimator carries ``attribute``."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; call fit() first"
        )


def encode_labels(y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map arbitrary labels to contiguous ints.

    Returns ``(classes, y_encoded)`` where ``classes[y_encoded] == y``.
    """
    classes, y_enc = np.unique(y, return_inverse=True)
    if classes.shape[0] < 2:
        raise ValueError("need at least two classes to train a classifier")
    return classes, y_enc.astype(np.int64)
