"""The simple lookup baseline of §V-C.a.

The paper compares RF and KNN to "a simple baseline that maps a tuple of
(job name, # of cores requested) to a memory/compute-bound label (which can
be seen as a KNN with k=1 on the features job name, # of cores requested)",
retrained online with the same α/β schedule.  It reaches F1 0.83 against
0.90 for the full models, motivating the NLP-augmented approach.

Unlike the other classifiers this one consumes *raw* feature tuples, not
embeddings, so its fit/predict take a list of ``(job_name, cores)`` keys.
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from repro.mlcore.base import NotFittedError

__all__ = ["LookupTableBaseline"]


def _normalize_key(key) -> tuple[str, ...]:
    """Keys are compared as strings so persistence round-trips exactly."""
    return tuple(str(x) for x in key)


class LookupTableBaseline:
    """Majority-label lookup on an exact key; global majority as fallback."""

    def __init__(self) -> None:
        self._table: dict[tuple, int] | None = None
        self._fallback: int | None = None

    def fit(self, keys, y) -> "LookupTableBaseline":
        """Record the majority label per key.

        ``keys`` is a sequence of hashable tuples (e.g. ``(job_name,
        cores_req)``); ``y`` the integer labels.
        """
        y = np.asarray(y)
        keys = list(keys)
        if len(keys) != y.shape[0]:
            raise ValueError("keys and y length mismatch")
        if len(keys) == 0:
            raise ValueError("cannot fit on an empty training set")
        per_key: dict[tuple, Counter] = defaultdict(Counter)
        for k, label in zip(keys, y.tolist()):
            per_key[_normalize_key(k)][label] += 1
        # ties break toward the smaller label, matching the voting models
        self._table = {
            k: min(c.items(), key=lambda kv: (-kv[1], kv[0]))[0] for k, c in per_key.items()
        }
        global_counts = Counter(y.tolist())
        self._fallback = min(global_counts.items(), key=lambda kv: (-kv[1], kv[0]))[0]
        return self

    def predict(self, keys) -> np.ndarray:
        """Majority label of each key; unseen keys get the global majority."""
        if self._table is None:
            raise NotFittedError("LookupTableBaseline is not fitted yet")
        return np.array(
            [self._table.get(_normalize_key(k), self._fallback) for k in keys],
            dtype=np.int64,
        )

    @property
    def n_keys(self) -> int:
        if self._table is None:
            raise NotFittedError("LookupTableBaseline is not fitted yet")
        return len(self._table)

    # -- persistence ------------------------------------------------------------

    def get_state(self) -> dict:
        if self._table is None:
            raise NotFittedError("LookupTableBaseline is not fitted yet")
        keys = list(self._table)
        return {
            "meta": {
                "fallback": int(self._fallback),
                "keys": [list(map(str, k)) for k in keys],
                "key_arity": len(keys[0]) if keys else 0,
            },
            "arrays": {"labels": np.array([self._table[k] for k in keys], dtype=np.int64)},
        }

    @classmethod
    def from_state(cls, state: dict) -> "LookupTableBaseline":
        model = cls()
        labels = np.asarray(state["arrays"]["labels"], dtype=np.int64)
        keys = [tuple(k) for k in state["meta"]["keys"]]
        model._table = {k: int(v) for k, v in zip(keys, labels)}
        model._fallback = int(state["meta"]["fallback"])
        return model
