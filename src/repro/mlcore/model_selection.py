"""Data splitting utilities: stratified holdout, k-fold CV, time windows."""

from __future__ import annotations

import numpy as np

from repro.mlcore.base import check_random_state

__all__ = [
    "train_test_split",
    "StratifiedKFold",
    "cross_val_score",
    "time_window_indices",
]


def train_test_split(X, y, *, test_size: float = 0.25, stratify: bool = False, random_state=None):
    """Random (optionally class-stratified) holdout split.

    Returns ``X_train, X_test, y_train, y_test``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y length mismatch")
    n = X.shape[0]
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = check_random_state(random_state)
    n_test = max(1, int(round(n * test_size)))
    if n_test >= n:
        raise ValueError("test_size leaves no training data")

    if stratify:
        test_idx_parts = []
        classes, counts = np.unique(y, return_counts=True)
        # largest-remainder apportionment of the test budget over classes
        exact = counts * n_test / n
        base = np.floor(exact).astype(int)
        rem = n_test - base.sum()
        order = np.argsort(-(exact - base))
        base[order[:rem]] += 1
        for c, take in zip(classes, base):
            members = np.flatnonzero(y == c)
            take = min(take, members.size)
            test_idx_parts.append(rng.choice(members, size=take, replace=False))
        test_idx = np.concatenate(test_idx_parts)
    else:
        test_idx = rng.choice(n, size=n_test, replace=False)

    mask = np.zeros(n, dtype=bool)
    mask[test_idx] = True
    return X[~mask], X[mask], y[~mask], y[mask]


class StratifiedKFold:
    """K-fold cross-validation preserving class proportions per fold."""

    def __init__(self, n_splits: int = 5, *, shuffle: bool = True, random_state=None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, y):
        """Yield ``(train_idx, test_idx)`` pairs."""
        y = np.asarray(y)
        n = y.shape[0]
        rng = check_random_state(self.random_state)
        fold_of = np.empty(n, dtype=np.int64)
        for c in np.unique(y):
            members = np.flatnonzero(y == c)
            if members.size < self.n_splits:
                raise ValueError(
                    f"class {c!r} has {members.size} samples < n_splits={self.n_splits}"
                )
            if self.shuffle:
                members = rng.permutation(members)
            fold_of[members] = np.arange(members.size) % self.n_splits
        for f in range(self.n_splits):
            test = np.flatnonzero(fold_of == f)
            train = np.flatnonzero(fold_of != f)
            yield train, test


def cross_val_score(make_estimator, X, y, *, cv: int = 5, scorer=None, random_state=None):
    """Fit-and-score across stratified folds.

    ``make_estimator`` is a zero-argument factory (a fresh model per fold);
    ``scorer(model, X_test, y_test)`` defaults to ``model.score``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    folds = StratifiedKFold(cv, random_state=random_state)
    scores = []
    for train, test in folds.split(y):
        model = make_estimator()
        model.fit(X[train], y[train])
        if scorer is None:
            scores.append(model.score(X[test], y[test]))
        else:
            scores.append(scorer(model, X[test], y[test]))
    return np.asarray(scores, dtype=np.float64)


def time_window_indices(times, start, end) -> np.ndarray:
    """Indices with ``start <= times < end`` — the α-window selector."""
    times = np.asarray(times, dtype=np.float64)
    return np.flatnonzero((times >= start) & (times < end))
