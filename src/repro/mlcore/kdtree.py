"""KD-tree for exact nearest-neighbour queries (from scratch).

Space-partitioning trees pay off in low dimension; in the 384-dimensional
embedding space of this reproduction the curse of dimensionality makes
brute force with BLAS the right default (see :mod:`repro.mlcore.knn`,
which picks the backend automatically), but the KD-tree backend is part of
the substrate for low-dimensional feature encodings and for the backend
ablation benchmark.

Build: recursive median split along the largest-spread dimension; leaves
hold up to ``leaf_size`` points.  Query: branch-and-bound with a bounded
max-heap over *reduced* Minkowski distances (p-th powers, no root until
the end), leaf scans fully vectorized.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["KDTree"]

_LEAF = -1


class KDTree:
    """Exact k-NN index over an ``(n, d)`` float matrix.

    Parameters
    ----------
    data:
        Point matrix; a float64 copy is stored.
    leaf_size:
        Maximum points per leaf.
    """

    def __init__(self, data, leaf_size: int = 32) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("data must be a non-empty 2-D array")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.data = np.ascontiguousarray(data)
        self.leaf_size = int(leaf_size)
        n = data.shape[0]
        self._perm = np.arange(n, dtype=np.int64)
        # node arrays, grown by the builder
        self._dim: list[int] = []
        self._split: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._start: list[int] = []
        self._end: list[int] = []
        self._build(0, n)

    # -- construction -------------------------------------------------------------

    def _new_node(self, start: int, end: int) -> int:
        self._dim.append(_LEAF)
        self._split.append(np.nan)
        self._left.append(_LEAF)
        self._right.append(_LEAF)
        self._start.append(start)
        self._end.append(end)
        return len(self._dim) - 1

    def _build(self, start: int, end: int) -> int:
        node = self._new_node(start, end)
        n = end - start
        if n <= self.leaf_size:
            return node
        idx = self._perm[start:end]
        pts = self.data[idx]
        spreads = pts.max(axis=0) - pts.min(axis=0)
        dim = int(np.argmax(spreads))
        if spreads[dim] <= 0:  # all points identical: keep as leaf
            return node
        mid = n // 2
        order = np.argpartition(pts[:, dim], mid)
        self._perm[start:end] = idx[order]
        split_value = float(self.data[self._perm[start + mid], dim])
        left = self._build(start, start + mid)
        right = self._build(start + mid, end)
        self._dim[node] = dim
        self._split[node] = split_value
        self._left[node] = left
        self._right[node] = right
        return node

    @property
    def n_nodes(self) -> int:
        return len(self._dim)

    # -- queries ---------------------------------------------------------------------

    def query(self, X, k: int = 1, p: float = 2.0):
        """k nearest neighbours of each row of ``X``.

        Returns ``(distances, indices)`` with shape ``(n_queries, k)``,
        neighbours ordered nearest first.  ``p`` is the Minkowski order
        (p >= 1, finite).
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.data.shape[1]:
            raise ValueError("query dimensionality mismatch")
        if not 1 <= k <= self.data.shape[0]:
            raise ValueError(f"k must be in [1, {self.data.shape[0]}]")
        if p < 1 or not np.isfinite(p):
            raise ValueError("p must be finite and >= 1")
        nq = X.shape[0]
        dists = np.empty((nq, k), dtype=np.float64)
        idxs = np.empty((nq, k), dtype=np.int64)
        for i in range(nq):
            d, j = self._query_one(X[i], k, p)
            dists[i] = d
            idxs[i] = j
        return dists, idxs

    def _reduced_leaf_dists(self, q: np.ndarray, start: int, end: int, p: float):
        idx = self._perm[start:end]
        diff = np.abs(self.data[idx] - q)
        # exact fast-path dispatch on the Minkowski exponent (p is a user
        # parameter, not a computed float): p=2/p=1 select cheaper kernels
        if p == 2.0:  # staticcheck: ignore[float-equality] - dispatch on exact parameter value
            rd = np.einsum("ij,ij->i", diff, diff)
        elif p == 1.0:  # staticcheck: ignore[float-equality] - dispatch on exact parameter value
            rd = diff.sum(axis=1)
        else:
            rd = (diff**p).sum(axis=1)
        return rd, idx

    def _query_one(self, q: np.ndarray, k: int, p: float):
        # heap of (-reduced_dist, index); holds current best k
        heap: list[tuple[float, int]] = []

        def visit(node: int) -> None:
            dim = self._dim[node]
            if dim == _LEAF:
                rd, idx = self._reduced_leaf_dists(q, self._start[node], self._end[node], p)
                for r, j in zip(rd, idx):
                    if len(heap) < k:
                        heapq.heappush(heap, (-r, int(j)))
                    elif r < -heap[0][0]:
                        heapq.heapreplace(heap, (-r, int(j)))
                return
            delta = q[dim] - self._split[node]
            near, far = (
                (self._left[node], self._right[node])
                if delta < 0
                else (self._right[node], self._left[node])
            )
            visit(near)
            gap = abs(delta) ** p
            if len(heap) < k or gap < -heap[0][0]:
                visit(far)

        visit(0)
        out = sorted(((-negr, j) for negr, j in heap))
        rd = np.array([r for r, _ in out])
        jj = np.array([j for _, j in out], dtype=np.int64)
        return rd ** (1.0 / p), jj
