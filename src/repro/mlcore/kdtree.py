"""KD-tree for exact nearest-neighbour queries (from scratch).

Space-partitioning trees pay off in low dimension; in the 384-dimensional
embedding space of this reproduction the curse of dimensionality makes
brute force with BLAS the right default (see :mod:`repro.mlcore.knn`,
which picks the backend automatically), but the KD-tree backend is part of
the substrate for low-dimensional feature encodings and for the backend
ablation benchmark.

Build: recursive median split along the largest-spread dimension; leaves
hold up to ``leaf_size`` points, and every node records the bounding box
of its subtree.  Query: *batched* branch-and-bound — a whole chunk of
queries descends the tree together (the group is never split, so the
per-node work stays one vectorized call), each node visit drops the
queries whose reduced distance to the node's bounding box already exceeds
their current k-th best, and each leaf is scored against all surviving
queries with one matrix Minkowski distance.  Box lower bounds accumulate
every ancestor constraint, so the batched traversal prunes at least as
hard as the classic single-coordinate hyperplane gap.

Tie-breaking is canonical across all neighbour backends: the k reported
neighbours are the k smallest ``(distance, index)`` pairs in lexicographic
order, so equidistant points resolve to the smaller training index.  The
pre-vectorization per-query traversal is preserved in
:mod:`repro.mlcore.reference` as the parity/benchmark oracle.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.chunking import chunk_indices

__all__ = ["KDTree"]

_LEAF = -1


def reduced_minkowski(diff: np.ndarray, p: float) -> np.ndarray:
    """Reduced (root-free) Minkowski distance over the last axis of ``|diff|``.

    ``p`` is a user parameter, not a computed float, so the exact
    comparisons below are fast-path dispatch: p=2/p=1 select cheaper
    kernels with identical results.
    """
    if p == 2.0:  # staticcheck: ignore[float-equality] - dispatch on exact parameter value
        return np.einsum("...i,...i->...", diff, diff)
    if p == 1.0:  # staticcheck: ignore[float-equality] - dispatch on exact parameter value
        return diff.sum(axis=-1)
    return (diff**p).sum(axis=-1)


def lexicographic_topk(rd: np.ndarray, idx: np.ndarray, k: int):
    """Row-wise k smallest ``(rd, idx)`` pairs, lexicographic order.

    ``rd``/``idx`` are ``(n_rows, m)`` candidate reduced distances and
    training indices; returns ``(rd_k, idx_k)`` of shape ``(n_rows, k)``
    sorted ascending by distance, ties broken toward the smaller index.
    Implemented as a stable double argsort: sorting by index first and
    then stably by distance leaves equal-distance runs index-ascending.
    """
    order_idx = np.argsort(idx, axis=1, kind="stable")
    rd_by_idx = np.take_along_axis(rd, order_idx, axis=1)
    idx_by_idx = np.take_along_axis(idx, order_idx, axis=1)
    order_rd = np.argsort(rd_by_idx, axis=1, kind="stable")[:, :k]
    return (
        np.take_along_axis(rd_by_idx, order_rd, axis=1),
        np.take_along_axis(idx_by_idx, order_rd, axis=1),
    )


class KDTree:
    """Exact k-NN index over an ``(n, d)`` float matrix.

    Parameters
    ----------
    data:
        Point matrix; a float64 copy is stored.
    leaf_size:
        Maximum points per leaf.
    query_chunk_size:
        Queries traversed together per batch (bounds the ``(chunk, leaf)``
        distance matrices and keeps the active sets cache-resident).
    """

    def __init__(self, data, leaf_size: int = 32, query_chunk_size: int = 256) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("data must be a non-empty 2-D array")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if query_chunk_size < 1:
            raise ValueError("query_chunk_size must be >= 1")
        self.data = np.ascontiguousarray(data)
        self.leaf_size = int(leaf_size)
        self.query_chunk_size = int(query_chunk_size)
        n = data.shape[0]
        self._perm = np.arange(n, dtype=np.int64)
        # node arrays, grown by the builder
        self._dim: list[int] = []
        self._split: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._start: list[int] = []
        self._end: list[int] = []
        self._build(0, n)
        self._finalize_nodes()

    def _finalize_nodes(self) -> None:
        """Freeze node lists into arrays and compute per-subtree boxes.

        Children are always appended after their parent, so one reverse
        pass sees every child before its parent: leaves reduce their own
        points, internal nodes combine their children's boxes.
        """
        self._dim_a = np.array(self._dim, dtype=np.int64)
        self._left_a = np.array(self._left, dtype=np.int64)
        self._right_a = np.array(self._right, dtype=np.int64)
        nn = len(self._dim)
        d = self.data.shape[1]
        self._box_lo = np.empty((nn, d), dtype=np.float64)
        self._box_hi = np.empty((nn, d), dtype=np.float64)
        for node in range(nn - 1, -1, -1):
            if self._dim[node] == _LEAF:
                pts = self.data[self._perm[self._start[node] : self._end[node]]]
                self._box_lo[node] = pts.min(axis=0)
                self._box_hi[node] = pts.max(axis=0)
            else:
                left, right = self._left[node], self._right[node]
                np.minimum(self._box_lo[left], self._box_lo[right], out=self._box_lo[node])
                np.maximum(self._box_hi[left], self._box_hi[right], out=self._box_hi[node])

    # -- construction -------------------------------------------------------------

    def _new_node(self, start: int, end: int) -> int:
        self._dim.append(_LEAF)
        self._split.append(np.nan)
        self._left.append(_LEAF)
        self._right.append(_LEAF)
        self._start.append(start)
        self._end.append(end)
        return len(self._dim) - 1

    def _build(self, start: int, end: int) -> int:
        node = self._new_node(start, end)
        n = end - start
        if n <= self.leaf_size:
            return node
        idx = self._perm[start:end]
        pts = self.data[idx]
        spreads = pts.max(axis=0) - pts.min(axis=0)
        dim = int(np.argmax(spreads))
        if spreads[dim] <= 0:  # all points identical: keep as leaf
            return node
        mid = n // 2
        order = np.argpartition(pts[:, dim], mid)
        self._perm[start:end] = idx[order]
        split_value = float(self.data[self._perm[start + mid], dim])
        left = self._build(start, start + mid)
        right = self._build(start + mid, end)
        self._dim[node] = dim
        self._split[node] = split_value
        self._left[node] = left
        self._right[node] = right
        return node

    @property
    def n_nodes(self) -> int:
        return len(self._dim)

    # -- queries ---------------------------------------------------------------------

    def query(self, X, k: int = 1, p: float = 2.0):
        """k nearest neighbours of each row of ``X``.

        Returns ``(distances, indices)`` with shape ``(n_queries, k)``,
        neighbours ordered nearest first (ties index-ascending).  ``p`` is
        the Minkowski order (p >= 1, finite).
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.data.shape[1]:
            raise ValueError("query dimensionality mismatch")
        if not 1 <= k <= self.data.shape[0]:
            raise ValueError(f"k must be in [1, {self.data.shape[0]}]")
        if p < 1 or not np.isfinite(p):
            raise ValueError("p must be finite and >= 1")
        nq = X.shape[0]
        dists = np.empty((nq, k), dtype=np.float64)
        idxs = np.empty((nq, k), dtype=np.int64)
        for lo, hi in chunk_indices(nq, self.query_chunk_size):
            rd, jj = self._query_chunk(X[lo:hi], k, p)
            dists[lo:hi] = rd ** (1.0 / p)
            idxs[lo:hi] = jj
        return dists, idxs

    def _leaf_scan(self, Q: np.ndarray, node: int, p: float):  # hotpath: leaf distance kernel behind query()
        """Reduced distances of every query row to every point of a leaf."""
        idx = self._perm[self._start[node] : self._end[node]]
        diff = np.abs(Q[:, None, :] - self.data[idx][None, :, :])
        return reduced_minkowski(diff, p), idx

    def _query_chunk(self, Q: np.ndarray, k: int, p: float):  # hotpath: per-chunk branch-and-bound behind query()
        """Batched branch-and-bound over one chunk of queries.

        The traversal stack holds ``(node, queries)`` groups.  A popped
        group first drops every query whose reduced distance to the node's
        bounding box exceeds its current k-th best (``<=`` keeps boundary
        ties alive for the lexicographic index rule); survivors either
        scan the leaf in one matrix distance or descend, nearer child (by
        group majority) first so bounds tighten before the far sibling is
        re-checked.  The final k-set is an order-independent lexicographic
        (rd, idx) top-k, so visiting order only affects pruning
        efficiency, never results.
        """
        nq = Q.shape[0]
        best_rd = np.full((nq, k), np.inf)
        # sentinel index sorts after every real point until the slot fills
        best_idx = np.full((nq, k), self.data.shape[0], dtype=np.int64)
        stack: list[tuple[int, np.ndarray]] = [(0, np.arange(nq))]
        while stack:
            node, qs = stack.pop()
            Qs = Q[qs]
            gap = np.maximum(self._box_lo[node] - Qs, Qs - self._box_hi[node])
            np.maximum(gap, 0.0, out=gap)
            keep = reduced_minkowski(gap, p) <= best_rd[qs, k - 1]
            if not keep.any():
                continue
            qs = qs[keep]
            if self._dim[node] == _LEAF:
                rd, idx = self._leaf_scan(Q[qs], node, p)
                # staticcheck: ignore[hidden-copy] - bounded (nq, 2k) merge per leaf visit, not loop growth
                cand_rd = np.concatenate([best_rd[qs], rd], axis=1)
                # staticcheck: ignore[hidden-copy] - bounded (nq, 2k) merge per leaf visit, not loop growth
                cand_idx = np.concatenate(
                    [best_idx[qs], np.broadcast_to(idx, rd.shape)], axis=1
                )
                best_rd[qs], best_idx[qs] = lexicographic_topk(cand_rd, cand_idx, k)
                continue
            delta = Q[qs, self._dim[node]] - self._split[node]
            left, right = self._left[node], self._right[node]
            if 2 * int(np.count_nonzero(delta < 0)) >= qs.size:
                near, far = left, right
            else:
                near, far = right, left
            stack.append((far, qs))  # LIFO: near child explored first
            stack.append((near, qs))
        return best_rd, best_idx
