"""CART decision trees (Rokach & Maimon 2005) with two vectorized splitters.

The tree is stored flat in parallel arrays (``feature_``, ``threshold_``,
``children_left_``, ``children_right_``, ``value_``), so prediction routes
all samples level-by-level with numpy fancy indexing — no per-sample Python
recursion.  Routing predicate: a sample goes left iff ``x[feature] <
threshold``.

Two split finders:

- ``splitter="exact"`` — classic sort-based scan: every boundary between
  distinct consecutive values of a candidate feature is scored.
- ``splitter="hist"`` — features are quantized to ≤256 bins once per fit
  (or once per forest, see :mod:`repro.mlcore.forest`); candidate splits
  are bin boundaries scored from cumulative class histograms.

Both maximize the decrease of Gini impurity (or entropy) and share the
same vectorized scoring identity: minimizing the weighted child impurity
is equivalent to maximizing ``sum_c L_c^2 / n_L + sum_c R_c^2 / n_R`` for
Gini, where ``L_c``/``R_c`` are per-class child counts.
"""

from __future__ import annotations

import numpy as np

from repro.mlcore.base import check_is_fitted, check_random_state, check_X_y, encode_labels
from repro.mlcore.histogram import FeatureQuantizer

__all__ = ["DecisionTreeClassifier"]

_LEAF = -1


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate sklearn-style max_features into a feature count."""
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(max_features, (int, np.integer)) and not isinstance(max_features, bool):
        if not 1 <= max_features <= n_features:
            raise ValueError(f"max_features={max_features} out of range [1, {n_features}]")
        return int(max_features)
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("float max_features must be in (0, 1]")
        return max(1, int(max_features * n_features))
    raise ValueError(f"unsupported max_features {max_features!r}")


def _impurity(counts: np.ndarray, criterion: str) -> np.ndarray:
    """Impurity of count vectors along the last axis (vectorized)."""
    counts = counts.astype(np.float64)
    n = counts.sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        p = np.where(n > 0, counts / n, 0.0)
        if criterion == "gini":
            out = 1.0 - np.sum(p * p, axis=-1)
        else:  # entropy
            logp = np.zeros_like(p)
            np.log2(p, out=logp, where=p > 0)
            out = -np.sum(p * logp, axis=-1)
    return out


class _TreeBuilder:
    """Growable flat tree storage shared by both splitters."""

    def __init__(self, n_classes: int) -> None:
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.counts: list[np.ndarray] = []
        self.n_classes = n_classes

    def add_node(self, class_counts: np.ndarray) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(np.nan)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.counts.append(class_counts)
        return len(self.feature) - 1

    def make_internal(self, node: int, feature: int, threshold: float, left: int, right: int):
        self.feature[node] = feature
        self.threshold[node] = threshold
        self.left[node] = left
        self.right[node] = right


class DecisionTreeClassifier:
    """CART classifier.

    Parameters follow scikit-learn where they exist; ``splitter`` selects
    the split finder ("exact" or "hist").

    Attributes (post-fit)
    ---------------------
    classes_:
        Original class labels in sorted order.
    feature_importances_:
        Impurity-decrease importances, normalized to sum to 1.
    """

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        criterion: str = "gini",
        splitter: str = "exact",
        n_bins: int = 64,
        random_state=None,
    ) -> None:
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"unknown criterion {criterion!r}")
        if splitter not in ("exact", "hist"):
            raise ValueError(f"unknown splitter {splitter!r}")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.splitter = splitter
        self.n_bins = n_bins
        self.random_state = random_state
        self.classes_: np.ndarray | None = None

    # -- fitting ----------------------------------------------------------------

    def fit(self, X, y, *, sample_indices=None, _hist_cache=None) -> "DecisionTreeClassifier":
        """Grow the tree.

        ``sample_indices`` restricts training to the given rows of ``X``
        (with repetition — this is how the forest passes bootstrap samples
        without copying the matrix).  ``_hist_cache`` is the forest-shared
        ``(quantizer, codes)`` pair for the hist splitter.
        """
        X, y = check_X_y(X, y, dtype=np.float32)
        self.classes_, y_enc = encode_labels(y)
        n_total, n_features = X.shape
        self.n_features_in_ = n_features
        k = len(self.classes_)
        rng = check_random_state(self.random_state)
        m = _resolve_max_features(self.max_features, n_features)

        if sample_indices is None:
            idx0 = np.arange(n_total, dtype=np.int64)
        else:
            idx0 = np.asarray(sample_indices, dtype=np.int64)
            if idx0.ndim != 1 or idx0.size == 0:
                raise ValueError("sample_indices must be a non-empty 1-D array")
            if idx0.min() < 0 or idx0.max() >= n_total:
                raise ValueError("sample_indices out of range")

        quantizer: FeatureQuantizer | None = None
        codes: np.ndarray | None = None
        if self.splitter == "hist":
            if _hist_cache is not None:
                quantizer, codes = _hist_cache
            else:
                quantizer = FeatureQuantizer(self.n_bins)
                codes = quantizer.fit_transform(X)

        builder = _TreeBuilder(k)
        importances = np.zeros(n_features, dtype=np.float64)
        max_depth = self.max_depth if self.max_depth is not None else np.inf

        root_counts = np.bincount(y_enc[idx0], minlength=k)
        root = builder.add_node(root_counts)
        stack: list[tuple[int, np.ndarray, int]] = [(root, idx0, 0)]

        while stack:
            node, idx, depth = stack.pop()
            counts = builder.counts[node]
            n_node = idx.size
            node_imp = _impurity(counts[None, :], self.criterion)[0]
            if (
                depth >= max_depth
                or n_node < self.min_samples_split
                or np.count_nonzero(counts) <= 1
            ):
                continue

            features = (
                np.arange(n_features)
                if m == n_features
                else rng.choice(n_features, size=m, replace=False)
            )
            if self.splitter == "exact":
                best = self._best_split_exact(X, y_enc, idx, features, k)
            else:
                best = self._best_split_hist(codes, quantizer, y_enc, idx, features, k)
            if best is None:
                continue
            feature, threshold, gain, left_mask = best
            if gain <= 1e-12:
                continue

            left_idx = idx[left_mask]
            right_idx = idx[~left_mask]
            left_counts = np.bincount(y_enc[left_idx], minlength=k)
            right_counts = counts - left_counts
            left_node = builder.add_node(left_counts)
            right_node = builder.add_node(right_counts)
            builder.make_internal(node, int(feature), float(threshold), left_node, right_node)
            importances[feature] += n_node * node_imp - (
                left_idx.size * _impurity(left_counts[None, :], self.criterion)[0]
                + right_idx.size * _impurity(right_counts[None, :], self.criterion)[0]
            )
            stack.append((left_node, left_idx, depth + 1))
            stack.append((right_node, right_idx, depth + 1))

        self.feature_ = np.array(builder.feature, dtype=np.int64)
        self.threshold_ = np.array(builder.threshold, dtype=np.float64)
        self.children_left_ = np.array(builder.left, dtype=np.int64)
        self.children_right_ = np.array(builder.right, dtype=np.int64)
        self.value_ = np.stack(builder.counts).astype(np.float64)
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    # -- split finders ----------------------------------------------------------
    #
    # Both finders score *blocks* of candidate features in one vectorized
    # pass: the per-position class counts come from a single cumulative sum
    # over a (n, block, k) one-hot (exact) or a (block, bins, k) histogram
    # (hist), and the criterion curve for every (feature, threshold) pair
    # of the block is materialized at once.  Block sizes are chosen so the
    # cumulative-count workspace stays bounded; iterating blocks in feature
    # order with a strict ">" keeps the tie-breaking of the historical
    # per-feature loop (first feature with the best rank wins).  The
    # pre-vectorization per-feature scans are preserved in
    # :mod:`repro.mlcore.reference` and pinned by the equivalence tests.

    #: element budget for a split-finder block workspace (~32 MB of float64)
    _SPLIT_BLOCK_ELEMS = 1 << 22

    def _best_split_exact(self, X, y_enc, idx, features, k):
        """Sort-based scan, vectorized over feature blocks.

        Returns (feature, threshold, gain, left_mask) or None.
        """
        n = idx.size
        min_leaf = self.min_samples_leaf
        y_node = y_enc[idx]
        parent_imp = _impurity(np.bincount(y_node, minlength=k)[None, :], self.criterion)[0]
        best_score = -np.inf
        best = None
        n_l = np.arange(1, n, dtype=np.float64)[:, None]  # split after i => n_l = i+1
        n_r = n - n_l
        features = np.asarray(features)
        block = max(1, self._SPLIT_BLOCK_ELEMS // max(1, n * k))
        rows = np.arange(n)[:, None]
        for lo in range(0, features.size, block):
            feats = features[lo : lo + block]
            m = feats.size
            Xb = X[np.ix_(idx, feats)].astype(np.float64)  # (n, m)
            order = np.argsort(Xb, axis=0, kind="stable")
            xs = np.take_along_axis(Xb, order, axis=0)
            ys = y_node[order]  # (n, m)
            # cum[i, j, c]: count of class c among the first i+1 samples
            # sorted by feature j
            onehot = np.zeros((n, m, k), dtype=np.float64)
            onehot[rows, np.arange(m)[None, :], ys] = 1.0
            cum = np.cumsum(onehot, axis=0)
            L = cum[:-1]  # (n-1, m, k)
            R = cum[-1][None, :, :] - L
            valid = xs[:-1] < xs[1:]  # (n-1, m)
            if min_leaf > 1:
                valid &= (n_l >= min_leaf) & (n_r >= min_leaf)
            if self.criterion == "gini":
                score = (L * L).sum(axis=2) / n_l + (R * R).sum(axis=2) / n_r
                score = np.where(valid, score, -np.inf)
                pos = np.argmax(score, axis=0)  # (m,)
                child_imp = (n - score[pos, np.arange(m)]) / n
            else:
                imp_l = _impurity(L, self.criterion)
                imp_r = _impurity(R, self.criterion)
                weighted = (n_l * imp_l + n_r * imp_r) / n
                weighted = np.where(valid, weighted, np.inf)
                pos = np.argmin(weighted, axis=0)
                child_imp = weighted[pos, np.arange(m)]
            ranks = np.where(valid[pos, np.arange(m)], -child_imp, -np.inf)
            j_rel = int(np.argmax(ranks))
            if ranks[j_rel] > best_score:
                i = int(pos[j_rel])
                a, b = xs[i, j_rel], xs[i + 1, j_rel]
                mid = 0.5 * (a + b)
                threshold = b if mid <= a else mid  # routing is x < threshold
                left_mask = Xb[:, j_rel] < threshold
                best_score = ranks[j_rel]
                gain = parent_imp - child_imp[j_rel]
                best = (int(feats[j_rel]), float(threshold), gain, left_mask)
        return best

    def _best_split_hist(self, codes, quantizer, y_enc, idx, features, k):
        """Histogram scan, vectorized over feature blocks.

        Returns (feature, threshold, gain, left_mask) or None.
        """
        n = idx.size
        min_leaf = max(1, self.min_samples_leaf)
        y_node = y_enc[idx]
        parent_counts = np.bincount(y_node, minlength=k)
        parent_imp = _impurity(parent_counts[None, :], self.criterion)[0]
        best_score = -np.inf
        best = None
        features = np.asarray(features)
        n_bins = np.array([quantizer.n_effective_bins(int(j)) for j in features])
        B = int(n_bins.max(initial=0))
        if B < 2:
            return None  # no feature has two distinct codes
        block = max(1, self._SPLIT_BLOCK_ELEMS // max(1, n))
        for lo in range(0, features.size, block):
            feats = features[lo : lo + block]
            m = feats.size
            c = codes[np.ix_(idx, feats)].astype(np.int64)  # (n, m)
            # one shared bincount over (feature, bin, class) cells
            cell = (np.arange(m) * B)[None, :] * k + c * k + y_node[:, None]
            hist = np.bincount(cell.ravel(), minlength=m * B * k).reshape(m, B, k)
            cum = np.cumsum(hist, axis=1).astype(np.float64)
            # split "code <= b" for b = 0 .. B-2; candidates at or beyond a
            # feature's own bin count leave the right child empty and are
            # rejected by the min-leaf constraint below
            L = cum[:, :-1, :]  # (m, B-1, k)
            n_l = L.sum(axis=2)
            n_r = n - n_l
            valid = (n_l >= min_leaf) & (n_r >= min_leaf)
            R = cum[:, -1, :][:, None, :] - L
            with np.errstate(invalid="ignore", divide="ignore"):
                if self.criterion == "gini":
                    score = (L * L).sum(axis=2) / n_l + (R * R).sum(axis=2) / n_r
                    score = np.where(valid, score, -np.inf)
                    pos = np.argmax(score, axis=1)  # (m,)
                    child_imp = (n - score[np.arange(m), pos]) / n
                else:
                    imp_l = _impurity(L, self.criterion)
                    imp_r = _impurity(R, self.criterion)
                    weighted = (n_l * imp_l + n_r * imp_r) / n
                    weighted = np.where(valid, weighted, np.inf)
                    pos = np.argmin(weighted, axis=1)
                    child_imp = weighted[np.arange(m), pos]
            ranks = np.where(valid[np.arange(m), pos], -child_imp, -np.inf)
            j_rel = int(np.argmax(ranks))
            if ranks[j_rel] > best_score:
                b = int(pos[j_rel])
                threshold = quantizer.threshold_of_bin(int(feats[j_rel]), b)
                left_mask = c[:, j_rel] <= b
                best_score = ranks[j_rel]
                gain = parent_imp - child_imp[j_rel]
                best = (int(feats[j_rel]), float(threshold), gain, left_mask)
        return best

    # -- prediction ----------------------------------------------------------------

    def apply(self, X) -> np.ndarray:  # hotpath: narrowing node sweep behind predict()
        """Leaf index reached by each sample."""
        check_is_fitted(self, "classes_")
        X = np.asarray(X, dtype=np.float32)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X must have shape (n, {self.n_features_in_}), got {X.shape}"
            )
        node = np.zeros(X.shape[0], dtype=np.int64)
        active = np.flatnonzero(self.feature_[node] != _LEAF)
        while active.size:
            cur = node[active]
            f = self.feature_[cur]
            go_left = X[active, f] < self.threshold_[cur]
            node[active] = np.where(go_left, self.children_left_[cur], self.children_right_[cur])
            active = active[self.feature_[node[active]] != _LEAF]
        return node

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities: leaf class frequencies."""
        leaves = self.apply(X)
        counts = self.value_[leaves]
        return counts / counts.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        """Majority class of the reached leaf."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        """Mean accuracy."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    # -- introspection ----------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        check_is_fitted(self, "classes_")
        return int(self.feature_.shape[0])

    def get_n_leaves(self) -> int:
        check_is_fitted(self, "classes_")
        return int(np.sum(self.feature_ == _LEAF))

    def get_depth(self) -> int:
        check_is_fitted(self, "classes_")
        depth = np.zeros(self.n_nodes, dtype=np.int64)
        out = 0
        for node in range(self.n_nodes):
            if self.feature_[node] != _LEAF:
                d = depth[node] + 1
                depth[self.children_left_[node]] = d
                depth[self.children_right_[node]] = d
            else:
                out = max(out, int(depth[node]))
        return out

    # -- persistence ----------------------------------------------------------------

    def get_state(self) -> dict:
        """Serializable state (see :mod:`repro.mlcore.persistence`)."""
        check_is_fitted(self, "classes_")
        return {
            "meta": {
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
                "criterion": self.criterion,
                "splitter": self.splitter,
                "n_bins": self.n_bins,
                "n_features_in": self.n_features_in_,
            },
            "arrays": {
                "classes": self.classes_,
                "feature": self.feature_,
                "threshold": self.threshold_,
                "children_left": self.children_left_,
                "children_right": self.children_right_,
                "value": self.value_,
                "feature_importances": self.feature_importances_,
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "DecisionTreeClassifier":
        meta, arrays = state["meta"], state["arrays"]
        tree = cls(
            max_depth=meta["max_depth"],
            min_samples_split=meta["min_samples_split"],
            min_samples_leaf=meta["min_samples_leaf"],
            max_features=meta["max_features"],
            criterion=meta["criterion"],
            splitter=meta["splitter"],
            n_bins=meta["n_bins"],
        )
        tree.n_features_in_ = int(meta["n_features_in"])
        tree.classes_ = np.asarray(arrays["classes"])
        tree.feature_ = np.asarray(arrays["feature"], dtype=np.int64)
        tree.threshold_ = np.asarray(arrays["threshold"], dtype=np.float64)
        tree.children_left_ = np.asarray(arrays["children_left"], dtype=np.int64)
        tree.children_right_ = np.asarray(arrays["children_right"], dtype=np.int64)
        tree.value_ = np.asarray(arrays["value"], dtype=np.float64)
        tree.feature_importances_ = np.asarray(arrays["feature_importances"])
        return tree
