"""Feature quantization for histogram-based tree growing.

The exact CART splitter sorts every candidate feature at every node —
O(n log n) per feature per node.  For the retraining loads of the online
evaluation (hundreds of forest fits over tens of thousands of jobs) we
also provide the classic histogram trick: quantize each feature once into
at most 256 bins, then score splits from per-bin class counts in O(n) per
feature per node with no sorting.

Thresholds stored in the tree are real feature values (bin upper edges),
so prediction never needs the quantizer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FeatureQuantizer"]


class FeatureQuantizer:
    """Per-feature quantile binning into uint8 codes.

    For feature ``j`` with interior edges ``E``, the code of value ``x`` is
    ``searchsorted(E, x, side='right')`` — the number of edges ≤ x.  A
    histogram split "code <= b" therefore corresponds to the raw-value
    predicate ``x < E[b]``, which matches the tree's routing predicate.
    """

    def __init__(self, n_bins: int = 256) -> None:
        if not 2 <= n_bins <= 256:
            raise ValueError("n_bins must be in [2, 256]")
        self.n_bins = int(n_bins)
        self.bin_edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "FeatureQuantizer":
        """Compute per-feature interior edges from quantiles of ``X``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        qs = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        edges: list[np.ndarray] = []
        for j in range(X.shape[1]):
            u = np.unique(X[:, j])
            if u.size <= self.n_bins:
                # few distinct values: exact bins at value midpoints
                e = (u[:-1] + u[1:]) / 2.0
            else:
                e = np.unique(np.quantile(X[:, j], qs))
            edges.append(e.astype(np.float64))
        self.bin_edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Quantize to uint8 codes, clipping unseen values into edge bins."""
        if self.bin_edges_ is None:
            raise RuntimeError("quantizer not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.bin_edges_):
            raise ValueError("X has wrong shape for this quantizer")
        codes = np.empty(X.shape, dtype=np.uint8)
        for j, e in enumerate(self.bin_edges_):
            codes[:, j] = np.searchsorted(e, X[:, j], side="right").astype(np.uint8)
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def threshold_of_bin(self, feature: int, bin_index: int) -> float:
        """Raw-value threshold of the split "code <= bin_index"."""
        if self.bin_edges_ is None:
            raise RuntimeError("quantizer not fitted")
        e = self.bin_edges_[feature]
        if not 0 <= bin_index < len(e):
            raise IndexError(f"bin {bin_index} has no upper edge for feature {feature}")
        return float(e[bin_index])

    def n_effective_bins(self, feature: int) -> int:
        """Number of distinct codes feature ``feature`` can take."""
        if self.bin_edges_ is None:
            raise RuntimeError("quantizer not fitted")
        return len(self.bin_edges_[feature]) + 1
