"""Pre-vectorization reference implementations (parity + benchmark oracles).

The PR that batch-vectorized the ML hot paths (KD-tree query, brute k-NN
selection, CART split finders, packed forest prediction) preserved the
historical per-item code paths here.  They serve two purposes:

- *parity oracles*: ``tests/mlcore/test_equivalence.py`` asserts that the
  vectorized paths reproduce these results exactly — bit-for-bit where
  the floating-point arithmetic is shared, and on integer-lattice inputs
  (where every distance is exact) even across arithmetic families;
- *benchmark baselines*: the speedups in ``BENCH_mlcore.json`` are
  measured against these functions, so the ratios keep their meaning as
  the fast paths evolve.

Every neighbour reference follows the canonical tie rule shared by all
backends: the k reported neighbours are the k smallest
``(reduced_distance, training_index)`` pairs in lexicographic order.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.mlcore.kdtree import _LEAF, reduced_minkowski

__all__ = [
    "kdtree_query_scalar",
    "brute_kneighbors_scalar",
    "tree_predict_proba_scalar",
    "forest_predict_proba_scalar",
    "best_split_exact_scalar",
    "best_split_hist_scalar",
]


# -- neighbour search ------------------------------------------------------------


def kdtree_query_scalar(tree, X, k: int = 1, p: float = 2.0):
    """Per-query branch-and-bound with a heap (the pre-vectorization path).

    Operates on a built :class:`repro.mlcore.kdtree.KDTree`; one query
    descends at a time, keeping its k best ``(rd, idx)`` pairs in a
    max-heap and pruning nodes whose bounding box cannot beat the current
    worst pair.  Leaf distances use the same ``reduced_minkowski`` ops as
    the batched traversal, so results match it bit-for-bit.
    """
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    nq = X.shape[0]
    dists = np.empty((nq, k), dtype=np.float64)
    idxs = np.empty((nq, k), dtype=np.int64)
    for qi in range(nq):
        q = X[qi]
        heap: list[tuple[float, int]] = []  # max-heap of (-rd, -idx)
        stack = [0]
        while stack:
            node = stack.pop()
            gap = np.maximum(tree._box_lo[node] - q, q - tree._box_hi[node])
            np.maximum(gap, 0.0, out=gap)
            # strict >: a box exactly at the bound may hold an equidistant
            # point with a smaller index, which the tie rule must admit
            if len(heap) == k and float(reduced_minkowski(gap, p)) > -heap[0][0]:
                continue
            if tree._dim[node] == _LEAF:
                pts = tree._perm[tree._start[node] : tree._end[node]]
                rds = reduced_minkowski(np.abs(q[None, :] - tree.data[pts]), p)
                for rd, j in zip(rds.tolist(), pts.tolist()):
                    item = (-rd, -j)
                    if len(heap) < k:
                        heapq.heappush(heap, item)
                    elif item > heap[0]:  # (rd, j) beats the worst kept pair
                        heapq.heapreplace(heap, item)
                continue
            if q[tree._dim[node]] - tree._split[node] < 0:
                near, far = tree._left[node], tree._right[node]
            else:
                near, far = tree._right[node], tree._left[node]
            stack.append(far)  # LIFO: near child explored first
            stack.append(near)
        pairs = sorted((-a, -b) for a, b in heap)
        dists[qi] = [rd for rd, _ in pairs]
        idxs[qi] = [j for _, j in pairs]
    # root taken with the array ufunc, as the batched query does — scalar
    # Python pow can differ from it in the last bit
    return dists ** (1.0 / p), idxs


def brute_kneighbors_scalar(X_train, Q, k: int, p: float = 2.0):
    """One query at a time against every training point, sorted in Python.

    The obviously-correct oracle: materialize each query's full reduced
    distance row and pick the k lexicographically smallest ``(rd, idx)``
    pairs with ``sorted``.
    """
    X_train = np.asarray(X_train, dtype=np.float64)
    Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
    nq = Q.shape[0]
    dists = np.empty((nq, k), dtype=np.float64)
    idxs = np.empty((nq, k), dtype=np.int64)
    for qi in range(nq):
        rd = reduced_minkowski(np.abs(Q[qi][None, :] - X_train), p)
        pairs = sorted(zip(rd.tolist(), range(X_train.shape[0])))[:k]
        dists[qi] = [r for r, _ in pairs]
        idxs[qi] = [j for _, j in pairs]
    return dists ** (1.0 / p), idxs


# -- tree / forest prediction ----------------------------------------------------


def tree_predict_proba_scalar(tree, X) -> np.ndarray:
    """Walk each sample from the root through the flat node arrays."""
    X = np.asarray(X, dtype=np.float32)
    out = np.empty((X.shape[0], tree.value_.shape[1]), dtype=np.float64)
    for i in range(X.shape[0]):
        node = 0
        while tree.feature_[node] != _LEAF:
            f = tree.feature_[node]
            if X[i, f] < tree.threshold_[node]:
                node = tree.children_left_[node]
            else:
                node = tree.children_right_[node]
        counts = tree.value_[node]
        out[i] = counts / counts.sum()
    return out


def forest_predict_proba_scalar(forest, X) -> np.ndarray:
    """The pre-packing forest prediction: one tree at a time, accumulated."""
    X = np.asarray(X, dtype=np.float32)
    proba = np.zeros((X.shape[0], len(forest.classes_)), dtype=np.float64)
    for t in forest.estimators_:
        proba += t.predict_proba(X)
    return proba / len(forest.estimators_)


# -- split finders ---------------------------------------------------------------


def best_split_exact_scalar(clf, X, y_enc, idx, features, k):
    """Per-feature sort scan (the pre-blocking exact split finder).

    One feature at a time: stable sort, class-count cumulative sum, the
    criterion curve over all n-1 candidate boundaries, strict ``>``
    against the running best so the first feature achieving the best rank
    wins — the tie rule the blocked finder preserves.
    """
    from repro.mlcore.tree import _impurity

    n = idx.size
    min_leaf = clf.min_samples_leaf
    y_node = y_enc[idx]
    parent_imp = _impurity(np.bincount(y_node, minlength=k)[None, :], clf.criterion)[0]
    best_score = -np.inf
    best = None
    n_l = np.arange(1, n, dtype=np.float64)
    n_r = n - n_l
    for j in np.asarray(features):
        xj = X[idx, j].astype(np.float64)
        order = np.argsort(xj, kind="stable")
        xs = xj[order]
        ys = y_node[order]
        onehot = np.zeros((n, k), dtype=np.float64)
        onehot[np.arange(n), ys] = 1.0
        cum = np.cumsum(onehot, axis=0)
        L = cum[:-1]
        R = cum[-1][None, :] - L
        valid = xs[:-1] < xs[1:]
        if min_leaf > 1:
            valid &= (n_l >= min_leaf) & (n_r >= min_leaf)
        if clf.criterion == "gini":
            score = (L * L).sum(axis=1) / n_l + (R * R).sum(axis=1) / n_r
            score = np.where(valid, score, -np.inf)
            pos = int(np.argmax(score))
            child_imp = (n - score[pos]) / n
        else:
            imp_l = _impurity(L, clf.criterion)
            imp_r = _impurity(R, clf.criterion)
            weighted = (n_l * imp_l + n_r * imp_r) / n
            weighted = np.where(valid, weighted, np.inf)
            pos = int(np.argmin(weighted))
            child_imp = weighted[pos]
        rank = -child_imp if valid[pos] else -np.inf
        if rank > best_score:
            a, b = xs[pos], xs[pos + 1]
            mid = 0.5 * (a + b)
            threshold = b if mid <= a else mid  # routing is x < threshold
            best_score = rank
            best = (int(j), float(threshold), parent_imp - child_imp, xj < threshold)
    return best


def best_split_hist_scalar(clf, codes, quantizer, y_enc, idx, features, k):
    """Per-feature histogram scan (the pre-blocking hist split finder)."""
    from repro.mlcore.tree import _impurity

    n = idx.size
    min_leaf = max(1, clf.min_samples_leaf)
    y_node = y_enc[idx]
    parent_imp = _impurity(np.bincount(y_node, minlength=k)[None, :], clf.criterion)[0]
    best_score = -np.inf
    best = None
    for j in np.asarray(features):
        B = quantizer.n_effective_bins(int(j))
        if B < 2:
            continue
        cj = codes[idx, j].astype(np.int64)
        hist = np.bincount(cj * k + y_node, minlength=B * k).reshape(B, k)
        cum = np.cumsum(hist, axis=0).astype(np.float64)
        L = cum[:-1]  # split "code <= b" for b = 0 .. B-2
        n_l = L.sum(axis=1)
        n_r = n - n_l
        valid = (n_l >= min_leaf) & (n_r >= min_leaf)
        if not valid.any():
            continue
        R = cum[-1][None, :] - L
        with np.errstate(invalid="ignore", divide="ignore"):
            if clf.criterion == "gini":
                score = (L * L).sum(axis=1) / n_l + (R * R).sum(axis=1) / n_r
                score = np.where(valid, score, -np.inf)
                pos = int(np.argmax(score))
                child_imp = (n - score[pos]) / n
            else:
                imp_l = _impurity(L, clf.criterion)
                imp_r = _impurity(R, clf.criterion)
                weighted = (n_l * imp_l + n_r * imp_r) / n
                weighted = np.where(valid, weighted, np.inf)
                pos = int(np.argmin(weighted))
                child_imp = weighted[pos]
        rank = -child_imp if valid[pos] else -np.inf
        if rank > best_score:
            threshold = quantizer.threshold_of_bin(int(j), pos)
            best_score = rank
            best = (int(j), float(threshold), parent_imp - child_imp, cj <= pos)
    return best
