"""Gaussian naive Bayes classifier.

A third algorithm family for the Classification Model registry — the
paper notes that "it is possible to implement any data-driven prediction
algorithm" (§III-D).  Naive Bayes sits at the opposite end of the
training/inference trade-off space from both KNN and RF: training is one
vectorized pass of per-class means/variances, inference one broadcasted
log-density evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.mlcore.base import check_is_fitted, check_X_y, encode_labels
from repro.sanitizers import numeric_trap

__all__ = ["GaussianNBClassifier"]


class GaussianNBClassifier:
    """Per-feature Gaussian class-conditional densities, MAP prediction.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to all variances
        for numerical stability (sklearn's 1e-9 default).
    """

    def __init__(self, *, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be non-negative")
        self.var_smoothing = float(var_smoothing)
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "GaussianNBClassifier":
        """Estimate per-class priors, means and variances."""
        X, y = check_X_y(X, y, dtype=np.float64)
        self.classes_, y_enc = encode_labels(y)
        k = len(self.classes_)
        n, d = X.shape
        self.theta_ = np.empty((k, d))
        self.var_ = np.empty((k, d))
        self.class_prior_ = np.empty(k)
        for c in range(k):
            Xc = X[y_enc == c]
            self.theta_[c] = Xc.mean(axis=0)
            self.var_[c] = Xc.var(axis=0)
            self.class_prior_[c] = Xc.shape[0] / n
        self.epsilon_ = self.var_smoothing * float(X.var(axis=0).max())
        self.var_ += max(self.epsilon_, 1e-12)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        # (n, k): log prior + sum_d log N(x_d | theta, var)
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.theta_.shape[1]:
            raise ValueError("X has the wrong shape for this model")
        with numeric_trap("GaussianNB.joint_log_likelihood"):
            jll = np.log(self.class_prior_)[None, :] - 0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_), axis=1
            )[None, :]
            # broadcast: (n, 1, d) - (k, d) -> (n, k, d)
            diff = X[:, None, :] - self.theta_[None, :, :]
            jll = jll - 0.5 * np.sum(diff * diff / self.var_[None, :, :], axis=2)
        return jll

    def predict_proba(self, X) -> np.ndarray:
        """Posterior class probabilities (softmax of joint log likelihood)."""
        check_is_fitted(self, "classes_")
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        """MAP class labels."""
        check_is_fitted(self, "classes_")
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def score(self, X, y) -> float:
        """Mean accuracy."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    # -- persistence --------------------------------------------------------------

    def get_state(self) -> dict:
        check_is_fitted(self, "classes_")
        return {
            "meta": {"var_smoothing": self.var_smoothing},
            "arrays": {
                "classes": self.classes_,
                "theta": self.theta_,
                "var": self.var_,
                "prior": self.class_prior_,
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "GaussianNBClassifier":
        model = cls(var_smoothing=state["meta"]["var_smoothing"])
        arrays = state["arrays"]
        model.classes_ = np.asarray(arrays["classes"])
        model.theta_ = np.asarray(arrays["theta"], dtype=np.float64)
        model.var_ = np.asarray(arrays["var"], dtype=np.float64)
        model.class_prior_ = np.asarray(arrays["prior"], dtype=np.float64)
        model.epsilon_ = 0.0
        return model
