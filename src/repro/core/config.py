"""Framework configuration.

The paper stresses that MCBound "can be seamlessly configured and deployed
in other HPC systems": the machine ceilings, feature set, embedding model
and classification algorithm are all configuration, not code.  This module
is that configuration surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fugaku.system import FUGAKU

__all__ = ["DEFAULT_FEATURE_SET", "MCBoundConfig"]

#: Submission features fed to the encoder (§V-A): the feature set of
#: Antici et al. [4] — user name, job name, #cores requested, #nodes
#: requested, environment — plus the frequency requested, which the paper
#: found to improve prediction.
DEFAULT_FEATURE_SET: tuple[str, ...] = (
    "user_name",
    "job_name",
    "cores_req",
    "nodes_req",
    "environment",
    "freq_req_ghz",
)


@dataclass(frozen=True)
class MCBoundConfig:
    """Everything needed to instantiate the framework for one system.

    Attributes
    ----------
    peak_gflops_node / peak_membw_gbs:
        Node-level Roofline ceilings (defaults: Fugaku boost mode).
    feature_set:
        Submission features the encoder concatenates.
    embedding_dim:
        Sentence embedding width (384 matches the paper's SBERT model).
    algorithm:
        Classification algorithm name ("RF" or "KNN").
    model_params:
        Keyword arguments forwarded to the algorithm's constructor.
    alpha_days / beta_days:
        Online schedule: retrain on the last α days, once every β days.
        Paper's best: α=15 β=1 for RF, α=30 β=1 for KNN.
    embedder_seed:
        Seed of the hashed embedding projection.
    use_idf:
        Whether the encoder weights tokens by online IDF.
    system:
        Registered system-model name (``repro.systems``) supplying the
        counter→flops/bytes transform.  The peak ceilings above stay
        independent so a deployment can override them, but
        :meth:`for_system` derives all three from one registry entry.
    predict_memo:
        Capacity of the serve-path prediction memo (submission string →
        label); 0 disables it.  Users submit batches of identical jobs
        (§V-C.c), so repeats skip the encoder and the forest entirely.
    train_reservoir:
        Bound on training rows held in memory at once: windows larger
        than this are uniformly reservoir-sampled while streaming.
    """

    peak_gflops_node: float = FUGAKU.peak_gflops_node
    peak_membw_gbs: float = FUGAKU.peak_membw_gbs
    feature_set: tuple[str, ...] = DEFAULT_FEATURE_SET
    embedding_dim: int = 384
    algorithm: str = "RF"
    model_params: dict = field(default_factory=dict)
    alpha_days: float = 15.0
    beta_days: float = 1.0
    embedder_seed: int = 17
    use_idf: bool = False
    system: str = "fugaku"
    predict_memo: int = 4096
    train_reservoir: int = 50_000

    def __post_init__(self) -> None:
        if self.peak_gflops_node <= 0 or self.peak_membw_gbs <= 0:
            raise ValueError("machine ceilings must be positive")
        if not self.feature_set:
            raise ValueError("feature_set must not be empty")
        if self.alpha_days <= 0:
            raise ValueError("alpha_days must be positive")
        if self.beta_days <= 0:
            raise ValueError("beta_days must be positive")
        if self.predict_memo < 0:
            raise ValueError("predict_memo must be non-negative")
        if self.train_reservoir <= 0:
            raise ValueError("train_reservoir must be positive")

    @classmethod
    def for_system(cls, name: str, **overrides) -> "MCBoundConfig":
        """Config for a registered system: its peaks, its transform."""
        from repro.systems import get_system

        system = get_system(name)
        overrides.setdefault("peak_gflops_node", system.peak_gflops_node)
        overrides.setdefault("peak_membw_gbs", system.peak_membw_gbs)
        return cls(system=name, **overrides)

    def to_dict(self) -> dict:
        """JSON-friendly dump (used by the /config endpoint and ModelStore)."""
        return {
            "peak_gflops_node": self.peak_gflops_node,
            "peak_membw_gbs": self.peak_membw_gbs,
            "feature_set": list(self.feature_set),
            "embedding_dim": self.embedding_dim,
            "algorithm": self.algorithm,
            "model_params": dict(self.model_params),
            "alpha_days": self.alpha_days,
            "beta_days": self.beta_days,
            "embedder_seed": self.embedder_seed,
            "use_idf": self.use_idf,
            "system": self.system,
            "predict_memo": self.predict_memo,
            "train_reservoir": self.train_reservoir,
        }
