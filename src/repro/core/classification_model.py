"""Classification Model component (paper §III-D).

A thin polymorphic wrapper: the object is created with the *name* of the
prediction algorithm to employ ("KNN" or "RF" in the paper; any registered
algorithm here) and exposes the paper's two methods, ``training`` and
``inference``.  ``inference`` refuses to run before ``training`` — exactly
the contract described in §III-D.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.mlcore.base import NotFittedError
from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.knn import KNeighborsClassifier
from repro.mlcore.naive_bayes import GaussianNBClassifier

__all__ = ["ClassificationModel"]


def _make_knn(**params) -> KNeighborsClassifier:
    return KNeighborsClassifier(**params)


def _make_rf(**params) -> RandomForestClassifier:
    return RandomForestClassifier(**params)


#: Registered algorithm factories.  New algorithms (neural networks,
#: heuristics, ...) plug in via :meth:`ClassificationModel.register`.
def _make_nb(**params) -> GaussianNBClassifier:
    return GaussianNBClassifier(**params)


_ALGORITHMS: dict[str, Callable] = {
    "KNN": _make_knn,
    "RF": _make_rf,
    "NB": _make_nb,
}


class ClassificationModel:
    """Data-driven prediction algorithm behind a uniform train/infer API.

    Parameters
    ----------
    algorithm:
        Registered algorithm name (case-insensitive): "KNN" or "RF" out of
        the box.
    **params:
        Forwarded to the algorithm factory (e.g. ``n_estimators=25``).
    """

    def __init__(self, algorithm: str, /, **params) -> None:
        # positional-only: KNN's own backend kwarg is also named "algorithm"
        key = algorithm.upper()
        if key not in _ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; registered: {sorted(_ALGORITHMS)}"
            )
        self.algorithm = key
        self.params = dict(params)
        self.model = _ALGORITHMS[key](**params)
        self._trained = False

    @classmethod
    def register(cls, name: str, factory: Callable) -> None:
        """Register a new algorithm factory under ``name``."""
        key = name.upper()
        if key in _ALGORITHMS:
            raise ValueError(f"algorithm {name!r} already registered")
        _ALGORITHMS[key] = factory

    @classmethod
    def registered_algorithms(cls) -> tuple[str, ...]:
        return tuple(sorted(_ALGORITHMS))

    # -- the paper's two methods --------------------------------------------------

    def training(self, encoded_jobs, labels) -> "ClassificationModel":
        """Train on encoded job data and memory/compute-bound labels."""
        X = np.asarray(encoded_jobs)
        y = np.asarray(labels)
        self.model.fit(X, y)
        self._trained = True
        return self

    def inference(self, encoded_jobs) -> np.ndarray:
        """Predict labels for encoded jobs; only valid after training."""
        if not self._trained:
            raise NotFittedError(
                "ClassificationModel.inference called before training"
            )
        return self.model.predict(np.asarray(encoded_jobs))

    def inference_proba(self, encoded_jobs) -> np.ndarray:
        """Class probabilities (vote shares / tree-vote averages)."""
        if not self._trained:
            raise NotFittedError(
                "ClassificationModel.inference called before training"
            )
        return self.model.predict_proba(np.asarray(encoded_jobs))

    @property
    def is_trained(self) -> bool:
        return self._trained

    # Persistence of the wrapped estimator goes through
    # :class:`repro.core.registry.ModelStore`, which saves ``self.model``
    # with :func:`repro.mlcore.persistence.save_model` plus the algorithm
    # name and params as metadata.
