"""Versioned store of trained Classification Model instances (§III-E).

Wraps :class:`repro.mlcore.persistence.ModelRegistry` with MCBound-level
metadata: algorithm name and params, the training window, and the encoder
configuration that produced the training matrix (so a reloaded model is
always paired with a compatible encoder).
"""

from __future__ import annotations

from pathlib import Path

from repro.core.classification_model import ClassificationModel
from repro.mlcore.persistence import ModelRegistry
from repro.nlp.embedder import SentenceEmbedder

__all__ = ["ModelStore"]


class ModelStore:
    """Publish/load (ClassificationModel, embedder config) pairs."""

    def __init__(self, root: str | Path) -> None:
        self.registry = ModelRegistry(root)

    @property
    def latest_version(self) -> int | None:
        return self.registry.latest_version

    def publish(
        self,
        model: ClassificationModel,
        *,
        embedder: SentenceEmbedder | None = None,
        trained_at: float | None = None,
        window: tuple[float, float] | None = None,
        extra: dict | None = None,
    ) -> int:
        """Persist a trained model; returns the new version number."""
        metadata = {
            "algorithm": model.algorithm,
            "params": {k: repr(v) for k, v in sorted(model.params.items())},
        }
        if embedder is not None:
            metadata["embedder"] = embedder.config_dict()
        if trained_at is not None:
            metadata["trained_at"] = trained_at
        if window is not None:
            metadata["window"] = list(window)
        if extra:
            metadata["extra"] = extra
        return self.registry.publish(model.model, metadata=metadata)

    def load(self, version: int | None = None) -> tuple[ClassificationModel, dict]:
        """Load a version (default: latest) back into a ClassificationModel."""
        v = self.registry.latest_version if version is None else version
        if v is None:
            raise FileNotFoundError("model store is empty")
        estimator = self.registry.load(v)
        metadata = self.registry.metadata(v)
        model = ClassificationModel.__new__(ClassificationModel)
        model.algorithm = metadata.get("algorithm", type(estimator).__name__)
        model.params = {}
        model.model = estimator
        model._trained = True
        return model, metadata

    def load_embedder(self, version: int | None = None) -> SentenceEmbedder | None:
        """Reconstruct the embedder recorded with a version (None if absent)."""
        v = self.registry.latest_version if version is None else version
        if v is None:
            raise FileNotFoundError("model store is empty")
        cfg = self.registry.metadata(v).get("embedder")
        return SentenceEmbedder.from_config_dict(cfg) if cfg else None
