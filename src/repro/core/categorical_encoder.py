"""Classical categorical feature encoding (the §III-B alternative).

The paper's encode method "can be modified to select any subset of job
features and to leverage any encoding technique (such as classical
categorical mapping of feature values to integers ...)".  This module
implements that alternative: per-feature vocabularies learned from the
training batch, with either ordinal integer codes or one-hot blocks, so
the NLP-vs-categorical trade-off can be measured (see the encoder
ablation bench).

Unlike the sentence embedder, categorical mapping has no notion of
similarity between *unseen* values: a job name never seen in training
falls into a reserved unknown bucket, which is exactly why the paper's
NLP encoding generalizes better on a workload where new templates appear
daily.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.config import DEFAULT_FEATURE_SET

__all__ = ["CategoricalEncoder"]

_UNKNOWN = 0  # reserved code for values not in the vocabulary


class CategoricalEncoder:
    """Vocabulary-based job feature encoder.

    Parameters
    ----------
    feature_set:
        Ordered feature names to select from each raw job record.
    mode:
        "ordinal" — one integer column per feature (scaled to [0, 1]);
        "onehot" — one indicator block per feature (capped per feature).
    max_categories:
        Per-feature vocabulary cap; the most frequent values win.
    """

    def __init__(
        self,
        feature_set: Sequence[str] = DEFAULT_FEATURE_SET,
        *,
        mode: str = "ordinal",
        max_categories: int = 256,
    ) -> None:
        if not feature_set:
            raise ValueError("feature_set must not be empty")
        if mode not in ("ordinal", "onehot"):
            raise ValueError(f"unknown mode {mode!r}")
        if max_categories < 2:
            raise ValueError("max_categories must be >= 2")
        self.feature_set = tuple(feature_set)
        self.mode = mode
        self.max_categories = int(max_categories)
        self.vocabularies_: dict[str, dict[str, int]] | None = None

    # -- fitting ------------------------------------------------------------------

    def fit(self, records: Iterable[Mapping]) -> "CategoricalEncoder":
        """Learn per-feature vocabularies from a training batch."""
        records = list(records)
        if not records:
            raise ValueError("cannot fit on an empty record set")
        vocabularies: dict[str, dict[str, int]] = {}
        for f in self.feature_set:
            counts: dict[str, int] = {}
            for r in records:
                if f not in r:
                    raise KeyError(f"record missing feature {f!r}")
                v = str(r[f])
                counts[v] = counts.get(v, 0) + 1
            top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            top = top[: self.max_categories - 1]  # code 0 reserved for unknown
            vocabularies[f] = {v: i + 1 for i, (v, _) in enumerate(top)}
        self.vocabularies_ = vocabularies
        return self

    @property
    def dim(self) -> int:
        """Width of the encoded vectors."""
        if self.vocabularies_ is None:
            raise RuntimeError("encoder not fitted")
        if self.mode == "ordinal":
            return len(self.feature_set)
        return sum(len(v) + 1 for v in self.vocabularies_.values())

    # -- encoding --------------------------------------------------------------------

    def encode(self, records: Iterable[Mapping]) -> np.ndarray:
        """Encode records into a float32 matrix."""
        if self.vocabularies_ is None:
            raise RuntimeError("encoder not fitted; call fit() first")
        records = list(records)
        n = len(records)
        if n == 0:
            return np.empty((0, self.dim), dtype=np.float32)

        if self.mode == "ordinal":
            out = np.zeros((n, len(self.feature_set)), dtype=np.float32)
            for j, f in enumerate(self.feature_set):
                vocab = self.vocabularies_[f]
                scale = max(1, len(vocab))
                for i, r in enumerate(records):
                    out[i, j] = vocab.get(str(r[f]), _UNKNOWN) / scale
            return out

        out = np.zeros((n, self.dim), dtype=np.float32)
        offset = 0
        for f in self.feature_set:
            vocab = self.vocabularies_[f]
            width = len(vocab) + 1
            for i, r in enumerate(records):
                out[i, offset + vocab.get(str(r[f]), _UNKNOWN)] = 1.0
            offset += width
        return out

    def unknown_rate(self, records: Iterable[Mapping]) -> float:
        """Fraction of feature values falling into the unknown bucket."""
        if self.vocabularies_ is None:
            raise RuntimeError("encoder not fitted")
        records = list(records)
        if not records:
            return 0.0
        unknown = total = 0
        for f in self.feature_set:
            vocab = self.vocabularies_[f]
            for r in records:
                total += 1
                if str(r[f]) not in vocab:
                    unknown += 1
        return unknown / total
