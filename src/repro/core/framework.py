"""The MCBound facade: the four components wired together (paper Fig. 1).

Owns the Data Fetcher, Feature Encoder, Job Characterizer and the current
Classification Model instance, plus the two caches the paper's Fugaku
implementation keeps (§V-A): characterizations and encodings computed by
one workflow trigger are reused by later triggers.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.classification_model import ClassificationModel
from repro.core.config import MCBoundConfig
from repro.core.data_fetcher import DataFetcher
from repro.core.feature_encoder import FeatureEncoder
from repro.core.job_characterizer import JobCharacterizer
from repro.core.registry import ModelStore
from repro.mlcore.base import NotFittedError
from repro.nlp.embedder import SentenceEmbedder
from repro.sanitizers import StateGuard, check_finite, new_lock
from repro.storage.engine import SCAN_BATCH_ROWS, Database

__all__ = ["MCBound"]


class MCBound:
    """Online memory/compute-bound classification framework.

    Parameters
    ----------
    config:
        Framework configuration (machine ceilings, feature set, algorithm,
        α/β schedule).
    db:
        Jobs data storage with a loaded ``jobs`` table
        (see :func:`repro.core.data_fetcher.load_trace_into_db`).
    model_store_root:
        Directory for the versioned model store; None keeps models only in
        memory.
    """

    def __init__(
        self,
        config: MCBoundConfig,
        db: Database,
        *,
        model_store_root: str | Path | None = None,
    ) -> None:
        self.config = config
        self.fetcher = DataFetcher(db)
        self.encoder = FeatureEncoder(
            config.feature_set,
            SentenceEmbedder(
                config.embedding_dim,
                seed=config.embedder_seed,
                use_idf=config.use_idf,
            ),
        )
        self.characterizer = JobCharacterizer(
            config.peak_gflops_node, config.peak_membw_gbs
        )
        self.store = ModelStore(model_store_root) if model_store_root else None
        self.model: ClassificationModel | None = None
        #: job_id -> ground-truth label, filled by characterization passes
        self.label_cache: dict[int, int] = {}
        # One lock serializes every cross-thread write to model/label_cache:
        # the serving path (per-request threads) races the Training Workflow
        # over both.  Reentrant because train() characterizes under it too.
        self._state_lock = new_lock("repro.core.MCBound.state")
        self._state_guard = StateGuard("repro.core.MCBound.state")

    # -- characterization ---------------------------------------------------------

    def characterize_window(self, start_time: float, end_time: float):
        """Label all jobs of a window; returns (job_ids, labels).

        Results land in :attr:`label_cache` so retraining windows that
        overlap previous ones do not recompute (§V-A).
        """
        records = self.fetcher.fetch(start_time=start_time, end_time=end_time)
        return self._characterize_records(records)

    def characterize_window_batches(
        self, start_time: float, end_time: float, *, batch_rows: int = SCAN_BATCH_ROWS
    ):
        # streaming: one (job_ids, labels) pair per fetched batch
        # scale: -> batch
        """Label a window one bounded columnar batch at a time.

        The streaming counterpart of :meth:`characterize_window`: the
        same jobs get the same labels, but each batch is fetched and
        characterized straight off the column store — no row dicts — so
        labelling a month-scale window peaks at O(``batch_rows``)
        memory.  Labels land in :attr:`label_cache` batch by batch
        (recomputing a cached job is cheaper vectorized than checking).
        """
        for batch in self.fetcher.fetch_batches(
            start_time, end_time, batch_rows=batch_rows
        ):
            job_ids = batch.column("job_id").astype(np.int64, copy=False)
            labels = self.characterizer.labels_from_result(batch)
            updates = dict(zip(job_ids.tolist(), (int(v) for v in labels)))
            with self._state_lock, self._state_guard.writing():
                self.label_cache.update(updates)
            yield job_ids, labels

    def _characterize_records(self, records: list[dict]):
        job_ids = np.array([r["job_id"] for r in records], dtype=np.int64)
        labels = np.empty(len(records), dtype=np.int64)
        with self._state_lock:
            cached = dict(self.label_cache)
        fresh = [i for i, jid in enumerate(job_ids.tolist()) if jid not in cached]
        for i, jid in enumerate(job_ids.tolist()):
            if jid in cached:
                labels[i] = cached[jid]
        if fresh:
            new_labels = self.characterizer.labels_from_records(records[i] for i in fresh)
            updates = {}
            for k, i in enumerate(fresh):
                labels[i] = new_labels[k]
                updates[int(job_ids[i])] = int(new_labels[k])
            with self._state_lock, self._state_guard.writing():
                self.label_cache.update(updates)
        return job_ids, labels

    # -- training -----------------------------------------------------------------------

    def train(self, now: float, *, alpha_days: float | None = None) -> dict:
        """Run one training pass on the last α days before ``now``.

        Returns a summary dict (window, sample count, class balance,
        published version).  Encodings come from the embedder cache when
        the string was seen before.
        """
        alpha = alpha_days if alpha_days is not None else self.config.alpha_days
        start = now - alpha * 86_400.0
        records = self.fetcher.fetch(start_time=start, end_time=now)
        if not records:
            raise ValueError(f"no jobs in training window [{start}, {now})")
        _, labels = self._characterize_records(records)
        if np.unique(labels).size < 2:
            raise ValueError("training window contains a single class")
        if self.config.use_idf:
            self.encoder.partial_fit_idf(records)
        X = self.encoder.encode(records)
        check_finite("MCBound.train.encodings", X)
        model = ClassificationModel(self.config.algorithm, **self.config.model_params)
        model.training(X, labels)
        # Fit happened outside the critical section; only the publish of
        # the new model instance happens under the lock.
        with self._state_lock, self._state_guard.writing():
            self.model = model
        version = None
        if self.store is not None:
            version = self.store.publish(
                model,
                embedder=self.encoder.embedder,
                trained_at=now,
                window=(start, now),
            )
        unique, counts = np.unique(labels, return_counts=True)
        return {
            "window": (start, now),
            "n_jobs": len(records),
            "class_counts": {int(u): int(c) for u, c in zip(unique, counts)},
            "version": version,
            "algorithm": self.config.algorithm,
        }

    def _require_model(self) -> ClassificationModel:
        with self._state_lock, self._state_guard.reading():
            model = self.model
        if model is None:
            if self.store is not None and self.store.latest_version is not None:
                loaded, _ = self.store.load()  # disk I/O stays outside the lock
                with self._state_lock, self._state_guard.writing():
                    if self.model is None:
                        self.model = loaded
                    model = self.model
            else:
                raise NotFittedError(
                    "MCBound has no trained model; run the Training Workflow first"
                )
        return model

    # -- inference ------------------------------------------------------------------------

    def predict_records(self, records: list[dict]) -> np.ndarray:
        """Labels for raw submission records (the pre-execution path)."""
        model = self._require_model()
        if not records:
            return np.empty(0, dtype=np.int64)
        X = self.encoder.encode(records)
        check_finite("MCBound.predict_records.encodings", X)
        return np.asarray(model.inference(X), dtype=np.int64)

    def predict_window(self, start_time: float, end_time: float):
        """Predict every job submitted in a window; returns (job_ids, labels)."""
        records = self.fetcher.fetch(start_time=start_time, end_time=end_time)
        job_ids = np.array([r["job_id"] for r in records], dtype=np.int64)
        return job_ids, self.predict_records(records)

    def predict_job(self, job_id: int) -> int:
        """Predict a single newly submitted job by id."""
        records = self.fetcher.fetch(job_id=job_id)
        if not records:
            raise KeyError(f"no job with id {job_id}")
        return int(self.predict_records(records)[0])
