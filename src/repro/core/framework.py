"""The MCBound facade: the four components wired together (paper Fig. 1).

Owns the Data Fetcher, Feature Encoder, Job Characterizer and the current
Classification Model instance, plus the two caches the paper's Fugaku
implementation keeps (§V-A): characterizations and encodings computed by
one workflow trigger are reused by later triggers.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.core.classification_model import ClassificationModel
from repro.core.config import MCBoundConfig
from repro.core.data_fetcher import DataFetcher
from repro.core.feature_encoder import FeatureEncoder
from repro.core.job_characterizer import JobCharacterizer
from repro.core.registry import ModelStore
from repro.mlcore.base import NotFittedError
from repro.nlp.embedder import SentenceEmbedder
from repro.sanitizers import StateGuard, check_finite, new_lock
from repro.storage.engine import SCAN_BATCH_ROWS, Database
from repro.systems import get_system

__all__ = ["MCBound"]


class MCBound:
    """Online memory/compute-bound classification framework.

    Parameters
    ----------
    config:
        Framework configuration (machine ceilings, feature set, algorithm,
        α/β schedule).
    db:
        Jobs data storage with a loaded ``jobs`` table
        (see :func:`repro.core.data_fetcher.load_trace_into_db`).
    model_store_root:
        Directory for the versioned model store; None keeps models only in
        memory.
    """

    def __init__(
        self,
        config: MCBoundConfig,
        db: Database,
        *,
        model_store_root: str | Path | None = None,
    ) -> None:
        self.config = config
        self.fetcher = DataFetcher(db)
        self.encoder = FeatureEncoder(
            config.feature_set,
            SentenceEmbedder(
                config.embedding_dim,
                seed=config.embedder_seed,
                use_idf=config.use_idf,
            ),
        )
        #: the registered physical model behind the counter transform
        self.system = get_system(config.system)
        self.characterizer = JobCharacterizer(
            config.peak_gflops_node,
            config.peak_membw_gbs,
            counter_transform=self.system.counter_transform(),
        )
        self.store = ModelStore(model_store_root) if model_store_root else None
        self.model: ClassificationModel | None = None
        #: job_id -> ground-truth label, filled by characterization passes
        self.label_cache: dict[int, int] = {}
        #: submission string -> predicted label; users submit batches of
        #: identical jobs (§V-C.c), so the serve path memoizes on the raw
        #: string and skips encoder+forest for repeats.  Guarded by
        #: _state_lock; invalidated whenever a new model is published.
        self._predict_memo: OrderedDict[str, int] = OrderedDict()
        self._memo_model: ClassificationModel | None = None
        # One lock serializes every cross-thread write to model/label_cache:
        # the serving path (per-request threads) races the Training Workflow
        # over both.  Reentrant because train() characterizes under it too.
        self._state_lock = new_lock("repro.core.MCBound.state")
        self._state_guard = StateGuard("repro.core.MCBound.state")

    # -- characterization ---------------------------------------------------------

    def characterize_window(self, start_time: float, end_time: float):
        """Label all jobs of a window; returns (job_ids, labels).

        Results land in :attr:`label_cache` so retraining windows that
        overlap previous ones do not recompute (§V-A).
        """
        records = self.fetcher.fetch(start_time=start_time, end_time=end_time)
        return self._characterize_records(records)

    def characterize_window_batches(
        self, start_time: float, end_time: float, *, batch_rows: int = SCAN_BATCH_ROWS
    ):
        # streaming: one (job_ids, labels) pair per fetched batch
        # scale: -> batch
        """Label a window one bounded columnar batch at a time.

        The streaming counterpart of :meth:`characterize_window`: the
        same jobs get the same labels, but each batch is fetched and
        characterized straight off the column store — no row dicts — so
        labelling a month-scale window peaks at O(``batch_rows``)
        memory.  Labels land in :attr:`label_cache` batch by batch
        (recomputing a cached job is cheaper vectorized than checking).
        """
        for batch in self.fetcher.fetch_batches(
            start_time, end_time, batch_rows=batch_rows
        ):
            yield self._characterize_batch(batch)

    def _characterize_batch(self, batch):
        """Label one columnar batch; updates the label cache."""
        job_ids = batch.column("job_id").astype(np.int64, copy=False)
        labels = self.characterizer.labels_from_result(batch)
        updates = dict(zip(job_ids.tolist(), (int(v) for v in labels)))
        with self._state_lock, self._state_guard.writing():
            self.label_cache.update(updates)
        return job_ids, labels

    def _characterize_records(self, records: list[dict]):
        job_ids = np.array([r["job_id"] for r in records], dtype=np.int64)
        labels = np.empty(len(records), dtype=np.int64)
        with self._state_lock:
            cached = dict(self.label_cache)
        fresh = [i for i, jid in enumerate(job_ids.tolist()) if jid not in cached]
        for i, jid in enumerate(job_ids.tolist()):
            if jid in cached:
                labels[i] = cached[jid]
        if fresh:
            new_labels = self.characterizer.labels_from_records(records[i] for i in fresh)
            updates = {}
            for k, i in enumerate(fresh):
                labels[i] = new_labels[k]
                updates[int(job_ids[i])] = int(new_labels[k])
            with self._state_lock, self._state_guard.writing():
                self.label_cache.update(updates)
        return job_ids, labels

    # -- training -----------------------------------------------------------------------

    def train(self, now: float, *, alpha_days: float | None = None) -> dict:
        # streaming: fits from a bounded reservoir over columnar batches
        # scale: -> bounded
        """Run one training pass on the last α days before ``now``.

        Returns a summary dict (window, sample count, class balance,
        published version).  Encodings come from the embedder cache when
        the string was seen before.

        The window is consumed batch by batch off the column store —
        characterize, encode, then fold into a uniform reservoir of at
        most ``config.train_reservoir`` rows — so training memory is
        bounded by the reservoir, never the window.  Windows smaller
        than the reservoir are used whole, in submit order, exactly as
        the pre-streaming path did.  With ``use_idf`` the IDF table
        updates per batch (online semantics) rather than once up front.
        """
        alpha = alpha_days if alpha_days is not None else self.config.alpha_days
        start = now - alpha * 86_400.0
        cap = self.config.train_reservoir
        X_res = np.empty((cap, self.encoder.dim), dtype=np.float32)
        y_res = np.empty(cap, dtype=np.int64)
        rng = np.random.default_rng(self.config.embedder_seed)
        n_seen = 0
        class_counts: dict[int, int] = {}
        for batch in self.fetcher.fetch_batches(start, now):
            _job_ids, labels = self._characterize_batch(batch)
            labels = np.asarray(labels, dtype=np.int64)
            strings = self.encoder.feature_strings_from_result(batch)
            if self.config.use_idf:
                self.encoder.embedder.partial_fit_idf(strings)
            Xb = self.encoder.embedder.encode(strings)
            check_finite("MCBound.train.encodings", Xb)
            unique, counts = np.unique(labels, return_counts=True)
            for u, c in zip(unique.tolist(), counts.tolist()):
                class_counts[int(u)] = class_counts.get(int(u), 0) + int(c)
            # Vectorized reservoir fold (Algorithm R shape): absolute
            # stream positions decide admission, so early batches are
            # not privileged over late ones.
            positions = n_seen + np.arange(len(labels))
            fill = positions < cap
            if np.any(fill):
                dest = positions[fill]
                X_res[dest] = Xb[fill]
                y_res[dest] = labels[fill]
            rest = ~fill
            if np.any(rest):
                slots = rng.integers(0, positions[rest] + 1)
                hits = slots < cap
                X_res[slots[hits]] = Xb[rest][hits]
                y_res[slots[hits]] = labels[rest][hits]
            n_seen += len(labels)
        if n_seen == 0:
            raise ValueError(f"no jobs in training window [{start}, {now})")
        n_fit = min(n_seen, cap)
        labels = y_res[:n_fit]
        if np.unique(labels).size < 2:
            raise ValueError("training window contains a single class")
        model = ClassificationModel(self.config.algorithm, **self.config.model_params)
        model.training(X_res[:n_fit], labels)
        # Fit happened outside the critical section; only the publish of
        # the new model instance happens under the lock.
        with self._state_lock, self._state_guard.writing():
            self.model = model
        version = None
        if self.store is not None:
            version = self.store.publish(
                model,
                embedder=self.encoder.embedder,
                trained_at=now,
                window=(start, now),
            )
        return {
            "window": (start, now),
            "n_jobs": n_seen,
            "class_counts": dict(sorted(class_counts.items())),
            "version": version,
            "algorithm": self.config.algorithm,
        }

    def _require_model(self) -> ClassificationModel:
        with self._state_lock, self._state_guard.reading():
            model = self.model
        if model is None:
            if self.store is not None and self.store.latest_version is not None:
                loaded, _ = self.store.load()  # disk I/O stays outside the lock
                with self._state_lock, self._state_guard.writing():
                    if self.model is None:
                        self.model = loaded
                    model = self.model
            else:
                raise NotFittedError(
                    "MCBound has no trained model; run the Training Workflow first"
                )
        return model

    # -- inference ------------------------------------------------------------------------

    def predict_records(self, records: list[dict]) -> np.ndarray:
        """Labels for raw submission records (the pre-execution path).

        Keyed on the raw submission string: users submit batches of
        identical jobs (§V-C.c), so repeats — within one call and across
        calls — are served from a bounded LRU memo and only distinct
        misses ever reach the encoder and the model.  Predictions are
        per-row independent, so the answers are identical to the unmemo
        path; the memo empties whenever a new model is published.
        """
        model = self._require_model()
        if not records:
            return np.empty(0, dtype=np.int64)
        strings = [self.encoder.feature_string(r) for r in records]
        cap = self.config.predict_memo
        if cap == 0:
            X = self.encoder.embedder.encode(strings)
            check_finite("MCBound.predict_records.encodings", X)
            return np.asarray(model.inference(X), dtype=np.int64)
        with self._state_lock:
            if model is not self._memo_model:
                self._predict_memo.clear()
                self._memo_model = model
            memo = self._predict_memo
            hits = []
            for s in strings:
                label = memo.get(s)
                if label is not None:
                    memo.move_to_end(s)
                hits.append(label)
        misses = list(dict.fromkeys(s for s, h in zip(strings, hits) if h is None))
        fresh: dict[str, int] = {}
        if misses:
            X = self.encoder.embedder.encode(misses)
            check_finite("MCBound.predict_records.encodings", X)
            predicted = np.asarray(model.inference(X), dtype=np.int64)
            fresh = dict(zip(misses, (int(v) for v in predicted)))
            with self._state_lock, self._state_guard.writing():
                if model is self._memo_model:
                    self._predict_memo.update(fresh)
                    while len(self._predict_memo) > cap:
                        self._predict_memo.popitem(last=False)
        return np.asarray(
            [h if h is not None else fresh[s] for s, h in zip(strings, hits)],
            dtype=np.int64,
        )

    def predict_window(self, start_time: float, end_time: float):
        """Predict every job submitted in a window; returns (job_ids, labels)."""
        records = self.fetcher.fetch(start_time=start_time, end_time=end_time)
        job_ids = np.array([r["job_id"] for r in records], dtype=np.int64)
        return job_ids, self.predict_records(records)

    def predict_job(self, job_id: int) -> int:
        """Predict a single newly submitted job by id."""
        records = self.fetcher.fetch(job_id=job_id)
        if not records:
            raise KeyError(f"no job with id {job_id}")
        return int(self.predict_records(records)[0])
