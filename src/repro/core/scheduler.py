"""Simulated clock and cron-style scheduling (§III-E).

The paper deploys MCBound with a cronjob re-running the Training Workflow
every β days while the Inference Workflow handles new submissions in
between.  To replay a 90-day online deployment deterministically in
seconds, this module provides a simulated clock and a scheduler that fires
registered jobs in exact time order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

__all__ = ["SimClock", "CronSchedule", "Scheduler"]

DAY_SECONDS = 86_400.0


class SimClock:
    """A monotonically advancing simulated time, in trace seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"time cannot go backwards ({t} < {self._now})")
        self._now = float(t)


@dataclass(frozen=True)
class CronSchedule:
    """Fire every ``interval_days``, first at ``start + offset_days``."""

    interval_days: float
    offset_days: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_days <= 0:
            raise ValueError("interval_days must be positive")

    def occurrences(self, start: float, end: float) -> list[float]:
        """All fire times in ``[start, end)``."""
        first = start + self.offset_days * DAY_SECONDS
        step = self.interval_days * DAY_SECONDS
        out = []
        t = first
        while t < end:
            if t >= start:
                out.append(t)
            t += step
        return out

    def next_after(self, t: float, start: float) -> float:
        """First fire time strictly after ``t`` given the epoch ``start``."""
        first = start + self.offset_days * DAY_SECONDS
        step = self.interval_days * DAY_SECONDS
        if t < first:
            return first
        k = int((t - first) // step) + 1
        nxt = first + k * step
        # float floor can under-count k when t sits exactly on the grid,
        # which would return t itself and loop the scheduler forever
        while nxt <= t:
            k += 1
            nxt = first + k * step
        return nxt


class Scheduler:
    """Deterministic event loop over a :class:`SimClock`.

    Jobs are ``callback(now)`` callables attached to a
    :class:`CronSchedule`; ties at the same instant run in registration
    order.  ``run_until`` drives everything to an end time.
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._epoch = clock.now
        self._jobs: list[tuple[CronSchedule, Callable, int]] = []
        self._counter = itertools.count()
        self._fired: list[tuple[float, str]] = []

    def every(self, interval_days: float, callback: Callable, *, offset_days: float = 0.0, name: str | None = None):
        """Register a recurring job; returns its registration index."""
        schedule = CronSchedule(interval_days, offset_days)
        idx = next(self._counter)
        self._jobs.append((schedule, callback, idx))
        return idx

    def run_until(self, end: float) -> list[tuple[float, int]]:
        """Fire every due job up to (excluding) ``end``; returns the log.

        The log lists ``(time, job_index)`` pairs in execution order.
        """
        heap: list[tuple[float, int, CronSchedule, Callable]] = []
        for schedule, callback, idx in self._jobs:
            t = schedule.next_after(self.clock.now - 1e-9, self._epoch)
            if t < end:
                heapq.heappush(heap, (t, idx, schedule, callback))
        log: list[tuple[float, int]] = []
        while heap:
            t, idx, schedule, callback = heapq.heappop(heap)
            if t >= end:
                break
            self.clock.advance_to(t)
            callback(t)
            log.append((t, idx))
            t_next = schedule.next_after(t, self._epoch)
            if t_next < end:
                heapq.heappush(heap, (t_next, idx, schedule, callback))
        self.clock.advance_to(end)
        return log
