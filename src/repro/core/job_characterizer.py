"""Job Characterizer (paper §III-C).

Initialized with the peak performance and peak memory bandwidth of a
single node, it computes the ridge-point operational intensity ``op_r``
and labels each completed job *compute-bound* if its operational intensity
exceeds ``op_r``, *memory-bound* otherwise (Equations 1-3).

The mapping from system-specific performance counters to ``#flops`` /
``#moved_memory_bytes`` is a pluggable transform;
:class:`FugakuCounterTransform` implements the A64FX one (Equations 4-5).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.fugaku.counters import flops_from_counters, moved_bytes_from_counters
from repro.fugaku.system import FugakuSpec, FUGAKU
from repro.fugaku.trace import JobTrace
from repro.roofline.characterize import (
    COMPUTE_BOUND,
    LABEL_NAMES,
    MEMORY_BOUND,
    characterize_jobs,
)
from repro.roofline.model import Roofline

__all__ = ["FugakuCounterTransform", "JobCharacterizer"]


class FugakuCounterTransform:
    """perf2..perf5 -> (#flops, #moved_memory_bytes) for the A64FX (§IV-B)."""

    def __init__(self, spec: FugakuSpec = FUGAKU) -> None:
        self.spec = spec

    def __call__(self, perf2, perf3, perf4, perf5):
        flops = flops_from_counters(perf2, perf3, spec=self.spec)
        moved = moved_bytes_from_counters(perf4, perf5, spec=self.spec)
        return flops, moved


class JobCharacterizer:
    """Roofline-based memory/compute-bound labelling.

    Parameters
    ----------
    peak_performance:
        Node peak in GFlops/s (Fugaku: 3380, FX1000 boost mode).
    peak_memory_bandwidth:
        Node peak in GBytes/s (Fugaku: 1024).
    counter_transform:
        Optional callable mapping raw counters to (#flops, #moved_bytes);
        needed only by the record-level helpers.
    """

    #: integer codes re-exported for convenience
    MEMORY_BOUND = MEMORY_BOUND
    COMPUTE_BOUND = COMPUTE_BOUND
    LABEL_NAMES = LABEL_NAMES

    def __init__(
        self,
        peak_performance: float = FUGAKU.peak_gflops_node,
        peak_memory_bandwidth: float = FUGAKU.peak_membw_gbs,
        *,
        counter_transform=None,
    ) -> None:
        self.roofline = Roofline(peak_performance, peak_memory_bandwidth)
        self.counter_transform = counter_transform or FugakuCounterTransform()

    @classmethod
    def for_system(cls, system) -> "JobCharacterizer":
        """Characterizer for a registered system model: its peaks, its
        counter transform (``system`` is any
        :class:`repro.systems.base.SystemModel`; duck-typed so this
        module never imports the registry)."""
        return cls(
            system.peak_gflops_node,
            system.peak_membw_gbs,
            counter_transform=system.counter_transform(),
        )

    @property
    def ridge_point(self) -> float:
        """op_r: minimum operational intensity attaining peak performance."""
        return self.roofline.ridge_point

    # -- array-level API (Equations 1-3) --------------------------------------------

    def generate_labels(self, flops, duration, nodes_alloc, moved_memory_bytes) -> np.ndarray:  # hotpath: ridge-point labelling behind characterize()
        """Labels from the four execution metrics the paper lists (§III-C)."""
        _, _, _, labels = characterize_jobs(
            flops, moved_memory_bytes, duration, nodes_alloc, self.roofline
        )
        return labels

    def characterize(self, flops, duration, nodes_alloc, moved_memory_bytes):
        """Full (p, mb, op, labels) tuple — used by the §IV analysis."""
        return characterize_jobs(
            flops, moved_memory_bytes, duration, nodes_alloc, self.roofline
        )

    # -- record / trace conveniences ----------------------------------------------------

    def labels_from_records(self, records: Iterable[Mapping]) -> np.ndarray:
        """Labels straight from raw job records carrying perf counters."""
        records = list(records)
        if not records:
            return np.empty(0, dtype=np.int64)
        perf = {
            k: np.array([r[k] for r in records], dtype=np.float64)
            for k in ("perf2", "perf3", "perf4", "perf5")
        }
        duration = np.array([r["duration"] for r in records], dtype=np.float64)
        nodes = np.array([r["nodes_alloc"] for r in records], dtype=np.float64)
        flops, moved = self.counter_transform(
            perf["perf2"], perf["perf3"], perf["perf4"], perf["perf5"]
        )
        return self.generate_labels(flops, duration, nodes, moved)

    def labels_from_result(self, result) -> np.ndarray:
        """Vectorized labels straight off a columnar fetch batch.

        ``result`` is anything exposing ``column(name) -> ndarray`` (a
        storage :class:`~repro.storage.engine.ResultSet`); labels are
        computed from the column arrays directly, so — unlike
        :meth:`labels_from_records` — no per-row dicts ever exist.
        """
        flops, moved = self.counter_transform(
            result.column("perf2"),
            result.column("perf3"),
            result.column("perf4"),
            result.column("perf5"),
        )
        return self.generate_labels(
            flops, result.column("duration"), result.column("nodes_alloc"), moved
        )

    def labels_from_trace(self, trace: JobTrace) -> np.ndarray:
        """Vectorized labels for a whole trace."""
        flops, moved = self.counter_transform(
            trace["perf2"], trace["perf3"], trace["perf4"], trace["perf5"]
        )
        return self.generate_labels(flops, trace["duration"], trace["nodes_alloc"], moved)

    def roofline_coordinates(self, trace: JobTrace):
        """(performance GFlops/s, bandwidth GB/s, op Flops/Byte, labels)."""
        flops, moved = self.counter_transform(
            trace["perf2"], trace["perf3"], trace["perf4"], trace["perf5"]
        )
        return self.characterize(flops, trace["duration"], trace["nodes_alloc"], moved)
