"""Feature Encoder (paper §III-B).

Selects the configured subset of submission features, concatenates their
values into a comma-separated string, and embeds the string with the
sentence embedder into a fixed-width float array.  Encodings of repeated
strings are served from the embedder's cache (the paper saves encodings
across workflow triggers for the same reason).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.config import DEFAULT_FEATURE_SET
from repro.fugaku.trace import JobTrace
from repro.nlp.embedder import SentenceEmbedder

__all__ = ["FeatureEncoder"]


def _format_value(v) -> str:
    """Render one feature value into the comma-separated string.

    Floats that are whole numbers print without a trailing ``.0`` mantissa
    noise except frequencies, which keep one decimal (2.0 vs 2.2 GHz must
    remain distinct tokens).
    """
    if isinstance(v, float):
        return f"{v:g}"
    return str(v)


class FeatureEncoder:
    """Encode raw job data into model-ready vectors.

    Parameters
    ----------
    feature_set:
        Ordered feature names to select from each raw job record.
    embedder:
        The sentence embedder; a default 384-d one is built if omitted.
    """

    def __init__(
        self,
        feature_set: Sequence[str] = DEFAULT_FEATURE_SET,
        embedder: SentenceEmbedder | None = None,
    ) -> None:
        if not feature_set:
            raise ValueError("feature_set must not be empty")
        self.feature_set = tuple(feature_set)
        self.embedder = embedder or SentenceEmbedder()

    @property
    def dim(self) -> int:
        return self.embedder.dim

    # -- string construction -----------------------------------------------------

    def feature_string(self, record: Mapping) -> str:  # hotpath: per-record serialization behind encode()
        """The comma-separated feature string of one raw job record."""
        try:
            return ",".join(_format_value(record[f]) for f in self.feature_set)
        except KeyError as exc:
            raise KeyError(f"job record is missing feature {exc.args[0]!r}") from None

    def feature_strings_from_trace(self, trace: JobTrace) -> list[str]:
        """Vectorized-ish string construction straight from trace columns."""
        cols = []
        for f in self.feature_set:
            if f not in trace:
                raise KeyError(f"trace is missing feature column {f!r}")
            cols.append([_format_value(v) for v in trace[f].tolist()])
        return [",".join(vals) for vals in zip(*cols)]

    def feature_strings_from_result(self, result) -> list[str]:
        """String construction straight off a columnar ``ResultSet``.

        Same strings as :meth:`feature_string` over the equivalent row
        dicts, without ever materializing the rows — the streaming
        training path feeds batches through here.
        """
        names = set(result.column_names)
        cols = []
        for f in self.feature_set:
            if f not in names:
                raise KeyError(f"result is missing feature column {f!r}")
            cols.append([_format_value(v) for v in result.column(f).tolist()])
        return [",".join(vals) for vals in zip(*cols)]

    # -- encoding ---------------------------------------------------------------------

    def encode(self, records: Iterable[Mapping]) -> np.ndarray:
        """Encode raw job records into a float32 ``(n, dim)`` matrix."""
        strings = [self.feature_string(r) for r in records]
        if not strings:
            return np.empty((0, self.dim), dtype=np.float32)
        return self.embedder.encode(strings)

    def encode_trace(self, trace: JobTrace) -> np.ndarray:
        """Encode every job of a trace."""
        strings = self.feature_strings_from_trace(trace)
        if not strings:
            return np.empty((0, self.dim), dtype=np.float32)
        return self.embedder.encode(strings)

    def partial_fit_idf(self, records: Iterable[Mapping]) -> "FeatureEncoder":
        """Update the embedder's online IDF table from a training batch."""
        self.embedder.partial_fit_idf([self.feature_string(r) for r in records])
        return self
