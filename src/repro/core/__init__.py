"""The MCBound framework — the paper's primary contribution (§III).

Components mirror Figure 1 of the paper:

- :class:`repro.core.DataFetcher` — queries the jobs data storage by job id
  or time window (§III-A).
- :class:`repro.core.FeatureEncoder` — turns submission features into a
  fixed-width float vector via the sentence embedder (§III-B).
- :class:`repro.core.JobCharacterizer` — Roofline labelling from execution
  metrics (§III-C, Equations 1-3).
- :class:`repro.core.ClassificationModel` — pluggable prediction algorithm
  ("RF" / "KNN" / custom) with ``training`` and ``inference`` methods
  (§III-D).
- :class:`repro.core.MCBound` — the facade wiring the four components with
  caching of characterizations and encodings (§V-A).
- :class:`repro.core.TrainingWorkflow` / :class:`repro.core.InferenceWorkflow`
  — the two CI/CD workflows of Figure 1, driven online by
  :class:`repro.core.CronSchedule` + :class:`repro.core.SimClock` (§III-E).
- :func:`repro.core.build_app` — the HTTP backend (§III-E).
"""

from repro.core.config import MCBoundConfig, DEFAULT_FEATURE_SET
from repro.core.data_fetcher import DataFetcher, load_trace_into_db, JOBS_TABLE_SQL
from repro.core.feature_encoder import FeatureEncoder
from repro.core.job_characterizer import JobCharacterizer, FugakuCounterTransform
from repro.core.classification_model import ClassificationModel
from repro.core.feature_predictor import JobFeaturePredictor
from repro.core.categorical_encoder import CategoricalEncoder
from repro.core.framework import MCBound
from repro.core.workflows import TrainingWorkflow, InferenceWorkflow, WorkflowResult
from repro.core.scheduler import SimClock, CronSchedule, Scheduler
from repro.core.registry import ModelStore
from repro.core.server import build_app

__all__ = [
    "MCBoundConfig",
    "DEFAULT_FEATURE_SET",
    "DataFetcher",
    "load_trace_into_db",
    "JOBS_TABLE_SQL",
    "FeatureEncoder",
    "JobCharacterizer",
    "FugakuCounterTransform",
    "ClassificationModel",
    "JobFeaturePredictor",
    "CategoricalEncoder",
    "MCBound",
    "TrainingWorkflow",
    "InferenceWorkflow",
    "WorkflowResult",
    "SimClock",
    "CronSchedule",
    "Scheduler",
    "ModelStore",
    "build_app",
]
