"""HTTP backend exposing the framework's operations (§III-E).

The paper implements MCBound as a flask backend "providing APIs to perform
the operations of the framework"; here the same API runs on
:mod:`repro.web`.  Endpoints:

- ``GET  /health``          liveness + whether a trained model is loaded
- ``GET  /config``          the active :class:`MCBoundConfig`
- ``POST /train``           body ``{"now": t, "alpha_days": α?}`` → training summary
- ``POST /predict``         body ``{"jobs": [raw records]}`` or
  ``{"start_time": t0, "end_time": t1}`` or ``{"job_id": id}`` → labels
- ``POST /characterize``    body ``{"start_time": t0, "end_time": t1}`` or
  ``{"jobs": [records with counters]}`` → ground-truth labels
- ``GET  /models``          published model versions + latest
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import MCBound
from repro.mlcore.base import NotFittedError
from repro.roofline.characterize import LABEL_NAMES
from repro.web.app import App, HTTPError

__all__ = ["build_app"]


def _label_payload(job_ids, labels) -> dict:  # hotpath: response assembly for /predict and /characterize
    return {
        "job_ids": [int(j) for j in job_ids],
        "labels": [int(l) for l in labels],
        "label_names": [LABEL_NAMES[int(l)] for l in labels],
    }


def build_app(framework: MCBound) -> App:
    """Construct the HTTP application around one framework instance."""
    app = App("mcbound")

    @app.route("/health")
    def health(request):
        return {
            "status": "ok",
            "model_trained": framework.model is not None,
            "algorithm": framework.config.algorithm,
        }

    @app.route("/config")
    def config(request):
        return framework.config.to_dict()

    @app.route("/train", methods=("POST",))
    def train(request):
        body = request.json()
        if "now" not in body:
            raise HTTPError(400, "body must contain 'now' (trace seconds)")
        alpha = body.get("alpha_days")
        try:
            summary = framework.train(float(body["now"]), alpha_days=alpha)
        except ValueError as exc:
            raise HTTPError(409, str(exc)) from exc
        summary = dict(summary)
        summary["window"] = list(summary["window"])
        return summary, 201

    @app.route("/predict", methods=("POST",))
    def predict(request):
        body = request.json()
        try:
            if "jobs" in body:
                records = body["jobs"]
                if not isinstance(records, list):
                    raise HTTPError(400, "'jobs' must be a list of records")
                labels = framework.predict_records(records)
                return _label_payload(range(len(records)), labels)
            if "job_id" in body:
                label = framework.predict_job(int(body["job_id"]))
                return _label_payload([body["job_id"]], [label])
            if "start_time" in body and "end_time" in body:
                job_ids, labels = framework.predict_window(
                    float(body["start_time"]), float(body["end_time"])
                )
                return _label_payload(job_ids, labels)
        except NotFittedError as exc:
            raise HTTPError(503, str(exc)) from exc
        except KeyError as exc:
            raise HTTPError(404, str(exc)) from exc
        raise HTTPError(400, "body must contain 'jobs', 'job_id' or a time window")

    @app.route("/characterize", methods=("POST",))
    def characterize(request):
        body = request.json()
        if "start_time" in body and "end_time" in body:
            job_ids, labels = framework.characterize_window(
                float(body["start_time"]), float(body["end_time"])
            )
            return _label_payload(job_ids, labels)
        if "jobs" in body:
            records = body["jobs"]
            labels = framework.characterizer.labels_from_records(records)
            return _label_payload(range(len(records)), labels)
        raise HTTPError(400, "body must contain 'jobs' or a time window")

    @app.route("/models")
    def models(request):
        if framework.store is None:
            return {"versions": [], "latest": None, "persistent": False}
        latest = framework.store.latest_version
        versions = list(range(1, (latest or 0) + 1))
        return {"versions": versions, "latest": latest, "persistent": True}

    @app.route("/ridge")
    def ridge(request):
        return {
            "ridge_point_flops_per_byte": framework.characterizer.ridge_point,
            "peak_gflops_node": framework.config.peak_gflops_node,
            "peak_membw_gbs": framework.config.peak_membw_gbs,
        }

    return app
