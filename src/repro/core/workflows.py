"""The Training and Inference Workflows of Figure 1.

Thin, timing-aware drivers over :class:`repro.core.MCBound`: the Training
Workflow fetches the last α days and produces a trained Classification
Model instance; the Inference Workflow fetches new jobs and generates
labels for them.  Both record their wall-clock runtimes — the quantities
Figures 7 and 8 report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.framework import MCBound

__all__ = ["WorkflowResult", "TrainingWorkflow", "InferenceWorkflow"]


@dataclass(frozen=True)
class WorkflowResult:
    """Outcome of one workflow trigger."""

    kind: str  # "training" | "inference"
    triggered_at: float  # framework time (trace seconds)
    runtime_seconds: float  # wall-clock spent
    n_jobs: int
    payload: dict = field(default_factory=dict)

    @property
    def runtime_per_job(self) -> float:
        return self.runtime_seconds / self.n_jobs if self.n_jobs else 0.0


class TrainingWorkflow:
    """Fetch -> characterize -> encode -> train -> publish."""

    def __init__(self, framework: MCBound, *, alpha_days: float | None = None) -> None:
        self.framework = framework
        self.alpha_days = alpha_days
        self.history: list[WorkflowResult] = []

    def run(self, now: float) -> WorkflowResult:
        """Trigger one training pass at framework time ``now``."""
        t0 = time.perf_counter()
        summary = self.framework.train(now, alpha_days=self.alpha_days)
        result = WorkflowResult(
            kind="training",
            triggered_at=now,
            runtime_seconds=time.perf_counter() - t0,
            n_jobs=summary["n_jobs"],
            payload=summary,
        )
        self.history.append(result)
        return result

    @property
    def mean_runtime(self) -> float:
        """Average training time across triggers (Fig. 7's quantity)."""
        if not self.history:
            return 0.0
        return float(np.mean([r.runtime_seconds for r in self.history]))


class InferenceWorkflow:
    """Fetch new jobs -> encode -> predict."""

    def __init__(self, framework: MCBound) -> None:
        self.framework = framework
        self.history: list[WorkflowResult] = []
        #: job_id -> predicted label accumulated over all triggers
        self.predictions: dict[int, int] = {}

    def run_window(self, start_time: float, end_time: float) -> WorkflowResult:
        """Predict all jobs submitted in a window (periodic trigger mode)."""
        t0 = time.perf_counter()
        job_ids, labels = self.framework.predict_window(start_time, end_time)
        runtime = time.perf_counter() - t0
        for jid, lab in zip(job_ids.tolist(), labels.tolist()):
            self.predictions[jid] = lab
        result = WorkflowResult(
            kind="inference",
            triggered_at=end_time,
            runtime_seconds=runtime,
            n_jobs=int(job_ids.size),
            payload={"window": (start_time, end_time)},
        )
        self.history.append(result)
        return result

    def run_job(self, job_id: int, *, now: float | None = None) -> WorkflowResult:
        """Predict a single job (per-submission trigger mode)."""
        t0 = time.perf_counter()
        label = self.framework.predict_job(job_id)
        runtime = time.perf_counter() - t0
        self.predictions[job_id] = label
        result = WorkflowResult(
            kind="inference",
            triggered_at=now if now is not None else float(job_id),
            runtime_seconds=runtime,
            n_jobs=1,
            payload={"job_id": job_id, "label": label},
        )
        self.history.append(result)
        return result

    @property
    def mean_runtime_per_job(self) -> float:
        """Average per-job inference time (Fig. 8's quantity)."""
        total_jobs = sum(r.n_jobs for r in self.history)
        if not total_jobs:
            return 0.0
        return sum(r.runtime_seconds for r in self.history) / total_jobs
