"""Pre-execution prediction of continuous job features (§VI future work).

The paper plans to "predict other job features (such as duration, power
consumption or failure) with the KNN predictive model", reusing the same
similar-jobs search regardless of target.  This module implements that
extension on top of the existing pipeline: the encoder produces the same
384-d submission embedding; a :class:`repro.mlcore.knn.KNeighborsRegressor`
maps it to any numeric column of the jobs data storage.

Targets with heavy-tailed distributions (duration, power) are modelled in
log space by default, which is the standard trick for runtimes.
"""

from __future__ import annotations

import numpy as np

from repro.core.data_fetcher import DataFetcher
from repro.core.feature_encoder import FeatureEncoder
from repro.mlcore.base import NotFittedError
from repro.mlcore.knn import KNeighborsRegressor

__all__ = ["JobFeaturePredictor"]

#: Numeric job columns the predictor may target.
SUPPORTED_TARGETS = ("duration", "power_avg_w", "nodes_alloc")


class JobFeaturePredictor:
    """Predict a numeric job feature at submission time.

    Parameters
    ----------
    target:
        Column of the jobs data storage to predict (e.g. ``"duration"``).
    encoder:
        The feature encoder shared with (or configured like) the MCBound
        instance; a default one is built if omitted.
    n_neighbors / weights:
        Forwarded to the KNN regressor.
    log_target:
        Fit/predict in log1p space (recommended for duration and power).
    """

    def __init__(
        self,
        target: str = "duration",
        *,
        encoder: FeatureEncoder | None = None,
        n_neighbors: int = 5,
        weights: str = "distance",
        log_target: bool = True,
    ) -> None:
        if target not in SUPPORTED_TARGETS:
            raise ValueError(
                f"unsupported target {target!r}; choose from {SUPPORTED_TARGETS}"
            )
        self.target = target
        self.encoder = encoder or FeatureEncoder()
        self.log_target = bool(log_target)
        self.model = KNeighborsRegressor(
            n_neighbors, algorithm="brute", weights=weights
        )
        self._trained = False

    # -- training -----------------------------------------------------------------

    def training(self, records: list[dict]) -> "JobFeaturePredictor":
        """Train on completed jobs (records carrying the target column)."""
        if not records:
            raise ValueError("cannot train on an empty record set")
        y = np.array([float(r[self.target]) for r in records])
        if np.any(y < 0):
            raise ValueError(f"target {self.target!r} has negative values")
        X = self.encoder.encode(records)
        self.model.fit(X, np.log1p(y) if self.log_target else y)
        self._trained = True
        return self

    def train_window(self, fetcher: DataFetcher, start_time: float, end_time: float):
        """Convenience: fetch a window from the storage and train on it."""
        records = fetcher.fetch(start_time=start_time, end_time=end_time)
        return self.training(records)

    # -- inference ------------------------------------------------------------------

    def inference(self, records: list[dict]) -> np.ndarray:
        """Predict the target for new (not yet executed) jobs."""
        if not self._trained:
            raise NotFittedError("JobFeaturePredictor.inference before training")
        if not records:
            return np.empty(0)
        X = self.encoder.encode(records)
        pred = self.model.predict(X)
        return np.expm1(pred) if self.log_target else pred

    @property
    def is_trained(self) -> bool:
        return self._trained

    # -- evaluation helpers -----------------------------------------------------------

    @staticmethod
    def mape(y_true, y_pred) -> float:
        """Mean absolute percentage error (guarded against zero targets)."""
        y_true = np.asarray(y_true, dtype=np.float64)
        y_pred = np.asarray(y_pred, dtype=np.float64)
        if y_true.shape != y_pred.shape:
            raise ValueError("shape mismatch")
        denom = np.maximum(np.abs(y_true), 1e-9)
        return float(np.mean(np.abs(y_true - y_pred) / denom))

    @staticmethod
    def median_relative_error(y_true, y_pred) -> float:
        """Median of |err| / true — robust to the heavy runtime tail."""
        y_true = np.asarray(y_true, dtype=np.float64)
        y_pred = np.asarray(y_pred, dtype=np.float64)
        denom = np.maximum(np.abs(y_true), 1e-9)
        return float(np.median(np.abs(y_true - y_pred) / denom))
