"""Data Fetcher (paper §III-A).

An interface to the jobs data storage: ``fetch(job_id=...)`` retrieves one
job, ``fetch(start_time=..., end_time=...)`` all jobs submitted in the
window.  Both paths generate a real SQL query against the relational
engine of :mod:`repro.storage`, exactly as the paper's implementation does
against Fugaku's database.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.fugaku.trace import JobTrace, NUMERIC_COLUMNS, STRING_COLUMNS
from repro.storage.engine import SCAN_BATCH_ROWS, Database, ResultSet

__all__ = ["JOBS_TABLE_SQL", "load_trace_into_db", "DataFetcher"]

#: Schema of the jobs table, indexed on the two fetch access paths.
JOBS_TABLE_SQL = """CREATE TABLE jobs (
    job_id INTEGER INDEXED,
    user_name TEXT,
    job_name TEXT,
    environment TEXT,
    nodes_req INTEGER,
    cores_req INTEGER,
    freq_req_ghz REAL,
    submit_time REAL INDEXED,
    start_time REAL,
    end_time REAL,
    duration REAL,
    nodes_alloc INTEGER,
    perf2 REAL,
    perf3 REAL,
    perf4 REAL,
    perf5 REAL,
    power_avg_w REAL
)"""

_ALL_COLUMNS = tuple(NUMERIC_COLUMNS) + STRING_COLUMNS


def load_trace_into_db(trace: JobTrace, db: Database | None = None) -> Database:
    """Create the ``jobs`` table (if absent) and bulk-load a trace into it."""
    if db is None:
        db = Database()
    if "jobs" not in db.table_names:
        db.execute(JOBS_TABLE_SQL)
    table = db.table("jobs")
    table.insert_columns({name: trace[name] for name in _ALL_COLUMNS})
    return db


class DataFetcher:
    """Fetches job data from the storage (configured at initialization).

    Parameters
    ----------
    db:
        The jobs data storage.  The paper's class is configurable for
        "the specific data storage technology deployed in the target
        system"; swapping this object (anything with an ``execute``
        returning row dicts) is that configuration point.
    table:
        Jobs table name.
    """

    def __init__(self, db: Database, table: str = "jobs") -> None:
        if not table.isidentifier():
            raise ValueError(f"invalid table name {table!r}")
        self.db = db
        self.table = table

    def fetch(
        self,
        *,
        job_id: int | None = None,
        start_time: float | None = None,
        end_time: float | None = None,
    ) -> list[dict]:
        """Fetch raw job data as a list of feature dicts.

        Exactly one of (``job_id``) or (``start_time`` and ``end_time``)
        must be given, matching the paper's method contract.
        """
        by_id = job_id is not None
        by_window = start_time is not None or end_time is not None
        if by_id == by_window:
            raise ValueError("pass either job_id or (start_time, end_time)")
        if by_id:
            sql = f"SELECT * FROM {self.table} WHERE job_id = ? ORDER BY job_id"
            return self.db.execute(sql, [int(job_id)]).rows()
        if start_time is None or end_time is None:
            raise ValueError("both start_time and end_time are required")
        if end_time < start_time:
            raise ValueError("end_time must be >= start_time")
        sql = (
            f"SELECT * FROM {self.table} "
            "WHERE submit_time >= ? AND submit_time < ? ORDER BY submit_time"
        )
        return self.db.execute(sql, [float(start_time), float(end_time)]).rows()

    def fetch_batches(
        self,
        start_time: float,
        end_time: float,
        *,
        batch_rows: int = SCAN_BATCH_ROWS,
    ) -> Iterator[ResultSet]:
        # streaming: chunked columnar fetch, one ~batch_rows ResultSet per yield
        # scale: -> batch
        """Fetch a submit-time window as bounded columnar batches.

        The streaming counterpart of windowed :meth:`fetch`: the same
        rows (``start_time <= submit_time < end_time``), yielded as
        ``batch_rows``-sized :class:`ResultSet` objects straight off the
        column store, so a month-scale window is never materialized as
        row dicts.  Requires the in-process column-store
        :class:`Database`; when the table was loaded submit-sorted (the
        :func:`load_trace_into_db` path), batches arrive in submit-time
        order via the binary-search window fast path.
        """
        if end_time < start_time:
            raise ValueError("end_time must be >= start_time")
        table = self.db.table(self.table)
        yield from table.scan_batches(
            "submit_time",
            float(start_time),
            float(end_time),
            batch_rows=batch_rows,
        )

    def fetch_count(self, start_time: float, end_time: float) -> int:
        """Number of jobs in a window (cheap existence probe)."""
        sql = (
            f"SELECT job_id FROM {self.table} "
            "WHERE submit_time >= ? AND submit_time < ?"
        )
        return len(self.db.execute(sql, [float(start_time), float(end_time)]))
