"""Fugaku system model and synthetic workload substrate.

The paper characterizes 2.2 million real job runs extracted from the
Supercomputer Fugaku's operational database (the F-DATA trace).  That trace
is not available offline, so this subpackage provides:

- :mod:`repro.fugaku.system` — the machine model (Table I of the paper):
  node counts, per-node peak FP64 performance and HBM2 bandwidth, the A64FX
  core-memory-group (CMG) layout and the derived Roofline ridge point.
- :mod:`repro.fugaku.counters` — the A64FX PMU counter semantics used by the
  paper (``perf2``..``perf5``) with the *exact* Equations 4 and 5 mapping
  counters to ``#flops`` and ``#moved_memory_bytes``, plus the inverse
  mapping used to synthesize counters from a target Roofline placement.
- :mod:`repro.fugaku.apps` — a catalog of application archetypes with
  characteristic operational-intensity distributions.
- :mod:`repro.fugaku.users` — the user/project population model.
- :mod:`repro.fugaku.workload` — the generative workload model calibrated to
  every published statistic of the trace (see DESIGN.md §2).
- :mod:`repro.fugaku.trace` — the :class:`JobRecord` container and a simple
  column-oriented trace store with (de)serialization.
"""

from repro.fugaku.system import FugakuSpec, FUGAKU
from repro.fugaku.counters import (
    CounterSet,
    flops_from_counters,
    moved_bytes_from_counters,
    counters_from_flops_bytes,
)
from repro.fugaku.apps import AppArchetype, APP_CATALOG, build_catalog
from repro.fugaku.users import UserPopulation
from repro.fugaku.workload import WorkloadConfig, WorkloadGenerator, generate_trace
from repro.fugaku.trace import JobRecord, JobTrace

__all__ = [
    "FugakuSpec",
    "FUGAKU",
    "CounterSet",
    "flops_from_counters",
    "moved_bytes_from_counters",
    "counters_from_flops_bytes",
    "AppArchetype",
    "APP_CATALOG",
    "build_catalog",
    "UserPopulation",
    "WorkloadConfig",
    "WorkloadGenerator",
    "generate_trace",
    "JobRecord",
    "JobTrace",
]
