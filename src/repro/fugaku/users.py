"""User and project population model for the synthetic workload.

Fugaku is used by "hundreds of users, submitting thousands of jobs every
day" (paper §IV-A).  Users are not interchangeable: each has a home domain
(biasing which application archetypes their job templates draw from), a
Zipf-like activity level, and stable naming habits.  The *user name* is one
of the five submission features of the paper's encoder, and its predictive
value comes exactly from this per-user consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fugaku.apps import AppArchetype, APP_CATALOG, catalog_weights

__all__ = ["UserProfile", "UserPopulation"]

_GROUPS = ("riken", "univ", "jcahpc", "corp", "intl")
_PROJECTS = ("ra", "rb", "hp", "gp", "ex")


@dataclass(frozen=True)
class UserProfile:
    """A single synthetic user."""

    user_name: str
    group: str
    #: probability over the archetype catalog this user's templates draw from
    app_affinity: np.ndarray
    #: relative share of the system's job traffic
    activity: float
    #: probability that this user requests boost mode, given the archetype's
    #: typical label; indexed by ("memory", "compute")
    boost_prob_memory: float
    boost_prob_compute: float


class UserPopulation:
    """Generate and hold a population of synthetic Fugaku users.

    Parameters
    ----------
    n_users:
        Population size ("hundreds" at full scale; scaled down with the
        trace).
    rng:
        Source of randomness; the population is fully determined by it.
    catalog:
        Application archetypes users draw their workloads from.
    boost_prob_memory, boost_prob_compute:
        Population-mean probabilities of requesting boost mode (2.2 GHz)
        for templates whose archetype is typically memory- or compute-bound.
        The defaults are calibrated to Table II of the paper: ≈45.8% of
        memory-bound and ≈30.8% of compute-bound jobs run in boost mode —
        i.e. users pick frequencies that do *not* track the job's actual
        roofline position (§IV-C, Fig. 5).
    """

    def __init__(
        self,
        n_users: int,
        rng: np.random.Generator,
        *,
        catalog: tuple[AppArchetype, ...] = APP_CATALOG,
        boost_prob_memory: float = 0.458,
        boost_prob_compute: float = 0.308,
    ) -> None:
        if n_users <= 0:
            raise ValueError("n_users must be positive")
        self.catalog = catalog
        self._users: list[UserProfile] = []
        base_weights = catalog_weights(catalog)
        k = len(catalog)

        # Zipf-ish activity: a few heavy users dominate traffic.
        ranks = np.arange(1, n_users + 1, dtype=np.float64)
        activity = 1.0 / ranks**0.6
        activity /= activity.sum()
        order = rng.permutation(n_users)

        for i in range(n_users):
            group = _GROUPS[int(rng.integers(len(_GROUPS)))]
            project = _PROJECTS[int(rng.integers(len(_PROJECTS)))]
            uid = int(rng.integers(100, 10_000))
            name = f"{group}-{project}{uid:04d}"
            # Dirichlet around the catalog weights: users specialize in a
            # couple of domains but occasionally run others.
            affinity = rng.dirichlet(base_weights * 14.0 + 0.05)
            assert affinity.shape == (k,)
            bm = float(np.clip(rng.normal(boost_prob_memory, 0.15), 0.02, 0.98))
            bc = float(np.clip(rng.normal(boost_prob_compute, 0.15), 0.02, 0.98))
            self._users.append(
                UserProfile(
                    user_name=name,
                    group=group,
                    app_affinity=affinity,
                    activity=float(activity[order[i]]),
                    boost_prob_memory=bm,
                    boost_prob_compute=bc,
                )
            )

    def __len__(self) -> int:
        return len(self._users)

    def __getitem__(self, i: int) -> UserProfile:
        return self._users[i]

    @property
    def users(self) -> list[UserProfile]:
        return list(self._users)

    def activity_weights(self) -> np.ndarray:
        """Traffic share per user, normalized to sum to 1."""
        w = np.array([u.activity for u in self._users], dtype=np.float64)
        return w / w.sum()

    def sample_user(self, rng: np.random.Generator) -> UserProfile:
        """Draw one user proportionally to activity."""
        idx = rng.choice(len(self._users), p=self.activity_weights())
        return self._users[int(idx)]
