"""A64FX PMU counter semantics (paper §IV-B, Equations 4 and 5).

Fugaku's operational database stores four performance counters per job:

- ``perf2`` — ``FP_FIXED_OPS_SPEC``: fixed (non-SVE) floating point ops.
- ``perf3`` — ``FP_SCALE_OPS_SPEC``: floating point ops *per 128-bit SVE
  slice*; the A64FX is 512-bit SVE so the true count is ``perf3 * 4``.
- ``perf4`` — ``BUS_READ_TOTAL_MEM``: memory-bus read requests.
- ``perf5`` — ``BUS_WRITE_TOTAL_MEM``: memory-bus write requests.

Each bus request moves one 256-byte cache line.  The bus counters are
recorded per core but every core of a 12-core Core Memory Group (CMG)
reports the whole-CMG value, so the per-core sum over-counts by 12x.

The paper computes (Equations 4, 5)::

    #flops               = perf2 + perf3 * 4
    #moved_memory_bytes  = (perf4 + perf5) * 256 / 12

This module implements that mapping *and its inverse*.  The inverse is what
lets the synthetic workload generator place a job at a chosen point of the
Roofline plane and then emit raw counters, so the characterization pipeline
downstream runs on exactly the same code path it would on real Fugaku data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fugaku.system import FugakuSpec, FUGAKU

__all__ = [
    "CounterSet",
    "flops_from_counters",
    "moved_bytes_from_counters",
    "counters_from_flops_bytes",
]


@dataclass(frozen=True)
class CounterSet:
    """Raw per-job PMU counter values as stored in the jobs data storage.

    Values are job-wide totals (already summed over cores and nodes), which
    matches how Fugaku's operations software aggregates them.
    """

    perf2: float  # unit: flops - FP_FIXED_OPS_SPEC
    perf3: float  # unit: flops - FP_SCALE_OPS_SPEC (per 128-bit SVE slice)
    perf4: float  # unit: 1 - BUS_READ_TOTAL_MEM (bus request count)
    perf5: float  # unit: 1 - BUS_WRITE_TOTAL_MEM (bus request count)

    def __post_init__(self) -> None:
        for name in ("perf2", "perf3", "perf4", "perf5"):
            if getattr(self, name) < 0:
                raise ValueError(f"counter {name} must be non-negative")


def flops_from_counters(perf2, perf3, *, spec: FugakuSpec = FUGAKU):  # unit: perf2=flops, perf3=flops -> flops
    """Equation 4: total floating point operations of a job.

    ``perf2`` is the fixed amount of operations, ``perf3`` counts operations
    per 128-bit SVE slice and is scaled by the SVE width (4 on the A64FX).

    Accepts scalars or numpy arrays (vectorized).
    """
    perf2 = np.asarray(perf2, dtype=np.float64)
    perf3 = np.asarray(perf3, dtype=np.float64)
    if np.any(perf2 < 0) or np.any(perf3 < 0):
        raise ValueError("PMU counters must be non-negative")
    out = perf2 + perf3 * spec.sve_multiplier
    return out if out.ndim else float(out)


def moved_bytes_from_counters(perf4, perf5, *, spec: FugakuSpec = FUGAKU):  # unit: perf4=1, perf5=1 -> bytes
    """Equation 5: total bytes moved between memory and the node.

    Read and write bus requests are summed, scaled by the 256-byte cache
    line, and divided by the CMG core count (12) to undo the per-core
    replication of the CMG-wide counter value.

    Accepts scalars or numpy arrays (vectorized).
    """
    perf4 = np.asarray(perf4, dtype=np.float64)
    perf5 = np.asarray(perf5, dtype=np.float64)
    if np.any(perf4 < 0) or np.any(perf5 < 0):
        raise ValueError("PMU counters must be non-negative")
    out = (perf4 + perf5) * spec.cache_line_bytes / spec.cores_per_cmg
    return out if out.ndim else float(out)


def counters_from_flops_bytes(
    flops,  # unit: flops=flops, moved_bytes=bytes, sve_fraction=1, read_fraction=1
    moved_bytes,
    *,
    spec: FugakuSpec = FUGAKU,
    sve_fraction=0.9,
    read_fraction=0.6,
):
    """Inverse of Equations 4 and 5: synthesize raw counters.

    Splits ``flops`` into fixed vs SVE ops (``sve_fraction`` of flops are
    performed by SVE instructions) and ``moved_bytes`` into read vs write bus
    requests (``read_fraction`` of requests are reads).  Vectorized; returns
    four arrays (or floats for scalar input) ``perf2, perf3, perf4, perf5``
    that round-trip through :func:`flops_from_counters` /
    :func:`moved_bytes_from_counters` exactly (up to float rounding).
    """
    flops = np.asarray(flops, dtype=np.float64)
    moved_bytes = np.asarray(moved_bytes, dtype=np.float64)
    sve_fraction = np.asarray(sve_fraction, dtype=np.float64)
    read_fraction = np.asarray(read_fraction, dtype=np.float64)
    if np.any(flops < 0) or np.any(moved_bytes < 0):
        raise ValueError("flops and moved_bytes must be non-negative")
    if np.any((sve_fraction < 0) | (sve_fraction > 1)):
        raise ValueError("sve_fraction must lie in [0, 1]")
    if np.any((read_fraction < 0) | (read_fraction > 1)):
        raise ValueError("read_fraction must lie in [0, 1]")

    sve_flops = flops * sve_fraction
    perf2 = flops - sve_flops
    perf3 = sve_flops / spec.sve_multiplier

    total_requests = moved_bytes / spec.cache_line_bytes * spec.cores_per_cmg
    perf4 = total_requests * read_fraction
    perf5 = total_requests - perf4

    if flops.ndim == 0 and moved_bytes.ndim == 0:
        return float(perf2), float(perf3), float(perf4), float(perf5)
    return perf2, perf3, perf4, perf5
