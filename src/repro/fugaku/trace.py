"""Column-oriented container for job traces.

The workload generator produces hundreds of thousands of jobs; the analysis
and evaluation code slices them by time window constantly.  A plain
list-of-dataclasses would make every slice a Python-level loop, so the trace
is stored column-wise as numpy arrays (views, not copies, wherever numpy
allows — see the HPC guide on avoiding copies) with row-level
:class:`JobRecord` views materialized only at the storage boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

__all__ = ["JobRecord", "JobTrace", "NUMERIC_COLUMNS", "STRING_COLUMNS"]


@dataclass(frozen=True)
class JobRecord:
    """One job as stored in the jobs data storage.

    Fields mirror what Fugaku's operations software records: submission
    metadata (available *before* execution, used by the Feature Encoder),
    and execution/completion data including raw PMU counters (available
    only after completion, used by the Job Characterizer).
    """

    job_id: int
    user_name: str
    job_name: str
    environment: str
    nodes_req: int
    cores_req: int
    freq_req_ghz: float
    submit_time: float
    start_time: float
    end_time: float
    duration: float
    nodes_alloc: int
    perf2: float
    perf3: float
    perf4: float
    perf5: float
    power_avg_w: float

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Numeric trace columns and their dtypes.
NUMERIC_COLUMNS: dict[str, np.dtype] = {
    "job_id": np.dtype(np.int64),
    "nodes_req": np.dtype(np.int64),
    "cores_req": np.dtype(np.int64),
    "nodes_alloc": np.dtype(np.int64),
    "freq_req_ghz": np.dtype(np.float64),
    "submit_time": np.dtype(np.float64),
    "start_time": np.dtype(np.float64),
    "end_time": np.dtype(np.float64),
    "duration": np.dtype(np.float64),
    "perf2": np.dtype(np.float64),
    "perf3": np.dtype(np.float64),
    "perf4": np.dtype(np.float64),
    "perf5": np.dtype(np.float64),
    "power_avg_w": np.dtype(np.float64),
}

#: String-valued trace columns (stored as object arrays).
STRING_COLUMNS: tuple[str, ...] = ("user_name", "job_name", "environment")

#: Generator-side diagnostic columns, present in synthetic traces only and
#: never exposed to the MCBound pipeline (a real trace would not have them).
DIAGNOSTIC_COLUMNS: tuple[str, ...] = ("template_id", "app")


class JobTrace:
    """Immutable-by-convention column store of jobs ordered by submit time.

    Parameters
    ----------
    columns:
        Mapping of column name to 1-D array-likes of equal length.  Must
        include all of :data:`NUMERIC_COLUMNS` and :data:`STRING_COLUMNS`;
        may include the diagnostic columns.
    """

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        cols: dict[str, np.ndarray] = {}
        n = None
        for name, dtype in NUMERIC_COLUMNS.items():
            if name not in columns:
                raise KeyError(f"missing trace column {name!r}")
            arr = np.asarray(columns[name]).astype(dtype, copy=False)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D")
            if n is None:
                n = arr.shape[0]
            elif arr.shape[0] != n:
                raise ValueError(f"column {name!r} length mismatch")
            cols[name] = arr
        for name in STRING_COLUMNS:
            if name not in columns:
                raise KeyError(f"missing trace column {name!r}")
            arr = np.asarray(columns[name], dtype=object)
            if arr.shape[0] != n:
                raise ValueError(f"column {name!r} length mismatch")
            cols[name] = arr
        for name in DIAGNOSTIC_COLUMNS:
            if name in columns:
                arr = np.asarray(columns[name])
                if arr.shape[0] != n:
                    raise ValueError(f"column {name!r} length mismatch")
                cols[name] = arr
        self._cols = cols
        self._n = int(n or 0)

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __getitem__(self, name: str) -> np.ndarray:
        """Return the column array (a view; do not mutate)."""
        return self._cols[name]

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._cols)

    def row(self, i: int) -> JobRecord:
        """Materialize row ``i`` as a :class:`JobRecord`."""
        if not -self._n <= i < self._n:
            raise IndexError(f"row {i} out of range for trace of {self._n}")
        kw = {}
        for name in NUMERIC_COLUMNS:
            v = self._cols[name][i]
            kw[name] = int(v) if NUMERIC_COLUMNS[name].kind == "i" else float(v)
        for name in STRING_COLUMNS:
            kw[name] = str(self._cols[name][i])
        return JobRecord(**kw)

    def iter_rows(self) -> Iterator[JobRecord]:
        for i in range(self._n):
            yield self.row(i)

    # -- slicing -------------------------------------------------------------

    def select(self, mask_or_index: np.ndarray) -> "JobTrace":
        """Return a new trace with the rows selected by a mask or index array."""
        sel = np.asarray(mask_or_index)
        return JobTrace({k: v[sel] for k, v in self._cols.items()})

    def between(self, start_time: float, end_time: float) -> "JobTrace":
        """Rows with ``start_time <= submit_time < end_time``.

        Matches the Data Fetcher contract of the paper (§III-A): the fetch
        method retrieves "the data of all the jobs executed between
        start_time and end_time".
        """
        t = self._cols["submit_time"]
        return self.select((t >= start_time) & (t < end_time))

    def sort_by_submit(self) -> "JobTrace":
        order = np.argsort(self._cols["submit_time"], kind="stable")
        return self.select(order)

    @staticmethod
    def concat(traces: list["JobTrace"]) -> "JobTrace":
        """Concatenate traces row-wise (common columns only)."""
        if not traces:
            raise ValueError("cannot concatenate an empty list of traces")
        common = set(traces[0].column_names)
        for t in traces[1:]:
            common &= set(t.column_names)
        return JobTrace(
            {k: np.concatenate([t[k] for t in traces]) for k in common}
        )

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the trace to ``<path>.npz`` + ``<path>.strings.json``.

        Numeric columns go to a compressed npz; string/diagnostic columns to
        a JSON side file (keeps the archive free of pickled objects).
        """
        path = Path(path)
        numeric = {k: v for k, v in self._cols.items() if v.dtype != object}
        strings = {
            k: [str(x) for x in v]
            for k, v in self._cols.items()
            if v.dtype == object
        }
        np.savez_compressed(path.with_suffix(".npz"), **numeric)
        path.with_suffix(".strings.json").write_text(json.dumps(strings))

    @staticmethod
    def load(path: str | Path) -> "JobTrace":
        """Inverse of :meth:`save`."""
        path = Path(path)
        with np.load(path.with_suffix(".npz")) as npz:
            cols: dict[str, np.ndarray] = {k: npz[k] for k in npz.files}
        strings = json.loads(path.with_suffix(".strings.json").read_text())
        for k, v in strings.items():
            cols[k] = np.array(v, dtype=object)
        return JobTrace(cols)
