"""Application archetypes for the synthetic Fugaku workload.

The real F-DATA trace mixes jobs from many scientific domains; what matters
for reproducing the paper is the *distribution of jobs on the Roofline
plane* (Fig. 3) and the degree to which a job's memory/compute-bound label
is predictable from its submission metadata (which bounds the attainable
F1 ≈ 0.9 of §V).

Each :class:`AppArchetype` describes a family of applications by

- where its jobs sit on the Roofline plane: a log10 operational-intensity
  distribution for per-application *templates* (a template ≈ one user's
  recurring job script) plus per-execution jitter,
- how efficiently its jobs use the machine (fraction of the Roofline-
  attainable performance — most Fugaku jobs sit far below the ceilings,
  §IV-C, with a few well-engineered clusters close to them),
- resource-request habits (nodes, cores, duration, power),
- drift: how fast a template's operational intensity wanders over time
  (source of the long-term workload change that makes sliding training
  windows win in §V-C.b).

The catalog mixture weights are calibrated so the characterized trace
reproduces Table II: ≈77.5% memory-bound vs ≈22.5% compute-bound, i.e. the
paper's "3.5x as many memory-bound jobs".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AppArchetype", "APP_CATALOG", "build_catalog"]


@dataclass(frozen=True)
class AppArchetype:
    """One family of applications in the synthetic workload.

    Parameters are in log10 space for operational intensity (Flops/Byte).
    ``op_mu`` / ``op_sigma`` describe the spread of *template means*;
    ``job_sigma`` the per-execution jitter around the template mean;
    ``drift_sigma`` the stddev of a template's per-day random-walk slope.
    ``eff_alpha`` / ``eff_beta`` parameterize a Beta distribution of the
    fraction of Roofline-attainable performance each template achieves.
    """

    name: str
    domain: str
    weight: float
    op_mu: float
    op_sigma: float
    job_sigma: float
    drift_sigma: float
    eff_alpha: float
    eff_beta: float
    #: choices for #nodes requested and their probabilities
    node_choices: tuple[int, ...]
    node_probs: tuple[float, ...]
    #: lognormal parameters of job duration in seconds
    duration_mu: float
    duration_sigma: float
    #: average per-job power draw in W at normal mode (scaled by nodes/12)
    power_base_w: float
    #: environment strings users of this archetype submit with
    environments: tuple[str, ...]
    #: tokens used to build plausible job names
    name_tokens: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("archetype weight must be non-negative")
        if len(self.node_choices) != len(self.node_probs):
            raise ValueError("node_choices and node_probs length mismatch")
        if abs(sum(self.node_probs) - 1.0) > 1e-9:
            raise ValueError("node_probs must sum to 1")


def build_catalog() -> tuple[AppArchetype, ...]:
    """Construct the default archetype catalog.

    The ridge point of Fugaku is log10(3.30) ≈ 0.519; archetypes with
    ``op_mu`` well below it produce memory-bound jobs, well above produce
    compute-bound jobs, and the ones straddling it ("monte-carlo",
    "md-simulation", "deep-learning") supply the irreducible label noise
    that caps prediction quality near the paper's F1 ≈ 0.9.
    """
    return (
        AppArchetype(
            name="cfd-stencil", domain="fluid dynamics", weight=0.225,
            op_mu=-0.80, op_sigma=0.35, job_sigma=0.10, drift_sigma=0.0035,
            eff_alpha=1.6, eff_beta=6.0,
            node_choices=(1, 4, 8, 16, 48, 192), node_probs=(0.30, 0.25, 0.18, 0.15, 0.08, 0.04),
            duration_mu=8.3, duration_sigma=1.1, power_base_w=140.0,
            environments=("gcc-12.2/openmpi", "fujitsu-cc/tofu", "spack/cfd-stack"),
            name_tokens=("cavity", "channel", "les", "rans", "mesh", "airfoil", "stencil"),
        ),
        AppArchetype(
            name="climate-model", domain="earth science", weight=0.125,
            op_mu=-0.50, op_sigma=0.30, job_sigma=0.10, drift_sigma=0.0030,
            eff_alpha=2.0, eff_beta=5.0,
            node_choices=(8, 16, 48, 192, 384), node_probs=(0.25, 0.30, 0.25, 0.15, 0.05),
            duration_mu=8.9, duration_sigma=0.9, power_base_w=150.0,
            environments=("fujitsu-cc/netcdf", "spack/esm", "gcc-12.2/hdf5"),
            name_tokens=("nicam", "ocean", "atmos", "coupled", "ensemble", "fcst"),
        ),
        AppArchetype(
            name="genomics-assembly", domain="bioinformatics", weight=0.10,
            op_mu=-1.25, op_sigma=0.40, job_sigma=0.14, drift_sigma=0.0045,
            eff_alpha=1.2, eff_beta=9.0,
            node_choices=(1, 2, 4, 8), node_probs=(0.45, 0.25, 0.20, 0.10),
            duration_mu=8.0, duration_sigma=1.2, power_base_w=120.0,
            environments=("conda/bio", "spack/genomics", "gcc-12.2/serial"),
            name_tokens=("assembly", "align", "blast", "variant", "kmer", "reads"),
        ),
        AppArchetype(
            name="graph-analytics", domain="data science", weight=0.072,
            op_mu=-1.55, op_sigma=0.35, job_sigma=0.12, drift_sigma=0.0040,
            eff_alpha=1.1, eff_beta=11.0,
            node_choices=(1, 4, 16, 64), node_probs=(0.40, 0.30, 0.20, 0.10),
            duration_mu=7.4, duration_sigma=1.0, power_base_w=110.0,
            environments=("gcc-12.2/graph", "conda/py311", "spack/analytics"),
            name_tokens=("bfs", "pagerank", "cc", "sssp", "graph", "partition"),
        ),
        AppArchetype(
            name="io-preproc", domain="data pipelines", weight=0.08,
            op_mu=-2.00, op_sigma=0.45, job_sigma=0.16, drift_sigma=0.0050,
            eff_alpha=1.0, eff_beta=14.0,
            node_choices=(1, 2, 4), node_probs=(0.70, 0.20, 0.10),
            duration_mu=6.7, duration_sigma=1.1, power_base_w=95.0,
            environments=("conda/py311", "gcc-12.2/serial", "spack/io-tools"),
            name_tokens=("stage", "convert", "pack", "extract", "preproc", "filter"),
        ),
        AppArchetype(
            name="fft-spectral", domain="plasma physics", weight=0.08,
            op_mu=-0.15, op_sigma=0.28, job_sigma=0.11, drift_sigma=0.0035,
            eff_alpha=2.4, eff_beta=4.2,
            node_choices=(4, 16, 48, 192), node_probs=(0.30, 0.35, 0.25, 0.10),
            duration_mu=8.5, duration_sigma=1.0, power_base_w=160.0,
            environments=("fujitsu-cc/fftw", "spack/spectral", "gcc-12.2/openmpi"),
            name_tokens=("spectral", "fft3d", "gyro", "turb", "vlasov", "mode"),
        ),
        AppArchetype(
            name="md-simulation", domain="molecular dynamics", weight=0.10,
            op_mu=0.28, op_sigma=0.30, job_sigma=0.13, drift_sigma=0.0045,
            eff_alpha=2.2, eff_beta=4.5,
            node_choices=(1, 4, 8, 32), node_probs=(0.35, 0.30, 0.20, 0.15),
            duration_mu=8.6, duration_sigma=1.0, power_base_w=165.0,
            environments=("spack/gromacs", "fujitsu-cc/md", "gcc-12.2/openmpi"),
            name_tokens=("npt", "nvt", "equil", "prod", "membrane", "solvate"),
        ),
        AppArchetype(
            name="monte-carlo", domain="statistical physics", weight=0.068,
            op_mu=0.52, op_sigma=0.26, job_sigma=0.15, drift_sigma=0.0060,
            eff_alpha=1.8, eff_beta=5.5,
            node_choices=(1, 2, 8, 16), node_probs=(0.40, 0.25, 0.20, 0.15),
            duration_mu=7.9, duration_sigma=1.1, power_base_w=150.0,
            environments=("gcc-12.2/serial", "conda/py311", "spack/mc"),
            name_tokens=("ising", "sweep", "sample", "mcmc", "lattice", "beta"),
        ),
        AppArchetype(
            name="deep-learning", domain="machine learning", weight=0.06,
            op_mu=0.72, op_sigma=0.32, job_sigma=0.15, drift_sigma=0.0055,
            eff_alpha=2.0, eff_beta=5.0,
            node_choices=(1, 4, 16, 64), node_probs=(0.35, 0.30, 0.20, 0.15),
            duration_mu=8.8, duration_sigma=1.1, power_base_w=185.0,
            environments=("conda/pytorch-a64fx", "spack/onednn", "fujitsu-cc/dl4fugaku"),
            name_tokens=("train", "finetune", "epoch", "resnet", "bert", "eval"),
        ),
        AppArchetype(
            name="quantum-chemistry", domain="chemistry", weight=0.06,
            op_mu=0.95, op_sigma=0.30, job_sigma=0.12, drift_sigma=0.0040,
            eff_alpha=2.6, eff_beta=3.8,
            node_choices=(1, 2, 8, 32), node_probs=(0.30, 0.30, 0.25, 0.15),
            duration_mu=9.1, duration_sigma=1.0, power_base_w=175.0,
            environments=("spack/qchem", "fujitsu-cc/scalapack", "gcc-12.2/openmpi"),
            name_tokens=("scf", "dft", "ccsd", "basis", "opt", "freq"),
        ),
        AppArchetype(
            name="dense-linalg", domain="numerical libraries", weight=0.04,
            op_mu=1.30, op_sigma=0.30, job_sigma=0.10, drift_sigma=0.0030,
            eff_alpha=3.2, eff_beta=2.2,
            node_choices=(1, 8, 48, 384), node_probs=(0.30, 0.30, 0.25, 0.15),
            duration_mu=7.8, duration_sigma=0.9, power_base_w=195.0,
            environments=("fujitsu-cc/ssl2", "spack/blis", "gcc-12.2/openblas"),
            name_tokens=("dgemm", "lu", "cholesky", "hpl", "eigen", "solver"),
        ),
        AppArchetype(
            name="nbody", domain="astrophysics", weight=0.022,
            op_mu=1.60, op_sigma=0.28, job_sigma=0.11, drift_sigma=0.0030,
            eff_alpha=3.0, eff_beta=2.5,
            node_choices=(4, 16, 64, 256), node_probs=(0.30, 0.30, 0.25, 0.15),
            duration_mu=9.0, duration_sigma=0.9, power_base_w=190.0,
            environments=("fujitsu-cc/tofu", "spack/astro", "gcc-12.2/openmpi"),
            name_tokens=("halo", "nbody", "cosmo", "merger", "disk", "cluster"),
        ),
    )


#: Default catalog instance.
APP_CATALOG: tuple[AppArchetype, ...] = build_catalog()


def catalog_weights(catalog: tuple[AppArchetype, ...] = APP_CATALOG) -> np.ndarray:
    """Normalized mixture weights of a catalog as a float array."""
    w = np.array([a.weight for a in catalog], dtype=np.float64)
    total = w.sum()
    if total <= 0:
        raise ValueError("catalog has no positive weights")
    return w / total
