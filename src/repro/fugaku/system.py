"""Machine model for the Supercomputer Fugaku (Table I of the paper).

The paper's Job Characterizer is initialized with the peak FP64 performance
and the peak memory bandwidth of a *single node*; the ridge point of the
node-level Roofline follows as their ratio (≈ 3.3 Flops/Byte for Fugaku's
FX1000 boost-mode configuration).  This module captures those specifics as a
frozen dataclass so other systems can be described by constructing a
different :class:`FugakuSpec`-shaped object (the framework is system-agnostic
by design, paper §III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NORMAL_MODE_GHZ", "BOOST_MODE_GHZ", "FugakuSpec", "FUGAKU"]


#: Frequencies a Fugaku user may request at submission time, in GHz.
NORMAL_MODE_GHZ = 2.0
BOOST_MODE_GHZ = 2.2


@dataclass(frozen=True)
class FugakuSpec:
    """Static description of an HPC system, defaulting to Fugaku (Table I).

    Attributes mirror the rows of Table I in the paper plus the A64FX PMU
    details of §IV-B needed to interpret performance counters.

    The two attributes the Roofline characterization actually consumes are
    :attr:`peak_gflops_node` (3380 GFlops/s FP64, FX1000 *boost* mode — the
    paper uses the best attainable performance) and :attr:`peak_membw_gbs`
    (1024 GBytes/s of HBM2 per node).
    """

    name: str = "Fugaku"
    architecture: str = "Armv8.2-A SVE 512 bit"
    os: str = "Red Hat Enterprise Linux 8"
    num_nodes: int = 158_976
    cores_per_node: int = 48
    assistant_cores_per_node: int = 4
    memory_gib_per_node: int = 32
    #: Peak FP64 performance of one node in GFlops/s (boost mode, 2.2 GHz).
    peak_gflops_node: float = 3380.0  # unit: gflops/s
    #: Peak HBM2 memory bandwidth of one node in GBytes/s.
    peak_membw_gbs: float = 1024.0  # unit: gb/s
    #: System-level peak performance in PFlops/s (FP64).
    peak_pflops_system: float = 537.0
    interconnect: str = "Tofu D Interconnect (28 Gbps)"
    #: SVE vector width in bits; ``perf3`` counts ops per 128-bit SVE slice,
    #: hence the ``x4`` multiplier of Equation 4.
    sve_bits: int = 512
    #: Cache line size in bytes; each memory bus request moves one line
    #: (the ``x256`` multiplier of Equation 5).
    cache_line_bytes: int = 256  # unit: bytes
    #: Cores per Core Memory Group.  ``perf4``/``perf5`` are recorded per
    #: core but replicate the whole-CMG value, hence the ``/12`` of Eq. 5.
    cores_per_cmg: int = 12  # unit: 1
    #: Frequencies selectable at submission time, GHz.
    frequencies_ghz: tuple[float, ...] = (NORMAL_MODE_GHZ, BOOST_MODE_GHZ)

    @property
    def sve_multiplier(self) -> int:  # unit: -> 1
        """Number of 128-bit slices per SVE vector (4 on the A64FX)."""
        return self.sve_bits // 128

    @property
    def num_cmgs_per_node(self) -> int:
        """Core memory groups per node (4 on Fugaku: 48 cores / 12)."""
        return self.cores_per_node // self.cores_per_cmg

    @property
    def ridge_point(self) -> float:  # unit: -> flops/byte
        """Operational intensity of the Roofline ridge point, Flops/Byte.

        The minimum operational intensity at which the node can reach its
        peak performance: ``peak_gflops_node / peak_membw_gbs`` (≈ 3.30 for
        Fugaku).  Jobs with operational intensity above this value are
        *compute-bound*, below (or equal) are *memory-bound*.
        """
        return self.peak_gflops_node / self.peak_membw_gbs

    def attainable_gflops(self, operational_intensity: float) -> float:  # unit: operational_intensity=flops/byte -> gflops/s
        """Roofline-attainable performance at a given operational intensity.

        ``min(peak_perf, peak_bw * op)`` in GFlops/s.
        """
        if operational_intensity < 0:
            raise ValueError("operational intensity must be non-negative")
        return min(self.peak_gflops_node, self.peak_membw_gbs * operational_intensity)

    def is_boost(self, frequency_ghz: float) -> bool:
        """Whether a requested frequency corresponds to boost mode."""
        return frequency_ghz >= BOOST_MODE_GHZ


#: The default machine instance used throughout the reproduction.
FUGAKU = FugakuSpec()
