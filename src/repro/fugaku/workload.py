"""Generative workload model calibrated to the published F-DATA statistics.

The paper analyzes 2.2 million jobs submitted to Fugaku between December 1,
2023 and March 31, 2024.  That trace is not available offline, so this
module generates a synthetic trace reproducing every distributional property
the paper's results depend on (DESIGN.md §2):

- **volume & timing** — uniform submission rate with weekly modulation and
  the early-February maintenance shutdown (Fig. 2);
- **class balance** — ≈3.4x more memory-bound than compute-bound jobs,
  stable over time (Fig. 4, Table II);
- **frequency habits** — boost/normal mode chosen per user habit, largely
  uncorrelated with the job's roofline position (Fig. 5, Table II);
- **roofline scatter** — most jobs far below the ceilings, a few
  well-engineered clusters near them (Fig. 3);
- **template structure** — jobs arrive in *batches of identical jobs*
  (§V-C.c, the root cause of the random-vs-latest θ sampling gap);
- **workload drift** — job templates are born, die, and slowly wander on
  the roofline plane with a ≈30-day self-similarity horizon (the reason a
  sliding training window beats a growing one, §V-C.a/b).

The mechanism: traffic is produced by per-user *job templates* (a recurring
job script).  A template fixes the submission features (user name, job
name, #nodes, #cores, environment, requested frequency) and carries a
latent operational-intensity mean that drifts over its lifetime; each
execution jitters around it.  Counters are synthesized backwards from the
roofline placement through the exact inverse of Equations 4-5, so the
downstream Job Characterizer consumes raw ``perf2..perf5`` exactly as it
would on the real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.fugaku.apps import AppArchetype, APP_CATALOG
from repro.fugaku.counters import counters_from_flops_bytes
from repro.fugaku.system import FugakuSpec, FUGAKU
from repro.fugaku.trace import JobTrace
from repro.fugaku.users import UserPopulation, UserProfile

__all__ = ["WorkloadConfig", "JobTemplate", "WorkloadGenerator", "generate_trace", "DAY_SECONDS"]

#: Seconds per day; trace time is seconds since 2023-12-01 00:00:00.
DAY_SECONDS = 86_400.0

#: Day indices (since Dec 1, 2023) of notable calendar points.
DEC_1, JAN_1, FEB_1, MAR_1, APR_1 = 0, 31, 62, 91, 122


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the synthetic trace.

    ``scale`` linearly scales job volume, user count and template count
    relative to the paper's full trace (2.2 M jobs).  The time axis is never
    scaled: all experiments keep the paper's real day arithmetic (α, β in
    days).
    """

    scale: float = 1.0 / 30.0
    seed: int = 2024
    #: trace span in days (Dec 1 2023 .. Mar 31 2024 inclusive = 122 days)
    n_days: int = APR_1
    #: total jobs at scale=1.0
    full_scale_jobs: int = 2_200_000
    #: [start, end) day indices of the scheduled maintenance shutdown
    maintenance_days: tuple[int, int] = (66, 69)
    #: mean template lifetime in days (exponential)
    template_lifetime_days: float = 32.0
    #: mean jobs contributed by one template over one day it is active;
    #: controls batch sizes and the number of concurrently active templates
    jobs_per_template_day: float = 3.5
    #: per-execution operational-intensity jitter multiplier (1.0 = catalog)
    job_noise_scale: float = 1.25
    #: template drift-slope multiplier over the catalog values
    drift_scale: float = 0.8
    #: mean days between abrupt regime changes of a template (a user
    #: editing their recurring script); jumps are the dominant source of
    #: long-horizon workload change, while the day-to-day workload stays
    #: self-similar (the ≈30-day horizon of §V-C.a)
    regime_change_interval_days: float = 55.0
    #: log10 op-intensity jump size (stddev) at a regime change
    regime_change_sigma: float = 0.55
    #: probability a template uses a generic script name ("run.sh", ...)
    #: shared across unrelated users — the collisions that break the
    #: (job name, #cores) lookup baseline of §V-C.a while the full feature
    #: set (user, environment, nodes, frequency) stays discriminative
    generic_name_prob: float = 0.55
    #: application catalog to draw from
    catalog: tuple[AppArchetype, ...] = APP_CATALOG

    @property
    def n_jobs(self) -> int:
        n = int(round(self.full_scale_jobs * self.scale))
        if n <= 0:
            raise ValueError("scale too small: zero jobs")
        return n

    @property
    def n_users(self) -> int:
        # "hundreds of users" at full scale; sublinear scaling keeps small
        # traces from degenerating to one user per template.
        return max(12, int(round(400 * self.scale**0.5)))

    def day_to_time(self, day: float) -> float:
        """Convert a day index to trace seconds."""
        return float(day) * DAY_SECONDS

    def time_to_day(self, t) -> np.ndarray:
        """Convert trace seconds to (float) day indices; vectorized."""
        return np.asarray(t, dtype=np.float64) / DAY_SECONDS


@dataclass
class JobTemplate:
    """A recurring job script: fixed submission features, latent roofline state."""

    template_id: int
    user: UserProfile
    app: AppArchetype
    job_name: str
    environment: str
    nodes_req: int
    cores_req: int
    freq_req_ghz: float
    #: log10 operational intensity at birth and drift slope per day
    op_mu0: float
    op_slope: float
    #: per-execution log10 jitter
    job_sigma: float
    #: template-level fraction of roofline-attainable performance
    efficiency: float
    #: lognormal duration parameters
    duration_mu: float
    duration_sigma: float
    #: per-node power scale at normal mode, W
    power_node_w: float
    #: SVE / read fractions used when synthesizing counters
    sve_fraction: float
    read_fraction: float
    birth_day: float
    death_day: float
    weight: float
    #: abrupt regime changes: sorted days and the jump applied at each
    change_days: tuple = ()
    change_offsets: tuple = ()
    #: probability the template submits at all on a given active day —
    #: templates are bursty; a recurring script may sit quiet for weeks,
    #: which is why a 15-day window misses jobs a 30-day window still
    #: covers (the KNN α=30 optimum of §V-C.a)
    daily_prob: float = 1.0

    def op_mu_at(self, day: float) -> float:
        """Latent log10 operational-intensity mean on a given day.

        Slow linear wander plus the abrupt regime changes that occurred
        before ``day``.
        """
        mu = self.op_mu0 + self.op_slope * (day - self.birth_day)
        for t, off in zip(self.change_days, self.change_offsets):
            if t <= day:
                mu += off
        return mu


class WorkloadGenerator:
    """Build a :class:`JobTrace` from a :class:`WorkloadConfig`.

    Generation is deterministic given the config (all randomness flows from
    ``config.seed``).  The heavy lifting — per-job roofline placement,
    flops/bytes synthesis and the Eq. 4/5 inversion — is vectorized per
    template-day batch.
    """

    def __init__(self, config: WorkloadConfig | None = None, *, spec: "FugakuSpec" = FUGAKU) -> None:
        # ``spec`` is duck-typed: any machine description with the
        # FugakuSpec surface (peaks, frequencies, counter constants) works,
        # e.g. repro.systems.spec.MachineSpec for non-Fugaku systems.
        self.config = config or WorkloadConfig()
        self.spec = spec
        self._rng = np.random.default_rng(self.config.seed)
        self.users = UserPopulation(self.config.n_users, self._rng, catalog=self.config.catalog)
        self.templates = self._build_templates()

    # -- template population ---------------------------------------------------

    #: generic script names shared across users and domains
    GENERIC_NAMES = (
        "run.sh", "job.sh", "submit.sh", "a.out", "test.sh", "exp.sh",
        "batch.sh", "main.sh", "start.sh", "go.sh",
    )

    def _make_job_name(self, app: AppArchetype, rng: np.random.Generator) -> str:
        if rng.random() < self.config.generic_name_prob:
            return self.GENERIC_NAMES[int(rng.integers(len(self.GENERIC_NAMES)))]
        tokens = app.name_tokens
        t1 = tokens[int(rng.integers(len(tokens)))]
        t2 = tokens[int(rng.integers(len(tokens)))]
        style = int(rng.integers(4))
        n = int(rng.integers(1, 999))
        if style == 0:
            return f"run_{t1}_{t2}{n:03d}.sh"
        if style == 1:
            return f"{t1}-{t2}-v{n % 20}"
        if style == 2:
            return f"{app.name.split('-')[0]}_{t1}_{n:03d}"
        return f"job_{t1}{n:04d}"

    def _build_templates(self) -> list[JobTemplate]:
        cfg, rng = self.config, self._rng
        # Expected concurrently-active templates A satisfies
        # jobs/day ≈ A * jobs_per_template_day; template-days available per
        # template ≈ lifetime, so T ≈ A * (span + lifetime) / lifetime.
        jobs_per_day = cfg.n_jobs / cfg.n_days
        active = max(8.0, jobs_per_day / cfg.jobs_per_template_day)
        span = cfg.n_days + cfg.template_lifetime_days
        n_templates = max(12, int(round(active * span / cfg.template_lifetime_days)))

        weights = self.users.activity_weights()
        user_idx = rng.choice(len(self.users), size=n_templates, p=weights)

        templates: list[JobTemplate] = []
        ridge_log = np.log10(self.spec.ridge_point)
        for tid in range(n_templates):
            user = self.users[int(user_idx[tid])]
            app_i = int(rng.choice(len(cfg.catalog), p=user.app_affinity))
            app = cfg.catalog[app_i]
            nodes = int(rng.choice(app.node_choices, p=app.node_probs))
            # single-node jobs sometimes under-request cores
            if nodes == 1 and rng.random() < 0.35:
                cores = int(rng.choice([1, 4, 12, 24]))
            else:
                cores = nodes * self.spec.cores_per_node
            op_mu0 = app.op_mu + rng.normal(0.0, app.op_sigma)
            # frequency habit: keyed to the archetype's *typical* side of the
            # ridge, not the job's actual placement -> Fig 5 decorrelation
            typical_compute = op_mu0 > ridge_log
            boost_p = user.boost_prob_compute if typical_compute else user.boost_prob_memory
            # frequencies_ghz[-1] is the machine's boost mode, [0] its
            # normal mode (Fugaku: 2.2 / 2.0 GHz)
            freqs = self.spec.frequencies_ghz
            freq = freqs[-1] if rng.random() < boost_p else freqs[0]
            birth = float(rng.uniform(-cfg.template_lifetime_days, cfg.n_days - 1))
            death = birth + float(rng.exponential(cfg.template_lifetime_days))
            n_changes = int(
                rng.poisson((death - birth) / cfg.regime_change_interval_days)
            )
            change_days = sorted(
                float(rng.uniform(birth, death)) for _ in range(n_changes)
            )
            templates.append(
                JobTemplate(
                    template_id=tid,
                    user=user,
                    app=app,
                    job_name=self._make_job_name(app, rng),
                    environment=app.environments[int(rng.integers(len(app.environments)))],
                    nodes_req=nodes,
                    cores_req=cores,
                    freq_req_ghz=freq,
                    op_mu0=op_mu0,
                    op_slope=float(rng.normal(0.0, app.drift_sigma * cfg.drift_scale)),
                    change_days=tuple(change_days),
                    change_offsets=tuple(
                        float(rng.normal(0.0, cfg.regime_change_sigma))
                        for _ in change_days
                    ),
                    job_sigma=app.job_sigma * cfg.job_noise_scale,
                    efficiency=float(np.clip(rng.beta(app.eff_alpha, app.eff_beta), 1e-4, 1.0)),
                    duration_mu=app.duration_mu + float(rng.normal(0.0, 0.5)),
                    duration_sigma=0.35,
                    power_node_w=app.power_base_w * float(rng.lognormal(0.0, 0.15)),
                    sve_fraction=float(np.clip(rng.beta(8.0, 2.0), 0.05, 0.999)),
                    read_fraction=float(np.clip(rng.beta(6.0, 4.0), 0.05, 0.95)),
                    birth_day=birth,
                    death_day=death,
                    weight=float(rng.lognormal(0.0, 0.45)),
                    daily_prob=(
                        # ~40% sporadic templates resurface after quiet
                        # weeks (why a 30-day window beats 15 for KNN);
                        # the rest submit most days
                        float(rng.uniform(0.04, 0.15))
                        if rng.random() < 0.35
                        else float(rng.uniform(0.40, 1.0))
                    ),
                )
            )
        return templates

    # -- daily volume -----------------------------------------------------------

    def daily_job_counts(self) -> np.ndarray:
        """Number of jobs submitted on each day of the trace (Fig. 2 shape)."""
        cfg, rng = self.config, np.random.default_rng(self.config.seed + 1)
        days = np.arange(cfg.n_days)
        weekly = np.array([1.06, 1.10, 1.10, 1.06, 1.00, 0.80, 0.74])
        w = weekly[days % 7] * rng.lognormal(0.0, 0.12, size=cfg.n_days)
        lo, hi = cfg.maintenance_days
        w[(days >= lo) & (days < hi)] *= 0.02
        w /= w.sum()
        counts = rng.multinomial(cfg.n_jobs, w)
        return counts

    # -- job synthesis -----------------------------------------------------------

    def _batch_jobs(self, tpl: JobTemplate, day: int, count: int, rng: np.random.Generator) -> dict:
        """Vectorized synthesis of ``count`` executions of one template on one day."""
        spec = self.spec
        day_start = day * DAY_SECONDS
        # one batch: clustered submit times within the day
        start = rng.uniform(0.0, DAY_SECONDS * 0.9)
        gaps = rng.exponential(45.0, size=count)
        submit = day_start + np.minimum(start + np.cumsum(gaps), DAY_SECONDS - 1.0)

        op_log = tpl.op_mu_at(day) + rng.normal(0.0, tpl.job_sigma, size=count)
        op = 10.0**op_log
        attainable = np.minimum(spec.peak_gflops_node, spec.peak_membw_gbs * op)
        eff = np.clip(tpl.efficiency * rng.lognormal(0.0, 0.18, size=count), 1e-5, 1.0)
        p_node = eff * attainable          # GFlops/s per node
        mb_node = p_node / op              # GB/s per node

        duration = np.clip(
            rng.lognormal(tpl.duration_mu, tpl.duration_sigma, size=count), 30.0, 3 * DAY_SECONDS
        )
        wait = rng.exponential(180.0, size=count)  # ≈3 min average scheduling wait (§V-C.a)
        start_t = submit + wait
        end_t = start_t + duration

        nodes = tpl.nodes_req
        flops = p_node * 1e9 * duration * nodes
        moved = mb_node * 1e9 * duration * nodes
        perf2, perf3, perf4, perf5 = counters_from_flops_bytes(
            flops, moved, spec=spec,
            sve_fraction=tpl.sve_fraction, read_fraction=tpl.read_fraction,
        )

        boost = 1.10 if spec.is_boost(tpl.freq_req_ghz) else 1.0
        power = tpl.power_node_w * nodes * boost * (0.75 + 0.5 * eff)

        return {
            "submit_time": submit,
            "start_time": start_t,
            "end_time": end_t,
            "duration": duration,
            "perf2": perf2,
            "perf3": perf3,
            "perf4": perf4,
            "perf5": perf5,
            "power_avg_w": power,
            "nodes_req": np.full(count, tpl.nodes_req, dtype=np.int64),
            "cores_req": np.full(count, tpl.cores_req, dtype=np.int64),
            "nodes_alloc": np.full(count, tpl.nodes_req, dtype=np.int64),
            "freq_req_ghz": np.full(count, tpl.freq_req_ghz),
            "user_name": np.full(count, tpl.user.user_name, dtype=object),
            "job_name": np.full(count, tpl.job_name, dtype=object),
            "environment": np.full(count, tpl.environment, dtype=object),
            "template_id": np.full(count, tpl.template_id, dtype=np.int64),
            "app": np.full(count, tpl.app.name, dtype=object),
        }

    def _day_parts(
        self,
        day: int,
        n_day: int,
        rng: np.random.Generator,
        births: np.ndarray,
        deaths: np.ndarray,
        weights: np.ndarray,
        daily_probs: np.ndarray,
    ) -> list[dict]:
        """One day's template draws as per-template column batches."""
        alive = (births <= day) & (day < deaths)
        bursty = rng.random(len(self.templates)) < daily_probs
        active = np.flatnonzero(alive & bursty)
        if active.size == 0:
            active = np.flatnonzero(alive)
        if active.size == 0:
            # pathological tiny configs: fall back to all templates
            active = np.arange(len(self.templates))
        # Heavy-tailed per-day bursts: Fugaku jobs arrive in batches of
        # identical jobs, and on any given day one template can grab a
        # large share of the volume.  This burstiness is what makes
        # "latest θ" subsampling collapse onto few distinct jobs
        # (Figs. 9-10: random sampling beats latest).
        w = weights[active] * rng.lognormal(0.0, 1.0, size=active.size)
        counts = rng.multinomial(n_day, w / w.sum())
        parts = []
        for k in np.flatnonzero(counts):
            tpl = self.templates[int(active[k])]
            parts.append(self._batch_jobs(tpl, day, int(counts[k]), rng))
        return parts

    def generate_stream(self) -> Iterator[JobTrace]:
        # streaming: one submit-sorted day of jobs per yield
        # scale: -> batch
        """Yield the trace one submit-sorted day-batch at a time.

        Concatenating every yielded batch reproduces :meth:`generate`
        bit for bit: the RNG call sequence is shared, submit times never
        cross a day boundary (each day's are clamped below the next day's
        start), so per-day stable sorting plus sequential job ids equals
        one global stable sort.  Peak memory is one day of jobs, never
        the month — the only way to produce an F-DATA-scale trace
        without holding 2.2 M jobs at once.  Empty days yield nothing.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 2)
        daily = self.daily_job_counts()

        births = np.array([t.birth_day for t in self.templates])
        deaths = np.array([t.death_day for t in self.templates])
        weights = np.array([t.weight for t in self.templates])
        daily_probs = np.array([t.daily_prob for t in self.templates])

        next_id = 1
        for day in range(cfg.n_days):
            n_day = int(daily[day])
            if n_day == 0:
                continue
            parts = self._day_parts(
                day, n_day, rng, births, deaths, weights, daily_probs
            )
            cols: dict[str, np.ndarray] = {}
            for key in parts[0]:
                cols[key] = np.concatenate([p[key] for p in parts])
            order = np.argsort(cols["submit_time"], kind="stable")
            cols = {k: v[order] for k, v in cols.items()}
            cols["job_id"] = np.arange(
                next_id, next_id + len(order), dtype=np.int64
            )
            next_id += len(order)
            yield JobTrace(cols)

    def generate(self) -> JobTrace:
        # scale: -> jobs
        """Generate the full trace, sorted by submission time.

        The materializing boundary over :meth:`generate_stream`; use the
        stream directly when the trace only needs to be seen one day at
        a time.
        """
        batches = list(self.generate_stream())
        return JobTrace(
            {
                key: np.concatenate([b[key] for b in batches])
                for key in batches[0].column_names
            }
        )


def generate_trace(
    scale: float = 1.0 / 30.0, seed: int = 2024, **overrides
) -> JobTrace:
    """Convenience wrapper: build a trace at a given scale and seed."""
    cfg = WorkloadConfig(scale=scale, seed=seed, **overrides)
    return WorkloadGenerator(cfg).generate()
