"""Vectorized job characterization (paper §III-C, Equations 1-3).

Given per-job ``#flops``, ``#moved_memory_bytes``, ``duration`` and
``#nodes_alloc``, computes the per-node average performance, memory
bandwidth and operational intensity, and derives the binary
memory/compute-bound label by comparing against the machine's ridge point.

These free functions are the computational core wrapped by
:class:`repro.core.job_characterizer.JobCharacterizer`.
"""

from __future__ import annotations

import numpy as np

from repro.roofline.model import Roofline

__all__ = [
    "MEMORY_BOUND",
    "COMPUTE_BOUND",
    "LABEL_NAMES",
    "job_performance",
    "job_memory_bandwidth",
    "job_operational_intensity",
    "characterize_jobs",
]

#: Integer codes for the two classes (stable across the code base).
MEMORY_BOUND: int = 0
COMPUTE_BOUND: int = 1
LABEL_NAMES: tuple[str, str] = ("memory-bound", "compute-bound")


def _validate(flops, duration, nodes_alloc) -> tuple[np.ndarray, np.ndarray, np.ndarray]:  # unit: duration=s, nodes_alloc=1
    flops = np.asarray(flops, dtype=np.float64)
    duration = np.asarray(duration, dtype=np.float64)
    nodes = np.asarray(nodes_alloc, dtype=np.float64)
    if np.any(duration <= 0):
        raise ValueError("job duration must be positive")
    if np.any(nodes <= 0):
        raise ValueError("#nodes_alloc must be positive")
    if np.any(flops < 0):
        raise ValueError("#flops must be non-negative")
    return flops, duration, nodes


def job_performance(flops, duration, nodes_alloc):  # unit: flops=flops, duration=s, nodes_alloc=1 -> gflops/s
    """Equation 1: per-node average performance in GFlops/s.

    ``p_j = #flops_j / (duration_j * #nodes_alloc_j)``, expressed in
    GFlops/s to match the machine ceilings.
    """
    flops, duration, nodes = _validate(flops, duration, nodes_alloc)  # unit: flops, s, 1
    out = flops / (duration * nodes) / 1e9
    return out if out.ndim else float(out)


def job_memory_bandwidth(moved_bytes, duration, nodes_alloc):  # unit: moved_bytes=bytes, duration=s, nodes_alloc=1 -> gb/s
    """Equation 2: per-node average memory bandwidth in GBytes/s."""
    moved, duration, nodes = _validate(moved_bytes, duration, nodes_alloc)  # unit: bytes, s, 1
    out = moved / (duration * nodes) / 1e9
    return out if out.ndim else float(out)


def job_operational_intensity(flops, moved_bytes, *, floor_bytes: float = 1.0):  # unit: flops=flops, moved_bytes=bytes, floor_bytes=bytes -> flops/byte
    """Equation 3: operational intensity ``op_j = p_j / mb_j`` in Flops/Byte.

    Duration and node normalizations cancel, so this is simply
    ``#flops / #moved_memory_bytes``.  ``floor_bytes`` guards against jobs
    that report zero memory traffic (treated as moving at least one byte,
    which classifies pure-compute degenerate jobs as compute-bound).
    """
    flops = np.asarray(flops, dtype=np.float64)
    moved = np.asarray(moved_bytes, dtype=np.float64)
    if np.any(flops < 0) or np.any(moved < 0):
        raise ValueError("flops and moved_bytes must be non-negative")
    out = flops / np.maximum(moved, floor_bytes)
    return out if out.ndim else float(out)


def characterize_jobs(  # hotpath: Eq. 1-3 pipeline behind /characterize
    flops,  # unit: flops=flops, moved_bytes=bytes, duration=s, nodes_alloc=1
    moved_bytes,
    duration,
    nodes_alloc,
    roofline: Roofline,
):
    """Full Equations 1-3 pipeline plus ridge-point labelling.

    Returns
    -------
    (p, mb, op, labels):
        Per-node GFlops/s, per-node GB/s, Flops/Byte, and int labels
        (:data:`MEMORY_BOUND` / :data:`COMPUTE_BOUND`).  All arrays share
        the input's shape.
    """
    p = np.asarray(job_performance(flops, duration, nodes_alloc))
    mb = np.asarray(job_memory_bandwidth(moved_bytes, duration, nodes_alloc))
    op = np.asarray(job_operational_intensity(flops, moved_bytes))
    labels = np.where(op > roofline.ridge_point, COMPUTE_BOUND, MEMORY_BOUND).astype(np.int64)
    return p, mb, op, labels
