"""Log-binned 2-D summaries of roofline scatter.

The paper's Figures 3 and 5 are scatter plots of ~2.2 M jobs on the
(operational intensity, performance) plane.  For a headless, matplotlib-free
reproduction we summarize the scatter as a 2-D histogram over log-spaced
bins plus the statistics the paper reads off the figure: skew of the
op-intensity distribution relative to the ridge, mass near the ceilings,
and (for Fig. 5) the association between frequency choice and position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.roofline.model import Roofline

__all__ = ["log_bin_2d", "RooflineScatterSummary"]


def log_bin_2d(
    x: np.ndarray,
    y: np.ndarray,
    *,
    x_range: tuple[float, float],
    y_range: tuple[float, float],
    bins: tuple[int, int] = (60, 40),
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """2-D histogram over log10-spaced bins.

    Values outside the ranges are clipped into the edge bins (the figures
    clip their axes the same way).  Returns ``(counts, x_edges, y_edges)``
    with edges in linear units.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    if min(x_range) <= 0 or min(y_range) <= 0:
        raise ValueError("log binning needs positive ranges")
    xe = np.logspace(np.log10(x_range[0]), np.log10(x_range[1]), bins[0] + 1)
    ye = np.logspace(np.log10(y_range[0]), np.log10(y_range[1]), bins[1] + 1)
    xc = np.clip(x, x_range[0], x_range[1] * (1 - 1e-12))
    yc = np.clip(y, y_range[0], y_range[1] * (1 - 1e-12))
    counts, _, _ = np.histogram2d(xc, yc, bins=[xe, ye])
    return counts, xe, ye


@dataclass(frozen=True)
class RooflineScatterSummary:
    """Figure-3/5-style summary statistics of a job population.

    Attributes
    ----------
    n_jobs: population size.
    frac_memory_bound: share of jobs at or below the ridge point.
    median_op: median operational intensity (Flops/Byte).
    frac_near_ceiling: share of jobs achieving ≥50% of attainable perf.
    frac_within_decade_of_ceiling: share achieving ≥10% of attainable perf.
    counts / x_edges / y_edges: the log-binned 2-D histogram.
    """

    n_jobs: int
    frac_memory_bound: float
    median_op: float
    frac_near_ceiling: float
    frac_within_decade_of_ceiling: float
    counts: np.ndarray
    x_edges: np.ndarray
    y_edges: np.ndarray

    @staticmethod
    def from_jobs(
        op: np.ndarray,
        perf_gflops: np.ndarray,
        roofline: Roofline,
        *,
        bins: tuple[int, int] = (60, 40),
    ) -> "RooflineScatterSummary":
        op = np.asarray(op, dtype=np.float64)
        perf = np.asarray(perf_gflops, dtype=np.float64)
        if op.shape != perf.shape or op.ndim != 1:
            raise ValueError("op and perf must be equal-length 1-D arrays")
        if op.size == 0:
            raise ValueError("empty job population")
        eff = roofline.efficiency(op, perf)
        counts, xe, ye = log_bin_2d(
            op,
            np.maximum(perf, 1e-6),
            x_range=(1e-4, 1e3),
            y_range=(1e-3, roofline.peak_gflops * 1.5),
            bins=bins,
        )
        return RooflineScatterSummary(
            n_jobs=int(op.size),
            frac_memory_bound=float(np.mean(op <= roofline.ridge_point)),
            median_op=float(np.median(op)),
            frac_near_ceiling=float(np.mean(eff >= 0.5)),
            frac_within_decade_of_ceiling=float(np.mean(eff >= 0.1)),
            counts=counts,
            x_edges=xe,
            y_edges=ye,
        )
