"""Multi-ceiling Roofline extension.

The paper's first MCBound version labels jobs with the two classes of the
original Roofline paper, but notes (§III-C) that "by adding to the Roofline
model the bandwidth of other hardware components (e.g. cache, interconnect
and GPUs) it is possible to expand the Job Characterizer to create other
labels ... such as interconnect-bound and GPU-bound".  This module
implements that extension: a roofline with an ordered set of bandwidth
ceilings, each defining its own ridge against the compute peak, and a
multi-class labelling that names the binding resource.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Ceiling", "MultiCeilingRoofline"]


@dataclass(frozen=True)
class Ceiling:
    """One bandwidth ceiling: a named resource with peak GB/s."""

    name: str
    peak_gbs: float

    def __post_init__(self) -> None:
        if self.peak_gbs <= 0:
            raise ValueError("ceiling bandwidth must be positive")


class MultiCeilingRoofline:
    """Roofline with a compute peak and several bandwidth ceilings.

    Each job supplies its per-node performance and its traffic through each
    resource; the job is labelled by the resource whose ceiling it is
    closest to saturating, or ``"compute-bound"`` if the compute peak is the
    tightest constraint.

    Parameters
    ----------
    peak_gflops:
        FP64 compute ceiling, GFlops/s.
    ceilings:
        Bandwidth ceilings ordered however the caller likes (e.g. HBM2,
        L2 cache, Tofu interconnect).
    """

    def __init__(self, peak_gflops: float, ceilings: list[Ceiling]) -> None:
        if peak_gflops <= 0:
            raise ValueError("peak_gflops must be positive")
        if not ceilings:
            raise ValueError("need at least one bandwidth ceiling")
        names = [c.name for c in ceilings]
        if len(set(names)) != len(names):
            raise ValueError("ceiling names must be unique")
        self.peak_gflops = float(peak_gflops)
        self.ceilings = list(ceilings)

    @property
    def class_names(self) -> tuple[str, ...]:
        """Label names: one ``<resource>-bound`` per ceiling + compute-bound."""
        return tuple(f"{c.name}-bound" for c in self.ceilings) + ("compute-bound",)

    def ridge_point(self, ceiling_name: str) -> float:
        """Ridge point (Flops/Byte) against a named ceiling."""
        for c in self.ceilings:
            if c.name == ceiling_name:
                return self.peak_gflops / c.peak_gbs
        raise KeyError(f"unknown ceiling {ceiling_name!r}")

    def classify(self, performance_gflops, traffic_gbs: dict[str, np.ndarray]) -> np.ndarray:
        """Label jobs by their most-saturated resource.

        Parameters
        ----------
        performance_gflops:
            Per-node achieved GFlops/s, shape ``(n,)``.
        traffic_gbs:
            Mapping ceiling name -> per-node achieved GB/s through that
            resource, each shape ``(n,)``.

        Returns
        -------
        Integer labels indexing :attr:`class_names`.
        """
        perf = np.asarray(performance_gflops, dtype=np.float64)
        n = perf.shape[0]
        k = len(self.ceilings)
        util = np.empty((k + 1, n), dtype=np.float64)
        for i, c in enumerate(self.ceilings):
            if c.name not in traffic_gbs:
                raise KeyError(f"missing traffic for ceiling {c.name!r}")
            tr = np.asarray(traffic_gbs[c.name], dtype=np.float64)
            if tr.shape != perf.shape:
                raise ValueError(f"traffic shape mismatch for {c.name!r}")
            if np.any(tr < 0):
                raise ValueError("traffic must be non-negative")
            util[i] = tr / c.peak_gbs
        util[k] = perf / self.peak_gflops
        return np.argmax(util, axis=0).astype(np.int64)
