"""The basic Roofline model.

A machine is summarized by two ceilings: peak floating-point performance
(GFlops/s) and peak memory bandwidth (GB/s).  A computation with
operational intensity ``op`` (Flops/Byte) can attain at most
``min(peak_perf, peak_bw * op)``.  The *ridge point* ``op_r = peak_perf /
peak_bw`` separates the memory-bound region (``op <= op_r``) from the
compute-bound region (``op > op_r``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sanitizers import check_finite, numeric_trap

__all__ = ["Roofline"]


@dataclass(frozen=True)
class Roofline:
    """Node-level roofline with FP64 peak and memory-bandwidth ceilings.

    Parameters
    ----------
    peak_gflops:
        Peak floating-point performance in GFlops/s.
    peak_membw_gbs:
        Peak memory bandwidth in GBytes/s.
    """

    peak_gflops: float  # unit: gflops/s
    peak_membw_gbs: float  # unit: gb/s

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.peak_membw_gbs <= 0:
            raise ValueError("roofline ceilings must be positive")

    @property
    def ridge_point(self) -> float:  # unit: -> flops/byte
        """Operational intensity of the ridge point, Flops/Byte."""
        return self.peak_gflops / self.peak_membw_gbs

    def attainable(self, op):  # unit: op=flops/byte -> gflops/s
        """Attainable performance (GFlops/s) at operational intensity ``op``.

        Vectorized: accepts scalars or arrays.
        """
        op = np.asarray(op, dtype=np.float64)
        if np.any(op < 0):
            raise ValueError("operational intensity must be non-negative")
        with numeric_trap("Roofline.attainable"):
            out = np.minimum(self.peak_gflops, self.peak_membw_gbs * op)
        check_finite("Roofline.attainable", out)
        return out if out.ndim else float(out)

    def is_compute_bound(self, op):  # unit: op=flops/byte
        """Boolean (array): strictly above the ridge point.

        The paper labels a job *compute-bound* iff its operational intensity
        is greater than the ridge point, *memory-bound* otherwise (§III-C).
        """
        op = np.asarray(op, dtype=np.float64)
        out = op > self.ridge_point
        return out if out.ndim else bool(out)

    def efficiency(self, op, performance_gflops):  # unit: op=flops/byte, performance_gflops=gflops/s -> 1
        """Fraction of the attainable performance actually achieved."""
        perf = np.asarray(performance_gflops, dtype=np.float64)
        att = np.asarray(self.attainable(op), dtype=np.float64)
        with numeric_trap("Roofline.efficiency"):
            out = np.divide(perf, att, out=np.zeros_like(perf), where=att > 0)
        check_finite("Roofline.efficiency", out)
        return out if out.ndim else float(out)
