"""Roofline model library (Williams et al., CACM 2009).

Provides the node-level Roofline used by the paper's Job Characterizer
(:mod:`repro.roofline.model`, :mod:`repro.roofline.characterize`), the
multi-ceiling extension the paper names as future work (cache /
interconnect ceilings, :mod:`repro.roofline.multiceiling`), and log-binned
2-D summaries of job scatter used to regenerate Figures 3 and 5
(:mod:`repro.roofline.binning`).
"""

from repro.roofline.model import Roofline
from repro.roofline.characterize import (
    MEMORY_BOUND,
    COMPUTE_BOUND,
    job_performance,
    job_memory_bandwidth,
    job_operational_intensity,
    characterize_jobs,
)
from repro.roofline.multiceiling import Ceiling, MultiCeilingRoofline
from repro.roofline.binning import log_bin_2d, RooflineScatterSummary

__all__ = [
    "Roofline",
    "MEMORY_BOUND",
    "COMPUTE_BOUND",
    "job_performance",
    "job_memory_bandwidth",
    "job_operational_intensity",
    "characterize_jobs",
    "Ceiling",
    "MultiCeilingRoofline",
    "log_bin_2d",
    "RooflineScatterSummary",
]
