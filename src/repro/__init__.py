"""repro — a full reproduction of *MCBound: An Online Framework to
Characterize and Classify Memory/Compute-bound HPC Jobs* (SC 2024).

Layers (see README.md and DESIGN.md):

- :mod:`repro.core` — the MCBound framework (Data Fetcher, Feature
  Encoder, Job Characterizer, Classification Model, workflows, HTTP app).
- :mod:`repro.fugaku` — the Fugaku machine model and the calibrated
  synthetic workload standing in for the F-DATA trace.
- :mod:`repro.roofline` — the Roofline model library.
- :mod:`repro.mlcore` — from-scratch RF / KNN / metrics / persistence.
- :mod:`repro.nlp` — the deterministic sentence-embedding substitute.
- :mod:`repro.storage` — the relational jobs data storage.
- :mod:`repro.web` — the micro web framework behind the deployment.
- :mod:`repro.parallel` — chunking/executor/communicator utilities.
- :mod:`repro.evaluation` — the §V online-evaluation experiment harness.
- :mod:`repro.analysis` — the §IV characterization analyses and the
  §V-C.d impact estimator.
- :mod:`repro.dispatch` — the §VI consumer: prediction-guided frequency
  selection and co-scheduling in an event-driven cluster simulator.
"""

from repro._version import __version__
from repro.config import BenchSettings, bench_settings

__all__ = ["__version__", "BenchSettings", "bench_settings"]
