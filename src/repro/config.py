"""Repository-wide experiment scaling knobs.

The paper's trace has 2.2 M jobs and its evaluation ran for ~500 minutes
on a 64-core machine; this reproduction runs the same experiments on a
down-scaled synthetic trace so the full benchmark suite finishes on a
laptop-class single core.  ``REPRO_BENCH_SCALE`` (a float, fraction of the
paper's job volume) and ``REPRO_BENCH_SEED`` override the defaults from
the environment; EXPERIMENTS.md records the scale every number was
produced at.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["BenchSettings", "bench_settings"]


@dataclass(frozen=True)
class BenchSettings:
    """Scale and model sizes used by the benchmark harness."""

    scale: float
    seed: int
    #: forest size for the online-evaluation sweeps (the paper uses the
    #: sklearn default of 100 on a 64-core box; 25 hist-splitter trees give
    #: indistinguishable macro-F1 at our scale in a single-core budget)
    rf_n_estimators: int = 25
    rf_max_depth: int = 16
    rf_splitter: str = "hist"
    knn_k: int = 5

    @property
    def rf_params(self) -> dict:
        return {
            "n_estimators": self.rf_n_estimators,
            "max_depth": self.rf_max_depth,
            "splitter": self.rf_splitter,
            "random_state": self.seed,
        }

    @property
    def knn_params(self) -> dict:
        return {"n_neighbors": self.knn_k, "algorithm": "brute"}

    def scaled_theta(self, theta_paper: float) -> int:
        """Map a paper θ (data-point cap) to this scale, min 10."""
        return max(10, int(round(theta_paper * self.scale)))


def bench_settings() -> BenchSettings:
    """Benchmark settings, honouring the environment overrides."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", 1.0 / 60.0))
    seed = int(os.environ.get("REPRO_BENCH_SEED", 2024))
    if not 0 < scale <= 1:
        raise ValueError("REPRO_BENCH_SCALE must be in (0, 1]")
    return BenchSettings(scale=scale, seed=seed)
