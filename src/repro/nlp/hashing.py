"""Deterministic 64-bit feature hashing.

Python's built-in ``hash`` is salted per process, so embeddings built on it
would not be reproducible across runs (and could not be persisted alongside
a trained model).  We use FNV-1a, which is tiny, fast, and has good
avalanche behaviour for short code-like tokens.
"""

from __future__ import annotations

__all__ = ["fnv1a64", "hash_token"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a64(data: bytes, seed: int = 0) -> int:
    """64-bit FNV-1a hash of ``data``, optionally tweaked by a seed."""
    h = (_FNV_OFFSET ^ (seed * 0x9E3779B97F4A7C15)) & _MASK
    for b in data:
        h ^= b
        h = (h * _FNV_PRIME) & _MASK
    return h


def _mix64(h: int) -> int:
    """splitmix64 finalizer: full-avalanche mixing of a 64-bit value.

    Raw FNV-1a has weak dispersion in its high bits for short inputs (the
    top bit comes out 0 for ~90% of short tokens), which would bias the
    embedder's sign bits; the finalizer fixes that.
    """
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _MASK
    h ^= h >> 33
    return h


def hash_token(token: str, seed: int = 0) -> int:  # hotpath: per-token work inside encode
    """Hash a text token (UTF-8) to a well-mixed 64-bit integer."""
    return _mix64(fnv1a64(token.encode("utf-8"), seed))
