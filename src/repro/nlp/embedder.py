"""Hashed n-gram sentence embedder (SBERT stand-in).

Each token (word or character n-gram, see :mod:`repro.nlp.tokenizer`) is
mapped by ``n_hashes`` independent seeded hashes to ``(dimension, sign)``
pairs; the sentence vector is the signed sum of its tokens' contributions,
optionally IDF-weighted, then L2-normalized.  This is a sparse signed
random projection of the (virtually infinite) token space into
``dim``-dimensional space, so cosine similarity between two sentences
approximates their weighted token-overlap — the locality property k-NN and
random forests exploit downstream.

Determinism: hashing is FNV-1a with fixed seeds; the embedding of a string
depends only on (string, dim, n_hashes, seed, idf state).

Performance: job feature strings repeat heavily (batches of identical
jobs), so per-string vectors are memoized in an internal LRU cache and
:meth:`encode` deduplicates its input before embedding — a batch of
identical jobs costs one embedding plus dictionary lookups.  Cache misses
are embedded together: token contributions for the whole batch are
scattered into the ``(n, dim)`` output with a single ``np.bincount`` over
flattened ``(row, dim)`` cells, in document-major token order, so each
dimension accumulates its floating-point adds in exactly the order the
scalar :meth:`_embed_one` loop would — batch and scalar embeddings are
bit-for-bit identical (asserted by the equivalence tests; the pre-PR
per-string encode loop is preserved in :mod:`repro.nlp.reference`).
"""

from __future__ import annotations

import numpy as np

from repro.nlp.hashing import hash_token
from repro.nlp.tfidf import DocumentFrequencyTable
from repro.nlp.tokenizer import feature_tokens

__all__ = ["SentenceEmbedder"]


def row_norms(M: np.ndarray) -> np.ndarray:
    """L2 norm over the last axis.

    Both the scalar and the batch embedding paths must compute norms with
    the same reduction (pairwise summation over a contiguous last axis) or
    they drift in the last bit; this helper is that single shared op.
    """
    return np.sqrt((M * M).sum(axis=-1))


class SentenceEmbedder:
    """Fixed-width deterministic sentence embedder.

    Parameters
    ----------
    dim:
        Output dimensionality.  Defaults to 384 to match the SBERT model
        the paper uses (`all-MiniLM-L6-v2`).
    n_hashes:
        Number of (dimension, sign) projections per token.  More hashes
        reduce collision noise at slightly higher cost.
    seed:
        Seed mixed into every hash; two embedders with different seeds are
        independent projections.
    use_idf:
        If True, token contributions are weighted by the online IDF table
        (fit via :meth:`partial_fit_idf` during the Training Workflow).
    ngram_range:
        Character n-gram sizes fed to the tokenizer.
    cache_size:
        Maximum number of distinct strings memoized (LRU eviction: a
        cache hit refreshes the entry's recency, evictions drop the least
        recently used string).
    """

    def __init__(
        self,
        dim: int = 384,
        *,
        n_hashes: int = 2,
        seed: int = 17,
        use_idf: bool = False,
        ngram_range: tuple[int, int] = (3, 4),
        cache_size: int = 200_000,
    ) -> None:
        if dim <= 1:
            raise ValueError("dim must be > 1")
        if n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.dim = int(dim)
        self.n_hashes = int(n_hashes)
        self.seed = int(seed)
        self.use_idf = bool(use_idf)
        self.ngram_range = (int(ngram_range[0]), int(ngram_range[1]))
        self.cache_size = int(cache_size)
        self.idf_table = DocumentFrequencyTable()
        self._cache: dict[str, np.ndarray] = {}
        # token -> (dims, signs, token_id); memoizes hashing too
        self._token_cache: dict[str, tuple[np.ndarray, np.ndarray, int]] = {}
        # token -> (dims, signs * idf_weight, idf generation); entries from
        # an older generation are stale and recomputed on demand
        self._contrib_cache: dict[str, tuple[np.ndarray, np.ndarray, int]] = {}
        # text -> token list.  Tokenization is pure Python (the dominant
        # cost of a distinct-string embed) and independent of IDF state,
        # so unlike the vector cache this memo survives partial_fit_idf's
        # invalidation: re-encoding a known string after a refit skips
        # the tokenizer entirely.
        self._tokens_cache: dict[str, list[str]] = {}
        self._idf_gen = 0

    # -- token machinery -------------------------------------------------------

    def _tokens_of(self, text: str) -> list[str]:  # hotpath: tokenization behind every encode()
        hit = self._tokens_cache.get(text)
        if hit is not None:
            self._tokens_cache[text] = self._tokens_cache.pop(text)  # LRU: refresh
            return hit
        tokens = feature_tokens(text, n_min=self.ngram_range[0], n_max=self.ngram_range[1])
        if self.cache_size:
            if len(self._tokens_cache) >= self.cache_size:
                self._tokens_cache.pop(next(iter(self._tokens_cache)))
            self._tokens_cache[text] = tokens
        return tokens

    def _token_projection(self, token: str) -> tuple[np.ndarray, np.ndarray, int]:
        hit = self._token_cache.get(token)
        if hit is not None:
            return hit
        dims = np.empty(self.n_hashes, dtype=np.int64)
        signs = np.empty(self.n_hashes, dtype=np.float64)
        for k in range(self.n_hashes):
            h = hash_token(token, seed=self.seed * 1000 + k)
            dims[k] = h % self.dim
            signs[k] = 1.0 if (h >> 63) & 1 else -1.0
        if self.n_hashes > 1:
            # Fancy-assignment semantics of ``v[dims] += signs * w``: when
            # two hashes of one token collide on a dimension, only the last
            # write sticks.  Collapse such duplicates (keep the last) here
            # so every downstream accumulation — fancy add and bincount
            # scatter alike — agrees with that historical rule bit-for-bit.
            last_pos = {int(d): k for k, d in enumerate(dims)}
            if len(last_pos) < self.n_hashes:
                keep = np.array(sorted(last_pos.values()), dtype=np.intp)
                dims = dims[keep]
                signs = signs[keep]
        token_id = hash_token(token, seed=self.seed)
        entry = (dims, signs, token_id)
        if len(self._token_cache) < 4 * self.cache_size + 1024:
            self._token_cache[token] = entry
        return entry

    def _token_contrib(self, token: str) -> tuple[np.ndarray, np.ndarray]:
        """``(dims, signs * weight)`` for one token under the current IDF."""
        hit = self._contrib_cache.get(token)
        if hit is not None and hit[2] == self._idf_gen:
            return hit[0], hit[1]
        dims, signs, tok_id = self._token_projection(token)
        w = self.idf_table.idf(tok_id) if self.use_idf else 1.0
        contrib = signs * w
        if len(self._contrib_cache) < 4 * self.cache_size + 1024:
            self._contrib_cache[token] = (dims, contrib, self._idf_gen)
        return dims, contrib

    def _embed_one(self, text: str) -> np.ndarray:
        v = np.zeros(self.dim, dtype=np.float64)
        tokens = self._tokens_of(text)
        if not tokens:
            out = np.zeros(self.dim, dtype=np.float32)
            out[0] = 1.0  # canonical vector for empty strings
            return out
        for tok in tokens:
            dims, contrib = self._token_contrib(tok)
            v[dims] += contrib
        norm = float(row_norms(v))
        if norm > 0:
            v /= norm
        return v.astype(np.float32)

    def _embed_batch(self, texts: list[str]) -> np.ndarray:  # hotpath: batched projection behind encode()
        """Embed distinct strings together, bit-for-bit like ``_embed_one``.

        Token contributions are collected document-major and scattered with
        one ``np.bincount`` over flattened ``(row, dim)`` cells.  bincount
        accumulates its input sequentially, so each output dimension sums
        its contributions in the same order as the scalar per-token loop —
        identical floating-point results, ~one NumPy call instead of one
        per token.
        """
        n = len(texts)
        dim_parts: list[np.ndarray] = []
        contrib_parts: list[np.ndarray] = []
        counts = np.zeros(n, dtype=np.int64)  # scatter entries per document
        empty_rows: list[int] = []
        for j, text in enumerate(texts):
            tokens = self._tokens_of(text)
            if not tokens:
                empty_rows.append(j)
                continue
            c = 0
            for tok in tokens:
                dims, contrib = self._token_contrib(tok)
                dim_parts.append(dims)
                contrib_parts.append(contrib)
                c += dims.size
            counts[j] = c
        if dim_parts:
            flat_dim = np.concatenate(dim_parts)
            flat_contrib = np.concatenate(contrib_parts)
            row_of = np.repeat(np.arange(n, dtype=np.int64), counts)
            M = np.bincount(
                row_of * self.dim + flat_dim,
                weights=flat_contrib,
                minlength=n * self.dim,
            ).reshape(n, self.dim)
        else:
            M = np.zeros((n, self.dim), dtype=np.float64)
        norms = row_norms(M)
        nz = norms > 0
        M[nz] /= norms[nz, None]
        out = M.astype(np.float32)
        for j in empty_rows:
            out[j] = 0.0
            out[j, 0] = 1.0  # canonical vector for empty strings
        return out

    # -- public API -----------------------------------------------------------

    def encode(self, texts) -> np.ndarray:
        """Encode a string or a sequence of strings.

        Returns a float32 array of shape ``(dim,)`` for a single string or
        ``(n, dim)`` for a sequence.  Rows are L2-normalized.  Repeated
        strings are embedded once (cache + in-batch deduplication).
        """
        if isinstance(texts, str):
            return self._encode_cached(texts).copy()
        texts = list(texts)
        for t in texts:
            if not isinstance(t, str):
                raise TypeError(f"expected str, got {type(t).__name__}")
        out = np.empty((len(texts), self.dim), dtype=np.float32)
        miss_pos: dict[str, int] = {}  # distinct uncached text -> batch row
        for i, t in enumerate(texts):
            hit = self._cache.get(t)
            if hit is not None:
                self._cache[t] = self._cache.pop(t)  # LRU: refresh recency
                out[i] = hit
            elif t not in miss_pos:
                miss_pos[t] = len(miss_pos)
        if miss_pos:
            M = self._embed_batch(list(miss_pos))
            for i, t in enumerate(texts):
                j = miss_pos.get(t)
                if j is not None:
                    out[i] = M[j]
            for t, j in miss_pos.items():
                self._cache_store(t, M[j].copy())
        return out

    def _encode_cached(self, text: str) -> np.ndarray:
        hit = self._cache.get(text)
        if hit is not None:
            self._cache[text] = self._cache.pop(text)  # LRU: refresh recency
            return hit
        v = self._embed_one(text)
        self._cache_store(text, v)
        return v

    def _cache_store(self, text: str, v: np.ndarray) -> None:
        if not self.cache_size:
            return
        if len(self._cache) >= self.cache_size:
            # evict the least recently used entry (hits re-append, so the
            # dict's insertion order is recency order)
            self._cache.pop(next(iter(self._cache)))
        self._cache[text] = v

    def partial_fit_idf(self, texts) -> "SentenceEmbedder":
        """Update the online IDF table with a batch of strings.

        Tokenization goes through the same memoized per-token machinery as
        :meth:`encode` (each distinct string is tokenized once per call).
        Invalidate the string cache afterwards, since weights changed.
        """
        token_memo: dict[str, list[int]] = {}
        docs = []
        for t in texts:
            ids = token_memo.get(t)
            if ids is None:
                ids = token_memo[t] = [
                    self._token_projection(tok)[2] for tok in self._tokens_of(t)
                ]
            docs.append(ids)
        self.idf_table.partial_fit(docs)
        self._idf_gen += 1  # cached token contributions are now stale
        self._cache.clear()
        return self

    def clear_cache(self) -> None:
        self._cache.clear()

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    # -- persistence -------------------------------------------------------------

    def config_dict(self) -> dict:
        """Serializable constructor arguments + IDF state."""
        return {
            "dim": self.dim,
            "n_hashes": self.n_hashes,
            "seed": self.seed,
            "use_idf": self.use_idf,
            "ngram_range": list(self.ngram_range),
            "cache_size": self.cache_size,
            "idf_state": self.idf_table.state_dict(),
        }

    @classmethod
    def from_config_dict(cls, cfg: dict) -> "SentenceEmbedder":
        emb = cls(
            cfg["dim"],
            n_hashes=cfg["n_hashes"],
            seed=cfg["seed"],
            use_idf=cfg["use_idf"],
            ngram_range=tuple(cfg["ngram_range"]),
            cache_size=cfg["cache_size"],
        )
        emb.idf_table = DocumentFrequencyTable.from_state_dict(cfg["idf_state"])
        return emb
