"""Hashed n-gram sentence embedder (SBERT stand-in).

Each token (word or character n-gram, see :mod:`repro.nlp.tokenizer`) is
mapped by ``n_hashes`` independent seeded hashes to ``(dimension, sign)``
pairs; the sentence vector is the signed sum of its tokens' contributions,
optionally IDF-weighted, then L2-normalized.  This is a sparse signed
random projection of the (virtually infinite) token space into
``dim``-dimensional space, so cosine similarity between two sentences
approximates their weighted token-overlap — the locality property k-NN and
random forests exploit downstream.

Determinism: hashing is FNV-1a with fixed seeds; the embedding of a string
depends only on (string, dim, n_hashes, seed, idf state).

Performance: job feature strings repeat heavily (batches of identical
jobs), so per-string vectors are memoized in an internal cache; encoding a
batch costs one dictionary lookup per repeated string.
"""

from __future__ import annotations

import numpy as np

from repro.nlp.hashing import hash_token
from repro.nlp.tfidf import DocumentFrequencyTable
from repro.nlp.tokenizer import feature_tokens

__all__ = ["SentenceEmbedder"]


class SentenceEmbedder:
    """Fixed-width deterministic sentence embedder.

    Parameters
    ----------
    dim:
        Output dimensionality.  Defaults to 384 to match the SBERT model
        the paper uses (`all-MiniLM-L6-v2`).
    n_hashes:
        Number of (dimension, sign) projections per token.  More hashes
        reduce collision noise at slightly higher cost.
    seed:
        Seed mixed into every hash; two embedders with different seeds are
        independent projections.
    use_idf:
        If True, token contributions are weighted by the online IDF table
        (fit via :meth:`partial_fit_idf` during the Training Workflow).
    ngram_range:
        Character n-gram sizes fed to the tokenizer.
    cache_size:
        Maximum number of distinct strings memoized (FIFO eviction).
    """

    def __init__(
        self,
        dim: int = 384,
        *,
        n_hashes: int = 2,
        seed: int = 17,
        use_idf: bool = False,
        ngram_range: tuple[int, int] = (3, 4),
        cache_size: int = 200_000,
    ) -> None:
        if dim <= 1:
            raise ValueError("dim must be > 1")
        if n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.dim = int(dim)
        self.n_hashes = int(n_hashes)
        self.seed = int(seed)
        self.use_idf = bool(use_idf)
        self.ngram_range = (int(ngram_range[0]), int(ngram_range[1]))
        self.cache_size = int(cache_size)
        self.idf_table = DocumentFrequencyTable()
        self._cache: dict[str, np.ndarray] = {}
        # token -> (dims, signs, token_id); memoizes hashing too
        self._token_cache: dict[str, tuple[np.ndarray, np.ndarray, int]] = {}

    # -- token machinery -------------------------------------------------------

    def _token_projection(self, token: str) -> tuple[np.ndarray, np.ndarray, int]:
        hit = self._token_cache.get(token)
        if hit is not None:
            return hit
        dims = np.empty(self.n_hashes, dtype=np.int64)
        signs = np.empty(self.n_hashes, dtype=np.float64)
        for k in range(self.n_hashes):
            h = hash_token(token, seed=self.seed * 1000 + k)
            dims[k] = h % self.dim
            signs[k] = 1.0 if (h >> 63) & 1 else -1.0
        token_id = hash_token(token, seed=self.seed)
        entry = (dims, signs, token_id)
        if len(self._token_cache) < 4 * self.cache_size + 1024:
            self._token_cache[token] = entry
        return entry

    def _embed_one(self, text: str) -> np.ndarray:
        v = np.zeros(self.dim, dtype=np.float64)
        tokens = feature_tokens(text, n_min=self.ngram_range[0], n_max=self.ngram_range[1])
        if not tokens:
            out = np.zeros(self.dim, dtype=np.float32)
            out[0] = 1.0  # canonical vector for empty strings
            return out
        for tok in tokens:
            dims, signs, tok_id = self._token_projection(tok)
            w = self.idf_table.idf(tok_id) if self.use_idf else 1.0
            v[dims] += signs * w
        norm = float(np.linalg.norm(v))
        if norm > 0:
            v /= norm
        return v.astype(np.float32)

    # -- public API -----------------------------------------------------------

    def encode(self, texts) -> np.ndarray:
        """Encode a string or a sequence of strings.

        Returns a float32 array of shape ``(dim,)`` for a single string or
        ``(n, dim)`` for a sequence.  Rows are L2-normalized.
        """
        if isinstance(texts, str):
            return self._encode_cached(texts).copy()
        texts = list(texts)
        out = np.empty((len(texts), self.dim), dtype=np.float32)
        for i, t in enumerate(texts):
            if not isinstance(t, str):
                raise TypeError(f"expected str, got {type(t).__name__}")
            out[i] = self._encode_cached(t)
        return out

    def _encode_cached(self, text: str) -> np.ndarray:
        hit = self._cache.get(text)
        if hit is not None:
            return hit
        v = self._embed_one(text)
        if self.cache_size:
            if len(self._cache) >= self.cache_size:
                # FIFO eviction: drop the oldest insertion
                self._cache.pop(next(iter(self._cache)))
            self._cache[text] = v
        return v

    def partial_fit_idf(self, texts) -> "SentenceEmbedder":
        """Update the online IDF table with a batch of strings.

        Invalidate the string cache afterwards, since weights changed.
        """
        docs = []
        for t in texts:
            ids = [
                self._token_projection(tok)[2]
                for tok in feature_tokens(
                    t, n_min=self.ngram_range[0], n_max=self.ngram_range[1]
                )
            ]
            docs.append(ids)
        self.idf_table.partial_fit(docs)
        self._cache.clear()
        return self

    def clear_cache(self) -> None:
        self._cache.clear()

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    # -- persistence -------------------------------------------------------------

    def config_dict(self) -> dict:
        """Serializable constructor arguments + IDF state."""
        return {
            "dim": self.dim,
            "n_hashes": self.n_hashes,
            "seed": self.seed,
            "use_idf": self.use_idf,
            "ngram_range": list(self.ngram_range),
            "cache_size": self.cache_size,
            "idf_state": self.idf_table.state_dict(),
        }

    @classmethod
    def from_config_dict(cls, cfg: dict) -> "SentenceEmbedder":
        emb = cls(
            cfg["dim"],
            n_hashes=cfg["n_hashes"],
            seed=cfg["seed"],
            use_idf=cfg["use_idf"],
            ngram_range=tuple(cfg["ngram_range"]),
            cache_size=cfg["cache_size"],
        )
        emb.idf_table = DocumentFrequencyTable.from_state_dict(cfg["idf_state"])
        return emb
