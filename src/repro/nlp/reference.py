"""Pre-vectorization scalar embedding paths (parity + benchmark oracles).

The batch ``SentenceEmbedder.encode`` introduced by the vectorization PR
scatters the whole batch's token contributions with one ``np.bincount``;
these functions preserve the historical shape of the computation — one
string at a time, one fancy-indexed add per token, no caching and no
deduplication.  ``tests/nlp/test_embedder_equivalence.py`` asserts the
batch path matches them bit-for-bit, and ``BENCH_mlcore.json`` reports
batch-encode speedups relative to :func:`encode_scalar`.
"""

from __future__ import annotations

import numpy as np

from repro.nlp.embedder import SentenceEmbedder, row_norms

__all__ = ["embed_one_scalar", "encode_scalar"]


def embed_one_scalar(embedder: SentenceEmbedder, text: str) -> np.ndarray:
    """One string through the per-token accumulation loop.

    Shares the embedder's token projections (dims/signs/id) and the
    canonical :func:`repro.nlp.embedder.row_norms` reduction, so the only
    difference from the batch path is the accumulation strategy — which
    the equivalence tests pin as bit-for-bit identical.
    """
    v = np.zeros(embedder.dim, dtype=np.float64)
    tokens = embedder._tokens_of(text)
    if not tokens:
        out = np.zeros(embedder.dim, dtype=np.float32)
        out[0] = 1.0  # canonical vector for empty strings
        return out
    for tok in tokens:
        dims, signs, tok_id = embedder._token_projection(tok)
        w = embedder.idf_table.idf(tok_id) if embedder.use_idf else 1.0
        v[dims] += signs * w
    norm = float(row_norms(v))
    if norm > 0:
        v /= norm
    return v.astype(np.float32)


def encode_scalar(embedder: SentenceEmbedder, texts) -> np.ndarray:
    """Per-string encode loop with no caching and no deduplication."""
    return np.stack([embed_one_scalar(embedder, t) for t in texts])
