"""Online document-frequency statistics for TF-IDF weighting.

The embedder can optionally weight tokens by inverse document frequency,
learned online: the Training Workflow calls :meth:`partial_fit` on each
retraining batch, so common boilerplate tokens ("sh", "run", the group
prefixes every user name shares) contribute less than discriminative ones.
Frequencies are tracked in hashed space so the table composes with the
hashing embedder and stays bounded in memory.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable

__all__ = ["DocumentFrequencyTable"]


class DocumentFrequencyTable:
    """Streaming document-frequency counter over hashed token ids."""

    def __init__(self) -> None:
        self._df: Counter[int] = Counter()
        self._n_docs = 0

    @property
    def n_docs(self) -> int:
        return self._n_docs

    def partial_fit(self, docs_token_ids: Iterable[Iterable[int]]) -> "DocumentFrequencyTable":
        """Update counts with one batch of documents (iterables of token ids)."""
        for ids in docs_token_ids:
            self._df.update(set(ids))
            self._n_docs += 1
        return self

    def document_frequency(self, token_id: int) -> int:
        return self._df.get(token_id, 0)

    def idf(self, token_id: int) -> float:
        """Smoothed IDF: ``log((1 + N) / (1 + df)) + 1``.

        Unseen tokens get the maximum weight; with an empty table every
        token weighs 1.0, so an unfitted table degrades to plain TF.
        """
        if self._n_docs == 0:
            return 1.0
        df = self._df.get(token_id, 0)
        return math.log((1.0 + self._n_docs) / (1.0 + df)) + 1.0

    def state_dict(self) -> dict:
        """Serializable snapshot (used by model persistence)."""
        return {"n_docs": self._n_docs, "df": dict(self._df)}

    @classmethod
    def from_state_dict(cls, state: dict) -> "DocumentFrequencyTable":
        t = cls()
        t._n_docs = int(state["n_docs"])
        t._df = Counter({int(k): int(v) for k, v in state["df"].items()})
        return t
