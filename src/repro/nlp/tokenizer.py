"""Tokenization for job feature strings.

Job metadata is code-like text ("run_cavity_les012.sh", "gcc-12.2/openmpi",
"riken-ra0042"), so the tokenizer combines word-level tokens (split on
non-alphanumerics, digits separated from letters) with boundary-marked
character n-grams that capture subword similarity between related job
names ("prod_run_01" vs "prod_run_02").
"""

from __future__ import annotations

import re

__all__ = ["word_tokens", "char_ngrams", "feature_tokens"]

_WORD_RE = re.compile(r"[a-z]+|\d+")


def word_tokens(text: str) -> list[str]:
    """Lowercased alphabetic and numeric runs of the input.

    >>> word_tokens("run_cavity_LES012.sh")
    ['run', 'cavity', 'les', '012', 'sh']
    """
    return _WORD_RE.findall(text.lower())


def char_ngrams(text: str, n_min: int = 3, n_max: int = 4) -> list[str]:
    """Boundary-marked character n-grams of the lowercased input.

    The string is wrapped in ``^`` / ``$`` markers so prefixes and suffixes
    hash differently from inner substrings (the fastText convention).

    >>> char_ngrams("ab", 3, 3)
    ['^ab', 'ab$']
    """
    if n_min < 1 or n_max < n_min:
        raise ValueError("need 1 <= n_min <= n_max")
    s = f"^{text.lower()}$"
    out: list[str] = []
    for n in range(n_min, n_max + 1):
        if len(s) < n:
            break
        out.extend(s[i : i + n] for i in range(len(s) - n + 1))
    return out


def feature_tokens(text: str, *, n_min: int = 3, n_max: int = 4) -> list[str]:  # hotpath: tokenizes every encoded string
    """Combined token stream used by the embedder.

    Word tokens are prefixed ``w:`` and n-grams ``g:`` so the two vocabularies
    never collide in the hash space; word tokens are emitted twice to give
    exact-token overlap more weight than substring overlap.
    """
    words = word_tokens(text)
    grams = char_ngrams(text, n_min, n_max)
    out = [f"w:{w}" for w in words]
    out += out  # double weight for exact word matches
    out.extend(f"g:{g}" for g in grams)
    return out
