"""NLP substrate: a deterministic substitute for Sentence-BERT.

The paper encodes the comma-separated job feature string with the SBERT
model ``all-MiniLM-L6-v2`` into a 384-dimensional float vector (§III-B).
Pre-trained transformer weights are not available offline, so this package
provides :class:`repro.nlp.SentenceEmbedder`: a hashed character-n-gram /
word-token embedding with signed random projection into a fixed-width
unit-norm vector.

What the MCBound pipeline needs from SBERT is not language understanding
but a *locality-preserving* fixed-width representation: two job feature
strings that are similar (same user, similar job-script names, same
environment) must land close in embedding space so that k-NN voting and
random-forest splits generalize across them.  Shared n-grams contributing
identical signed components give exactly that property — deterministically,
with no model download, and at a per-job cost comparable to the paper's
measured 2 ms encode time.
"""

from repro.nlp.tokenizer import word_tokens, char_ngrams, feature_tokens
from repro.nlp.hashing import fnv1a64, hash_token
from repro.nlp.tfidf import DocumentFrequencyTable
from repro.nlp.embedder import SentenceEmbedder

__all__ = [
    "word_tokens",
    "char_ngrams",
    "feature_tokens",
    "fnv1a64",
    "hash_token",
    "DocumentFrequencyTable",
    "SentenceEmbedder",
]
