"""Application object, routing and request/response types."""

from __future__ import annotations

import json
import re
import traceback
from dataclasses import dataclass, field
from typing import Callable
from urllib.parse import parse_qs, urlsplit

__all__ = ["Request", "Response", "HTTPError", "App"]

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One HTTP request as seen by a handler."""

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """Parse the body as JSON (raises :class:`HTTPError` 400 on garbage)."""
        if not self.body:
            raise HTTPError(400, "expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from exc

    def arg(self, name: str, default: str | None = None) -> str | None:
        """First query-string value of ``name``."""
        values = self.query.get(name)
        return values[0] if values else default


@dataclass
class Response:
    """Handler output."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def status_line(self) -> str:
        return f"{self.status} {_STATUS_TEXT.get(self.status, 'Unknown')}"

    def json(self):
        """Decode the body as JSON (test convenience)."""
        return json.loads(self.body.decode("utf-8"))

    @staticmethod
    def from_handler_result(result) -> "Response":
        """Coerce a handler's return value.

        Handlers may return a :class:`Response`, a JSON-serializable object
        (dict/list → 200 application/json), or a ``(obj, status)`` tuple.
        """
        if isinstance(result, Response):
            return result
        status = 200
        if isinstance(result, tuple) and len(result) == 2 and isinstance(result[1], int):
            result, status = result
        body = json.dumps(result).encode("utf-8")
        return Response(status, {"Content-Type": "application/json"}, body)


class HTTPError(Exception):
    """Raise from a handler to produce a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_PARAM_RE = re.compile(r"<(?:(int|float|str):)?([A-Za-z_][A-Za-z_0-9]*)>")

_CONVERTERS = {"int": int, "float": float, "str": str, None: str}


def _compile_rule(rule: str):
    """Compile ``/models/<int:version>`` into a regex + converters."""
    if not rule.startswith("/"):
        raise ValueError(f"route rule must start with '/': {rule!r}")
    pattern = ""
    converters: dict[str, Callable] = {}
    pos = 0
    for m in _PARAM_RE.finditer(rule):
        pattern += re.escape(rule[pos : m.start()])
        kind, name = m.group(1), m.group(2)
        if name in converters:
            raise ValueError(f"duplicate path parameter {name!r} in {rule!r}")
        converters[name] = _CONVERTERS[kind]
        segment = r"[^/]+" if kind != "float" else r"[^/]+"
        pattern += f"(?P<{name}>{segment})"
        pos = m.end()
    pattern += re.escape(rule[pos:])
    return re.compile(f"^{pattern}$"), converters


class App:
    """Route registry and request dispatcher."""

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self._routes: list[tuple[re.Pattern, dict, dict[str, Callable]]] = []
        self._error_handlers: dict[int, Callable] = {}

    def route(self, rule: str, methods: tuple[str, ...] = ("GET",)):
        """Decorator registering a handler for ``rule`` and ``methods``.

        The handler receives ``(request, **path_params)``.
        """
        regex, converters = _compile_rule(rule)
        methods = tuple(m.upper() for m in methods)

        def decorator(fn: Callable) -> Callable:
            for pattern, _, table in self._routes:
                if pattern.pattern == regex.pattern:
                    for m in methods:
                        if m in table:
                            raise ValueError(f"duplicate route {m} {rule}")
                    table.update({m: fn for m in methods})
                    return fn
            self._routes.append((regex, converters, {m: fn for m in methods}))
            return fn

        return decorator

    def error_handler(self, status: int):
        """Decorator registering a custom renderer for an error status."""

        def decorator(fn: Callable) -> Callable:
            self._error_handlers[status] = fn
            return fn

        return decorator

    # -- dispatch ------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route and execute one request, converting errors to responses."""
        try:
            return self._dispatch(request)
        except HTTPError as exc:
            return self._render_error(exc.status, exc.message, request)
        except Exception:  # noqa: BLE001 - boundary: never crash the server
            detail = traceback.format_exc(limit=5)
            return self._render_error(500, f"internal error:\n{detail}", request)

    def _dispatch(self, request: Request) -> Response:
        path_matched = False
        for regex, converters, table in self._routes:
            m = regex.match(request.path)
            if not m:
                continue
            path_matched = True
            handler = table.get(request.method.upper())
            if handler is None:
                continue
            kwargs = {}
            for name, conv in converters.items():
                try:
                    kwargs[name] = conv(m.group(name))
                except ValueError as exc:
                    raise HTTPError(404, f"bad path parameter {name!r}") from exc
            return Response.from_handler_result(handler(request, **kwargs))
        if path_matched:
            raise HTTPError(405, f"method {request.method} not allowed on {request.path}")
        raise HTTPError(404, f"no route for {request.path}")

    def _render_error(self, status: int, message: str, request: Request) -> Response:
        handler = self._error_handlers.get(status)
        if handler is not None:
            return Response.from_handler_result(handler(request, message))
        body = json.dumps({"error": message, "status": status}).encode("utf-8")
        return Response(status, {"Content-Type": "application/json"}, body)

    # -- convenience --------------------------------------------------------------

    @staticmethod
    def build_request(
        method: str,
        url: str,
        *,
        headers: dict[str, str] | None = None,
        body: bytes | None = None,
        json_body=None,
    ) -> Request:
        """Construct a :class:`Request` from a URL (used by client & server)."""
        parts = urlsplit(url)
        if json_body is not None:
            if body is not None:
                raise ValueError("pass either body or json_body, not both")
            body = json.dumps(json_body).encode("utf-8")
            headers = {**(headers or {}), "Content-Type": "application/json"}
        return Request(
            method=method.upper(),
            path=parts.path or "/",
            query=parse_qs(parts.query),
            headers=headers or {},
            body=body or b"",
        )
