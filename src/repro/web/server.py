"""HTTP server adapter on the standard library.

Runs an :class:`repro.web.App` behind
:class:`http.server.ThreadingHTTPServer`.  :func:`serve` returns a
:class:`ServerHandle` running on a daemon thread, so tests and the deploy
script can start, probe and stop a real socket server.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.web.app import App

__all__ = ["serve", "ServerHandle"]


def _make_handler(app: App):
    class Handler(BaseHTTPRequestHandler):
        # silence per-request stderr logging
        def log_message(self, fmt, *args):  # noqa: D102
            pass

        def _run(self) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            request = App.build_request(
                self.command,
                self.path,
                headers={k: v for k, v in self.headers.items()},
                body=body,
            )
            response = app.handle(request)
            self.send_response(response.status)
            payload = response.body
            headers = dict(response.headers)
            headers.setdefault("Content-Type", "application/json")
            headers["Content-Length"] = str(len(payload))
            for k, v in headers.items():
                self.send_header(k, v)
            self.end_headers()
            if self.command != "HEAD":
                self.wfile.write(payload)

        do_GET = do_POST = do_PUT = do_DELETE = do_HEAD = _run

    return Handler


class ServerHandle:
    """A running server: address, and a stop switch."""

    def __init__(self, server: ThreadingHTTPServer, thread: threading.Thread) -> None:
        self._server = server
        self._thread = thread

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._server.shutdown()
        self._thread.join(timeout=10)
        self._server.server_close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(app: App, host: str = "127.0.0.1", port: int = 0) -> ServerHandle:
    """Start ``app`` on a background thread; ``port=0`` picks a free port."""
    server = ThreadingHTTPServer((host, port), _make_handler(app))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return ServerHandle(server, thread)
