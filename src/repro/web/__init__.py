"""Micro web framework (flask substitute).

The paper deploys MCBound as a flask backend exposing the framework's
operations over HTTP (§III-E).  flask is not available offline, so this
package provides the minimal surface the deployment needs, implemented on
the standard library:

- :class:`repro.web.App` — route registration with path parameters
  (``/models/<int:version>``), per-method dispatch, JSON request/response
  handling and error handlers.
- :class:`repro.web.TestClient` — in-process request driver for tests
  (flask's ``test_client`` equivalent).
- :func:`repro.web.serve` — a real HTTP server on
  :class:`http.server.ThreadingHTTPServer` for live deployment.
"""

from repro.web.app import App, Request, Response, HTTPError
from repro.web.client import TestClient
from repro.web.server import serve, ServerHandle

__all__ = [
    "App",
    "Request",
    "Response",
    "HTTPError",
    "TestClient",
    "serve",
    "ServerHandle",
]
