"""In-process test client (flask's ``test_client`` counterpart)."""

from __future__ import annotations

from repro.web.app import App, Response

__all__ = ["TestClient"]


class TestClient:
    """Drive an :class:`repro.web.App` without a socket."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(self, app: App) -> None:
        self.app = app

    def request(self, method: str, url: str, **kwargs) -> Response:
        return self.app.handle(App.build_request(method, url, **kwargs))

    def get(self, url: str, **kwargs) -> Response:
        return self.request("GET", url, **kwargs)

    def post(self, url: str, **kwargs) -> Response:
        return self.request("POST", url, **kwargs)

    def put(self, url: str, **kwargs) -> Response:
        return self.request("PUT", url, **kwargs)

    def delete(self, url: str, **kwargs) -> Response:
        return self.request("DELETE", url, **kwargs)
