"""Job dispatching driven by MCBound predictions (§VI).

The paper closes with: "We are currently developing job dispatching
strategies that can benefit from the predictions of MCBound, aiming to
optimize system throughput and energy efficiency."  This subpackage
implements that consumer: an event-driven cluster simulator
(:mod:`repro.dispatch.simulator`) whose dispatcher applies two
prediction-guided policies:

- **frequency selection** (§V-C.d): run predicted compute-bound jobs in
  boost mode (−10% duration) and predicted memory-bound jobs in normal
  mode (−15% power vs boost);
- **co-scheduling** (§I, refs [8, 9]): place one memory-bound and one
  compute-bound job on the same nodes, trading a small per-job slowdown
  for higher throughput.

Policies can consume the user's own choices, MCBound's predictions, or
the ground-truth labels (the oracle), so the value of prediction quality
is directly measurable.
"""

from repro.dispatch.cluster import Cluster
from repro.dispatch.policies import FrequencyPolicy, CoschedulePolicy
from repro.dispatch.metrics import DispatchMetrics
from repro.dispatch.simulator import DispatchSimulator, simulate_dispatch

__all__ = [
    "Cluster",
    "FrequencyPolicy",
    "CoschedulePolicy",
    "DispatchMetrics",
    "DispatchSimulator",
    "simulate_dispatch",
]
