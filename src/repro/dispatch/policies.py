"""Prediction-guided dispatch policies.

Effect sizes follow the paper's §V-C.d citations (Kodama et al.):
boost mode cuts a compute-bound job's duration by 10%; normal mode cuts a
memory-bound job's power by 15% relative to boost.  Co-scheduling effect
sizes follow the co-scheduling literature the paper cites ([8, 9]): a
complementary pair shares nodes with a small mutual slowdown, while a
non-complementary pair contends badly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fugaku.system import BOOST_MODE_GHZ, NORMAL_MODE_GHZ
from repro.roofline.characterize import COMPUTE_BOUND, MEMORY_BOUND

__all__ = ["FrequencyPolicy", "CoschedulePolicy", "POLICY_SOURCES"]

#: where a policy takes its labels from
POLICY_SOURCES = ("user", "mcbound", "oracle")

#: §V-C.d effect sizes
DURATION_CUT_BOOST = 0.10
POWER_CUT_NORMAL = 0.15

#: co-scheduling effects: complementary pairs slow each other a little;
#: pairing two same-class jobs contends on the bottleneck resource
COMPLEMENTARY_SLOWDOWN = 1.08
CONTENTION_SLOWDOWN = 1.45


@dataclass(frozen=True)
class FrequencyPolicy:
    """Choose each job's frequency from a label source.

    ``source="user"`` keeps the submitted frequency (the status quo the
    paper's §IV analysis criticizes); ``"mcbound"``/``"oracle"`` set boost
    for (predicted/true) compute-bound jobs and normal for memory-bound.
    """

    source: str = "user"

    def __post_init__(self) -> None:
        if self.source not in POLICY_SOURCES:
            raise ValueError(f"unknown policy source {self.source!r}")

    def frequency(self, submitted_ghz: float, label: int | None) -> float:
        if self.source == "user" or label is None:
            return submitted_ghz
        return BOOST_MODE_GHZ if label == COMPUTE_BOUND else NORMAL_MODE_GHZ

    def effective_duration(
        self, duration: float, submitted_ghz: float, chosen_ghz: float, true_label: int
    ) -> float:
        """Duration after a frequency *change* (depends on the TRUE class).

        The trace records the duration at the submitted frequency, so only
        the delta between submitted and chosen frequency is applied: moving
        a compute-bound job into boost mode cuts 10%, moving it out adds
        the inverse; memory-bound durations are frequency-insensitive.
        """
        if true_label != COMPUTE_BOUND:
            return duration
        was_boost = submitted_ghz >= BOOST_MODE_GHZ
        is_boost = chosen_ghz >= BOOST_MODE_GHZ
        if is_boost and not was_boost:
            return duration * (1.0 - DURATION_CUT_BOOST)
        if was_boost and not is_boost:
            return duration / (1.0 - DURATION_CUT_BOOST)
        return duration

    def effective_power(
        self, power_w: float, submitted_ghz: float, chosen_ghz: float, true_label: int
    ) -> float:
        """Power after a frequency *change* (depends on the TRUE class).

        The recorded power is at the submitted frequency; moving a
        memory-bound job from boost to normal mode cuts 15%, the reverse
        adds it back.  Compute-bound power is left as recorded (the paper
        quantifies only the two §V-C.d effects).
        """
        if true_label != MEMORY_BOUND:
            return power_w
        was_boost = submitted_ghz >= BOOST_MODE_GHZ
        is_boost = chosen_ghz >= BOOST_MODE_GHZ
        if was_boost and not is_boost:
            return power_w * (1.0 - POWER_CUT_NORMAL)
        if is_boost and not was_boost:
            return power_w / (1.0 - POWER_CUT_NORMAL)
        return power_w


@dataclass(frozen=True)
class CoschedulePolicy:
    """Pair jobs of (predicted) opposite classes onto shared nodes.

    ``enabled=False`` reproduces plain exclusive-node dispatch.  When
    enabled, the dispatcher pairs a waiting memory-bound job with a
    compute-bound one of the same node request; the pair runs on one node
    allocation.  The realized slowdown depends on the TRUE classes:
    complementary pairs pay :data:`COMPLEMENTARY_SLOWDOWN`, accidental
    same-class pairs (mispredictions) pay :data:`CONTENTION_SLOWDOWN`.
    """

    enabled: bool = False
    source: str = "mcbound"

    def __post_init__(self) -> None:
        if self.source not in POLICY_SOURCES:
            raise ValueError(f"unknown policy source {self.source!r}")

    @staticmethod
    def pair_slowdown(true_a: int, true_b: int) -> float:
        if {true_a, true_b} == {MEMORY_BOUND, COMPUTE_BOUND}:
            return COMPLEMENTARY_SLOWDOWN
        return CONTENTION_SLOWDOWN
