"""Event-driven dispatch simulation.

A classic discrete-event loop over (arrival, completion) events with a
FCFS queue and first-fit relaxation (jobs behind a blocked head may start
if they fit — EASY-backfill's effect without reservations, adequate for
policy comparisons).  The dispatcher consults a
:class:`~repro.dispatch.policies.FrequencyPolicy` for each job's
frequency and, when co-scheduling is enabled, pairs queued jobs of
(predicted) opposite classes with identical node requests onto shared
allocations.

Inputs are a :class:`~repro.fugaku.trace.JobTrace` slice, the TRUE labels
(drive the physics) and optionally PREDICTED labels (drive the policy —
the distinction is where a classifier's errors show up as contention
pairs or missed savings).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.dispatch.cluster import Cluster
from repro.dispatch.metrics import DispatchMetrics
from repro.dispatch.policies import CoschedulePolicy, FrequencyPolicy
from repro.fugaku.trace import JobTrace
from repro.roofline.characterize import COMPUTE_BOUND, MEMORY_BOUND

__all__ = ["DispatchSimulator", "simulate_dispatch"]


@dataclass
class _Job:
    idx: int
    submit: float
    nodes: int
    duration: float
    power: float
    freq_submitted: float
    true_label: int
    policy_label: int | None
    start: float = -1.0


class DispatchSimulator:
    """Replay a trace slice under a dispatch policy pair."""

    def __init__(
        self,
        *,
        n_nodes: int,
        frequency_policy: FrequencyPolicy | None = None,
        coschedule_policy: CoschedulePolicy | None = None,
    ) -> None:
        self.cluster = Cluster(n_nodes)
        self.freq_policy = frequency_policy or FrequencyPolicy()
        self.cosched = coschedule_policy or CoschedulePolicy()

    # -- public API ---------------------------------------------------------------

    def run(
        self,
        trace: JobTrace,
        true_labels: np.ndarray,
        predicted_labels: np.ndarray | None = None,
    ) -> DispatchMetrics:
        """Simulate the dispatch of every job in the trace slice."""
        n = len(trace)
        true_labels = np.asarray(true_labels)
        if true_labels.shape[0] != n:
            raise ValueError("labels length does not match trace")
        if predicted_labels is not None:
            predicted_labels = np.asarray(predicted_labels)
            if predicted_labels.shape[0] != n:
                raise ValueError("predicted labels length mismatch")

        jobs = self._build_jobs(trace, true_labels, predicted_labels)
        return self._event_loop(jobs)

    def _policy_label(self, source: str, true: int, predicted) -> int | None:
        if source == "user":
            return None
        if source == "oracle":
            return int(true)
        return None if predicted is None else int(predicted)

    def _build_jobs(self, trace, true_labels, predicted_labels) -> list[_Job]:
        jobs = []
        max_nodes = self.cluster.n_nodes
        for i in range(len(trace)):
            pred = None if predicted_labels is None else predicted_labels[i]
            jobs.append(
                _Job(
                    idx=i,
                    submit=float(trace["submit_time"][i]),
                    nodes=min(int(trace["nodes_alloc"][i]), max_nodes),
                    duration=float(trace["duration"][i]),
                    power=float(trace["power_avg_w"][i]),
                    freq_submitted=float(trace["freq_req_ghz"][i]),
                    true_label=int(true_labels[i]),
                    policy_label=self._policy_label(
                        self.freq_policy.source, true_labels[i], pred
                    ),
                )
            )
        if self.cosched.enabled:
            for i, job in enumerate(jobs):
                pred = None if predicted_labels is None else predicted_labels[i]
                job.cosched_label = self._policy_label(
                    self.cosched.source, job.true_label, pred
                )
        return sorted(jobs, key=lambda j: j.submit)

    # -- the event loop ------------------------------------------------------------

    def _job_outcome(self, job: _Job, slowdown: float = 1.0):
        """Realized (duration, power) under the frequency policy + pairing."""
        freq = self.freq_policy.frequency(job.freq_submitted, job.policy_label)
        duration = self.freq_policy.effective_duration(
            job.duration, job.freq_submitted, freq, job.true_label
        ) * slowdown
        power = self.freq_policy.effective_power(
            job.power, job.freq_submitted, freq, job.true_label
        )
        return duration, power

    def _event_loop(self, jobs: list[_Job]) -> DispatchMetrics:
        events: list[tuple[float, int, str, object]] = []
        seq = 0
        for job in jobs:
            heapq.heappush(events, (job.submit, seq, "arrive", job))
            seq += 1

        queue: list[_Job] = []
        energy_j = 0.0
        node_seconds = 0.0
        waits: list[float] = []
        completions = 0
        last_completion = 0.0
        first_arrival = jobs[0].submit if jobs else 0.0
        n_coscheduled = 0
        n_contention = 0
        alloc_counter = 0

        def try_start(now: float) -> None:
            nonlocal alloc_counter, energy_j, node_seconds, n_coscheduled, n_contention, seq
            progress = True
            while progress:
                progress = False
                for i, job in enumerate(list(queue)):
                    partner = None
                    if self.cosched.enabled:
                        partner = self._find_partner(queue, job)
                    if partner is not None:
                        nodes = job.nodes
                        if not self.cluster.can_allocate(nodes):
                            continue
                        queue.remove(job)
                        queue.remove(partner)
                        alloc_counter += 1
                        self.cluster.allocate(alloc_counter, nodes)
                        slowdown = self.cosched.pair_slowdown(
                            job.true_label, partner.true_label
                        )
                        if slowdown > 1.2:
                            n_contention += 1
                        n_coscheduled += 2
                        ends = []
                        for member in (job, partner):
                            member.start = now
                            waits.append(now - member.submit)
                            dur, power = self._job_outcome(member, slowdown)
                            energy_j += power * dur
                            ends.append((dur, member))
                        pair_end = max(d for d, _ in ends)
                        node_seconds += nodes * pair_end
                        heapq.heappush(
                            events,
                            (now + pair_end, seq, "complete", (alloc_counter, 2)),
                        )
                        seq += 1
                        progress = True
                        break
                    if self.cluster.can_allocate(job.nodes):
                        queue.remove(job)
                        alloc_counter += 1
                        self.cluster.allocate(alloc_counter, job.nodes)
                        job.start = now
                        waits.append(now - job.submit)
                        dur, power = self._job_outcome(job)
                        energy_j += power * dur
                        node_seconds += job.nodes * dur
                        heapq.heappush(
                            events, (now + dur, seq, "complete", (alloc_counter, 1))
                        )
                        seq += 1
                        progress = True
                        break

        while events:
            now, _, kind, payload = heapq.heappop(events)
            batch = [(kind, payload)]
            # drain simultaneous events before dispatching, so jobs arriving
            # together can be considered for pairing with each other
            while events and events[0][0] == now:
                _, _, k2, p2 = heapq.heappop(events)
                batch.append((k2, p2))
            for kind, payload in batch:
                if kind == "arrive":
                    queue.append(payload)
                else:
                    alloc_id, members = payload
                    self.cluster.release(alloc_id)
                    completions += members
                    last_completion = now
            try_start(now)

        if queue:  # pragma: no cover - jobs larger than the cluster
            raise RuntimeError(f"{len(queue)} jobs could never be scheduled")

        return DispatchMetrics(
            n_jobs=completions,
            makespan_s=max(0.0, last_completion - first_arrival),
            mean_wait_s=float(np.mean(waits)) if waits else 0.0,
            total_energy_gj=energy_j / 1e9,
            total_node_seconds=node_seconds,
            n_coscheduled=n_coscheduled,
            n_contention_pairs=n_contention,
        )

    def _find_partner(self, queue: list[_Job], job: _Job) -> "_Job | None":
        """First queued job with the opposite (policy) class and same nodes."""
        mine = getattr(job, "cosched_label", None)
        if mine is None:
            return None
        want = COMPUTE_BOUND if mine == MEMORY_BOUND else MEMORY_BOUND
        for other in queue:
            if other is job:
                continue
            if getattr(other, "cosched_label", None) == want and other.nodes == job.nodes:
                return other
        return None


def simulate_dispatch(
    trace: JobTrace,
    true_labels: np.ndarray,
    *,
    n_nodes: int,
    frequency_source: str = "user",
    coschedule: bool = False,
    predicted_labels: np.ndarray | None = None,
) -> DispatchMetrics:
    """One-call wrapper used by the example and the extension bench."""
    sim = DispatchSimulator(
        n_nodes=n_nodes,
        frequency_policy=FrequencyPolicy(source=frequency_source),
        coschedule_policy=CoschedulePolicy(
            enabled=coschedule,
            source="oracle" if frequency_source == "oracle" else "mcbound",
        ),
    )
    return sim.run(trace, true_labels, predicted_labels)
