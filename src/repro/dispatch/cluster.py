"""Node pool accounting for the dispatch simulator.

Nodes are fungible; the cluster tracks how many are free and which jobs
occupy how many.  A co-scheduled pair shares one node allocation (the
whole point of pairing memory- with compute-bound jobs: they saturate
different resources of the same node).
"""

from __future__ import annotations

__all__ = ["Cluster"]


class Cluster:
    """A pool of identical nodes with simple counting allocation."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.n_nodes = int(n_nodes)
        self._free = int(n_nodes)
        self._allocations: dict[int, int] = {}  # allocation id -> nodes

    @property
    def free_nodes(self) -> int:
        return self._free

    @property
    def used_nodes(self) -> int:
        return self.n_nodes - self._free

    def can_allocate(self, nodes: int) -> bool:
        return 0 < nodes <= self._free

    def allocate(self, alloc_id: int, nodes: int) -> None:
        """Reserve ``nodes`` under ``alloc_id`` (must fit)."""
        if nodes < 1:
            raise ValueError("allocation must use at least one node")
        if nodes > self._free:
            raise RuntimeError(
                f"allocation of {nodes} nodes exceeds {self._free} free"
            )
        if alloc_id in self._allocations:
            raise RuntimeError(f"allocation id {alloc_id} already active")
        self._allocations[alloc_id] = nodes
        self._free -= nodes

    def release(self, alloc_id: int) -> int:
        """Free an allocation; returns the node count released."""
        nodes = self._allocations.pop(alloc_id, None)
        if nodes is None:
            raise KeyError(f"no active allocation {alloc_id}")
        self._free += nodes
        return nodes

    @property
    def active_allocations(self) -> int:
        return len(self._allocations)
