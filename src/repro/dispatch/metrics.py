"""Outcome metrics of a dispatch simulation."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DispatchMetrics"]


@dataclass(frozen=True)
class DispatchMetrics:
    """What a dispatch run produced.

    Attributes
    ----------
    n_jobs: jobs completed.
    makespan_s: time from first arrival to last completion.
    mean_wait_s: mean queue wait (start - submit).
    total_energy_gj: Σ power × duration over all jobs, in GJ.
    total_node_seconds: Σ nodes × occupancy duration (allocated node time).
    n_coscheduled: jobs that ran in a shared-node pair.
    n_contention_pairs: pairs whose true classes were NOT complementary.
    """

    n_jobs: int
    makespan_s: float
    mean_wait_s: float
    total_energy_gj: float
    total_node_seconds: float
    n_coscheduled: int
    n_contention_pairs: int

    @property
    def node_hours(self) -> float:
        return self.total_node_seconds / 3600.0

    def summary_row(self, name: str) -> list:
        return [
            name,
            self.n_jobs,
            f"{self.makespan_s / 3600:.1f} h",
            f"{self.mean_wait_s:.0f} s",
            f"{self.total_energy_gj:.3f} GJ",
            f"{self.node_hours:,.0f} nh",
            self.n_coscheduled,
        ]
