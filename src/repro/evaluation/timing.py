"""Wall-clock measurement helpers."""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Timer", "time_call"]


class Timer:
    """Context manager recording elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._t0: float | None = None

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0


def time_call(fn: Callable, *args, **kwargs):
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0
