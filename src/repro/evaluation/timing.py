"""Wall-clock and peak-memory measurement helpers."""

from __future__ import annotations

import time
import tracemalloc
from typing import Callable

__all__ = ["Timer", "time_call", "peak_memory_bytes"]


class Timer:
    """Context manager recording elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._t0: float | None = None

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0


def time_call(fn: Callable, *args, **kwargs):
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def peak_memory_bytes(fn: Callable, *args, **kwargs):
    """Call ``fn`` and return ``(result, peak_additional_bytes)``.

    Peak is tracemalloc's high-water mark of python allocations made
    during the call — the number the capacity tier reasons about: for a
    streaming pipeline it must be bounded by the batch size, independent
    of how many rows flow through.  Tracing slows the call down, so use
    this for assertions about memory, never for throughput numbers.
    """
    tracemalloc.start()
    try:
        result = fn(*args, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak
