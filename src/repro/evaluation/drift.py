"""Workload-drift detection and adaptive retraining.

The paper retrains on a fixed cadence (every β days) and shows that stale
models lose accuracy (Fig. 6).  A natural refinement is to retrain *when
the workload has actually changed*: this module measures drift between the
training window and the incoming submissions with the Population Stability
Index (PSI) over random 1-D projections of the job embeddings, and
packages the decision rule as an
:class:`AdaptiveRetrainingPolicy` consumed by
:meth:`repro.evaluation.online.OnlineEvaluator.evaluate_adaptive`.

PSI over histograms: ``Σ (p_i - q_i) · ln(p_i / q_i)``, with the usual
reading that <0.1 is stable, 0.1–0.25 moderate drift, >0.25 strong drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "population_stability_index",
    "EmbeddingDriftDetector",
    "AdaptiveRetrainingPolicy",
]


def population_stability_index(expected, observed, *, epsilon: float = 1e-4) -> float:
    """PSI between two histograms (will be normalized; zero-safe)."""
    e = np.asarray(expected, dtype=np.float64)
    o = np.asarray(observed, dtype=np.float64)
    if e.shape != o.shape or e.ndim != 1:
        raise ValueError("expected and observed must be equal-length 1-D")
    if e.sum() <= 0 or o.sum() <= 0:
        raise ValueError("histograms must have positive mass")
    p = np.maximum(e / e.sum(), epsilon)
    q = np.maximum(o / o.sum(), epsilon)
    p /= p.sum()
    q /= q.sum()
    return float(np.sum((p - q) * np.log(p / q)))


class EmbeddingDriftDetector:
    """PSI drift score between a reference embedding population and a batch.

    The reference matrix is projected onto ``n_projections`` fixed random
    unit directions; per-direction decile edges are frozen.  A new batch's
    projections are binned against those edges and the mean PSI across
    directions is the drift score.

    Parameters
    ----------
    reference:
        ``(n, d)`` embedding matrix of the current training window.
    n_projections / n_bins / seed:
        Projection count, histogram resolution, and the fixed direction
        seed (fixed so scores are comparable across days).
    """

    def __init__(
        self,
        reference: np.ndarray,
        *,
        n_projections: int = 8,
        n_bins: int = 10,
        seed: int = 7,
    ) -> None:
        reference = np.asarray(reference, dtype=np.float64)
        if reference.ndim != 2 or reference.shape[0] < n_bins:
            raise ValueError("reference needs at least n_bins rows")
        if n_projections < 1 or n_bins < 2:
            raise ValueError("need n_projections >= 1 and n_bins >= 2")
        rng = np.random.default_rng(seed)
        d = reference.shape[1]
        directions = rng.normal(size=(d, n_projections))
        directions /= np.linalg.norm(directions, axis=0, keepdims=True)
        self._directions = directions
        proj = reference @ directions  # (n, k)
        qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        self._edges = [np.quantile(proj[:, j], qs) for j in range(n_projections)]
        self._expected = []
        for j in range(n_projections):
            codes = np.searchsorted(self._edges[j], proj[:, j])
            self._expected.append(np.bincount(codes, minlength=n_bins))
        self.n_bins = n_bins

    def score(self, batch: np.ndarray) -> float:
        """Mean PSI of a new batch against the reference."""
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim != 2 or batch.shape[1] != self._directions.shape[0]:
            raise ValueError("batch dimensionality mismatch")
        if batch.shape[0] == 0:
            return 0.0
        proj = batch @ self._directions
        scores = []
        for j in range(self._directions.shape[1]):
            codes = np.searchsorted(self._edges[j], proj[:, j])
            observed = np.bincount(codes, minlength=self.n_bins)
            scores.append(population_stability_index(self._expected[j], observed))
        return float(np.mean(scores))


@dataclass(frozen=True)
class AdaptiveRetrainingPolicy:
    """Retrain when embedding drift exceeds a threshold, or a deadline hits.

    ``psi_threshold`` is the drift trigger; ``max_days_between`` caps model
    staleness even under a perfectly stable workload (the paper's argument
    against very large β); ``min_batch`` avoids scoring days that are too
    small to histogram meaningfully (e.g. the maintenance shutdown).
    """

    psi_threshold: float = 0.15
    max_days_between: float = 10.0
    min_batch: int = 20

    def __post_init__(self) -> None:
        if self.psi_threshold <= 0:
            raise ValueError("psi_threshold must be positive")
        if self.max_days_between < 1:
            raise ValueError("max_days_between must be >= 1 day")

    def should_retrain(
        self, drift_score: float | None, days_since_training: float, batch_size: int
    ) -> bool:
        if days_since_training >= self.max_days_between:
            return True
        if drift_score is None or batch_size < self.min_batch:
            return False
        return drift_score > self.psi_threshold
