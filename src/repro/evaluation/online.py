"""The online prediction algorithm evaluation loop (§V-B).

Models are trained on sliding windows of the recent past and tested
day-by-day on the following month: on each test day ``d``

- if ``(d - test_start) % beta == 0`` the model is retrained on the jobs
  submitted in the last α days (optionally a θ-subsample of them, sampled
  at random or by most recent completion — the §V-C.c experiment);
- the jobs submitted on day ``d`` are predicted with the current model.

Macro-F1 is computed once, at the end of the test period, over all
predictions — matching the paper's ``evaluate`` script.

Characterizations and feature encodings are computed once for the whole
trace up front and reused by every retraining trigger; the paper's Fugaku
implementation does exactly this caching across workflow triggers (§V-A),
which is also why encoding time is excluded from training time but
included in inference time (its §V-B accounting — we follow it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.classification_model import ClassificationModel
from repro.core.feature_encoder import FeatureEncoder
from repro.core.job_characterizer import JobCharacterizer
from repro.fugaku.trace import JobTrace
from repro.fugaku.workload import DAY_SECONDS, FEB_1, MAR_1
from repro.mlcore.baseline import LookupTableBaseline
from repro.mlcore.metrics import accuracy_score, f1_macro

__all__ = ["OnlineRunResult", "OnlineEvaluator"]


@dataclass(frozen=True)
class OnlineRunResult:
    """Outcome of one online evaluation run."""

    model_name: str
    alpha: object  # days, or ("plus", alpha_init)
    beta: float
    theta: int | None
    sampling: str
    seed: int | None
    f1: float
    accuracy: float
    n_test_jobs: int
    n_retrainings: int
    train_times: tuple[float, ...]
    predict_times: tuple[float, ...]
    encode_time_per_job: float
    train_sizes: tuple[int, ...]
    per_day_f1: tuple[float, ...] = field(default=())

    @property
    def mean_train_time(self) -> float:
        """Average per-trigger training time (Fig. 7)."""
        return float(np.mean(self.train_times)) if self.train_times else 0.0

    @property
    def mean_inference_time_per_job(self) -> float:
        """Average per-job inference time including encoding (Fig. 8)."""
        n = self.n_test_jobs
        predict = sum(self.predict_times) / n if n else 0.0
        return predict + self.encode_time_per_job


class OnlineEvaluator:
    """Precomputed trace state + the day-by-day evaluation loop.

    Parameters
    ----------
    trace:
        The full job trace (training history + test period).
    encoder / characterizer:
        Pipeline components; defaults construct the paper's configuration.
    test_start_day / test_end_day:
        Test window in day indices; defaults to February 2024 (days 62-91
        of the trace), the paper's test month.
    """

    def __init__(
        self,
        trace: JobTrace,
        *,
        encoder: FeatureEncoder | None = None,
        characterizer: JobCharacterizer | None = None,
        test_start_day: int = FEB_1,
        test_end_day: int = MAR_1,
    ) -> None:
        if test_end_day <= test_start_day:
            raise ValueError("empty test window")
        self.trace = trace
        self.encoder = encoder or FeatureEncoder()
        self.characterizer = characterizer or JobCharacterizer()
        self.test_start_day = int(test_start_day)
        self.test_end_day = int(test_end_day)

        self.submit_day = trace["submit_time"] / DAY_SECONDS
        self.end_time = trace["end_time"]
        self.y = self.characterizer.labels_from_trace(trace)

        strings = self.encoder.feature_strings_from_trace(trace)
        t0 = time.perf_counter()
        self.X = self.encoder.encode_trace(trace)
        encode_wall = time.perf_counter() - t0
        #: mean per-job encoding cost over the whole trace (cache included),
        #: the component dominating Fig. 8's inference time.
        self.encode_time_per_job = encode_wall / max(1, len(trace))
        self._strings = strings

        order = np.argsort(self.submit_day, kind="stable")
        if not np.array_equal(order, np.arange(len(trace))):
            raise ValueError("trace must be sorted by submit_time")

        # per-test-day index slices
        self._day_indices: dict[int, np.ndarray] = {}
        for d in range(self.test_start_day, self.test_end_day):
            self._day_indices[d] = np.flatnonzero(
                (self.submit_day >= d) & (self.submit_day < d + 1)
            )

    # -- window selection -------------------------------------------------------

    def _training_indices(self, day: int, alpha) -> np.ndarray:
        """Indices of the α-window (or α+ growing window) ending at ``day``."""
        if isinstance(alpha, tuple) and alpha[0] == "plus":
            start = self.test_start_day - float(alpha[1])
        else:
            start = day - float(alpha)
        return np.flatnonzero((self.submit_day >= start) & (self.submit_day < day))

    def _subsample(
        self, idx: np.ndarray, theta: int | None, sampling: str, rng: np.random.Generator
    ) -> np.ndarray:
        """θ-subsample a training window at random or by most recent end time."""
        if theta is None or idx.size <= theta:
            return idx
        if sampling == "random":
            return rng.choice(idx, size=theta, replace=False)
        if sampling == "latest":
            order = np.argsort(self.end_time[idx], kind="stable")
            return idx[order[-theta:]]
        raise ValueError(f"unknown sampling {sampling!r}")

    # -- the loop -------------------------------------------------------------------

    def evaluate(
        self,
        algorithm: str,
        model_params: dict | None = None,
        *,
        alpha,
        beta: float,
        theta: int | None = None,
        sampling: str = "random",
        seed: int | None = None,
        model_name: str | None = None,
    ) -> OnlineRunResult:
        """Run the online loop for one configuration.

        ``alpha`` is a window length in days or ``("plus", alpha_init)``
        for the growing window of §V-C.b.  ``theta`` caps the training set
        size by subsampling (§V-C.c).
        """
        if beta < 1:
            raise ValueError("beta must be >= 1 day (the paper avoids beta=0)")
        model_params = dict(model_params or {})
        rng = np.random.default_rng(seed)
        model: ClassificationModel | None = None
        train_times: list[float] = []
        train_sizes: list[int] = []
        predict_times: list[float] = []
        preds: list[np.ndarray] = []
        trues: list[np.ndarray] = []
        per_day_f1: list[float] = []

        for day in range(self.test_start_day, self.test_end_day):
            if (day - self.test_start_day) % beta == 0:
                idx = self._training_indices(day, alpha)
                idx = self._subsample(idx, theta, sampling, rng)
                if idx.size >= 2 and np.unique(self.y[idx]).size >= 2:
                    candidate = ClassificationModel(algorithm, **model_params)
                    t0 = time.perf_counter()
                    candidate.training(self.X[idx], self.y[idx])
                    train_times.append(time.perf_counter() - t0)
                    train_sizes.append(int(idx.size))
                    model = candidate
            test_idx = self._day_indices[day]
            if test_idx.size == 0 or model is None:
                continue
            t0 = time.perf_counter()
            p = model.inference(self.X[test_idx])
            predict_times.append(time.perf_counter() - t0)
            preds.append(np.asarray(p))
            trues.append(self.y[test_idx])
            if np.unique(self.y[test_idx]).size >= 2:
                per_day_f1.append(f1_macro(self.y[test_idx], p))

        if not preds:
            raise RuntimeError("no predictions were produced (empty test period?)")
        y_pred = np.concatenate(preds)
        y_true = np.concatenate(trues)
        return OnlineRunResult(
            model_name=model_name or algorithm,
            alpha=alpha,
            beta=beta,
            theta=theta,
            sampling=sampling,
            seed=seed,
            f1=f1_macro(y_true, y_pred),
            accuracy=accuracy_score(y_true, y_pred),
            n_test_jobs=int(y_true.size),
            n_retrainings=len(train_times),
            train_times=tuple(train_times),
            predict_times=tuple(predict_times),
            encode_time_per_job=self.encode_time_per_job,
            train_sizes=tuple(train_sizes),
            per_day_f1=tuple(per_day_f1),
        )

    # -- drift-triggered retraining (adaptive beta) ---------------------------------

    def evaluate_adaptive(
        self,
        algorithm: str,
        model_params: dict | None = None,
        *,
        alpha,
        policy,
        model_name: str | None = None,
    ):
        """Online loop with drift-triggered retraining.

        Replaces the fixed β cadence with an
        :class:`~repro.evaluation.drift.AdaptiveRetrainingPolicy`: each
        day's incoming submissions are scored against the current training
        window by the embedding drift detector, and the model is retrained
        only when the policy fires (or its staleness deadline passes).

        Returns ``(OnlineRunResult, per_day_drift_scores)``; the result's
        ``sampling`` field is ``"adaptive"`` and ``beta`` is NaN.
        """
        from repro.evaluation.drift import EmbeddingDriftDetector

        model_params = dict(model_params or {})
        model: ClassificationModel | None = None
        detector: EmbeddingDriftDetector | None = None
        days_since = float("inf")
        train_times: list[float] = []
        train_sizes: list[int] = []
        predict_times: list[float] = []
        drift_scores: list[float] = []
        preds: list[np.ndarray] = []
        trues: list[np.ndarray] = []

        for day in range(self.test_start_day, self.test_end_day):
            test_idx = self._day_indices[day]
            score = None
            if detector is not None and test_idx.size:
                score = detector.score(self.X[test_idx])
            drift_scores.append(score if score is not None else float("nan"))

            if policy.should_retrain(score, days_since, int(test_idx.size)):
                idx = self._training_indices(day, alpha)
                if idx.size >= 2 and np.unique(self.y[idx]).size >= 2:
                    candidate = ClassificationModel(algorithm, **model_params)
                    t0 = time.perf_counter()
                    candidate.training(self.X[idx], self.y[idx])
                    train_times.append(time.perf_counter() - t0)
                    train_sizes.append(int(idx.size))
                    model = candidate
                    detector = EmbeddingDriftDetector(self.X[idx])
                    days_since = 0.0

            if test_idx.size == 0 or model is None:
                days_since += 1.0
                continue
            t0 = time.perf_counter()
            p = model.inference(self.X[test_idx])
            predict_times.append(time.perf_counter() - t0)
            preds.append(np.asarray(p))
            trues.append(self.y[test_idx])
            days_since += 1.0

        if not preds:
            raise RuntimeError("adaptive loop produced no predictions")
        y_pred = np.concatenate(preds)
        y_true = np.concatenate(trues)
        result = OnlineRunResult(
            model_name=model_name or algorithm,
            alpha=alpha,
            beta=float("nan"),
            theta=None,
            sampling="adaptive",
            seed=None,
            f1=f1_macro(y_true, y_pred),
            accuracy=accuracy_score(y_true, y_pred),
            n_test_jobs=int(y_true.size),
            n_retrainings=len(train_times),
            train_times=tuple(train_times),
            predict_times=tuple(predict_times),
            encode_time_per_job=self.encode_time_per_job,
            train_sizes=tuple(train_sizes),
        )
        return result, drift_scores

    # -- the §V-C.a lookup baseline ------------------------------------------------------

    def evaluate_baseline(
        self,
        *,
        alpha: float = 30.0,
        beta: float = 1.0,
        key_columns: tuple[str, str] = ("job_name", "cores_req"),
    ) -> OnlineRunResult:
        """Online loop for the (job name, #cores) lookup baseline."""
        keys = list(zip(*(self.trace[c].tolist() for c in key_columns)))
        model: LookupTableBaseline | None = None
        train_times: list[float] = []
        train_sizes: list[int] = []
        predict_times: list[float] = []
        preds: list[np.ndarray] = []
        trues: list[np.ndarray] = []

        for day in range(self.test_start_day, self.test_end_day):
            if (day - self.test_start_day) % beta == 0:
                idx = self._training_indices(day, alpha)
                if idx.size >= 1:
                    candidate = LookupTableBaseline()
                    t0 = time.perf_counter()
                    candidate.fit([keys[i] for i in idx.tolist()], self.y[idx])
                    train_times.append(time.perf_counter() - t0)
                    train_sizes.append(int(idx.size))
                    model = candidate
            test_idx = self._day_indices[day]
            if test_idx.size == 0 or model is None:
                continue
            t0 = time.perf_counter()
            p = model.predict([keys[i] for i in test_idx.tolist()])
            predict_times.append(time.perf_counter() - t0)
            preds.append(p)
            trues.append(self.y[test_idx])

        y_pred = np.concatenate(preds)
        y_true = np.concatenate(trues)
        return OnlineRunResult(
            model_name="baseline",
            alpha=alpha,
            beta=beta,
            theta=None,
            sampling="none",
            seed=None,
            f1=f1_macro(y_true, y_pred),
            accuracy=accuracy_score(y_true, y_pred),
            n_test_jobs=int(y_true.size),
            n_retrainings=len(train_times),
            train_times=tuple(train_times),
            predict_times=tuple(predict_times),
            encode_time_per_job=0.0,
            train_sizes=tuple(train_sizes),
        )

