"""Experiment harness for the paper's §V evaluation.

- :mod:`repro.evaluation.online` — the day-by-day online prediction loop:
  retrain on the last α days every β days, predict each day's submissions
  with the current model, score macro-F1 over the whole test period.
- :mod:`repro.evaluation.experiments` — the three experiments of §V-B/C:
  the α×β sweep (Fig. 6 + Figs. 7-8 timings), the α+ growing-window
  comparison, and the θ subsampling study (Figs. 9-10), plus the lookup
  baseline comparison.
- :mod:`repro.evaluation.timing` — wall-clock measurement helpers.
- :mod:`repro.evaluation.reporting` — text tables, ASCII series plots and
  CSV dumps for the benchmark harness.
"""

from repro.evaluation.online import OnlineEvaluator, OnlineRunResult
from repro.evaluation.experiments import (
    ModelSpec,
    PAPER_THETA_SEEDS,
    sweep_alpha_beta,
    alpha_plus_experiment,
    sweep_theta,
    baseline_comparison,
)
from repro.evaluation.drift import (
    AdaptiveRetrainingPolicy,
    EmbeddingDriftDetector,
    population_stability_index,
)
from repro.evaluation.crosssystem import (
    TransferResult,
    evaluate_all,
    evaluate_system,
    evaluator_for_system,
    transfer_evaluation,
)
from repro.evaluation.timing import Timer, time_call
from repro.evaluation.reporting import format_table, ascii_series, ascii_heatmap, results_to_csv

__all__ = [
    "OnlineEvaluator",
    "OnlineRunResult",
    "ModelSpec",
    "PAPER_THETA_SEEDS",
    "sweep_alpha_beta",
    "alpha_plus_experiment",
    "sweep_theta",
    "baseline_comparison",
    "AdaptiveRetrainingPolicy",
    "EmbeddingDriftDetector",
    "population_stability_index",
    "TransferResult",
    "evaluate_all",
    "evaluate_system",
    "evaluator_for_system",
    "transfer_evaluation",
    "Timer",
    "time_call",
    "format_table",
    "ascii_series",
    "ascii_heatmap",
    "results_to_csv",
]
