"""Text tables, ASCII series plots and CSV dumps for the bench harness.

The paper's figures are regenerated headlessly: every bench prints the
same rows/series the figure encodes, so shape comparisons (who wins, by
how much, where trends bend) are possible without matplotlib.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

__all__ = ["format_table", "ascii_series", "ascii_heatmap", "results_to_csv"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None) -> str:
    """Fixed-width text table.

    Cells are rendered with ``str``; floats get 4 significant decimals.
    """

    def render(v) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_series(
    x: Sequence,
    y: Sequence[float],
    *,
    width: int = 60,
    height: int = 12,
    label: str = "",
    y_range: tuple[float, float] | None = None,
) -> str:
    """A tiny ASCII line chart of one series (figures' visual stand-in)."""
    y = np.asarray(list(y), dtype=np.float64)
    if y.size == 0:
        raise ValueError("empty series")
    lo, hi = y_range if y_range is not None else (float(y.min()), float(y.max()))
    if hi <= lo:
        hi = lo + 1.0
    cols = np.linspace(0, width - 1, y.size).astype(int)
    rows = ((y - lo) / (hi - lo) * (height - 1)).round().astype(int)
    rows = np.clip(rows, 0, height - 1)
    grid = [[" "] * width for _ in range(height)]
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = "*"
    lines = [f"{label} [{lo:.4g}, {hi:.4g}]".lstrip()]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    xs = [str(x[0]), str(x[len(x) // 2]), str(x[-1])]
    lines.append(" " + xs[0] + xs[1].rjust(width // 2 - len(xs[0]) + len(xs[1]) // 2) + xs[2].rjust(width - width // 2 - len(xs[1]) // 2))
    return "\n".join(lines)


def results_to_csv(path: str | Path, headers: Sequence[str], rows: Sequence[Sequence]) -> Path:
    """Write rows to a CSV file (no quoting needs beyond commas)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [",".join(headers)]
    for row in rows:
        cells = []
        for c in row:
            s = f"{c:.6g}" if isinstance(c, float) else str(c)
            if "," in s:
                s = '"' + s.replace('"', '""') + '"'
            cells.append(s)
        lines.append(",".join(cells))
    path.write_text("\n".join(lines) + "\n")
    return path


def ascii_heatmap(
    counts: np.ndarray,
    *,
    width: int = 60,
    height: int = 16,
    label: str = "",
) -> str:
    """Density shading of a 2-D histogram (the figures' scatter stand-in).

    ``counts[i, j]`` maps x-bins to rows of characters; darker glyphs mean
    more mass (log-scaled).  Rows are printed with the y axis pointing up.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 2 or counts.size == 0:
        raise ValueError("counts must be a non-empty 2-D array")
    # resample to the target character grid by block sums
    def resample(n_src: int, n_dst: int) -> np.ndarray:
        return np.minimum((np.arange(n_src) * n_dst) // n_src, n_dst - 1)

    xi = resample(counts.shape[0], width)
    yi = resample(counts.shape[1], height)
    grid = np.zeros((width, height))
    for i in range(counts.shape[0]):
        for j in range(counts.shape[1]):
            grid[xi[i], yi[j]] += counts[i, j]
    glyphs = " .:-=+*#%@"
    with np.errstate(divide="ignore"):
        level = np.log1p(grid)
    top = level.max() or 1.0
    idx = np.clip((level / top * (len(glyphs) - 1)).astype(int), 0, len(glyphs) - 1)
    lines = [label] if label else []
    for row in range(height - 1, -1, -1):
        lines.append("|" + "".join(glyphs[idx[c, row]] for c in range(width)))
    lines.append("+" + "-" * width)
    return "\n".join(lines)
