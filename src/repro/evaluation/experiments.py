"""The three experiments of §V-B/C, as reusable sweep functions.

Each sweep returns plain dicts keyed by configuration so the benchmark
harness can print paper-style tables and EXPERIMENTS.md can record
paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.evaluation.online import OnlineEvaluator, OnlineRunResult

__all__ = [
    "ModelSpec",
    "PAPER_THETA_SEEDS",
    "PAPER_ALPHAS",
    "PAPER_BETAS",
    "sweep_alpha_beta",
    "alpha_plus_experiment",
    "sweep_theta",
    "baseline_comparison",
]

#: The 5 random seeds the paper uses for θ subsampling (§V-C footnote 11).
PAPER_THETA_SEEDS: tuple[int, ...] = (520, 90, 1905, 7, 22)

#: Fig. 6 grids.
PAPER_ALPHAS: tuple[int, ...] = (15, 30, 45, 60)
PAPER_BETAS: tuple[int, ...] = (1, 2, 5, 10)


@dataclass(frozen=True)
class ModelSpec:
    """An algorithm + constructor params + display name."""

    name: str
    algorithm: str
    params: dict = field(default_factory=dict)

    #: the paper's best window per model (§V-C.d)
    @property
    def best_alpha(self) -> int:
        return 15 if self.algorithm.upper() == "RF" else 30


def sweep_alpha_beta(
    evaluator: OnlineEvaluator,
    spec: ModelSpec,
    *,
    alphas=PAPER_ALPHAS,
    betas=PAPER_BETAS,
) -> dict[tuple[int, int], OnlineRunResult]:
    """Experiment 1 (Fig. 6, and Figs. 7-8 at β=1): the α × β grid."""
    results: dict[tuple[int, int], OnlineRunResult] = {}
    for alpha in alphas:
        for beta in betas:
            results[(alpha, beta)] = evaluator.evaluate(
                spec.algorithm,
                spec.params,
                alpha=alpha,
                beta=beta,
                model_name=spec.name,
            )
    return results


def alpha_plus_experiment(
    evaluator: OnlineEvaluator,
    spec: ModelSpec,
    *,
    alpha_best: int | None = None,
    beta: int = 1,
) -> dict[str, OnlineRunResult]:
    """Experiment 2 (§V-C.b): sliding α window vs growing α+ window."""
    alpha_best = alpha_best if alpha_best is not None else spec.best_alpha
    sliding = evaluator.evaluate(
        spec.algorithm, spec.params, alpha=alpha_best, beta=beta, model_name=spec.name
    )
    growing = evaluator.evaluate(
        spec.algorithm,
        spec.params,
        alpha=("plus", alpha_best),
        beta=beta,
        model_name=spec.name,
    )
    return {"sliding": sliding, "plus": growing}


def sweep_theta(
    evaluator: OnlineEvaluator,
    spec: ModelSpec,
    *,
    thetas,
    alpha: int | None = None,
    beta: int = 1,
    seeds=PAPER_THETA_SEEDS,
) -> dict[tuple[int, str], dict]:
    """Experiment 3 (Figs. 9-10): θ-subsampled retraining.

    Random sampling is repeated over the paper's 5 seeds and averaged;
    latest sampling is deterministic.  Returns, per (θ, sampling), a dict
    with the mean F1, its stddev over seeds, and the individual runs.
    """
    alpha = alpha if alpha is not None else spec.best_alpha
    out: dict[tuple[int, str], dict] = {}
    for theta in thetas:
        runs = [
            evaluator.evaluate(
                spec.algorithm,
                spec.params,
                alpha=alpha,
                beta=beta,
                theta=int(theta),
                sampling="random",
                seed=seed,
                model_name=spec.name,
            )
            for seed in seeds
        ]
        out[(int(theta), "random")] = {
            "f1_mean": float(np.mean([r.f1 for r in runs])),
            "f1_std": float(np.std([r.f1 for r in runs])),
            "runs": runs,
        }
        latest = evaluator.evaluate(
            spec.algorithm,
            spec.params,
            alpha=alpha,
            beta=beta,
            theta=int(theta),
            sampling="latest",
            model_name=spec.name,
        )
        out[(int(theta), "latest")] = {
            "f1_mean": latest.f1,
            "f1_std": 0.0,
            "runs": [latest],
        }
    return out


def baseline_comparison(
    evaluator: OnlineEvaluator,
    spec: ModelSpec,
    *,
    alpha: int | None = None,
    beta: int = 1,
) -> dict[str, OnlineRunResult]:
    """§V-C.a closing comparison: the full model vs the lookup baseline.

    The baseline runs with the best KNN settings (α=30, β=1) as the paper
    does.
    """
    model_run = evaluator.evaluate(
        spec.algorithm,
        spec.params,
        alpha=alpha if alpha is not None else spec.best_alpha,
        beta=beta,
        model_name=spec.name,
    )
    baseline_run = evaluator.evaluate_baseline(alpha=30.0, beta=beta)
    return {"model": model_run, "baseline": baseline_run}
