"""Command line for the project linter.

::

    python -m repro.staticcheck [paths ...] [--format text|json|sarif]
                                [--select ID[,ID]] [--ignore ID[,ID]]
                                [--cache [PATH]] [--jobs N]
                                [--reference PATH ...] [--statistics]
                                [--baseline write|check] [--baseline-file PATH]
                                [--list-rules]

With no paths the engine checks ``src/repro`` when run from the repo root
(falling back to the installed package directory) and harvests import
usage from ``tests``, ``benchmarks`` and ``examples`` for the
``dead-export`` rule.  ``--cache`` (optionally with a path, default
``.staticcheck-cache.json``) turns on the incremental engine; a warm run
re-parses only files whose content or import-graph dependencies changed.
``--statistics`` prints cache and per-rule counters to stderr, keeping
stdout byte-stable.  Exit status: 0 clean, 1 findings, 2 usage or I/O
error — so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.staticcheck.baseline import apply_baseline, load_baseline, write_baseline
from repro.staticcheck.engine import UsageError, check_paths
from repro.staticcheck.registry import all_project_rules, all_rules, resolve_all_rules
from repro.staticcheck.reporting import render, render_statistics

__all__ = ["main", "build_parser"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

DEFAULT_CACHE = ".staticcheck-cache.json"
DEFAULT_BASELINE = ".staticcheck-baseline.json"

#: Directories harvested for import usage when linting the default paths.
DEFAULT_REFERENCE_DIRS = ("tests", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST-based project linter with MCBound-specific rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src/repro, else the "
        "installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=DEFAULT_CACHE,
        default=None,
        metavar="PATH",
        help="enable the incremental cache, optionally naming its file "
        f"(default when enabled: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse cold files with N parallel worker processes",
    )
    parser.add_argument(
        "--reference",
        action="append",
        default=None,
        metavar="PATH",
        help="extra files/directories whose imports count as usage for the "
        "dead-export rule but which are not linted (default when no "
        "paths are given: tests, benchmarks, examples)",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print run statistics (cache hits/misses, findings per rule, "
        "wall time) to stderr",
    )
    parser.add_argument(
        "--baseline",
        choices=("write", "check"),
        default=None,
        help="'write' records current findings as the accepted baseline; "
        "'check' fails only on findings not in the baseline (the "
        "ratchet: tracked findings may only decrease)",
    )
    parser.add_argument(
        "--baseline-file",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline file location (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule id and description, then exit",
    )
    return parser


def _split(csv: str | None) -> list[str] | None:
    if csv is None:
        return None
    return [part.strip() for part in csv.split(",") if part.strip()]


def _default_paths() -> list[str]:
    candidate = Path("src/repro")
    if candidate.is_dir():
        return [str(candidate)]
    # installed / imported from elsewhere: lint the package itself
    return [str(Path(__file__).resolve().parents[1])]


def _default_references() -> list[str]:
    return [d for d in DEFAULT_REFERENCE_DIRS if Path(d).is_dir()]


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted(all_rules().items()):
            print(f"{rule_id:22s} {cls.description}")
        for rule_id, cls in sorted(all_project_rules().items()):
            print(f"{rule_id:22s} [project] {cls.description}")
        return EXIT_CLEAN

    try:
        rules, project_rules = resolve_all_rules(
            select=_split(args.select), ignore=_split(args.ignore)
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_ERROR

    references = args.reference
    if references is None:
        references = _default_references() if not args.paths else []

    try:
        result = check_paths(
            args.paths or _default_paths(),
            rules=rules,
            project_rules=project_rules,
            reference_paths=references,
            cache_path=args.cache,
            jobs=max(1, args.jobs),
        )
    except (UsageError, FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.baseline == "write":
        count = write_baseline(result, args.baseline_file)
        print(f"baseline: wrote {count} finding(s) to {args.baseline_file}")
        return EXIT_CLEAN
    if args.baseline == "check":
        try:
            baseline = load_baseline(args.baseline_file)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_ERROR
        result, resolved = apply_baseline(result, baseline)
        if resolved:
            print(
                f"baseline: {resolved} tracked finding(s) resolved - run "
                "--baseline write to ratchet them out",
                file=sys.stderr,
            )

    print(render(result, args.format))
    if args.statistics and result.stats is not None:
        print(render_statistics(result.stats), file=sys.stderr)
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS
