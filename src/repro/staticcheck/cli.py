"""Command line for the project linter.

::

    python -m repro.staticcheck [paths ...] [--format text|json]
                                [--select ID[,ID]] [--ignore ID[,ID]]
                                [--list-rules]

With no paths the engine checks ``src/repro`` when run from the repo root
(falling back to the installed package directory).  Exit status: 0 clean,
1 findings, 2 usage or I/O error — so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.staticcheck.engine import check_paths
from repro.staticcheck.registry import all_rules, resolve_rules
from repro.staticcheck.reporting import render

__all__ = ["main", "build_parser"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST-based project linter with MCBound-specific rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src/repro, else the "
        "installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule id and description, then exit",
    )
    return parser


def _split(csv: str | None) -> list[str] | None:
    if csv is None:
        return None
    return [part.strip() for part in csv.split(",") if part.strip()]


def _default_paths() -> list[str]:
    candidate = Path("src/repro")
    if candidate.is_dir():
        return [str(candidate)]
    # installed / imported from elsewhere: lint the package itself
    return [str(Path(__file__).resolve().parents[1])]


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted(all_rules().items()):
            print(f"{rule_id:22s} {cls.description}")
        return EXIT_CLEAN

    try:
        rules = resolve_rules(select=_split(args.select), ignore=_split(args.ignore))
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_ERROR

    try:
        result = check_paths(args.paths or _default_paths(), rules=rules)
    except (FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    print(render(result, args.format))
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS
