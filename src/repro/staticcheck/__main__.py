"""``python -m repro.staticcheck`` entry point."""

import sys

from repro.staticcheck.cli import main

sys.exit(main())
