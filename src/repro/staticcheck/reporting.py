"""Render a :class:`CheckResult` as human text, machine JSON or SARIF."""

from __future__ import annotations

import json

from repro.staticcheck.engine import CheckResult, CheckStats

__all__ = ["render", "render_json", "render_statistics", "render_text"]


def render_text(result: CheckResult) -> str:
    """``path:line:col: rule: message`` per finding plus a summary line."""
    lines = [str(f) for f in result.findings]
    summary = (
        f"{len(result.findings)} finding{'s' if len(result.findings) != 1 else ''}"
        f" ({len(result.suppressed)} suppressed)"
        f" in {result.files_checked} file{'s' if result.files_checked != 1 else ''}"
    )
    if result.baselined:
        summary += f"; {len(result.baselined)} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """Stable, versioned JSON document (see ``CheckResult.to_dict``)."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


def render_statistics(stats: CheckStats) -> str:
    """Human-readable run statistics, one ``key: value`` per line.

    Printed to stderr by the CLI so machine-readable stdout stays
    byte-identical between cold and warm runs.
    """
    lines = [
        "statistics:",
        f"  files checked:    {stats.files_checked}",
        f"  reference files:  {stats.reference_files}",
        f"  cache hits:       {stats.cache_hits}",
        f"  cache misses:     {stats.cache_misses}",
        f"  parallel jobs:    {stats.jobs}",
        f"  wall time:        {stats.wall_seconds:.3f}s",
        f"  flow CFGs built:  {stats.flow_cfgs}",
        f"  flow blocks:      {stats.flow_blocks}",
        f"  flow iterations:  {stats.flow_iterations}",
        f"  perf hot funcs:   {stats.perf_hot_functions}",
        f"  perf fixpoints:   {stats.perf_array_fixpoints}",
        f"  procs boundaries: {stats.procs_boundaries}",
        f"  procs segments:   {stats.procs_segments}",
        f"  scale fixpoints:  {stats.capacity_fixpoints}",
        f"  streaming defs:   {stats.capacity_streaming}",
        f"  sysmodel classes: {stats.sysmodel_classes}",
        f"  sysmodel specs:   {stats.sysmodel_specs}",
    ]
    if stats.findings_per_rule:
        lines.append("  findings by rule:")
        width = max(len(rule) for rule in stats.findings_per_rule)
        for rule in sorted(stats.findings_per_rule):
            lines.append(f"    {rule:<{width}}  {stats.findings_per_rule[rule]}")
    return "\n".join(lines)


def render(result: CheckResult, fmt: str) -> str:
    if fmt == "text":
        return render_text(result)
    if fmt == "json":
        return render_json(result)
    if fmt == "sarif":
        from repro.staticcheck.sarif import render_sarif

        return render_sarif(result)
    raise ValueError(f"unknown format {fmt!r}")
