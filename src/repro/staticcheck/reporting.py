"""Render a :class:`CheckResult` as human text or machine JSON."""

from __future__ import annotations

import json

from repro.staticcheck.engine import CheckResult

__all__ = ["render_text", "render_json", "render"]


def render_text(result: CheckResult) -> str:
    """``path:line:col: rule: message`` per finding plus a summary line."""
    lines = [str(f) for f in result.findings]
    summary = (
        f"{len(result.findings)} finding{'s' if len(result.findings) != 1 else ''}"
        f" ({len(result.suppressed)} suppressed)"
        f" in {result.files_checked} file{'s' if result.files_checked != 1 else ''}"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """Stable, versioned JSON document (see ``CheckResult.to_dict``)."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


def render(result: CheckResult, fmt: str) -> str:
    if fmt == "text":
        return render_text(result)
    if fmt == "json":
        return render_json(result)
    raise ValueError(f"unknown format {fmt!r}")
