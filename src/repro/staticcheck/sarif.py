"""SARIF 2.1.0 reporter.

SARIF (Static Analysis Results Interchange Format) is the exchange
format code-scanning UIs ingest (GitHub code scanning, VS Code SARIF
viewer, ...).  One run, one tool driver, one result per active finding;
suppressed and baselined findings are emitted with a ``suppressions``
entry so viewers show them struck through rather than losing them.
Output is deterministic (sorted keys, sorted rules) so warm-cache runs
reproduce cold runs byte for byte.
"""

from __future__ import annotations

import json

from repro.staticcheck.engine import CheckResult
from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import all_project_rules, all_rules

__all__ = ["render_sarif"]

_SARIF_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"


def _rule_descriptors() -> list[dict]:
    merged = {**all_rules(), **all_project_rules()}
    return [
        {
            "id": rule_id,
            "shortDescription": {"text": cls.description},
        }
        for rule_id, cls in sorted(merged.items())
    ]


def _result(finding: Finding, kind: str) -> dict:
    doc = {
        "ruleId": finding.rule_id,
        "level": "error" if kind == "active" else "note",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if kind == "suppressed":
        doc["suppressions"] = [{"kind": "inSource"}]
    elif kind == "baselined":
        doc["suppressions"] = [{"kind": "external"}]
    return doc


def render_sarif(result: CheckResult) -> str:
    results = (
        [_result(f, "active") for f in result.findings]
        + [_result(f, "baselined") for f in result.baselined]
        + [_result(f, "suppressed") for f in result.suppressed]
    )
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.staticcheck",
                        "informationUri": "https://example.invalid/repro-staticcheck",
                        "rules": _rule_descriptors(),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
