"""Rule base classes and the global rule registries.

Rules are plain classes with an ``id``, a ``description`` and a check
generator; the :func:`register` / :func:`register_project` decorators add
them to the process-wide registries that the engine and CLI read.
Importing :mod:`repro.staticcheck.rules` populates the single-file
registry, importing :mod:`repro.staticcheck.project` the project one —
both as a side effect.

Single-file :class:`Rule` subclasses see one
:class:`~repro.staticcheck.engine.ModuleContext` at a time and run under
the incremental cache; :class:`ProjectRule` subclasses see the whole
:class:`~repro.staticcheck.project.graph.ProjectContext` (import graph,
call graph, every module summary) and run on every invocation.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterator, Type

from repro.staticcheck.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.staticcheck.engine import ModuleContext
    from repro.staticcheck.project.graph import ProjectContext

__all__ = [
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "register",
    "register_project",
    "resolve_all_rules",
    "resolve_project_rules",
    "resolve_rules",
]

_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")

_REGISTRY: dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for staticcheck rules.

    Subclasses set ``id`` (kebab-case, used in reports and suppression
    comments) and ``description`` (one line, shown by ``--list-rules``),
    then implement :meth:`check` as a generator of findings for one parsed
    module.
    """

    id: str = ""
    description: str = ""

    def check(self, module: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(self, module: "ModuleContext", node, message: str) -> Finding:
        """Build a finding for ``node`` (an AST node or an int line)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line, col = node.lineno, node.col_offset
        return Finding(path=module.path, line=line, col=col, rule_id=self.id, message=message)


class ProjectRule:
    """Base class for whole-program rules.

    Same contract as :class:`Rule`, but :meth:`check` receives the
    :class:`~repro.staticcheck.project.graph.ProjectContext` — every
    module summary plus the import and call graphs — and may yield
    findings against any file in the project.
    """

    id: str = ""
    description: str = ""

    def check(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(self, path: str, line: int, message: str, col: int = 0) -> Finding:
        return Finding(path=path, line=line, col=col, rule_id=self.id, message=message)


_PROJECT_REGISTRY: dict[str, Type[ProjectRule]] = {}


def _validated(cls, registry: dict) -> None:
    if not cls.id or not _RULE_ID_RE.match(cls.id):
        raise ValueError(f"rule {cls.__name__} needs a kebab-case id, got {cls.id!r}")
    if not cls.description:
        raise ValueError(f"rule {cls.id!r} needs a one-line description")
    if cls.id in registry and registry[cls.id] is not cls:
        raise ValueError(f"duplicate rule id {cls.id!r}")


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a single-file rule to the global registry."""
    _validated(cls, _REGISTRY)
    _REGISTRY[cls.id] = cls
    return cls


def register_project(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a project rule to the global registry."""
    _validated(cls, _PROJECT_REGISTRY)
    if cls.id in _REGISTRY:
        raise ValueError(f"rule id {cls.id!r} already taken by a single-file rule")
    _PROJECT_REGISTRY[cls.id] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """id -> rule class for every registered rule (import-populated)."""
    # Importing the rules package registers every built-in rule; done here
    # so callers of the API never have to know about the side effect.
    import repro.staticcheck.rules  # noqa: F401

    return dict(_REGISTRY)


def all_project_rules() -> dict[str, Type[ProjectRule]]:
    """id -> rule class for every registered project rule."""
    import repro.staticcheck.project  # noqa: F401

    return dict(_PROJECT_REGISTRY)


def resolve_rules(
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> list[Rule]:
    """Instantiate the rule set after applying --select / --ignore filters."""
    registry = all_rules()
    unknown = [r for r in (select or []) + (ignore or []) if r not in registry]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    chosen = select if select else list(registry)
    chosen = [r for r in chosen if r not in set(ignore or [])]
    return [registry[r]() for r in sorted(chosen)]


def resolve_project_rules(
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> list[ProjectRule]:
    """Instantiate the project rule set under --select / --ignore filters."""
    registry = all_project_rules()
    unknown = [r for r in (select or []) + (ignore or []) if r not in registry]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    chosen = select if select else list(registry)
    chosen = [r for r in chosen if r not in set(ignore or [])]
    return [registry[r]() for r in sorted(chosen)]


def resolve_all_rules(
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> tuple[list[Rule], list[ProjectRule]]:
    """Resolve --select / --ignore across both registries at once.

    A rule id is valid if either registry knows it; unknown ids raise
    ``KeyError`` naming all of them, exactly like the per-registry
    resolvers do.
    """
    known = set(all_rules()) | set(all_project_rules())
    unknown = [r for r in (select or []) + (ignore or []) if r not in known]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    def narrow(ids: list[str] | None, registry_ids: set[str]) -> list[str] | None:
        if ids is None:
            return None
        return [r for r in ids if r in registry_ids]

    file_ids = set(all_rules())
    project_ids = set(all_project_rules())
    file_select = narrow(select, file_ids)
    project_select = narrow(select, project_ids)
    # A --select naming only project rules must not enable every file rule
    # (and vice versa): an explicit selection that excludes one registry
    # selects nothing from it.
    file_rules = (
        []
        if select is not None and not file_select
        else resolve_rules(file_select, narrow(ignore, file_ids))
    )
    project_rules = (
        []
        if select is not None and not project_select
        else resolve_project_rules(project_select, narrow(ignore, project_ids))
    )
    return file_rules, project_rules
