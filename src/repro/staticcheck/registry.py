"""Rule base class and the global rule registry.

Rules are plain classes with an ``id``, a ``description`` and a
``check(module)`` generator; the :func:`register` decorator adds them to
the process-wide registry that the engine and CLI read.  Importing
:mod:`repro.staticcheck.rules` populates the registry as a side effect.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterator, Type

from repro.staticcheck.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.staticcheck.engine import ModuleContext

__all__ = ["Rule", "register", "all_rules", "resolve_rules"]

_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")

_REGISTRY: dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for staticcheck rules.

    Subclasses set ``id`` (kebab-case, used in reports and suppression
    comments) and ``description`` (one line, shown by ``--list-rules``),
    then implement :meth:`check` as a generator of findings for one parsed
    module.
    """

    id: str = ""
    description: str = ""

    def check(self, module: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(self, module: "ModuleContext", node, message: str) -> Finding:
        """Build a finding for ``node`` (an AST node or an int line)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line, col = node.lineno, node.col_offset
        return Finding(path=module.path, line=line, col=col, rule_id=self.id, message=message)


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or not _RULE_ID_RE.match(cls.id):
        raise ValueError(f"rule {cls.__name__} needs a kebab-case id, got {cls.id!r}")
    if not cls.description:
        raise ValueError(f"rule {cls.id!r} needs a one-line description")
    if cls.id in _REGISTRY and _REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """id -> rule class for every registered rule (import-populated)."""
    # Importing the rules package registers every built-in rule; done here
    # so callers of the API never have to know about the side effect.
    import repro.staticcheck.rules  # noqa: F401

    return dict(_REGISTRY)


def resolve_rules(
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> list[Rule]:
    """Instantiate the rule set after applying --select / --ignore filters."""
    registry = all_rules()
    unknown = [r for r in (select or []) + (ignore or []) if r not in registry]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    chosen = select if select else list(registry)
    chosen = [r for r in chosen if r not in set(ignore or [])]
    return [registry[r]() for r in sorted(chosen)]
