"""The unit of output of every rule: a :class:`Finding`.

A finding pins a rule violation to a ``path:line:col`` location.  Findings
sort by location so reports are stable across rule-execution order, and
they serialize to plain dicts for the JSON reporter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``suppressed`` is set by the engine (never by rules) when an inline
    ``# staticcheck: ignore[...]`` comment covers the finding's line; the
    location fields come first so tuple ordering groups findings by file.
    """

    path: str
    line: int
    col: int
    rule_id: str = field(compare=False)
    message: str = field(compare=False)
    suppressed: bool = field(default=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "suppressed": self.suppressed,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id}: {self.message}"
