"""Inline suppression comments.

A finding is silenced by a comment of the form::

    risky_call()  # staticcheck: ignore[rule-id]
    other_call()  # staticcheck: ignore[rule-a, rule-b] - why it is fine

on the finding's own line, or by a standalone comment line directly above
it (useful when the flagged line has no room, e.g. module-level findings
reported at line 1).  ``ignore[*]`` silences every rule on that line.
Suppressions are deliberately line-scoped: there is no file- or
block-level escape hatch, so every silenced finding stays visible next to
the code it excuses.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["SuppressionIndex", "parse_suppressions"]

_DIRECTIVE_RE = re.compile(r"#\s*staticcheck:\s*ignore\[([^\]]*)\]")

WILDCARD = "*"


class SuppressionIndex:
    """line number -> set of suppressed rule ids (or the ``*`` wildcard)."""

    def __init__(self, by_line: dict[int, set[str]]):
        self._by_line = by_line

    def covers(self, line: int, rule_id: str) -> bool:
        rules = self._by_line.get(line)
        return bool(rules) and (rule_id in rules or WILDCARD in rules)

    def __bool__(self) -> bool:  # pragma: no cover - debugging aid
        return bool(self._by_line)


def _directive_rules(comment: str) -> set[str] | None:
    m = _DIRECTIVE_RE.search(comment)
    if not m:
        return None
    return {part.strip() for part in m.group(1).split(",") if part.strip()}


def parse_suppressions(source: str) -> SuppressionIndex:
    """Scan real comment tokens (not string literals) for directives."""
    by_line: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Unparseable files are reported as syntax errors by the engine;
        # there is nothing to suppress in them.
        return SuppressionIndex({})
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        rules = _directive_rules(tok.string)
        if rules is None:
            continue
        line = tok.start[0]
        by_line.setdefault(line, set()).update(rules)
        # A standalone comment (nothing but whitespace before the hash)
        # also covers the next line, for findings on statements that the
        # comment introduces.
        if tok.line[: tok.start[1]].strip() == "":
            by_line.setdefault(line + 1, set()).update(rules)
    return SuppressionIndex(by_line)
