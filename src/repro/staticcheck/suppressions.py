"""Inline suppression comments.

A finding is silenced by a comment of the form::

    risky_call()  # staticcheck: ignore[rule-id]
    other_call()  # staticcheck: ignore[rule-a, rule-b] - why it is fine

on the finding's own line, or by a standalone comment line directly above
it (useful when the flagged line has no room, e.g. module-level findings
reported at line 1).  A trailing directive on the *last* physical line of
a multi-line statement also covers the statement's first line, so findings
reported at the statement head can be silenced where the closing paren
lives.  ``ignore[*]`` silences every rule on that line.  Suppressions are
deliberately line-scoped: there is no file- or block-level escape hatch,
so every silenced finding stays visible next to the code it excuses.

The engine validates directives against the registered rule ids: a
directive naming a rule that does not exist is reported as an
``unknown-suppression`` finding instead of being silently accepted.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Directive", "SuppressionIndex", "parse_directives", "parse_suppressions"]

_DIRECTIVE_RE = re.compile(r"#\s*staticcheck:\s*ignore\[([^\]]*)\]")

WILDCARD = "*"

#: Token types that do not start a logical line.
_NON_CODE_TOKENS = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
)


@dataclass(frozen=True)
class Directive:
    """One ``# staticcheck: ignore[...]`` comment and the lines it covers.

    ``line`` is where the comment physically sits (where validation errors
    are reported); ``covers`` adds the extra lines the directive reaches —
    the next line for standalone comments, the statement's first line for
    trailing comments on a continuation line.
    """

    line: int
    rule_ids: frozenset[str]
    covers: tuple[int, ...] = field(default=())

    @property
    def all_lines(self) -> tuple[int, ...]:
        return (self.line, *self.covers)


class SuppressionIndex:
    """line number -> set of suppressed rule ids (or the ``*`` wildcard)."""

    def __init__(self, by_line: dict[int, set[str]]):
        self._by_line = by_line

    @classmethod
    def from_directives(cls, directives: list[Directive]) -> "SuppressionIndex":
        by_line: dict[int, set[str]] = {}
        for directive in directives:
            for line in directive.all_lines:
                by_line.setdefault(line, set()).update(directive.rule_ids)
        return cls(by_line)

    def covers(self, line: int, rule_id: str) -> bool:
        rules = self._by_line.get(line)
        return bool(rules) and (rule_id in rules or WILDCARD in rules)

    def __bool__(self) -> bool:  # pragma: no cover - debugging aid
        return bool(self._by_line)


def _directive_rules(comment: str) -> set[str] | None:
    m = _DIRECTIVE_RE.search(comment)
    if not m:
        return None
    return {part.strip() for part in m.group(1).split(",") if part.strip()}


def parse_directives(source: str) -> list[Directive]:
    """Scan real comment tokens (not string literals) for directives."""
    directives: list[Directive] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Unparseable files are reported as syntax errors by the engine;
        # there is nothing to suppress in them.
        return []
    logical_start: int | None = None
    for tok in tokens:
        if tok.type == tokenize.NEWLINE:
            logical_start = None
        elif tok.type not in _NON_CODE_TOKENS and logical_start is None:
            logical_start = tok.start[0]
        if tok.type != tokenize.COMMENT:
            continue
        rules = _directive_rules(tok.string)
        if rules is None:
            continue
        line = tok.start[0]
        covers: list[int] = []
        if tok.line[: tok.start[1]].strip() == "":
            # A standalone comment (nothing but whitespace before the
            # hash) also covers the next line, for findings on statements
            # that the comment introduces.
            covers.append(line + 1)
        elif logical_start is not None and logical_start != line:
            # A trailing comment on a continuation line also covers the
            # statement's first line, where head-of-statement findings
            # (calls spanning lines, multi-line defs) are reported.
            covers.append(logical_start)
        directives.append(Directive(line=line, rule_ids=frozenset(rules), covers=tuple(covers)))
    return directives


def parse_suppressions(source: str) -> SuppressionIndex:
    """Build the line -> suppressed-rules index for one source string."""
    return SuppressionIndex.from_directives(parse_directives(source))
