"""Built-in MCBound rules; importing this package registers all of them."""

from repro.staticcheck.capacity.dataflow import (
    FullMaterializationRule,
    RowwiseLoopRule,
    ScaleAmplificationRule,
    UnboundedAccumulationRule,
)
from repro.staticcheck.flow.resources import DoubleReleaseRule, ResourceLeakRule
from repro.staticcheck.flow.units import UnitMismatchRule
from repro.staticcheck.perf.dataflow import (
    BroadcastMismatchRule,
    DtypeNarrowingRule,
    DtypeUpcastRule,
)
from repro.staticcheck.perf.vectorization import (
    HiddenCopyRule,
    LoopAllocRule,
    PerItemCallRule,
    QuadraticGrowthRule,
    ScalarLoopRule,
)
from repro.staticcheck.rules.defaults import MutableDefaultRule
from repro.staticcheck.rules.exceptions import SilentExceptRule
from repro.staticcheck.rules.exports import ExportDriftRule
from repro.staticcheck.rules.floats import FloatEqualityRule
from repro.staticcheck.rules.ordering import UnorderedIterationRule
from repro.staticcheck.rules.picklability import UnpicklableTaskRule
from repro.staticcheck.rules.randomness import UnseededRngRule
from repro.staticcheck.rules.timing import WallclockTimingRule
from repro.staticcheck.sysmodel.dimension import SysmodelDimensionRule

__all__ = [
    "BroadcastMismatchRule",
    "DoubleReleaseRule",
    "DtypeNarrowingRule",
    "DtypeUpcastRule",
    "ExportDriftRule",
    "FloatEqualityRule",
    "FullMaterializationRule",
    "HiddenCopyRule",
    "LoopAllocRule",
    "MutableDefaultRule",
    "PerItemCallRule",
    "QuadraticGrowthRule",
    "ResourceLeakRule",
    "RowwiseLoopRule",
    "ScalarLoopRule",
    "ScaleAmplificationRule",
    "SilentExceptRule",
    "SysmodelDimensionRule",
    "UnboundedAccumulationRule",
    "UnitMismatchRule",
    "UnorderedIterationRule",
    "UnpicklableTaskRule",
    "UnseededRngRule",
    "WallclockTimingRule",
]
