"""Built-in MCBound rules; importing this package registers all of them."""

from repro.staticcheck.flow.resources import DoubleReleaseRule, ResourceLeakRule
from repro.staticcheck.flow.units import UnitMismatchRule
from repro.staticcheck.rules.defaults import MutableDefaultRule
from repro.staticcheck.rules.exceptions import SilentExceptRule
from repro.staticcheck.rules.exports import ExportDriftRule
from repro.staticcheck.rules.floats import FloatEqualityRule
from repro.staticcheck.rules.ordering import UnorderedIterationRule
from repro.staticcheck.rules.picklability import UnpicklableTaskRule
from repro.staticcheck.rules.randomness import UnseededRngRule
from repro.staticcheck.rules.timing import WallclockTimingRule

__all__ = [
    "DoubleReleaseRule",
    "ExportDriftRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "ResourceLeakRule",
    "SilentExceptRule",
    "UnitMismatchRule",
    "UnorderedIterationRule",
    "UnpicklableTaskRule",
    "UnseededRngRule",
    "WallclockTimingRule",
]
