"""``unseeded-rng``: randomness that cannot be replayed.

MCBound retrains on a cron schedule (paper §III-D); a training or
evaluation run that draws from an unseeded generator produces models that
can never be reproduced after the fact.  This rule flags construction or
use of RNG state with no explicit seed:

* ``numpy.random.default_rng()`` / ``numpy.random.Generator`` factories
  called with no seed argument,
* ``numpy.random.RandomState()`` with no seed,
* any call into the *legacy global* numpy RNG (``np.random.rand`` etc.),
  which is hidden process-wide state regardless of seeding,
* the stdlib module-level ``random.*`` functions and ``random.Random()``
  with no seed.

Seeded construction (``default_rng(cfg.seed)``) and passing
``numpy.random.Generator`` objects around are the sanctioned patterns.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import Rule, register

__all__ = ["UnseededRngRule"]

#: numpy factories that are fine *when given a seed argument*.
_SEEDABLE_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
}

#: Legacy module-level numpy functions backed by the hidden global RNG.
_NUMPY_GLOBAL_FNS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "gumbel", "hypergeometric",
    "laplace", "logistic", "lognormal", "multinomial", "multivariate_normal",
    "normal", "permutation", "poisson", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "sample", "seed",
    "shuffle", "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_normal", "standard_t", "uniform", "vonmises", "weibull", "zipf",
}

#: stdlib ``random`` module-level functions (global Mersenne Twister).
_STDLIB_GLOBAL_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}


def _has_seed_argument(call: ast.Call) -> bool:
    """True when the factory call passes any positional or seed= keyword."""
    if call.args:
        return True
    return any(kw.arg in ("seed", "key") or kw.arg is None for kw in call.keywords)


@register
class UnseededRngRule(Rule):
    id = "unseeded-rng"
    description = (
        "RNG constructed or used without an explicit seed; retraining and "
        "evaluation runs must be replayable"
    )

    def check(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.dotted_name(node.func)
            if name is None:
                continue
            if name in _SEEDABLE_FACTORIES and not _has_seed_argument(node):
                yield self.finding(
                    module,
                    node,
                    f"{name}() without a seed: pass an explicit seed or a "
                    "seeded numpy.random.Generator so runs are replayable",
                )
            elif name.startswith("numpy.random.") and name.rsplit(".", 1)[1] in _NUMPY_GLOBAL_FNS:
                yield self.finding(
                    module,
                    node,
                    f"{name}() uses numpy's hidden global RNG; construct a "
                    "seeded Generator (numpy.random.default_rng(seed)) and "
                    "thread it through instead",
                )
            elif name.startswith("random.") and name.rsplit(".", 1)[1] in _STDLIB_GLOBAL_FNS:
                yield self.finding(
                    module,
                    node,
                    f"{name}() uses the stdlib global RNG; use random.Random(seed) "
                    "or a seeded numpy Generator instead",
                )
            elif name == "random.Random" and not _has_seed_argument(node):
                yield self.finding(
                    module,
                    node,
                    "random.Random() without a seed: pass an explicit seed so "
                    "runs are replayable",
                )
