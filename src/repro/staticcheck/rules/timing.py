"""``wallclock-timing``: ``time.time()`` used where a monotonic clock belongs.

The paper's timing claims (Fig. 7/8: characterization throughput,
inference latency) are duration measurements; ``time.time()`` is subject
to NTP slew and clock steps, so durations must come from
``time.perf_counter()`` (or ``time.monotonic()``).  Because almost every
``time.time()`` in this code base is a duration anchor, the rule flags
every call and asks genuine wall-clock timestamps (log records, database
rows) to carry an inline suppression saying so.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import Rule, register

__all__ = ["WallclockTimingRule"]


@register
class WallclockTimingRule(Rule):
    id = "wallclock-timing"
    description = (
        "time.time() is not monotonic; durations must use time.perf_counter()"
    )

    def check(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if module.dotted_name(node.func) == "time.time":
                yield self.finding(
                    module,
                    node,
                    "time.time() can jump under NTP adjustment: use "
                    "time.perf_counter() for durations (suppress with a "
                    "justification if this really is a wall-clock timestamp)",
                )
