"""``export-drift``: public modules whose ``__all__`` lies or is missing.

The repo's convention (DESIGN.md §6) is that every public module declares
``__all__`` — it is what keeps ``from repro.x import *`` surfaces and the
docs honest.  Two failure shapes:

* *missing*: a module defines public functions/classes but no ``__all__``
  (reported at line 1);
* *drifted*: ``__all__`` names something the module no longer binds — a
  rename or deletion that silently broke the public surface.

Modules whose filename starts with ``_`` and modules that define nothing
public are exempt.  ``__all__`` built from non-literal expressions is
skipped (it cannot be checked statically).
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import Rule, register

__all__ = ["ExportDriftRule"]


def _literal_all_names(node: ast.AST) -> list[tuple[str, int]] | None:
    """Extract ``(name, lineno)`` pairs from an ``__all__`` value expression."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        names.append((elt.value, elt.lineno))
    return names


def _module_bindings(tree: ast.Module) -> set[str]:
    """Every name bound at module top level (defs, assigns, imports)."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        bound.add(sub.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # names bound under TYPE_CHECKING / import-fallback guards
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    bound.add(sub.name)
                elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                    bound.add(sub.id)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name.split(".")[0])
    return bound


def _public_definitions(tree: ast.Module) -> bool:
    """Does the module define (not just import) anything public?"""
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        and not node.name.startswith("_")
        for node in tree.body
    )


@register
class ExportDriftRule(Rule):
    id = "export-drift"
    description = "__all__ missing from a public module, or naming an unbound symbol"

    def check(self, module) -> Iterator[Finding]:
        stem = PurePath(module.path).name
        if stem.startswith("_") and stem != "__init__.py":
            return

        all_assignments = [
            node
            for node in module.tree.body
            if isinstance(node, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets)
        ]

        if not all_assignments:
            if _public_definitions(module.tree):
                yield self.finding(
                    module,
                    1,
                    "public module defines exported symbols but no __all__; "
                    "declare the public surface explicitly",
                )
            return

        bound = _module_bindings(module.tree)
        for assignment in all_assignments:
            names = _literal_all_names(assignment.value)
            if names is None:
                continue  # dynamically built __all__ cannot be checked here
            for name, lineno in names:
                if name not in bound:
                    yield self.finding(
                        module,
                        lineno,
                        f"__all__ exports {name!r} but the module does not "
                        "bind it; the public surface has drifted",
                    )
