"""``unordered-iteration``: iterating a set where order reaches model state.

Feature encoding and model fitting must see their inputs in the same
order on every run — vocabulary indices, one-hot columns and tree splits
all inherit the iteration order of whatever fed them.  Python sets (and
set-algebra results such as ``a | b`` or ``d.keys() & e.keys()``) iterate
in hash order, which varies with insertion history and, for strings,
with ``PYTHONHASHSEED``.  The rule flags ``for``-loops and comprehensions
whose iterable is visibly a set; the fix is ``sorted(...)`` (dicts are
insertion-ordered and are not flagged).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import Rule, register

__all__ = ["UnorderedIterationRule"]

_SET_FACTORIES = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
_SET_OPERATORS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_expr(module, expr: ast.AST) -> bool:
    if isinstance(expr, ast.Set):
        return True
    if isinstance(expr, ast.SetComp):
        return True
    if isinstance(expr, ast.Call):
        fn = expr.func
        if module.dotted_name(fn) in _SET_FACTORIES:
            return True
        if isinstance(fn, ast.Attribute) and fn.attr in _SET_METHODS:
            # a.union(b) — only meaningful when the receiver looks set-ish;
            # accept it outright: these method names are set/frozenset API.
            return True
        return False
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_OPERATORS):
        # set algebra: either operand being a set expression makes the
        # result a set (e.g. ``seen | set(new)``, ``d.keys() & keep``)
        return _is_set_expr(module, expr.left) or _is_set_expr(module, expr.right)
    return False


@register
class UnorderedIterationRule(Rule):
    id = "unordered-iteration"
    description = (
        "iteration over a set is hash-ordered; wrap in sorted() before it "
        "feeds encoding or fitting"
    )

    def check(self, module) -> Iterator[Finding]:
        iterables: list[ast.AST] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
        for it in iterables:
            if _is_set_expr(module, it):
                yield self.finding(
                    module,
                    it,
                    "iterating a set in hash order is not replayable across "
                    "runs; wrap the iterable in sorted() so downstream "
                    "encoding/fitting sees a stable order",
                )
